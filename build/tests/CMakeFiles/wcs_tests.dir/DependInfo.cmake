
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/wcs_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cacheability.cpp" "tests/CMakeFiles/wcs_tests.dir/test_cacheability.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_cacheability.cpp.o.d"
  "/root/repo/tests/test_clf.cpp" "tests/CMakeFiles/wcs_tests.dir/test_clf.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_clf.cpp.o.d"
  "/root/repo/tests/test_delta.cpp" "tests/CMakeFiles/wcs_tests.dir/test_delta.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_delta.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/wcs_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/wcs_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_expiry.cpp" "tests/CMakeFiles/wcs_tests.dir/test_expiry.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_expiry.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/wcs_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_extractor.cpp" "tests/CMakeFiles/wcs_tests.dir/test_extractor.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_extractor.cpp.o.d"
  "/root/repo/tests/test_file_type.cpp" "tests/CMakeFiles/wcs_tests.dir/test_file_type.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_file_type.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/wcs_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_http_date.cpp" "tests/CMakeFiles/wcs_tests.dir/test_http_date.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_http_date.cpp.o.d"
  "/root/repo/tests/test_http_message.cpp" "tests/CMakeFiles/wcs_tests.dir/test_http_message.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_http_message.cpp.o.d"
  "/root/repo/tests/test_http_parser.cpp" "tests/CMakeFiles/wcs_tests.dir/test_http_parser.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_http_parser.cpp.o.d"
  "/root/repo/tests/test_keys.cpp" "tests/CMakeFiles/wcs_tests.dir/test_keys.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_keys.cpp.o.d"
  "/root/repo/tests/test_lru_min.cpp" "tests/CMakeFiles/wcs_tests.dir/test_lru_min.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_lru_min.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/wcs_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_origin.cpp" "tests/CMakeFiles/wcs_tests.dir/test_origin.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_origin.cpp.o.d"
  "/root/repo/tests/test_paper_table2.cpp" "tests/CMakeFiles/wcs_tests.dir/test_paper_table2.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_paper_table2.cpp.o.d"
  "/root/repo/tests/test_partitioned.cpp" "tests/CMakeFiles/wcs_tests.dir/test_partitioned.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_partitioned.cpp.o.d"
  "/root/repo/tests/test_pitkow_recker.cpp" "tests/CMakeFiles/wcs_tests.dir/test_pitkow_recker.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_pitkow_recker.cpp.o.d"
  "/root/repo/tests/test_policy_properties.cpp" "tests/CMakeFiles/wcs_tests.dir/test_policy_properties.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_policy_properties.cpp.o.d"
  "/root/repo/tests/test_property_roundtrips.cpp" "tests/CMakeFiles/wcs_tests.dir/test_property_roundtrips.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_property_roundtrips.cpp.o.d"
  "/root/repo/tests/test_proxy.cpp" "tests/CMakeFiles/wcs_tests.dir/test_proxy.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_proxy.cpp.o.d"
  "/root/repo/tests/test_reassembler.cpp" "tests/CMakeFiles/wcs_tests.dir/test_reassembler.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_reassembler.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/wcs_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_simtime.cpp" "tests/CMakeFiles/wcs_tests.dir/test_simtime.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_simtime.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/wcs_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sorted_policy.cpp" "tests/CMakeFiles/wcs_tests.dir/test_sorted_policy.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_sorted_policy.cpp.o.d"
  "/root/repo/tests/test_squid.cpp" "tests/CMakeFiles/wcs_tests.dir/test_squid.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_squid.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/wcs_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/wcs_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/wcs_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/wcs_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_stats.cpp" "tests/CMakeFiles/wcs_tests.dir/test_trace_stats.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_trace_stats.cpp.o.d"
  "/root/repo/tests/test_two_level.cpp" "tests/CMakeFiles/wcs_tests.dir/test_two_level.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_two_level.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/wcs_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/wcs_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/wcs_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/wcs_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/wcs_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/wcs_http.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
