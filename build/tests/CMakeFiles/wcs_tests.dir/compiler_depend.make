# Empty compiler generated dependencies file for wcs_tests.
# This may be replaced when dependencies are built.
