file(REMOVE_RECURSE
  "libwcs_util.a"
)
