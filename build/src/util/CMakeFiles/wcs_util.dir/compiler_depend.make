# Empty compiler generated dependencies file for wcs_util.
# This may be replaced when dependencies are built.
