file(REMOVE_RECURSE
  "CMakeFiles/wcs_util.dir/distributions.cpp.o"
  "CMakeFiles/wcs_util.dir/distributions.cpp.o.d"
  "CMakeFiles/wcs_util.dir/rng.cpp.o"
  "CMakeFiles/wcs_util.dir/rng.cpp.o.d"
  "CMakeFiles/wcs_util.dir/simtime.cpp.o"
  "CMakeFiles/wcs_util.dir/simtime.cpp.o.d"
  "CMakeFiles/wcs_util.dir/stats.cpp.o"
  "CMakeFiles/wcs_util.dir/stats.cpp.o.d"
  "CMakeFiles/wcs_util.dir/strings.cpp.o"
  "CMakeFiles/wcs_util.dir/strings.cpp.o.d"
  "CMakeFiles/wcs_util.dir/table.cpp.o"
  "CMakeFiles/wcs_util.dir/table.cpp.o.d"
  "libwcs_util.a"
  "libwcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
