file(REMOVE_RECURSE
  "libwcs_capture.a"
)
