file(REMOVE_RECURSE
  "CMakeFiles/wcs_capture.dir/extractor.cpp.o"
  "CMakeFiles/wcs_capture.dir/extractor.cpp.o.d"
  "CMakeFiles/wcs_capture.dir/reassembler.cpp.o"
  "CMakeFiles/wcs_capture.dir/reassembler.cpp.o.d"
  "CMakeFiles/wcs_capture.dir/synth.cpp.o"
  "CMakeFiles/wcs_capture.dir/synth.cpp.o.d"
  "libwcs_capture.a"
  "libwcs_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
