# Empty compiler generated dependencies file for wcs_capture.
# This may be replaced when dependencies are built.
