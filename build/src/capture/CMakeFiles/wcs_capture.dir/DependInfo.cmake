
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/extractor.cpp" "src/capture/CMakeFiles/wcs_capture.dir/extractor.cpp.o" "gcc" "src/capture/CMakeFiles/wcs_capture.dir/extractor.cpp.o.d"
  "/root/repo/src/capture/reassembler.cpp" "src/capture/CMakeFiles/wcs_capture.dir/reassembler.cpp.o" "gcc" "src/capture/CMakeFiles/wcs_capture.dir/reassembler.cpp.o.d"
  "/root/repo/src/capture/synth.cpp" "src/capture/CMakeFiles/wcs_capture.dir/synth.cpp.o" "gcc" "src/capture/CMakeFiles/wcs_capture.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/wcs_http.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
