# Empty dependencies file for wcs_http.
# This may be replaced when dependencies are built.
