file(REMOVE_RECURSE
  "libwcs_http.a"
)
