file(REMOVE_RECURSE
  "CMakeFiles/wcs_http.dir/cacheability.cpp.o"
  "CMakeFiles/wcs_http.dir/cacheability.cpp.o.d"
  "CMakeFiles/wcs_http.dir/date.cpp.o"
  "CMakeFiles/wcs_http.dir/date.cpp.o.d"
  "CMakeFiles/wcs_http.dir/delta.cpp.o"
  "CMakeFiles/wcs_http.dir/delta.cpp.o.d"
  "CMakeFiles/wcs_http.dir/message.cpp.o"
  "CMakeFiles/wcs_http.dir/message.cpp.o.d"
  "CMakeFiles/wcs_http.dir/parser.cpp.o"
  "CMakeFiles/wcs_http.dir/parser.cpp.o.d"
  "libwcs_http.a"
  "libwcs_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
