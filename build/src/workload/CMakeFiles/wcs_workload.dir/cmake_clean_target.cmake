file(REMOVE_RECURSE
  "libwcs_workload.a"
)
