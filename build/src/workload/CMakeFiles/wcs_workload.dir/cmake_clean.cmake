file(REMOVE_RECURSE
  "CMakeFiles/wcs_workload.dir/generator.cpp.o"
  "CMakeFiles/wcs_workload.dir/generator.cpp.o.d"
  "CMakeFiles/wcs_workload.dir/report.cpp.o"
  "CMakeFiles/wcs_workload.dir/report.cpp.o.d"
  "CMakeFiles/wcs_workload.dir/spec.cpp.o"
  "CMakeFiles/wcs_workload.dir/spec.cpp.o.d"
  "libwcs_workload.a"
  "libwcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
