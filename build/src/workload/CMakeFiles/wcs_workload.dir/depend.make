# Empty dependencies file for wcs_workload.
# This may be replaced when dependencies are built.
