
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/wcs_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/wcs_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/report.cpp" "src/workload/CMakeFiles/wcs_workload.dir/report.cpp.o" "gcc" "src/workload/CMakeFiles/wcs_workload.dir/report.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/workload/CMakeFiles/wcs_workload.dir/spec.cpp.o" "gcc" "src/workload/CMakeFiles/wcs_workload.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
