
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/clf.cpp" "src/trace/CMakeFiles/wcs_trace.dir/clf.cpp.o" "gcc" "src/trace/CMakeFiles/wcs_trace.dir/clf.cpp.o.d"
  "/root/repo/src/trace/file_type.cpp" "src/trace/CMakeFiles/wcs_trace.dir/file_type.cpp.o" "gcc" "src/trace/CMakeFiles/wcs_trace.dir/file_type.cpp.o.d"
  "/root/repo/src/trace/squid.cpp" "src/trace/CMakeFiles/wcs_trace.dir/squid.cpp.o" "gcc" "src/trace/CMakeFiles/wcs_trace.dir/squid.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/wcs_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/wcs_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/wcs_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/wcs_trace.dir/trace_stats.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/wcs_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/wcs_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
