file(REMOVE_RECURSE
  "CMakeFiles/wcs_trace.dir/clf.cpp.o"
  "CMakeFiles/wcs_trace.dir/clf.cpp.o.d"
  "CMakeFiles/wcs_trace.dir/file_type.cpp.o"
  "CMakeFiles/wcs_trace.dir/file_type.cpp.o.d"
  "CMakeFiles/wcs_trace.dir/squid.cpp.o"
  "CMakeFiles/wcs_trace.dir/squid.cpp.o.d"
  "CMakeFiles/wcs_trace.dir/trace.cpp.o"
  "CMakeFiles/wcs_trace.dir/trace.cpp.o.d"
  "CMakeFiles/wcs_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/wcs_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/wcs_trace.dir/validate.cpp.o"
  "CMakeFiles/wcs_trace.dir/validate.cpp.o.d"
  "libwcs_trace.a"
  "libwcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
