# Empty compiler generated dependencies file for wcs_trace.
# This may be replaced when dependencies are built.
