file(REMOVE_RECURSE
  "libwcs_trace.a"
)
