file(REMOVE_RECURSE
  "CMakeFiles/wcs_core.dir/cache.cpp.o"
  "CMakeFiles/wcs_core.dir/cache.cpp.o.d"
  "CMakeFiles/wcs_core.dir/expiry.cpp.o"
  "CMakeFiles/wcs_core.dir/expiry.cpp.o.d"
  "CMakeFiles/wcs_core.dir/hierarchy.cpp.o"
  "CMakeFiles/wcs_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/wcs_core.dir/keys.cpp.o"
  "CMakeFiles/wcs_core.dir/keys.cpp.o.d"
  "CMakeFiles/wcs_core.dir/lru_min.cpp.o"
  "CMakeFiles/wcs_core.dir/lru_min.cpp.o.d"
  "CMakeFiles/wcs_core.dir/partitioned_cache.cpp.o"
  "CMakeFiles/wcs_core.dir/partitioned_cache.cpp.o.d"
  "CMakeFiles/wcs_core.dir/pitkow_recker.cpp.o"
  "CMakeFiles/wcs_core.dir/pitkow_recker.cpp.o.d"
  "CMakeFiles/wcs_core.dir/policy.cpp.o"
  "CMakeFiles/wcs_core.dir/policy.cpp.o.d"
  "CMakeFiles/wcs_core.dir/sorted_policy.cpp.o"
  "CMakeFiles/wcs_core.dir/sorted_policy.cpp.o.d"
  "CMakeFiles/wcs_core.dir/two_level.cpp.o"
  "CMakeFiles/wcs_core.dir/two_level.cpp.o.d"
  "libwcs_core.a"
  "libwcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
