
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/wcs_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/expiry.cpp" "src/core/CMakeFiles/wcs_core.dir/expiry.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/expiry.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/wcs_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/keys.cpp" "src/core/CMakeFiles/wcs_core.dir/keys.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/keys.cpp.o.d"
  "/root/repo/src/core/lru_min.cpp" "src/core/CMakeFiles/wcs_core.dir/lru_min.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/lru_min.cpp.o.d"
  "/root/repo/src/core/partitioned_cache.cpp" "src/core/CMakeFiles/wcs_core.dir/partitioned_cache.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/partitioned_cache.cpp.o.d"
  "/root/repo/src/core/pitkow_recker.cpp" "src/core/CMakeFiles/wcs_core.dir/pitkow_recker.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/pitkow_recker.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/wcs_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/sorted_policy.cpp" "src/core/CMakeFiles/wcs_core.dir/sorted_policy.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/sorted_policy.cpp.o.d"
  "/root/repo/src/core/two_level.cpp" "src/core/CMakeFiles/wcs_core.dir/two_level.cpp.o" "gcc" "src/core/CMakeFiles/wcs_core.dir/two_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/wcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
