# Empty compiler generated dependencies file for wcs_core.
# This may be replaced when dependencies are built.
