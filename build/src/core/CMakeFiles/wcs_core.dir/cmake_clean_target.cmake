file(REMOVE_RECURSE
  "libwcs_core.a"
)
