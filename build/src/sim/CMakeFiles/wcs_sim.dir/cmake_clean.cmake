file(REMOVE_RECURSE
  "CMakeFiles/wcs_sim.dir/experiments.cpp.o"
  "CMakeFiles/wcs_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/wcs_sim.dir/metrics.cpp.o"
  "CMakeFiles/wcs_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/wcs_sim.dir/simulator.cpp.o"
  "CMakeFiles/wcs_sim.dir/simulator.cpp.o.d"
  "libwcs_sim.a"
  "libwcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
