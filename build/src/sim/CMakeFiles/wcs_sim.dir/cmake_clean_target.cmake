file(REMOVE_RECURSE
  "libwcs_sim.a"
)
