# Empty dependencies file for wcs_sim.
# This may be replaced when dependencies are built.
