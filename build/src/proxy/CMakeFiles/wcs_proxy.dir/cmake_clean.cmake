file(REMOVE_RECURSE
  "CMakeFiles/wcs_proxy.dir/origin.cpp.o"
  "CMakeFiles/wcs_proxy.dir/origin.cpp.o.d"
  "CMakeFiles/wcs_proxy.dir/proxy.cpp.o"
  "CMakeFiles/wcs_proxy.dir/proxy.cpp.o.d"
  "libwcs_proxy.a"
  "libwcs_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcs_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
