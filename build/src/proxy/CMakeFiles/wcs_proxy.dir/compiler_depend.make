# Empty compiler generated dependencies file for wcs_proxy.
# This may be replaced when dependencies are built.
