file(REMOVE_RECURSE
  "libwcs_proxy.a"
)
