file(REMOVE_RECURSE
  "CMakeFiles/log_replayer.dir/log_replayer.cpp.o"
  "CMakeFiles/log_replayer.dir/log_replayer.cpp.o.d"
  "log_replayer"
  "log_replayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_replayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
