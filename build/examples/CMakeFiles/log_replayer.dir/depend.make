# Empty dependencies file for log_replayer.
# This may be replaced when dependencies are built.
