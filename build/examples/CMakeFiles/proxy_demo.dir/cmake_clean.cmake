file(REMOVE_RECURSE
  "CMakeFiles/proxy_demo.dir/proxy_demo.cpp.o"
  "CMakeFiles/proxy_demo.dir/proxy_demo.cpp.o.d"
  "proxy_demo"
  "proxy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
