# Empty dependencies file for proxy_demo.
# This may be replaced when dependencies are built.
