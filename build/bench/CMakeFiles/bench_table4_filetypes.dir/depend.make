# Empty dependencies file for bench_table4_filetypes.
# This may be replaced when dependencies are built.
