file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_filetypes.dir/bench_table4_filetypes.cpp.o"
  "CMakeFiles/bench_table4_filetypes.dir/bench_table4_filetypes.cpp.o.d"
  "bench_table4_filetypes"
  "bench_table4_filetypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_filetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
