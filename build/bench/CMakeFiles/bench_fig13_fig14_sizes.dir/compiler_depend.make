# Empty compiler generated dependencies file for bench_fig13_fig14_sizes.
# This may be replaced when dependencies are built.
