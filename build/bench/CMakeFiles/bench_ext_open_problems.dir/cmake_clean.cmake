file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_open_problems.dir/bench_ext_open_problems.cpp.o"
  "CMakeFiles/bench_ext_open_problems.dir/bench_ext_open_problems.cpp.o.d"
  "bench_ext_open_problems"
  "bench_ext_open_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_open_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
