# Empty compiler generated dependencies file for bench_ext_open_problems.
# This may be replaced when dependencies are built.
