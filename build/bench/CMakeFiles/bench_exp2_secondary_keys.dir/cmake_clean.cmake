file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_secondary_keys.dir/bench_exp2_secondary_keys.cpp.o"
  "CMakeFiles/bench_exp2_secondary_keys.dir/bench_exp2_secondary_keys.cpp.o.d"
  "bench_exp2_secondary_keys"
  "bench_exp2_secondary_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_secondary_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
