# Empty dependencies file for bench_exp2_secondary_keys.
# This may be replaced when dependencies are built.
