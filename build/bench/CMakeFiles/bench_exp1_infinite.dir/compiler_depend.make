# Empty compiler generated dependencies file for bench_exp1_infinite.
# This may be replaced when dependencies are built.
