file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_infinite.dir/bench_exp1_infinite.cpp.o"
  "CMakeFiles/bench_exp1_infinite.dir/bench_exp1_infinite.cpp.o.d"
  "bench_exp1_infinite"
  "bench_exp1_infinite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_infinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
