# Empty dependencies file for bench_exp2_policy_matrix.
# This may be replaced when dependencies are built.
