# Empty compiler generated dependencies file for bench_exp2_primary_keys.
# This may be replaced when dependencies are built.
