# Empty compiler generated dependencies file for bench_exp3_two_level.
# This may be replaced when dependencies are built.
