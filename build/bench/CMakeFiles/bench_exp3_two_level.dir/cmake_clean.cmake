file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_two_level.dir/bench_exp3_two_level.cpp.o"
  "CMakeFiles/bench_exp3_two_level.dir/bench_exp3_two_level.cpp.o.d"
  "bench_exp3_two_level"
  "bench_exp3_two_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
