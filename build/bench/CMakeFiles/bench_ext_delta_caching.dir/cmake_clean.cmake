file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_delta_caching.dir/bench_ext_delta_caching.cpp.o"
  "CMakeFiles/bench_ext_delta_caching.dir/bench_ext_delta_caching.cpp.o.d"
  "bench_ext_delta_caching"
  "bench_ext_delta_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_delta_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
