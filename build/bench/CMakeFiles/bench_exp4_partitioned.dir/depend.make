# Empty dependencies file for bench_exp4_partitioned.
# This may be replaced when dependencies are built.
