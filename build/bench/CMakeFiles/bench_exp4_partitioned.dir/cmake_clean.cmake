file(REMOVE_RECURSE
  "CMakeFiles/bench_exp4_partitioned.dir/bench_exp4_partitioned.cpp.o"
  "CMakeFiles/bench_exp4_partitioned.dir/bench_exp4_partitioned.cpp.o.d"
  "bench_exp4_partitioned"
  "bench_exp4_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp4_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
