// Trace analyzer — workload characterization for a real proxy log.
//
// Reads a CERN/NCSA common-log-format file (the format the paper's
// workloads were collected in), applies the §1.1 validation rules, and
// prints the §2.2-style characterization: file-type distribution (Table 4),
// server/URL concentration (Figs 1-2), document-size histogram (Fig 13) and
// interreference structure (Fig 14).
//
// Usage:
//   trace_analyzer access.log         analyze a common-format log file
//   trace_analyzer --demo             generate workload BL (scale 0.2),
//                                     write it to /tmp/wcs_demo.log, then
//                                     analyze that file end-to-end
#include <fstream>
#include <iostream>

#include "src/trace/clf.h"
#include "src/trace/squid.h"
#include "src/trace/trace_stats.h"
#include "src/trace/validate.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

using namespace wcs;

namespace {

int analyze(std::istream& in) {
  std::string first_line;
  std::getline(in, first_line);
  in.seekg(0);
  const std::string_view format = detect_log_format(first_line);
  std::vector<RawRequest> records;
  std::size_t malformed = 0;
  if (format == "squid") {
    SquidReadResult parsed = read_squid(in);
    records = std::move(parsed.requests);
    malformed = parsed.malformed_lines;
  } else {
    ClfReadResult parsed = read_clf(in);
    records = std::move(parsed.requests);
    malformed = parsed.malformed_lines;
  }
  std::cout << "parsed " << records.size() << " records (" << format << " format, "
            << malformed << " malformed lines skipped)\n";
  const ValidatedTrace validated = validate(records);
  const ValidationStats& vs = validated.stats;
  std::cout << "validation (paper §1.1): kept " << vs.kept << ", dropped "
            << vs.dropped_status << " non-200, " << vs.dropped_method << " non-GET, "
            << vs.dropped_zero_size_unknown << " zero-size-unknown; resolved "
            << vs.zero_size_resolved << " zero-size re-references; " << vs.size_changes
            << " size changes observed\n\n";
  const Trace& trace = validated.trace;
  if (trace.empty()) {
    std::cerr << "no valid requests - nothing to analyze\n";
    return 1;
  }

  Table summary{"trace summary"};
  summary.header({"metric", "value"});
  summary.row({"days spanned", std::to_string(trace.day_count())});
  summary.row({"valid requests", std::to_string(trace.size())});
  summary.row({"bytes transferred", format_bytes(trace.total_bytes())});
  summary.row({"unique URLs", std::to_string(trace.url_count())});
  summary.row({"unique bytes (min cache for no removals)", format_bytes(trace.unique_bytes())});
  summary.row({"servers", std::to_string(trace.server_count())});
  summary.row({"clients", std::to_string(trace.client_count())});
  summary.print(std::cout);
  std::cout << '\n';

  const FileTypeDistribution dist = file_type_distribution(trace);
  Table types{"file types (paper Table 4 format)"};
  types.header({"type", "%refs", "%bytes"});
  for (const FileType type : kAllFileTypes) {
    types.row({std::string{to_string(type)}, Table::pct(dist.ref_fraction(type), 2),
               Table::pct(dist.byte_fraction(type), 2)});
  }
  types.print(std::cout);
  std::cout << '\n';

  const auto per_server = requests_per_server_ranked(trace);
  const auto per_url = bytes_per_url_ranked(trace);
  Table concentration{"concentration (paper Figs 1-2)"};
  concentration.header({"metric", "value"});
  concentration.row({"Zipf exponent, requests/server",
                     Table::num(zipf_exponent_estimate(per_server), 2)});
  concentration.row({"Zipf exponent, bytes/URL",
                     Table::num(zipf_exponent_estimate(per_url), 2)});
  concentration.row({"URLs carrying 50% of bytes",
                     std::to_string(count_for_mass_fraction(per_url, 0.5))});
  concentration.row({"servers carrying 50% of requests",
                     std::to_string(count_for_mass_fraction(per_server, 0.5))});
  concentration.print(std::cout);
  std::cout << '\n';

  const auto samples = interreference_samples(trace);
  const InterreferenceSummary inter = summarize_interreference(samples);
  Table locality{"interreference structure (paper Fig 14)"};
  locality.header({"metric", "value"});
  locality.row({"re-references", std::to_string(inter.samples)});
  locality.row({"median re-referenced size",
                format_bytes(static_cast<std::uint64_t>(inter.median_size))});
  locality.row({"median gap", format_duration(static_cast<SimTime>(inter.median_gap_seconds))});
  locality.row({"gaps > 1 hour", Table::pct(inter.fraction_gap_over_hour, 1)});
  locality.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_analyzer <common-format-log | --demo>\n";
    return 2;
  }
  const std::string arg = argv[1];
  if (arg == "--demo") {
    const char* path = "/tmp/wcs_demo.log";
    std::cout << "generating workload BL (scale 0.2) into " << path << "...\n";
    WorkloadGenerator generator{WorkloadSpec::preset("BL").scaled(0.2)};
    std::ofstream out{path};
    write_clf(out, generator.generate_raw());
    out.close();
    std::ifstream in{path};
    return analyze(in);
  }
  std::ifstream in{arg};
  if (!in) {
    std::cerr << "cannot open " << arg << '\n';
    return 2;
  }
  return analyze(in);
}
