// Observability report: one recorded run, all four export formats.
//
//   obs_report [--preset BL] [--out obs_out] [--scale 0.05] [--chaos 0.1]
//
// Replays a workload preset through the simulator and through a chaos
// proxy replay with a single ObsRecorder attached, fans a small policy
// comparison over the ParallelRunner so the wall-clock track has job
// spans, then writes the recorder out as:
//
//   <out>/events.jsonl   structured event log (one JSON object per line)
//   <out>/trace.json     Chrome trace_event JSON — load in Perfetto or
//                        chrome://tracing (sim-time + wall-clock tracks)
//   <out>/metrics.prom   Prometheus text exposition
//   <out>/series.csv     per-simulated-day HR / byte-HR time series
//
// tools/check_obs.py validates all four (runs as the wcs_obs_report ctest).
// WCS_SCALE is honoured when --scale is absent; determinism contract: same
// (preset, scale, chaos rate) -> byte-identical events.jsonl and series.csv.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/policy.h"
#include "src/obs/export.h"
#include "src/obs/recorder.h"
#include "src/sim/chaos.h"
#include "src/sim/runner.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

using namespace wcs;

int main(int argc, char** argv) {
  std::string preset = "BL";
  std::string out_dir = "obs_out";
  double scale = 0.0;  // 0 = WCS_SCALE or 1.0
  double chaos_rate = 0.1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--preset" && i + 1 < argc) preset = argv[++i];
    else if (arg == "--out" && i + 1 < argc) out_dir = argv[++i];
    else if (arg == "--scale" && i + 1 < argc) scale = std::atof(argv[++i]);
    else if (arg == "--chaos" && i + 1 < argc) chaos_rate = std::atof(argv[++i]);
    else {
      std::cerr << "usage: obs_report [--preset U|G|C|BR|BL] [--out dir] [--scale f]"
                   " [--chaos rate]\n";
      return 2;
    }
  }
  if (scale <= 0.0) {
    scale = 1.0;
    if (const char* text = std::getenv("WCS_SCALE")) {
      const double value = std::atof(text);
      if (value > 0.0) scale = value;
    }
  }

  std::cout << "=== obs_report: preset " << preset << ", scale " << scale << " ===\n";
  WorkloadGenerator generator{WorkloadSpec::preset(preset).scaled(scale)};
  const GeneratedWorkload generated = generator.generate();
  // 10% of MaxNeeded — the middle of the paper's Experiment-2 size range.
  const std::uint64_t unique = generated.trace.unique_bytes();
  const std::uint64_t capacity = unique / 10 == 0 ? 1ULL << 20 : unique / 10;

  ObsRecorder recorder;

  // 1. Recorded simulation: cache events, "sim" daily series, day spans.
  const SimResult sim = simulate(generated.trace, capacity, [] { return make_size(); },
                                 {}, {}, &recorder);
  std::cout << "  simulate: " << sim.stats.requests << " requests, HR "
            << Table::pct(sim.stats.hit_rate(), 1) << ", WHR "
            << Table::pct(sim.stats.weighted_hit_rate(), 1) << "\n";

  // 2. Recorded chaos replay: proxy/resilience events under injected
  // faults (retries, breaker transitions, stale serves, chaos faults).
  ProxyReplayConfig replay_config;
  replay_config.proxy.capacity_bytes = capacity;
  replay_config.proxy.policy = "size";
  replay_config.faults =
      chaos_rate > 0.0 ? FaultSpec::transient_mix(chaos_rate) : FaultSpec{};
  replay_config.obs = &recorder;
  TraceSource replay_source{generated.trace};
  const ProxyReplayResult replay = replay_through_proxy(replay_source, replay_config);
  std::cout << "  replay (chaos " << chaos_rate << "): availability "
            << Table::pct(replay.availability.availability(), 1) << ", "
            << replay.stats.retries << " retries, " << replay.stats.breaker_opens
            << " breaker opens, " << replay.stats.stale_served << " stale serves\n";

  // 3. Small policy fan-out so the wall-clock track shows runner jobs.
  ParallelRunner runner;
  runner.set_span_recorder(&recorder.spans());
  const std::vector<std::string> policies = {"size", "lru", "lfu", "fifo"};
  const std::vector<double> rates = runner.map(policies.size(), [&](std::size_t i) {
    return [&generated, &policies, capacity, i] {
      return simulate(generated.trace, capacity,
                      [&] { return make_policy_by_name(policies[i]); })
          .stats.hit_rate();
    };
  });
  runner.set_span_recorder(nullptr);
  Table comparison{"Policy comparison (runner fan-out)"};
  comparison.header({"policy", "HR"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    comparison.row({policies[i], Table::pct(rates[i], 1)});
  }
  comparison.print(std::cout);

  // 4. Export everything.
  const ExportPaths paths = write_all_exports(recorder, out_dir);
  std::cout << "\nwrote " << paths.events_jsonl << "\n      " << paths.trace_json
            << "\n      " << paths.metrics_prom << "\n      " << paths.series_csv << "\n\n";

  // Terminal summary: what the recorder holds.
  Table events{"Recorded events"};
  events.header({"kind", "count"});
  for (const EventKind kind :
       {EventKind::kAdmission, EventKind::kEviction, EventKind::kSizeChangeMiss,
        EventKind::kPeriodicSweep, EventKind::kUpstreamRetry, EventKind::kBreakerTransition,
        EventKind::kStaleServed, EventKind::kNegativeHit, EventKind::kChaosFault,
        EventKind::kRunMarker}) {
    const std::size_t count = recorder.event_count_of(kind);
    if (count > 0) events.row({std::string{to_string(kind)}, std::to_string(count)});
  }
  events.print(std::cout);

  Table series{"Time series"};
  series.header({"name", "points", "overall HR", "overall byte-HR"});
  for (const TimeSeries* ts : recorder.all_series()) {
    std::uint64_t requests = 0, hits = 0, bytes = 0, hit_bytes = 0;
    for (const SeriesPoint& point : ts->points()) {
      requests += point.requests;
      hits += point.hits;
      bytes += point.bytes;
      hit_bytes += point.hit_bytes;
    }
    series.row({ts->name(), std::to_string(ts->points().size()),
                requests == 0 ? "-" : Table::pct(static_cast<double>(hits) /
                                                     static_cast<double>(requests), 1),
                bytes == 0 ? "-" : Table::pct(static_cast<double>(hit_bytes) /
                                                  static_cast<double>(bytes), 1)});
  }
  series.print(std::cout);

  std::cout << "metrics registered: " << recorder.registry().size()
            << ", spans recorded: " << recorder.spans().size()
            << "\nopen " << paths.trace_json << " in https://ui.perfetto.dev to explore\n";
  return 0;
}
