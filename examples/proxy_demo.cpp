// End-to-end proxy demo: every substrate working together.
//
//   origin servers  --HTTP-->  caching proxy  --HTTP-->  clients
//                                   |
//                            access log (CLF)
//                                   |
//        synthetic "tcpdump" of the same traffic -> reassembly ->
//        HTTP extraction -> common-format log (the paper's BR/BL
//        collection pipeline) -> §1.1 validation -> simulator replay
//
// The demo publishes documents on two origin servers, drives a client
// workload through a ProxyCache (SIZE policy), edits a document to show a
// conditional-GET revalidation, then re-derives the same access log from a
// packet capture of the traffic and replays it through the simulator.
//
// With `--chaos <rate>` (e.g. --chaos 0.25) a final stage re-runs the same
// traffic with a deterministic FaultPlan injected in front of the origins,
// demonstrating stale-if-error, the circuit breaker, and the resilience
// summary counters (DESIGN.md §9).
//
// With `--obs <dir>` the demo attaches an ObsRecorder to both proxies and
// writes the four observability exports (events.jsonl, trace.json,
// metrics.prom, series.csv — DESIGN.md §10) into <dir>.
//
// With `--threads N --shards M` a final stage stands up a sharded proxy
// fleet — one ProxyCache + synthetic origin per shard — and drives the BR
// preset through it with the multi-threaded load generator (DESIGN.md
// §13), printing aggregate throughput and the per-shard occupancy table.
//
// With `--topology` a final stage replays the BR preset through a 3-tier
// network of caches (4 edge siblings -> 2 regional -> 1 parent) with a
// lightly faulted parent downlink, printing the per-tier accounting table
// and the failover router's counters (DESIGN.md §14). Composes with
// --obs: the per-tier stats publish as wcs_tier_<label>_* metrics.
//
// With `--policy <name>` the main proxy runs that removal policy instead
// of SIZE — any name make_policy_by_name resolves, including the zoo
// ("gdsf", "slru", "tinylfu", "adaptive"; DESIGN.md §15).
//
// With `--adaptive` a final stage replays the BR preset through the
// shadow-cache policy selector and prints every epoch-boundary decision:
// per-candidate shadow hits, the chosen policy, and where it switched.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/capture/extractor.h"
#include "src/capture/synth.h"
#include "src/core/policy.h"
#include "src/http/date.h"
#include "src/obs/export.h"
#include "src/obs/recorder.h"
#include "src/proxy/faults.h"
#include "src/proxy/origin.h"
#include "src/proxy/proxy.h"
#include "src/proxy/topology.h"
#include "src/sim/chaos.h"
#include "src/sim/loadgen.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/trace/clf.h"
#include "src/trace/validate.h"
#include "src/util/table.h"
#include "src/workload/generator.h"
#include "src/zoo/gds.h"
#include "src/zoo/registry.h"
#include "src/zoo/selector.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

using namespace wcs;

int main(int argc, char** argv) {
  double chaos_rate = -1.0;
  std::string obs_dir;  // --obs <dir>: write the four observability exports
  int demo_threads = 0;  // --threads N: sharded-fleet stage worker count
  int demo_shards = 0;   // --shards M: sharded-fleet stage shard count
  bool topology_stage = false;  // --topology: 3-tier network-of-caches stage
  bool adaptive_stage = false;  // --adaptive: shadow-selector replay stage
  std::string policy_name = "size";  // --policy <name>: the main proxy's policy
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--chaos" && i + 1 < argc) {
      chaos_rate = std::atof(argv[++i]);
    } else if (std::string{argv[i]} == "--obs" && i + 1 < argc) {
      obs_dir = argv[++i];
    } else if (std::string{argv[i]} == "--threads" && i + 1 < argc) {
      demo_threads = std::atoi(argv[++i]);
    } else if (std::string{argv[i]} == "--shards" && i + 1 < argc) {
      demo_shards = std::atoi(argv[++i]);
    } else if (std::string{argv[i]} == "--topology") {
      topology_stage = true;
    } else if (std::string{argv[i]} == "--adaptive") {
      adaptive_stage = true;
    } else if (std::string{argv[i]} == "--policy" && i + 1 < argc) {
      policy_name = argv[++i];
    }
  }
  // Make the zoo's names ("gdsf", "slru", "tinylfu", "adaptive", ...)
  // resolvable wherever a policy is configured by string.
  zoo::register_zoo_policies();
  // One recorder observes the whole demo (the main proxy and, with
  // --chaos, the faulted proxy). Harmless when --obs is absent: recording
  // never changes behaviour, and the exports are simply not written.
  ObsRecorder recorder;
  std::cout << "=== 1. Publish documents on two origin servers ===\n";
  OriginServer www{"www.cs.vt.edu"};
  OriginServer media{"media.cs.vt.edu"};
  www.put("/index.html", std::string(3'000, 'h'), 50);
  www.put("/syllabus.html", std::string(8'000, 's'), 60);
  www.put("/logo.gif", std::string(12'000, 'g'), 40);
  media.put("/song1.au", std::string(400'000, 'a'), 10);
  media.put("/song2.au", std::string(350'000, 'b'), 20);
  std::cout << "  www.cs.vt.edu: " << www.document_count() << " documents, "
            << "media.cs.vt.edu: " << media.document_count() << " documents\n\n";

  std::cout << "=== 2. Start a caching proxy (" << policy_name << " policy, 500 kB) ===\n";
  ProxyCache::Config config;
  config.capacity_bytes = 500'000;
  config.policy = policy_name;
  config.revalidate_after = 10 * kSecondsPerMinute;
  std::vector<RawRequest> access_log;  // demo-sized; a real proxy would use
                                       // a file sink or BoundedLogRing
  config.log_sink = ProxyCache::log_to_vector(access_log);
  config.obs = &recorder;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     // Route by authority: the in-process "network".
                     if (request.target.find("media.cs.vt.edu") != std::string::npos) {
                       return media.handle(request, now);
                     }
                     return www.handle(request, now);
                   }};

  const auto get = [](const std::string& url) {
    HttpRequest request;
    request.method = "GET";
    request.target = url;
    return request;
  };

  SimTime now = 1000;
  const char* urls[] = {
      "http://www.cs.vt.edu/index.html",   "http://www.cs.vt.edu/logo.gif",
      "http://media.cs.vt.edu/song1.au",   "http://www.cs.vt.edu/index.html",
      "http://www.cs.vt.edu/syllabus.html", "http://media.cs.vt.edu/song2.au",
      "http://www.cs.vt.edu/index.html",   "http://www.cs.vt.edu/logo.gif",
      "http://media.cs.vt.edu/song1.au",   "http://www.cs.vt.edu/index.html",
  };
  for (const char* url : urls) {
    const HttpResponse response = proxy.handle(get(url), now);
    std::cout << "  " << url << " -> " << response.status << " "
              << *response.headers.get("X-Cache") << " (" << response.body.size()
              << " bytes)\n";
    now += 30;
  }
  std::cout << "  proxy: " << proxy.stats().hits << " hits / " << proxy.stats().requests
            << " requests, " << proxy.stored_bytes() << " bytes cached\n\n";

  std::cout << "=== 3. Edit a document; the proxy revalidates ===\n";
  www.edit("/index.html", std::string(3'100, 'H'), now);
  now += config.revalidate_after + 1;  // force a conditional GET
  const HttpResponse revalidated = proxy.handle(get("http://www.cs.vt.edu/index.html"), now);
  std::cout << "  after edit: " << revalidated.status << " "
            << *revalidated.headers.get("X-Cache") << ", new size "
            << revalidated.body.size() << " (validations: " << proxy.stats().validations
            << ", 304-fresh: " << proxy.stats().validated_fresh << ")\n\n";

  std::cout << "=== 4. The proxy's own access log (common log format) ===\n";
  for (const RawRequest& record : access_log) {
    std::cout << "  " << format_clf_line(record) << '\n';
  }

  std::cout << "\n=== 5. Re-derive the log from a packet capture of the traffic ===\n";
  // Build the same client requests as wire traffic and run the paper's
  // tcpdump -> filter -> common-format-log pipeline.
  std::vector<SynthExchange> exchanges;
  std::int64_t t = 1000;
  for (const RawRequest& record : access_log) {
    HttpRequest request = get(record.url);
    HttpResponse response;
    response.status = record.status;
    response.reason = std::string{reason_phrase(record.status)};
    response.headers.set("Content-Length", std::to_string(record.size));
    response.body = std::string(record.size, 'x');
    SynthExchange exchange;
    exchange.request = request.serialize();
    exchange.response = response.serialize();
    exchange.start_time = t;
    t += 30;
    exchanges.push_back(std::move(exchange));
  }
  SynthOptions options;
  options.reorder_probability = 0.1;   // a real backbone reorders packets
  options.duplicate_probability = 0.05;
  std::vector<RawRequest> recovered;
  HttpExtractor extractor{[&recovered](const HttpTransaction& transaction) {
    recovered.push_back(HttpExtractor::to_raw_request(transaction));
  }};
  const auto segments = synthesize_capture(exchanges, options);
  for (const TcpSegment& segment : segments) extractor.accept(segment);
  extractor.finish();
  std::cout << "  " << segments.size() << " TCP segments -> " << recovered.size()
            << " HTTP transactions recovered (" << extractor.parse_failures()
            << " parse failures)\n\n";

  std::cout << "=== 6. Validate (§1.1) and replay through the simulator ===\n";
  const ValidatedTrace validated = validate(recovered);
  const SimResult replay =
      simulate(validated.trace, 500'000, [] { return make_size(); });
  std::cout << "  replayed " << replay.stats.requests << " valid requests: HR "
            << Table::pct(replay.stats.hit_rate(), 1) << ", WHR "
            << Table::pct(replay.stats.weighted_hit_rate(), 1) << "\n";
  std::cout << "\nEvery layer of the reproduction just ran: HTTP, origin, proxy cache,\n"
               "removal policy, packet capture, reassembly, CLF, validation, simulator.\n";

  if (chaos_rate >= 0.0) {
    std::cout << "\n=== 7. Chaos: the same traffic under a " << chaos_rate
              << " fault plan (--chaos) ===\n";
    // A fresh proxy whose upstream is wrapped in a deterministic FaultPlan:
    // timeouts, 503s, resets, slow and truncated responses, plus per-host
    // outage windows. The resilience layer retries, breaks circuits, serves
    // stale-if-error, and only 502/504s when it holds no copy.
    const FaultPlan plan{FaultSpec::transient_mix(chaos_rate)};
    ProxyCache::Config chaos_config;
    chaos_config.capacity_bytes = 500'000;
    chaos_config.policy = "size";
    chaos_config.revalidate_after = 2 * kSecondsPerMinute;
    chaos_config.obs = &recorder;
    ProxyCache chaos_proxy{chaos_config,
                           plan.wrap([&](const HttpRequest& request, SimTime at) {
                             if (request.target.find("media.cs.vt.edu") != std::string::npos) {
                               return media.handle(request, at);
                             }
                             return www.handle(request, at);
                           })};

    std::uint64_t ok_responses = 0;
    std::uint64_t stale_responses = 0;
    std::uint64_t failed_responses = 0;
    SimTime chaos_now = now;
    for (int i = 0; i < 600; ++i) {
      const HttpResponse response = chaos_proxy.handle(get(urls[i % 10]), chaos_now);
      if (response.status == 502 || response.status == 504) {
        ++failed_responses;
      } else if (response.headers.contains("Warning")) {
        ++stale_responses;  // stale-if-error: served with Warning: 111
      } else {
        ++ok_responses;
      }
      chaos_now += 45;
    }

    const ProxyCache::Stats& stats = chaos_proxy.stats();
    std::cout << "  600 requests: " << ok_responses << " fresh, " << stale_responses
              << " stale-if-error (Warning: 111), " << failed_responses << " failed (502/504)\n";
    // The resilience summary is read back through the metric registry —
    // the same sync-point publication path the exporters use — so the
    // demo exercises satellite coverage: every failure counter must have
    // a registry name (tools/lint.py stats-coverage enforces the list).
    publish_proxy_stats(recorder.registry(), stats);
    const auto metric = [&recorder](const char* name) -> std::uint64_t {
      const Counter* counter = recorder.registry().find_counter(name);
      return counter != nullptr ? counter->value() : 0;
    };
    std::cout << "  resilience (via registry): "
              << metric("wcs_proxy_upstream_failures") << " upstream failures, "
              << metric("wcs_proxy_retries") << " retries, "
              << metric("wcs_proxy_breaker_opens") << " breaker opens, "
              << metric("wcs_proxy_negative_hits") << " negative-cache hits, "
              << metric("wcs_proxy_stale_served") << " stale serves\n";
    std::cout << "  availability " << Table::pct(stats.availability(), 1)
              << " (stale serves masked "
              << (stats.upstream_failures > 0 ? stats.stale_served : 0)
              << " failures); same seed -> same schedule, so this run is reproducible\n";
  }

  if (demo_threads > 0 || demo_shards > 0) {
    const std::uint32_t threads = demo_threads > 0 ? static_cast<std::uint32_t>(demo_threads) : 2;
    const std::uint32_t shards = demo_shards > 0 ? static_cast<std::uint32_t>(demo_shards) : 4;
    std::cout << "\n=== 8. Sharded proxy fleet (--threads " << threads << " --shards " << shards
              << ") ===\n";
    // One ProxyCache + thread-affine synthetic origin per shard, driven by
    // the closed-loop load generator over the BR preset at demo scale.
    // Same contract the tests enforce: for a fixed shard count the merged
    // counters are bit-identical at any thread count, and the end-of-run
    // audit sweeps every shard (routing, accounting, heap invariants).
    WorkloadGenerator generator{WorkloadSpec::preset("BR").scaled(0.02)};
    const GeneratedWorkload fleet_workload = generator.generate();
    ShardedProxy::Config fleet;
    fleet.shards = shards;
    fleet.proxy.policy = "size";
    fleet.proxy.capacity_bytes = fleet_workload.trace.unique_bytes() / 10;
    if (fleet.proxy.capacity_bytes < shards) fleet.proxy.capacity_bytes = 0;  // 0 = infinite
    ShardedProxyTarget target{fleet, fleet_workload.trace.names()};
    TraceSource source{fleet_workload.trace};
    LoadGenConfig loadgen_config;
    loadgen_config.threads = threads;
    loadgen_config.audit.interval = 1;  // full invariant sweep at the sync point
    const auto start = std::chrono::steady_clock::now();
    const LoadGenResult result = run_load(target, source, loadgen_config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const ProxyCache::Stats merged = target.proxy().merged_stats();
    std::cout << "  " << result.requests << " requests in " << Table::num(seconds, 2)
              << " s -> "
              << Table::num(static_cast<double>(result.requests) / seconds / 1e6, 2)
              << " Mreq/s aggregate; HR " << Table::pct(result.hit_rate(), 1) << ", WHR "
              << Table::pct(result.weighted_hit_rate(), 1) << ", " << merged.failed_requests
              << " failed\n";
    Table occupancy_table{"per-shard occupancy"};
    occupancy_table.header({"shard", "requests", "entries", "stored kB", "capacity kB", "fill"});
    const auto occupancy = target.proxy().occupancy();
    for (std::size_t i = 0; i < occupancy.size(); ++i) {
      const ShardedProxy::ShardOccupancy& shard = occupancy[i];
      const double fill = shard.capacity_bytes == 0
                              ? 0.0
                              : static_cast<double>(shard.stored_bytes) /
                                    static_cast<double>(shard.capacity_bytes);
      occupancy_table.row({std::to_string(i), std::to_string(shard.requests),
                           std::to_string(shard.entries),
                           Table::num(static_cast<double>(shard.stored_bytes) / 1e3, 1),
                           Table::num(static_cast<double>(shard.capacity_bytes) / 1e3, 1),
                           Table::pct(fill, 1)});
    }
    occupancy_table.print(std::cout);
    std::cout << "  audited clean at the end-of-run sync point; fixed shard count ->\n"
                 "  identical merged counters at any thread count (DESIGN.md §13)\n";
  }

  if (topology_stage) {
    std::cout << "\n=== 9. Network of caches (--topology) ===\n";
    // The BR preset through a 3-tier hierarchy: 4 URL-routed edge siblings
    // in front of 2 regional caches in front of 1 parent, with a lightly
    // faulted parent downlink so the failover ladder has real work. The
    // replay asserts every tier's audit, the per-cache GET accounting
    // identity and the client-level identity as it goes (DESIGN.md §14).
    WorkloadGenerator topo_generator{WorkloadSpec::preset("BR").scaled(0.02)};
    const GeneratedWorkload topo_workload = topo_generator.generate();
    const std::uint64_t topo_unique = topo_workload.trace.unique_bytes();
    TopologyReplayConfig topo_config;
    topo_config.topology.tiers.resize(3);
    topo_config.topology.tiers[0].label = "edge";
    topo_config.topology.tiers[0].caches = 4;
    topo_config.topology.tiers[0].proxy.capacity_bytes = topo_unique / 40;
    topo_config.topology.tiers[1].label = "regional";
    topo_config.topology.tiers[1].caches = 2;
    topo_config.topology.tiers[1].proxy.capacity_bytes = topo_unique / 10;
    topo_config.topology.tiers[2].label = "parent";
    topo_config.topology.tiers[2].caches = 1;
    topo_config.topology.tiers[2].proxy.capacity_bytes = topo_unique / 5;
    topo_config.topology.tiers[2].downlink = FaultSpec::transient_mix(0.05);
    topo_config.check_interval = 4096;
    if (!obs_dir.empty()) topo_config.obs = &recorder;
    TraceSource topo_source{topo_workload.trace};
    const TopologyReplayResult topo_result = replay_through_topology(topo_source, topo_config);

    Table tier_table{"per-tier accounting (client-facing tier first)"};
    tier_table.header({"tier", "caches", "requests", "HR", "stale served",
                       "breaker opens", "availability"});
    for (std::size_t t = 0; t < topo_result.tiers.size(); ++t) {
      const TierReplayStats& tier = topo_result.tiers[t];
      tier_table.row({tier.label, std::to_string(topo_config.topology.tiers[t].caches),
                      std::to_string(tier.stats.requests), Table::pct(tier.hit_rate(), 1),
                      std::to_string(tier.stats.stale_served),
                      std::to_string(tier.stats.breaker_opens),
                      Table::pct(tier.stats.availability(), 2)});
    }
    tier_table.print(std::cout);
    const CacheTopology::RouterStats& router = topo_result.router;
    std::cout << "  router: " << router.link_failures << " link failures, "
              << router.sibling_failovers << " sibling failovers, " << router.tier_skips
              << " tier skips, " << router.origin_fetches << " origin fetches\n"
              << "  client: HR " << Table::pct(topo_result.client_hit_rate(), 1)
              << ", availability " << Table::pct(topo_result.availability.availability(), 2)
              << " (" << topo_result.availability.failed
              << " failed); audited clean every 4096 requests\n";
  }

  if (adaptive_stage) {
    std::cout << "\n=== 10. Online policy selection (--adaptive) ===\n";
    // The BR preset through the shadow-cache selector: five candidates run
    // as full-stream shadow caches, and every epoch boundary the incumbent
    // defends its seat on shadow hits (DESIGN.md §15). Event-count epochs
    // and hashed sampling keep the whole trajectory deterministic.
    WorkloadGenerator adaptive_generator{WorkloadSpec::preset("BR").scaled(0.05)};
    const GeneratedWorkload adaptive_workload = adaptive_generator.generate();
    SelectorConfig selector_config;
    selector_config.candidates = {
        {"size", [](std::uint64_t s) { return make_size(s); }},
        {"lru", [](std::uint64_t s) { return make_lru(s); }},
        {"gdsf", [](std::uint64_t s) { return make_gdsf(s); }},
        {"slru", [](std::uint64_t s) { return make_slru(s); }},
        {"w-tinylfu", [](std::uint64_t s) { return make_tinylfu(s); }},
    };
    selector_config.sample_rate_log2 = 0;  // full stream, full-size shadows
    selector_config.epoch_events = 1024;   // several decisions at demo scale
    std::vector<std::string> candidate_names;
    for (const SelectorCandidate& candidate : selector_config.candidates) {
      candidate_names.push_back(candidate.name);
    }

    auto selector_owned = std::make_unique<ShadowSelectorPolicy>(std::move(selector_config));
    ShadowSelectorPolicy* selector = selector_owned.get();
    CacheConfig adaptive_cache_config;
    adaptive_cache_config.capacity_bytes = adaptive_workload.trace.unique_bytes() / 20;
    Cache adaptive_cache{adaptive_cache_config, std::move(selector_owned)};
    for (const Request& request : adaptive_workload.trace.requests()) {
      (void)adaptive_cache.access(request);
    }

    Table epoch_table{"epoch-boundary decisions (shadow hits per candidate, this epoch)"};
    std::vector<std::string> header = {"epoch", "events", "choice", "switched"};
    header.insert(header.end(), candidate_names.begin(), candidate_names.end());
    epoch_table.header(header);
    for (const EpochChoice& choice : selector->epoch_log()) {
      std::vector<std::string> row = {std::to_string(choice.epoch),
                                      std::to_string(choice.event_index), choice.chosen,
                                      choice.switched ? "yes" : "-"};
      for (const std::uint64_t hits : choice.shadow_hits) row.push_back(std::to_string(hits));
      epoch_table.row(row);
    }
    epoch_table.print(std::cout);

    const CacheStats& adaptive_stats = adaptive_cache.stats();
    std::cout << "  " << adaptive_stats.requests << " requests: HR "
              << Table::pct(adaptive_stats.hit_rate(), 1) << ", WHR "
              << Table::pct(adaptive_stats.weighted_hit_rate(), 1) << "; "
              << selector->switches() << " switch(es), finished under '"
              << selector->current_name() << "'\n  shadow hit rates:";
    for (std::size_t i = 0; i < selector->candidate_count(); ++i) {
      std::cout << (i == 0 ? " " : ", ") << candidate_names[i] << " "
                << Table::pct(selector->shadow(i).stats().hit_rate(), 1);
    }
    std::cout << "\n  same seed -> same switch points, same victims (DESIGN.md §15)\n";
  }

  if (!obs_dir.empty()) {
    if (chaos_rate < 0.0) {
      // No chaos stage ran: publish the main proxy's counters so the
      // Prometheus export is not empty of proxy metrics.
      publish_proxy_stats(recorder.registry(), proxy.stats());
    }
    const ExportPaths paths = write_all_exports(recorder, obs_dir);
    std::cout << "\nobservability exports (--obs):\n  " << paths.events_jsonl << "\n  "
              << paths.trace_json << "\n  " << paths.metrics_prom << "\n  "
              << paths.series_csv << "\n";
  }
  return 0;
}
