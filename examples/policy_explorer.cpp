// Policy explorer — capacity planning for a campus proxy.
//
// The scenario the paper's introduction motivates: you operate the proxy at
// a department's connection to the campus backbone and must pick a removal
// policy and a disk budget. This tool sweeps policies over any of the five
// calibrated workload models at a chosen cache size.
//
// Usage:
//   policy_explorer [workload] [cache-fraction] [scale]
//   policy_explorer BL 0.10 0.25
//     workload        U | G | C | BR | BL          (default BL)
//     cache-fraction  of MaxNeeded, e.g. 0.10       (default 0.10)
//     scale           workload scale, e.g. 0.25     (default 0.25)
#include <cstdlib>
#include <iostream>

#include "src/sim/experiments.h"
#include "src/util/table.h"
#include "src/workload/report.h"

using namespace wcs;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "BL";
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.10;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;
  if (fraction <= 0.0 || scale <= 0.0) {
    std::cerr << "cache-fraction and scale must be positive\n";
    return 1;
  }

  std::cout << "Generating workload " << name << " at scale " << scale << "...\n";
  const WorkloadSpec spec = WorkloadSpec::preset(name).scaled(scale);
  const GeneratedWorkload generated = WorkloadGenerator{spec}.generate();
  print_report(std::cout, make_report(spec, generated.trace));

  std::cout << "\nSimulating infinite cache (theoretical maximum)...\n";
  const Experiment1Result infinite = run_experiment1(name, generated.trace);
  std::cout << "  MaxNeeded = " << static_cast<double>(infinite.max_needed) / 1e6
            << " MB, max HR = " << Table::pct(infinite.overall_hr, 1)
            << ", max WHR = " << Table::pct(infinite.overall_whr, 1) << "\n\n";

  const auto capacity = fraction_of(infinite.max_needed, fraction);
  std::cout << "Sweeping policies at " << Table::pct(fraction, 0) << " of MaxNeeded ("
            << static_cast<double>(capacity) / 1e6 << " MB)...\n\n";
  const Experiment2Result result =
      run_experiment2_literature(name, generated.trace, infinite, fraction);

  Table table{"policy comparison, workload " + name};
  table.header({"policy", "HR", "% of max HR", "WHR", "% of max WHR"});
  for (const PolicyOutcome& outcome : result.outcomes) {
    table.row({outcome.policy, Table::pct(outcome.hr, 1),
               Table::num(outcome.hr_pct_of_infinite, 1), Table::pct(outcome.whr, 1),
               Table::num(outcome.whr_pct_of_infinite, 1)});
  }
  table.print(std::cout);

  std::cout << "\nReading: to minimize requests reaching origin servers pick the\n"
               "top HR row (SIZE, per the paper); to minimize network bytes pick\n"
               "the top WHR row. \"The choice between the two depends on which\n"
               "resource is the bottleneck\" (Arlitt & Williamson, quoted in the\n"
               "paper's introduction).\n";
  return 0;
}
