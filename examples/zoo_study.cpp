// Policy-zoo study: the modern policies vs the paper's winner, with the
// admission layer measured on the side (ROADMAP's "does SIZE still win?").
//
//   zoo_study [--presets U,G,C,BR,BL] [--fraction 0.10] [--scale f]
//             [--out zoo_out]
//
// For every preset: generate the calibrated workload, take the infinite-
// cache reference (Experiment 1), then fan {SIZE, LRU, GDS, GDSF, SLRU,
// W-TinyLFU, adaptive} and SIZE x {always, size-threshold, doorkeeper,
// doa} admission legs across the shared ParallelRunner
// (src/sim/zoo_study.h). Writes:
//
//   <out>/zoo_policies.csv    one row per (workload, policy)
//   <out>/zoo_admission.csv   one row per (workload, admission filter)
//   <out>/zoo_study.jsonl     one JSON object per preset (both legs)
//
// WCS_SCALE is honoured when --scale is absent (the wcs_zoo_study ctest
// sets it small). Determinism contract: same (presets, fraction, scale) ->
// byte-identical CSV/JSONL regardless of WCS_JOBS.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/zoo_study.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

using namespace wcs;

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream stream{csv};
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  std::string presets_arg = "U,G,C,BR,BL";
  std::string out_dir = "zoo_out";
  double fraction = 0.10;
  double scale = 0.0;  // 0 = WCS_SCALE or 1.0
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--presets" && i + 1 < argc) presets_arg = argv[++i];
    else if (arg == "--out" && i + 1 < argc) out_dir = argv[++i];
    else if (arg == "--fraction" && i + 1 < argc) fraction = std::atof(argv[++i]);
    else if (arg == "--scale" && i + 1 < argc) scale = std::atof(argv[++i]);
    else {
      std::cerr << "usage: zoo_study [--presets U,G,C,BR,BL] [--fraction f]"
                   " [--scale f] [--out dir]\n";
      return 2;
    }
  }
  if (scale <= 0.0) {
    scale = 1.0;
    if (const char* text = std::getenv("WCS_SCALE")) {
      const double value = std::atof(text);
      if (value > 0.0) scale = value;
    }
  }
  if (fraction <= 0.0) {
    std::cerr << "--fraction must be positive\n";
    return 2;
  }

  std::ostringstream policies_csv;
  policies_csv << "workload,policy,hr,whr,hr_pct_of_infinite,whr_pct_of_infinite,"
                  "evictions,dead_on_arrival_evictions\n";
  std::ostringstream admission_csv;
  admission_csv << "workload,admission,hr,whr,insertions,admission_rejects,"
                   "dead_on_arrival_evictions\n";
  std::ostringstream jsonl;

  for (const std::string& name : split_names(presets_arg)) {
    std::cout << "=== workload " << name << ", scale " << scale << ", cache "
              << Table::pct(fraction, 0) << " of MaxNeeded ===\n";
    const WorkloadSpec spec = WorkloadSpec::preset(name).scaled(scale);
    const GeneratedWorkload generated = WorkloadGenerator{spec}.generate();
    const Experiment1Result infinite = run_experiment1(name, generated.trace);
    const ZooStudyResult study =
        run_policy_zoo_study(name, generated.trace, infinite, fraction);

    Table policy_table{"policy zoo, workload " + name};
    policy_table.header({"policy", "HR", "WHR", "% of max HR", "% of max WHR", "DOA evictions"});
    jsonl << "{\"workload\":\"" << name << "\",\"cache_fraction\":"
          << fraction << ",\"capacity_bytes\":" << study.capacity_bytes
          << ",\"policies\":[";
    for (std::size_t i = 0; i < study.outcomes.size(); ++i) {
      const ZooPolicyOutcome& o = study.outcomes[i];
      policy_table.row({o.policy, Table::pct(o.hr, 1), Table::pct(o.whr, 1),
                        Table::num(o.hr_pct_of_infinite, 1),
                        Table::num(o.whr_pct_of_infinite, 1),
                        std::to_string(o.dead_on_arrival_evictions)});
      policies_csv << name << ',' << o.policy << ',' << o.hr << ',' << o.whr << ','
                   << o.hr_pct_of_infinite << ',' << o.whr_pct_of_infinite << ','
                   << o.evictions << ',' << o.dead_on_arrival_evictions << '\n';
      jsonl << (i == 0 ? "" : ",") << "{\"policy\":\"" << o.policy << "\",\"hr\":" << o.hr
            << ",\"whr\":" << o.whr << ",\"evictions\":" << o.evictions
            << ",\"dead_on_arrival_evictions\":" << o.dead_on_arrival_evictions << '}';
    }
    jsonl << "],\"admission\":[";
    Table admission_table{"admission filters on SIZE, workload " + name};
    admission_table.header({"admission", "HR", "WHR", "insertions", "rejects", "DOA evictions"});
    for (std::size_t i = 0; i < study.admissions.size(); ++i) {
      const ZooAdmissionOutcome& a = study.admissions[i];
      admission_table.row({a.admission, Table::pct(a.hr, 1), Table::pct(a.whr, 1),
                           std::to_string(a.insertions), std::to_string(a.admission_rejects),
                           std::to_string(a.dead_on_arrival_evictions)});
      admission_csv << name << ',' << a.admission << ',' << a.hr << ',' << a.whr << ','
                    << a.insertions << ',' << a.admission_rejects << ','
                    << a.dead_on_arrival_evictions << '\n';
      jsonl << (i == 0 ? "" : ",") << "{\"admission\":\"" << a.admission
            << "\",\"hr\":" << a.hr << ",\"whr\":" << a.whr
            << ",\"insertions\":" << a.insertions
            << ",\"admission_rejects\":" << a.admission_rejects
            << ",\"dead_on_arrival_evictions\":" << a.dead_on_arrival_evictions << '}';
    }
    jsonl << "]}\n";
    policy_table.print(std::cout);
    admission_table.print(std::cout);
    std::cout << '\n';
  }

  std::filesystem::create_directories(out_dir);
  const auto write_file = [&](const std::string& file, const std::string& body) {
    std::ofstream out{out_dir + "/" + file, std::ios::binary};
    out << body;
    if (!out) {
      std::cerr << "failed to write " << out_dir << "/" << file << '\n';
      std::exit(1);
    }
  };
  write_file("zoo_policies.csv", policies_csv.str());
  write_file("zoo_admission.csv", admission_csv.str());
  write_file("zoo_study.jsonl", jsonl.str());
  std::cout << "wrote " << out_dir << "/zoo_policies.csv, zoo_admission.csv, zoo_study.jsonl\n";
  return 0;
}
