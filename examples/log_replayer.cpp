// Log replayer — answer "what cache should I buy?" from your own log.
//
// Reads a CERN/NCSA common-log-format file, validates it (§1.1), then
// replays it through every literature policy at the disk budgets you name,
// printing HR/WHR per (policy, size) — the operational decision table the
// paper's methodology supports.
//
// Usage:
//   log_replayer <access.log | --demo> [sizeMB ...]
//   log_replayer access.log 16 64 256
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/sim/simulator.h"
#include "src/trace/clf.h"
#include "src/trace/squid.h"
#include "src/trace/validate.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

using namespace wcs;

namespace {

Trace load(const std::string& source) {
  if (source == "--demo") {
    std::cout << "(--demo: generating workload BL at scale 0.2)\n";
    return WorkloadGenerator{WorkloadSpec::preset("BL").scaled(0.2)}.generate().trace;
  }
  std::ifstream in{source};
  if (!in) {
    std::cerr << "cannot open " << source << '\n';
    std::exit(2);
  }
  // Auto-detect CLF vs Squid native format from the first line.
  std::string first_line;
  std::getline(in, first_line);
  in.seekg(0);
  const std::string_view format = detect_log_format(first_line);
  std::vector<RawRequest> records;
  std::size_t malformed = 0;
  if (format == "squid") {
    SquidReadResult parsed = read_squid(in);
    records = std::move(parsed.requests);
    malformed = parsed.malformed_lines;
  } else {
    ClfReadResult parsed = read_clf(in);
    records = std::move(parsed.requests);
    malformed = parsed.malformed_lines;
  }
  std::cout << "parsed " << records.size() << " records (" << format << " format, "
            << malformed << " malformed skipped)\n";
  ValidatedTrace validated = validate(records);
  std::cout << "kept " << validated.stats.kept << " valid GET/200 requests\n";
  return std::move(validated.trace);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: log_replayer <common-format-log | --demo> [sizeMB ...]\n";
    return 2;
  }
  const Trace trace = load(argv[1]);
  if (trace.empty()) {
    std::cerr << "no valid requests\n";
    return 1;
  }

  std::vector<std::uint64_t> sizes_mb;
  for (int i = 2; i < argc; ++i) {
    const auto mb = std::strtoull(argv[i], nullptr, 10);
    if (mb > 0) sizes_mb.push_back(mb);
  }
  if (sizes_mb.empty()) sizes_mb = {16, 64, 256};

  const SimResult infinite = simulate_infinite(trace);
  std::cout << "\ninfinite cache: HR " << Table::pct(infinite.daily.overall_hr(), 1)
            << ", WHR " << Table::pct(infinite.daily.overall_whr(), 1)
            << ", footprint " << static_cast<double>(infinite.max_used_bytes) / 1e6
            << " MB\n\n";

  struct Entry {
    const char* name;
    PolicyFactory factory;
  };
  const std::vector<Entry> policies = {
      {"SIZE", [] { return make_size(); }},
      {"LRU-MIN", [] { return make_lru_min(); }},
      {"LRU", [] { return make_lru(); }},
      {"LFU", [] { return make_lfu(); }},
      {"FIFO", [] { return make_fifo(); }},
      {"Hyper-G", [] { return make_hyper_g(); }},
      {"Pitkow/Recker", [] { return make_pitkow_recker(); }},
  };

  for (const std::uint64_t mb : sizes_mb) {
    Table table{"cache = " + std::to_string(mb) + " MB"};
    table.header({"policy", "HR", "WHR", "% of max HR"});
    for (const Entry& entry : policies) {
      const SimResult sim = simulate(trace, mb * 1'000'000, entry.factory);
      const double hr = sim.daily.overall_hr();
      table.row({entry.name, Table::pct(hr, 1), Table::pct(sim.daily.overall_whr(), 1),
                 infinite.daily.overall_hr() > 0
                     ? Table::num(100.0 * hr / infinite.daily.overall_hr(), 1)
                     : "-"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
