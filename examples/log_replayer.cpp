// Log replayer — answer "what cache should I buy?" from your own log.
//
// Streams a CERN/NCSA common-log-format or Squid access log straight from
// disk (LogStreamSource parses, validates per §1.1, and interns line by
// line), replaying it through every literature policy at the disk budgets
// you name and printing HR/WHR per (policy, size) — the operational
// decision table the paper's methodology supports.
//
// Because the trace is never materialized, memory stays O(unique URLs)
// however long the log is: each simulation pass simply re-opens the file
// (--stream architecture; see DESIGN.md "Streaming request sources").
//
// Usage:
//   log_replayer <access.log | --demo> [sizeMB ...]
//   log_replayer access.log 16 64 256
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>

#include "src/sim/simulator.h"
#include "src/trace/log_source.h"
#include "src/util/table.h"
#include "src/workload/spec.h"
#include "src/workload/stream.h"

using namespace wcs;

namespace {

// Streaming sources are single pass, so every simulation run gets a fresh
// source: re-open the file, or re-generate the synthetic stream.
using SourceFactory = std::function<std::unique_ptr<RequestSource>()>;

SourceFactory make_factory(const std::string& arg) {
  if (arg == "--demo") {
    std::cout << "(--demo: streaming workload BL at scale 0.2)\n";
    return [] {
      return std::make_unique<WorkloadStream>(WorkloadSpec::preset("BL").scaled(0.2));
    };
  }
  // Fail fast on an unreadable path before the first pass.
  if (!std::ifstream{arg}) {
    std::cerr << "cannot open " << arg << '\n';
    std::exit(2);
  }
  return [arg]() -> std::unique_ptr<RequestSource> { return LogStreamSource::open(arg); };
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: log_replayer <common-format-log | --demo> [sizeMB ...]\n"
                 "  The log is streamed from disk (never fully loaded), so any\n"
                 "  length replays in O(unique URLs) memory; each pass re-reads\n"
                 "  the file.\n";
    return 2;
  }
  const SourceFactory make_source = make_factory(argv[1]);

  std::vector<std::uint64_t> sizes_mb;
  for (int i = 2; i < argc; ++i) {
    const auto mb = std::strtoull(argv[i], nullptr, 10);
    if (mb > 0) sizes_mb.push_back(mb);
  }
  if (sizes_mb.empty()) sizes_mb = {16, 64, 256};

  // First pass doubles as the parse/validation report.
  std::unique_ptr<RequestSource> first = make_source();
  const SimResult infinite = simulate_infinite(*first);
  if (auto* log = dynamic_cast<LogStreamSource*>(first.get())) {
    std::cout << "streamed " << (log->format() == LogStreamSource::Format::kSquid
                                     ? "squid"
                                     : "clf")
              << " log: kept " << log->validation().kept << " valid GET/200 requests ("
              << log->malformed_lines() << " malformed lines skipped)\n";
  } else {
    std::cout << "streamed " << infinite.footprint.requests << " synthetic requests\n";
  }
  if (infinite.footprint.requests == 0) {
    std::cerr << "no valid requests\n";
    return 1;
  }
  std::cout << "source kept " << static_cast<double>(first->resident_bytes()) / 1e6
            << " MB resident while streaming\n";
  first.reset();

  std::cout << "\ninfinite cache: HR " << Table::pct(infinite.daily.overall_hr(), 1)
            << ", WHR " << Table::pct(infinite.daily.overall_whr(), 1)
            << ", footprint " << static_cast<double>(infinite.max_used_bytes) / 1e6
            << " MB\n\n";

  struct Entry {
    const char* name;
    PolicyFactory factory;
  };
  const std::vector<Entry> policies = {
      {"SIZE", [] { return make_size(); }},
      {"LRU-MIN", [] { return make_lru_min(); }},
      {"LRU", [] { return make_lru(); }},
      {"LFU", [] { return make_lfu(); }},
      {"FIFO", [] { return make_fifo(); }},
      {"Hyper-G", [] { return make_hyper_g(); }},
      {"Pitkow/Recker", [] { return make_pitkow_recker(); }},
  };

  for (const std::uint64_t mb : sizes_mb) {
    Table table{"cache = " + std::to_string(mb) + " MB"};
    table.header({"policy", "HR", "WHR", "% of max HR"});
    for (const Entry& entry : policies) {
      std::unique_ptr<RequestSource> source = make_source();
      const SimResult sim = simulate(*source, mb * 1'000'000, entry.factory);
      const double hr = sim.daily.overall_hr();
      table.row({entry.name, Table::pct(hr, 1), Table::pct(sim.daily.overall_whr(), 1),
                 infinite.daily.overall_hr() > 0
                     ? Table::num(100.0 * hr / infinite.daily.overall_hr(), 1)
                     : "-"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
