// Quickstart: the smallest useful tour of the library.
//
//   1. Build a finite cache with the paper's winning policy (SIZE).
//   2. Feed it a handful of requests and watch hits, misses and evictions.
//   3. Swap in LRU and compare on the same request stream.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "src/core/cache.h"
#include "src/core/policy.h"

using namespace wcs;

namespace {

struct Access {
  SimTime time;
  UrlId url;
  std::uint64_t size;
  const char* what;
};

// A tiny day of traffic: two popular small pages, one big video.
constexpr Access kTraffic[] = {
    {100, 1, 4'000, "index.html"},  {160, 2, 9'000, "logo.gif"},
    {220, 3, 600'000, "talk.mpg"},  {300, 1, 4'000, "index.html"},
    {350, 2, 9'000, "logo.gif"},    {420, 1, 4'000, "index.html"},
    {480, 3, 600'000, "talk.mpg"},  {550, 4, 7'000, "news.html"},
    {610, 1, 4'000, "index.html"},  {700, 2, 9'000, "logo.gif"},
};

void run(const char* label, std::unique_ptr<RemovalPolicy> policy) {
  CacheConfig config;
  config.capacity_bytes = 610'000;  // fits the video OR the page set, not both
  Cache cache{config, std::move(policy)};

  std::cout << "--- " << label << " ---\n";
  for (const Access& access : kTraffic) {
    const AccessResult result = cache.access(access.time, access.url, access.size);
    std::cout << "  t=" << access.time << "  " << access.what << "  "
              << (result.hit ? "HIT " : "miss")
              << (result.evictions > 0
                      ? "  (evicted " + std::to_string(result.evictions) + ")"
                      : "")
              << '\n';
  }
  const CacheStats& stats = cache.stats();
  std::cout << "  hit rate " << stats.hit_rate() * 100 << "%, weighted hit rate "
            << stats.weighted_hit_rate() * 100 << "%, " << stats.evictions
            << " evictions\n\n";
}

}  // namespace

int main() {
  std::cout << "webcachesim quickstart — SIZE vs LRU on the same traffic\n\n";
  // The paper's result in miniature: SIZE sacrifices the one big document
  // and keeps every small page hot; LRU keeps whatever was touched last
  // and loses small-page hits each time the video rolls through.
  run("SIZE (paper's winner)", make_size());
  run("LRU", make_lru());
  std::cout << "Try: make_policy_by_name(\"lru-min\"), make_pitkow_recker(), or any\n"
               "primary/secondary key combination via make_sorted_policy().\n";
  return 0;
}
