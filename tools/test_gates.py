#!/usr/bin/env python3
"""Self-tests for the perf and obs gates (ctest ``wcs_gate_selftest``).

tools/check_perf.py and tools/check_obs.py gate every CI run, so they get
the same treatment lint and the analyzer get: checked-in fixtures under
tools/testdata/gates/ proving each gate *passes compliant input* and
*rejects each class of broken input* with the documented exit code
(0 clean, 1 findings, 2 usage/parse error).

check_perf.py: a healthy measurement passes; a regressed one trips every
floor (including the parallel-speedup and flat-vs-legacy speedup floors)
and both ceilings; the --tolerance slack admits a borderline value at the
default 30% and rejects it at 0%; a single-core measurement gets its
parallel-speedup check skipped with the reason recorded in the --report
JSON; a missing input and a floorless baseline both exit 2 (the gate
never passes vacuously).

check_obs.py: a minimal valid export of all four formats round-trips; a
broken export is rejected with one problem line per defect (unknown event
kind, non-integer timestamp, span without 'dur', sample without a TYPE
header, hits > requests); bad usage exits 2.

Both gates read sys.argv and keep module-level state, so they run as
subprocesses — which also exercises the exact entry points ctest and CI
invoke. Exit 0 when all checks pass; 1 otherwise, one line per failure.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
FIXTURES = TOOLS / "testdata" / "gates"
PERF = FIXTURES / "perf"

failures: list[str] = []


def fail(message: str) -> None:
    failures.append(message)


def run(script: str, *args: str) -> tuple[int, str]:
    result = subprocess.run(
        [sys.executable, str(TOOLS / script), *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return result.returncode, result.stdout


def expect(label: str, script: str, args: list[str], status: int,
           contains: list[str] | None = None) -> None:
    got, out = run(script, *args)
    if got != status:
        fail(f"{label}: expected exit {status}, got {got}; output: {out!r}")
        return
    for needle in contains or []:
        if needle not in out:
            fail(f"{label}: output lacks {needle!r}; output: {out!r}")


def main() -> int:
    baseline = str(PERF / "baseline.json")

    # --- check_perf.py ---------------------------------------------------
    expect("perf good", "check_perf.py",
           [str(PERF / "measured_good.json"), baseline], 0,
           ["metric(s) at or above their floors"])
    expect("perf regressed", "check_perf.py",
           [str(PERF / "measured_bad.json"), baseline], 1,
           ["grid.serial_requests_per_sec",
            "grid.parallel_speedup",
            "sharded.speedup_at_4_threads",
            "micro.zipf.lru.requests_per_sec",
            "micro.zipf.lru.speedup_vs_legacy",
            "zoo.zipf.gdsf.requests_per_sec",
            "streaming.resident_ratio",
            "faults.overhead_ratio",
            "8/9 metric(s) below floor"])
    # The tolerance slack: 800k against a 1M floor (and a 1.9x speedup
    # against a 2.0x floor) clears the default 30% limit but not a
    # zero-tolerance run. This fixture also reports hardware_threads == 1,
    # so the parallel-speedup floor must be skipped, not failed — and the
    # sharded 4-thread scaling floor likewise (it needs >= 4 threads).
    expect("perf slack admitted", "check_perf.py",
           [str(PERF / "measured_slack.json"), baseline], 0,
           ["skip grid.parallel_speedup",
            "skip sharded.speedup_at_4_threads",
            "(2 skipped)"])
    expect("perf slack rejected at --tolerance 0", "check_perf.py",
           [str(PERF / "measured_slack.json"), baseline, "--tolerance", "0"], 1,
           ["grid.serial_requests_per_sec",
            "micro.zipf.lru.speedup_vs_legacy"])

    # --report: every check recorded, the single-core skip annotated with
    # its reason.
    report_path = PERF / "report_tmp.json"
    try:
        expect("perf report written", "check_perf.py",
               [str(PERF / "measured_slack.json"), baseline,
                "--report", str(report_path)], 0)
        try:
            report = json.loads(report_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            fail(f"perf report unreadable: {error}")
            report = {}
        if report.get("schema") != "wcs-perf-report-v1":
            fail(f"perf report schema wrong: {report.get('schema')!r}")
        skipped = report.get("skipped", [])
        for metric in ("grid.parallel_speedup", "sharded.speedup_at_4_threads"):
            if not any(entry.get("metric") == metric
                       and "hardware_threads" in entry.get("reason", "")
                       for entry in skipped):
                fail(f"perf report lacks the annotated skip for {metric}: "
                     f"{skipped!r}")
        metrics = {entry.get("metric") for entry in report.get("results", [])}
        for expected in ("grid.serial_requests_per_sec",
                         "micro.zipf.lru.speedup_vs_legacy",
                         "streaming.resident_ratio"):
            if expected not in metrics:
                fail(f"perf report lacks result for {expected}")
    finally:
        report_path.unlink(missing_ok=True)
    expect("perf missing input", "check_perf.py",
           [str(PERF / "no_such_file.json"), baseline], 2)
    expect("perf floorless baseline", "check_perf.py",
           [str(PERF / "measured_good.json"), str(PERF / "empty_baseline.json")],
           2, ["no metrics checked"])

    # --- check_obs.py ----------------------------------------------------
    expect("obs good export", "check_obs.py",
           [str(FIXTURES / "obs_good")], 0, ["0 problem(s)"])
    expect("obs broken export", "check_obs.py",
           [str(FIXTURES / "obs_bad")], 1,
           ["unknown kind 'bogus_kind'",
            "missing integer 't'",
            "complete span without 'dur'",
            "no 'M' records",
            "has no TYPE header",
            "missing resilience gauge wcs_proxy_negative_cache_entries",
            "wcs_proxy_breaker_open_hosts: TYPE counter, expected gauge",
            "hits > requests"])
    expect("obs usage error", "check_obs.py", [], 2)

    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"test_gates: {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
