#!/usr/bin/env python3
"""Self-tests for tools/wcs_analyze.py (ctest ``wcs_analyze_selftest``).

Each directory under tools/testdata/analyze/ is a miniature repo root.
For the rule fixtures the contract mirrors tools/test_lint.py: the mapped
rule must fire at every path containing ``bad``, and nothing may fire
anywhere else (each fixture plants the banned construct in an allowed
location too — src/obs/ for wall clocks, src/util/rng.cpp for engines, a
.cpp file for the obs recorder seam, ...).

Three fixtures exercise the surrounding machinery instead of a rule:

  * ``allowlist_hold``  — a finding suppressed by the fixture's own
    allowlist.json must yield a clean exit with suppressed=1, and the same
    tree WITHOUT the allowlist must fail (proving suppression, not
    absence);
  * ``stale_allowlist`` — an entry matching nothing and an entry without a
    justification are themselves findings;
  * ``clean``           — a compliant tree analyzes silent.

Fixture runs pin ``--engine tokens``: the degraded engine is what
executes in environments without libclang (this container included), so
it is the behavior the gate must vouch for everywhere. When clang.cindex
*is* importable (CI's analyze job installs python3-clang and therefore
runs the libclang engine on the real tree), ``check_libclang_engine``
additionally builds a dependency-free synthetic TU and asserts the AST
engine fires the semantic rules with messages naming the same entities
the token engine names — the contract that keeps allowlist ``contains``
entries valid under either engine. Completeness is checked both ways
against wcs_analyze.RULE_NAMES. Exit 0 when everything passes; 1
otherwise, one line per failure.
"""

from __future__ import annotations

import io
import json
import re
import sys
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import wcs_analyze  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "testdata" / "analyze"
FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\] ")

# fixture directory -> rule expected to fire at its bad-named paths.
# obs_seam is a scope probe of include-layering, hence the shared target.
FIXTURE_RULES = {
    "wall_clock": "wall-clock",
    "unordered_iteration": "unordered-iteration",
    "rng_discipline": "rng-discipline",
    "include_layering": "include-layering",
    "obs_seam": "include-layering",
    "mutex_annotation": "mutex-annotation",
    "tsa_escape": "tsa-escape",
}
SPECIAL_FIXTURES = {"allowlist_hold", "stale_allowlist", "clean"}

failures: list[str] = []


def fail(message: str) -> None:
    failures.append(message)


def run_analyze(root: Path, *extra: str) -> tuple[int, list[tuple[str, str]], str]:
    out = io.StringIO()
    with redirect_stdout(out):
        status = wcs_analyze.main([str(root), "--engine", "tokens", *extra])
    findings = []
    for line in out.getvalue().splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.append((match.group("rule"), Path(match.group("path")).as_posix()))
    return status, findings, out.getvalue()


def check_rule_fixture(fixture: Path, rule: str) -> None:
    status, findings, _ = run_analyze(fixture)
    bad_paths = sorted(
        p.relative_to(fixture).as_posix()
        for p in fixture.rglob("*")
        if p.is_file() and "bad" in p.name)

    if status != 1:
        fail(f"{fixture.name}: expected exit 1, got {status}")
    if not bad_paths:
        fail(f"{fixture.name}: fixture defines no bad file")

    fired_paths = {path for r, path in findings if r == rule}
    for bad in bad_paths:
        if bad not in fired_paths:
            fail(f"{fixture.name}: [{rule}] did not fire at {bad} "
                 f"(findings: {findings})")
    for r, path in findings:
        if path not in bad_paths:
            fail(f"{fixture.name}: unexpected [{r}] at {path} — "
                 "scope or exemption regressed")


def check_allowlist_hold(fixture: Path) -> None:
    allowlist = fixture / "allowlist.json"
    status, findings, out = run_analyze(fixture, "--allowlist", str(allowlist))
    if status != 0 or findings:
        fail(f"allowlist_hold: expected a clean suppressed run, got "
             f"exit {status} findings {findings}")
    if "suppressed=1" not in out:
        fail(f"allowlist_hold: summary does not report suppressed=1: {out!r}")
    # The same tree without the allowlist must fail — the suppression is
    # doing work, the finding is not simply absent.
    status, findings, _ = run_analyze(fixture)
    if status != 1 or ("wall-clock", "src/sim/held_clock.cpp") not in findings:
        fail(f"allowlist_hold: bare run should fire wall-clock, got "
             f"exit {status} findings {findings}")


def check_stale_allowlist(fixture: Path) -> None:
    allowlist = fixture / "allowlist.json"
    status, findings, _ = run_analyze(fixture, "--allowlist", str(allowlist))
    stale = [f for f in findings if f[0] == "stale-allowlist"]
    if status != 1 or len(stale) != 2:
        fail(f"stale_allowlist: expected exit 1 with 2 stale-allowlist "
             f"findings (unmatched entry + bare justification), got "
             f"exit {status} findings {findings}")


def check_clean(fixture: Path) -> None:
    status, findings, _ = run_analyze(fixture)
    if status != 0 or findings:
        fail(f"clean: expected a silent run, got exit {status} "
             f"findings {findings}")


def check_outputs() -> None:
    # --json: the machine-readable report parses and carries the contract
    # fields CI consumes.
    out = io.StringIO()
    with redirect_stdout(out):
        status = wcs_analyze.main(
            [str(FIXTURES / "wall_clock"), "--engine", "tokens", "--json", "-"])
    text = out.getvalue()
    start, end = text.index("{"), text.rindex("}") + 1
    report = json.loads(text[start:end])
    if status != 1 or report["tool"] != "wcs_analyze":
        fail(f"--json: bad status/tool ({status}, {report.get('tool')})")
    if report["engine"] != "tokens" or report["degraded"] is not True:
        fail(f"--json: degraded token engine not reported: {report}")
    if not report["findings"] or report["findings"][0]["rule"] != "wall-clock":
        fail(f"--json: findings missing from report: {report['findings']}")
    for key in ("files_checked", "suppressed", "allowlist"):
        if key not in report:
            fail(f"--json: report lacks '{key}'")

    # --fix-suggestions: actionable edits print under the finding.
    _, _, out = run_analyze(FIXTURES / "mutex_annotation", "--fix-suggestions")
    if "fix: " not in out:
        fail(f"--fix-suggestions: no 'fix:' line in output: {out!r}")

    # --github: CI annotations use the workflow-command syntax.
    _, _, out = run_analyze(FIXTURES / "wall_clock", "--github")
    if "::error file=src/sim/bad_clock.cpp," not in out:
        fail(f"--github: no workflow-command annotation in output: {out!r}")


LIBCLANG_TU = """\
// Synthetic TU: no system includes, so the parse succeeds on any libclang
// install (python3-clang alone does not guarantee stdlib headers).
namespace std {
template <class K, class V> struct unordered_map {
  struct value_type { K first; V second; };
  value_type* begin();
  value_type* end();
};
namespace chrono {
struct system_clock { static long now(); };
}  // namespace chrono
}  // namespace std

namespace wcs {
void tick() {
  std::unordered_map<int, int> counts;
  for (auto& kv : counts) { (void)kv; }
  (void)std::chrono::system_clock::now();
}
}  // namespace wcs
"""


def check_libclang_engine() -> None:
    """Engine-divergence guard for the AST engine CI actually runs.

    The key contract: findings carry messages naming the same entities the
    token engine names (the iterated variable for unordered-iteration), so
    allowlist 'contains' entries written against one engine match under
    the other. Skipped with a note when clang.cindex is unavailable; CI's
    analyze job installs python3-clang, so it runs there.
    """
    try:
        from clang import cindex
        cindex.Index.create()
    except Exception as error:
        print(f"test_analyze: note: libclang unavailable ({error}); "
              "AST-engine checks skipped (CI's analyze job runs them)")
        return

    import tempfile
    with tempfile.TemporaryDirectory(prefix="wcs_analyze_ast_") as tmp:
        root = Path(tmp)
        bad = root / "src" / "sim" / "bad_ast.cpp"
        bad.parent.mkdir(parents=True)
        bad.write_text(LIBCLANG_TU)

        out = io.StringIO()
        with redirect_stdout(out):
            status = wcs_analyze.main(
                [str(root), "--engine", "libclang", "--json", "-"])
        text = out.getvalue()
        report = json.loads(text[text.index("{"):text.rindex("}") + 1])
        if status != 1 or report["engine"] != "libclang":
            fail(f"libclang: expected exit 1 under the AST engine, got "
                 f"exit {status} engine={report.get('engine')}")
            return
        if report["degraded_files"]:
            fail(f"libclang: synthetic TU degraded to tokens "
                 f"({report['degraded_files']}) — the AST path went untested")
            return
        by_rule = {}
        for finding in report["findings"]:
            by_rule.setdefault(finding["rule"], []).append(finding)
        unordered = by_rule.get("unordered-iteration", [])
        if not unordered:
            fail(f"libclang: [unordered-iteration] did not fire on the "
                 f"synthetic TU: {report['findings']}")
        elif not any("'counts'" in f["message"] for f in unordered):
            fail("libclang: [unordered-iteration] message does not name the "
                 "iterated variable 'counts' — allowlist 'contains' entries "
                 "written against the token engine will not match: "
                 f"{[f['message'] for f in unordered]}")
        wall = by_rule.get("wall-clock", [])
        if not any("system_clock" in f["message"] for f in wall):
            fail(f"libclang: [wall-clock] did not fire on the synthetic "
                 f"system_clock::now() call: {report['findings']}")


def main() -> int:
    fixtures = sorted(d for d in FIXTURES.iterdir() if d.is_dir())
    if not fixtures:
        print(f"test_analyze: no fixtures under {FIXTURES}", file=sys.stderr)
        return 1

    for fixture in fixtures:
        if fixture.name in FIXTURE_RULES:
            check_rule_fixture(fixture, FIXTURE_RULES[fixture.name])
        elif fixture.name == "allowlist_hold":
            check_allowlist_hold(fixture)
        elif fixture.name == "stale_allowlist":
            check_stale_allowlist(fixture)
        elif fixture.name == "clean":
            check_clean(fixture)
        else:
            fail(f"fixture directory '{fixture.name}' is not mapped in "
                 "FIXTURE_RULES or SPECIAL_FIXTURES")

    check_outputs()
    check_libclang_engine()

    # Completeness both ways: every emitted rule has a firing fixture
    # (stale-allowlist is covered by its special fixture), and the mapping
    # names only real rules.
    covered = set(FIXTURE_RULES.values()) | {"stale-allowlist"}
    for rule in wcs_analyze.RULE_NAMES:
        if rule not in covered:
            fail(f"rule [{rule}] has no fixture under testdata/analyze/")
    for rule in sorted(covered - set(wcs_analyze.RULE_NAMES)):
        fail(f"fixture mapping names unknown rule [{rule}]")

    # Empty-tree guard (exit 2) stays intact.
    status, _, _ = run_analyze(FIXTURES / "clean" / "src" / "util")
    if status != 2:
        fail(f"empty tree: expected exit 2, got {status}")

    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"test_analyze: {len(fixtures)} fixture(s), {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
