// Fixture: this rng finding is matched by the allowlist entry whose
// justification is empty — the suppression holds, but the bare entry is
// itself a finding.
#include <random>

namespace wcs {

unsigned held_draw() {
  std::random_device device;
  return device();
}

}  // namespace wcs
