// Fixture: a compliant file — the findings in this fixture come from the
// allowlist itself (stale entry + missing justification).
namespace wcs {
int forty_two() { return 42; }
}  // namespace wcs
