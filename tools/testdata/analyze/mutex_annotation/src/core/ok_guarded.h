// Fixture: the compliant shape — wcs::Mutex with guarded state and a
// capability contract — must not fire.
#pragma once

#include "src/util/thread_annotations.h"

namespace wcs {

class Guarded {
 public:
  void poke() WCS_EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  int value_ WCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace wcs
