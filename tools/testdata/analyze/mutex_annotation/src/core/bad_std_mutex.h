// Fixture: a raw std::mutex member is invisible to Clang TSA and must
// fire (suggesting wcs::Mutex).
#pragma once

#include <mutex>

namespace wcs {

class RawLocker {
 public:
  void poke();

 private:
  std::mutex mutex_;
  int value_ = 0;
};

}  // namespace wcs
