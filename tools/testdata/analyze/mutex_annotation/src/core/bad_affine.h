// Fixture: WCS_THREAD_AFFINE declares "single-owner, no lock by design";
// a mutex member contradicts the marker and must fire.
#pragma once

#include "src/util/thread_annotations.h"

namespace wcs {

class WCS_THREAD_AFFINE Confused {
 public:
  void poke() WCS_EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  int value_ = 0;
};

}  // namespace wcs
