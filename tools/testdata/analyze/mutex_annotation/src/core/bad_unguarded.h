// Fixture: a wcs::Mutex member with no WCS_GUARDED_BY user and no
// WCS_REQUIRES/WCS_EXCLUDES contract protects nothing the analysis can
// see — must fire.
#pragma once

#include "src/util/thread_annotations.h"

namespace wcs {

class Unguarded {
 public:
  void poke();

 private:
  Mutex mutex_;
  int value_ = 0;
};

}  // namespace wcs
