// Fixture: src/util/rng.cpp is the rule's home — engines live here and
// must not fire.
#include <random>

namespace wcs {

unsigned long long seed_stream(unsigned long long seed) {
  std::mt19937_64 engine{seed};
  return engine();
}

}  // namespace wcs
