// Fixture: raw randomness outside src/util/rng.* must fire.
#include <random>

namespace wcs {

unsigned draw() {
  std::random_device device;
  return device();
}

}  // namespace wcs
