// Fixture: an escape with a justification comment on the preceding line
// must not fire.
#include "src/util/thread_annotations.h"

namespace wcs {

int racy_read();

// Lock-free fast path: the counter is monotonic and a stale read only
// delays a flush — the analysis cannot model the relaxed-atomic protocol.
int peek() WCS_NO_THREAD_SAFETY_ANALYSIS { return racy_read(); }

}  // namespace wcs
