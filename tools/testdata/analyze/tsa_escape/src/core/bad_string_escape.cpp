// Fixture: a "//" inside a string literal (here a URL) on the preceding
// line is not a justification comment and must still fire.
#include "src/util/thread_annotations.h"

namespace wcs {

int racy_read();

const char* kTsaDocUrl = "https://example.com/tsa-escape-policy";
int peek_documented() WCS_NO_THREAD_SAFETY_ANALYSIS { return racy_read(); }

}  // namespace wcs
