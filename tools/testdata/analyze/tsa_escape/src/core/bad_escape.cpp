// Fixture: the escape hatch without a justification must fire.
#include "src/util/thread_annotations.h"

namespace wcs {

int racy_read();

int peek() WCS_NO_THREAD_SAFETY_ANALYSIS { return racy_read(); }

}  // namespace wcs
