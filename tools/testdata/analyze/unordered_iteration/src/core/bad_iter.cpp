// Fixture: range-for over an unordered container feeding output.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace wcs {

void dump_counts() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  for (const auto& [key, value] : counts) {
    std::printf("%s=%d\n", key.c_str(), value);
  }
}

}  // namespace wcs
