// Fixture: iterating std::map is deterministic and must not fire; lookups
// (not iteration) into an unordered map are also fine.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

namespace wcs {

void dump_sorted() {
  std::map<std::string, int> counts;
  std::unordered_map<std::string, int> index;
  counts["a"] = 1;
  index["a"] = 1;
  for (const auto& [key, value] : counts) {
    std::printf("%s=%d\n", key.c_str(), value + index.at(key));
  }
}

}  // namespace wcs
