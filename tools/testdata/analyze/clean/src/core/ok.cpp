// Fixture: a compliant tree — deterministic iteration, annotated lock,
// no wall clocks, no raw randomness. The analyzer must stay silent.
#include <map>
#include <string>

#include "src/util/thread_annotations.h"

namespace wcs {

class CleanCounter {
 public:
  void bump(const std::string& key) WCS_EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  std::map<std::string, int> counts_ WCS_GUARDED_BY(mutex_);
};

}  // namespace wcs
