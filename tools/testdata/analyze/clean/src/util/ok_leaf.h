// Fixture: leaf-layer helper with no src/ imports.
#pragma once

namespace wcs {
inline int doubled(int value) { return value * 2; }
}  // namespace wcs
