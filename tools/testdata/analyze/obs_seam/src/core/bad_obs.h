// Fixture: pulling the obs recorder from a *header* leaks the obs
// dependency to every includer — only .cpp files may use the seam.
#pragma once

#include "src/obs/recorder.h"

namespace wcs {
struct Instrumented {};
}  // namespace wcs
