// Fixture: the sanctioned seam — src/obs/recorder.h from an
// implementation file — must not fire.
#include "src/obs/recorder.h"

namespace wcs {
void touch_recorder() {}
}  // namespace wcs
