// Fixture: this wall-clock read is suppressed by the fixture's
// allowlist.json — the run must exit clean with suppressed=1.
#include <chrono>

namespace wcs {

long long held_stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace wcs
