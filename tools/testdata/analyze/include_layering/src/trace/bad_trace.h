// Fixture: trace may import only util — including core is a layering
// violation (and closes the core <-> trace cycle).
#pragma once

#include "src/core/bad_core.h"

namespace wcs {
struct TraceThing {};
}  // namespace wcs
