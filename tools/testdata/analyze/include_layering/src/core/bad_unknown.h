// Fixture: including a module absent from the layering table must fire —
// new modules are added to ALLOWED_IMPORTS deliberately, not by accident.
#pragma once

#include "src/widgets/thing.h"

namespace wcs {
struct UsesWidget {};
}  // namespace wcs
