// Fixture: core -> trace is an allowed edge on its own, but together with
// trace -> core (bad_trace.h) it closes a module cycle, which must fire
// here at the cycle's first recorded edge.
#pragma once

#include "src/trace/bad_trace.h"

namespace wcs {
struct CoreThing {};
}  // namespace wcs
