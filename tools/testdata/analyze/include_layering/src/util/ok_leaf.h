// Fixture: util is the leaf layer — no src/ imports, nothing fires.
#pragma once

namespace wcs {
struct Leaf {};
}  // namespace wcs
