// Fixture: src/obs/ measures the machine on purpose — wall clocks are
// legal here and must not fire.
#include <chrono>

namespace wcs {

double wall_seconds() {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace wcs
