// Fixture: wall-clock read in result-affecting code must fire.
#include <chrono>

namespace wcs {

long long stamp_result() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace wcs
