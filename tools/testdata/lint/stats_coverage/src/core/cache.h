#pragma once
#include <cstdint>
// Fixture: one covered counter, one the metrics layer forgot.
struct CacheStats {
  std::uint64_t requests = 0;
  std::uint64_t uncovered_counter = 0;
};
