#pragma once
// Fixture metrics surface: covers the requests counter only.
void publish(unsigned long long requests);
