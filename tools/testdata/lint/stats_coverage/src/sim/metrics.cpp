#include "src/sim/metrics.h"
void publish(unsigned long long requests) { (void)requests; }
