// Fixture: fully compliant file — the lint must stay silent.
#include <cstdint>
std::uint64_t add(std::uint64_t a, std::uint64_t b) { return a + b; }
