// Fixture: node-based containers outside src/core/ are legal (scope holds).
#include <set>
std::set<int> offline;
