// Fixture: a justified same-line annotation silences the rule.
#pragma once
#include <map>
std::map<int, int> cold;  // node-based-ok: audit-only view, never on the hot path
