// Fixture: unordered_map in src/core/ fires too (all node-based variants).
#pragma once
#include <unordered_map>
std::unordered_map<int, int> index;
