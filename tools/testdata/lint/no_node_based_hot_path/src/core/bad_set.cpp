// Fixture: node-based container on the eviction hot path.
#include <set>
std::set<int> order;
