// Fixture: spawning a raw std::thread in library code.
#include <thread>
void churn();
void bad() {
  std::thread worker{churn};
  worker.join();
}
