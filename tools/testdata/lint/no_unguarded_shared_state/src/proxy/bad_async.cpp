// Fixture: std::async launches an unmanaged thread all the same.
#include <future>
int work();
int bad() { return std::async(std::launch::async, work).get(); }
