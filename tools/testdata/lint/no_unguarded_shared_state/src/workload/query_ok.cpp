// Fixture: std::thread:: scope queries are reads, not spawns (must not fire).
#include <thread>
unsigned cores() { return std::thread::hardware_concurrency(); }
