// Fixture: the ParallelRunner seam may own worker threads (scope holds).
#include <thread>
#include <vector>
void loop();
void spawn(std::vector<std::thread>& workers) { workers.emplace_back(loop); }
