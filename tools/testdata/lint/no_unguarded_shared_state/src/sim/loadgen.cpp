// Fixture: the load-generator seam may own worker threads (scope holds).
#include <thread>
void worker();
void spawn() { std::thread{worker}.join(); }
