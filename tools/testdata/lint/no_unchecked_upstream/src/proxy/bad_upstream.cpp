// Fixture: raw upstream_(...) call outside the resilience wrapper.
struct X {
  int (*upstream_)(int);
  int fetch(int r) { return upstream_(r); }
};
