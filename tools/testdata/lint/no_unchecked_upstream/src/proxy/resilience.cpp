// Fixture: the wrapper itself may call the raw upstream (allowlist).
struct R {
  int (*upstream_)(int);
  int fetch(int r) { return upstream_(r); }
};
