#pragma once
// Fixture: namespace injection in a header.
using namespace std;
