// Fixture: 'using namespace' in a .cpp stays local (scope must hold).
namespace demo { int value = 1; }
using namespace demo;
int read_value() { return value; }
