// Fixture: O(n) diagnostic scan called from simulation code.
struct P { int position_of(int); };
int rank(P& p) { return p.position_of(3); }
