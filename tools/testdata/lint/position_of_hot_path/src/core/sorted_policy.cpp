// Fixture: position_of's home file may define and call it (allowlist).
struct S { int position_of(int u) { return u; } };
int home(S& s) { return s.position_of(1); }
