// Fixture: tests may call position_of freely (scope must hold).
struct P { int position_of(int); };
int check(P& p) { return p.position_of(2); }
