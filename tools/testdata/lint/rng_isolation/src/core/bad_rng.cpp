// Fixture: a std <random> engine and rand() outside src/util/rng.*.
#include <random>
int draw() {
  std::mt19937 engine{42};
  return static_cast<int>(engine()) + rand();
}
