// Fixture: the RNG home may name engines freely (allowlist must hold).
#include <random>
unsigned home_draw() {
  std::mt19937_64 engine{7};
  return static_cast<unsigned>(engine());
}
