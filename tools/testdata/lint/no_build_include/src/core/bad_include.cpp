#include "build/generated_config.h"
int uses_generated() { return 1; }
