// Fixture: header lacking the include guard pragma.
int missing_pragma_value();
