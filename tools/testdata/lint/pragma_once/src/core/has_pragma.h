// Fixture: compliant header.
#pragma once
int has_pragma_value();
