// Fixture: table renderer allowlist entry must hold.
#include <cstdio>
void render() { printf("| cell |\n"); }
