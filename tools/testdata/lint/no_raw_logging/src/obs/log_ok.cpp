// Fixture: src/obs/ owns the exporters and may write streams (scope).
#include <iostream>
void exporter() { std::cout << "{}\n"; }
