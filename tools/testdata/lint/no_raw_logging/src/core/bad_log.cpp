// Fixture: raw stderr write in library code.
#include <iostream>
void shout() { std::cerr << "boom\n"; }
