// Fixture: two registered extension names — one covered, one not.
void register_policy(const char* name);
void register_zoo_policies() {
  register_policy("zoo-covered");
  register_policy("zoo-forgotten");
}
