// Fixture: two built-in by-name policies — one exercised by the test
// below, one the suite forgot.
#include <string>
int make_policy_by_name(const std::string& lower) {
  if (lower == "covered") return 1;
  if (lower == "forgotten") return 2;
  return 0;
}
