// Fixture test: exercises two of the four policy names, leaving the
// other two for the rule to flag.
const char* kCovered = "covered";
const char* kZooCovered = "zoo-covered";
