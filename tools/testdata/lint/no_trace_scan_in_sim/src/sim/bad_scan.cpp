// Fixture: materializing scan of trace.requests() inside src/sim/.
struct T { int* requests(); };
int first(T& trace) { return trace.requests()[0]; }
