// Fixture: the trace layer itself may materialize (scope must hold).
struct T { int* requests(); };
int first(T& trace) { return trace.requests()[0]; }
