// Fixture: src/obs/ wall spans may read the wall clock (scope must hold).
// A commented std::chrono::system_clock::now() must not fire either.
#include <chrono>
long wall_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
