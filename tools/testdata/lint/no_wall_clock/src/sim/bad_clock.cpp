// Fixture: wall-clock reads in result-affecting code.
#include <chrono>
#include <ctime>
long stamp() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count() + time(nullptr);
}
