// Fixture: float outside src/core/ is legal (scope must hold).
float scale(float a) { return a * 2.0f; }
