// Fixture: float in byte-accounting code.
float ratio(float a) { return a * 0.5f; }
