#!/usr/bin/env python3
"""Semantic determinism & lock-discipline analyzer for webcachesim.

    python3 tools/wcs_analyze.py [repo-root]
        [--engine auto|libclang|tokens] [--compile-commands build/compile_commands.json]
        [--allowlist tools/wcs_analyze_allowlist.json]
        [--json FILE|-] [--fix-suggestions] [--github]

Where tools/lint.py is a fast per-line regex backstop, this tool enforces
the *project-semantic* rules the concurrency era (ROADMAP items 1 and 4)
depends on. It is the gating ``wcs_analyze`` ctest: exit 0 on a clean
tree, 1 on findings, 2 on usage/internal errors.

Engines
-------
``libclang``  parses the real AST via the clang python bindings (fed by a
              compile_commands.json when given), so semantic rules see
              types and statement structure rather than tokens.
``tokens``    the documented degraded mode: the same rules evaluated on a
              comment/string-stripped token stream. Weaker on the semantic
              rules (a range-for over an unordered container is only
              caught when the container is *declared* in the same file;
              wall-clock/RNG calls reached through helper aliases are
              missed) but fully deterministic and dependency-free — this
              is what runs when libclang is not installed.
``auto``      libclang when importable, else tokens. A per-file parse
              failure in libclang mode falls back to the token engine for
              that file (fail-safe: a broken TU can hide findings, a
              fallback cannot).

Lexical rules (include-layering, mutex-annotation, tsa-escape) are
preprocessor/declaration-level and run identically under both engines.

Rules
-----
wall-clock            Result-affecting code (src/core, src/sim, src/trace,
                      src/workload, src/proxy, src/zoo) must not read wall clocks:
                      ``system_clock``/``steady_clock``/``time()`` et al.
                      make output depend on the machine, which silently
                      breaks the (preset, seed) -> result bit-identity
                      contract. src/obs/ is exempt (wall spans measure the
                      machine on purpose and never feed results).
unordered-iteration   Iterating a ``std::unordered_map``/``set`` feeds
                      hash-table order — which varies across libstdc++
                      versions and seeds — into whatever consumes the
                      loop. Results and exports must iterate deterministic
                      structures (vector, map, registration-order index).
rng-discipline        All randomness flows through the seeded per-sim
                      wcs::Rng (src/util/rng.*): ``rand()``,
                      ``std::random_device``, raw std engines anywhere
                      else desynchronize the RNG call schedule.
include-layering      #include edges between src/ modules must follow the
                      layering DAG (core -> util/trace; sim -> core/trace/
                      workload/proxy/http/util; ...). src/obs/ is special:
                      the only legal import is the nullable ObsRecorder*
                      seam — ``src/obs/recorder.h`` from a .cpp file.
                      Module cycles are errors. New modules must be added
                      to the table here (unknown modules are findings).
mutex-annotation      Lock discipline must be statically checkable: a raw
                      ``std::mutex`` member is invisible to Clang TSA, so
                      src/ + bench/ declare wcs::Mutex
                      (src/util/thread_annotations.h), and every mutex
                      member must have at least one WCS_GUARDED_BY /
                      WCS_PT_GUARDED_BY user or WCS_REQUIRES/WCS_EXCLUDES
                      contract naming it. A WCS_THREAD_AFFINE class
                      declaring a mutex member is a contradiction.
tsa-escape            WCS_NO_THREAD_SAFETY_ANALYSIS outside its home
                      header must carry a justification comment on the
                      same or preceding line — a real comment token with
                      at least two words (a ``//`` inside a string
                      literal does not count).

Allowlist
---------
``tools/wcs_analyze_allowlist.json`` (or ``--allowlist``): every entry
must carry a non-empty ``justification`` string and match at least one
finding — stale entries and bare entries are themselves findings, so the
allowlist can only shrink silently, never rot. A ``contains`` substring
must be one both engines emit — the entity name (variable, header path),
never engine-specific phrasing — or the entry goes stale under whichever
engine did not write it.

``--fix-suggestions`` prints, for each finding that has one, the concrete
annotation/edit to apply. ``--json`` emits the machine-readable report;
``--github`` adds workflow-command annotations for CI.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint import strip_comments_and_strings  # noqa: E402

# ---------------------------------------------------------------------------
# Scopes and tables
# ---------------------------------------------------------------------------

# Every rule this tool can emit; tools/test_analyze.py checks each one has
# a firing fixture under tools/testdata/analyze/.
RULE_NAMES = ("wall-clock", "unordered-iteration", "rng-discipline",
              "include-layering", "mutex-annotation", "tsa-escape",
              "stale-allowlist")

SCAN_DIRS = ("src", "bench")
RESULT_DIRS = ("src/core/", "src/sim/", "src/trace/", "src/workload/", "src/proxy/", "src/zoo/")
RNG_HOME = ("src/util/rng.h", "src/util/rng.cpp")
TSA_HOME = "src/util/thread_annotations.h"
OBS_SEAM_HEADER = "src/obs/recorder.h"

# The layering DAG: module -> modules it may #include. Keys are directories
# under src/; a module absent here is a finding (extend the table when a
# module is deliberately added). src/obs/ is importable only through the
# recorder seam (see obs rule below), hence no module lists "obs".
ALLOWED_IMPORTS: dict[str, set[str]] = {
    "util": set(),
    "trace": {"util"},
    "http": {"util"},
    "obs": {"util"},
    "core": {"util", "trace"},
    "workload": {"util", "trace"},
    "capture": {"util", "trace", "http"},
    "proxy": {"util", "trace", "http", "core"},
    "zoo": {"util", "trace", "core"},
    "sim": {"util", "trace", "http", "core", "workload", "proxy", "zoo"},
}

WALL_CLOCK_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\b(?:std\s*::\s*)?time\s*\("
    r"|\b(?:gettimeofday|clock_gettime|localtime(?:_r)?|gmtime(?:_r)?|mktime|timegm)\s*\(")

# Qualified names the AST engine treats as wall-clock reads.
WALL_CLOCK_NAMES = {
    "std::chrono::system_clock", "std::chrono::steady_clock",
    "std::chrono::high_resolution_clock", "time", "std::time", "gettimeofday",
    "clock_gettime", "localtime", "localtime_r", "gmtime", "gmtime_r", "mktime",
    "timegm",
}

RNG_RE = re.compile(
    r"\b(?:std\s*::\s*)?s?rand\s*\(|\bstd\s*::\s*random_device\b"
    r"|\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b)\b")

RNG_NAMES = {
    "rand", "srand", "std::rand", "std::srand", "std::random_device",
    "std::mt19937", "std::mt19937_64", "std::minstd_rand", "std::minstd_rand0",
    "std::default_random_engine", "std::ranlux24", "std::ranlux48", "std::knuth_b",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"src/([a-z_]+)/([^"]+)"')
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*(?:\*?\s*)((?:\w+(?:\.|->))*\w+)\s*\)")
STD_MUTEX_RE = re.compile(r"\bstd\s*::\s*mutex\b")
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?(?:wcs\s*::\s*)?Mutex\s+(\w+)\s*(?:;|\{\})")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+((?:WCS_\w+\s+)*)(\w+)[^;{()]*\{")
NO_TSA_RE = re.compile(r"\bWCS_NO_THREAD_SAFETY_ANALYSIS\b")


@dataclass
class Finding:
    rule: str
    file: str  # repo-relative posix path
    line: int
    message: str
    suggestion: str | None = None
    allowlisted_by: int | None = None  # index into allowlist entries

    def to_json(self) -> dict:
        record = {"rule": self.rule, "file": self.file, "line": self.line,
                  "message": self.message}
        if self.suggestion:
            record["suggestion"] = self.suggestion
        return record


@dataclass
class SourceFile:
    rel: str
    path: Path
    raw: str
    code: str = ""  # comment/string-stripped
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)

    @staticmethod
    def load(root: Path, path: Path) -> "SourceFile":
        raw = path.read_text(encoding="utf-8", errors="replace")
        src = SourceFile(rel=path.relative_to(root).as_posix(), path=path, raw=raw)
        src.code = strip_comments_and_strings(raw)
        src.raw_lines = raw.splitlines()
        src.code_lines = src.code.splitlines()
        return src


def in_result_dirs(rel: str) -> bool:
    return rel.startswith(RESULT_DIRS)


# ---------------------------------------------------------------------------
# Engine: libclang (AST) with per-file token fallback
# ---------------------------------------------------------------------------


class LibclangEngine:
    """AST evaluation of the semantic rules via clang.cindex.

    Constructed lazily; raises ImportError/OSError when the bindings or the
    shared library are missing, which the driver turns into token mode.
    """

    def __init__(self, root: Path, compile_commands: Path | None):
        from clang import cindex  # may raise ImportError

        self.cindex = cindex
        self.index = cindex.Index.create()  # may raise if libclang.so is absent
        self.root = root
        self.flags: dict[str, list[str]] = {}
        if compile_commands is not None and compile_commands.is_file():
            for entry in json.loads(compile_commands.read_text()):
                args = entry.get("arguments")
                if args is None and "command" in entry:
                    args = entry["command"].split()
                directory = Path(entry.get("directory", "."))
                rel = (directory / entry["file"]).resolve()
                try:
                    key = rel.relative_to(root.resolve()).as_posix()
                except ValueError:
                    continue
                # Strip compiler, -c/-o pairs; keep -I/-D/-std et al.
                kept, skip = [], True  # skip argv[0]
                arg_iter = iter(args or [])
                for arg in arg_iter:
                    if skip:
                        skip = False
                        continue
                    if arg in ("-c", "-o"):
                        next(arg_iter, None) if arg == "-o" else None
                        continue
                    if arg == entry["file"]:
                        continue
                    kept.append(arg)
                # Relative -I/-include paths are relative to the entry's
                # 'directory' (the build dir), not to wherever this tool
                # runs; an unresolved path makes the parse fail and the
                # file silently degrade to token mode.
                self.flags[key] = self._resolve_flags(kept, directory)

    @staticmethod
    def _resolve_flags(args: list[str], directory: Path) -> list[str]:
        separate = {"-I", "-isystem", "-iquote", "-idirafter", "-include",
                    "-imacros", "-isysroot"}
        joined = ("-I", "-isystem", "-iquote", "-idirafter")
        resolved: list[str] = []
        arg_iter = iter(args)
        for arg in arg_iter:
            if arg in separate:
                resolved.append(arg)
                value = next(arg_iter, None)
                if value is not None:
                    if not Path(value).is_absolute():
                        value = str(directory / value)
                    resolved.append(value)
                continue
            for prefix in joined:
                value = arg[len(prefix):]
                if (arg.startswith(prefix) and value
                        and not Path(value).is_absolute()):
                    arg = prefix + str(directory / value)
                    break
            resolved.append(arg)
        return resolved

    def parse(self, src: SourceFile):
        args = self.flags.get(src.rel,
                              ["-std=c++20", f"-I{self.root}", "-x", "c++"])
        tu = self.index.parse(str(src.path), args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(f"{src.rel}: {fatal[0].spelling}")
        return tu

    @staticmethod
    def qualified_name(cursor) -> str:
        parts = []
        node = cursor
        while node is not None and node.spelling:
            parts.append(node.spelling)
            node = node.semantic_parent
            if node is not None and node.kind.name == "TRANSLATION_UNIT":
                break
        return "::".join(reversed(parts))

    def findings_for(self, src: SourceFile) -> list[Finding]:
        ck = self.cindex.CursorKind
        tu = self.parse(src)
        findings: list[Finding] = []
        want_wall = in_result_dirs(src.rel)
        want_rng = src.rel.startswith("src/") and src.rel not in RNG_HOME

        def local(cursor) -> bool:
            loc = cursor.location
            return loc.file is not None and Path(loc.file.name) == src.path

        for cursor in tu.cursor.walk_preorder():
            if not local(cursor):
                continue
            if cursor.kind in (ck.DECL_REF_EXPR, ck.TYPE_REF, ck.CALL_EXPR):
                name = (self.qualified_name(cursor.referenced)
                        if cursor.referenced is not None else cursor.spelling)
                if want_wall and (name in WALL_CLOCK_NAMES
                                  or any(name.startswith(w + "::")
                                         for w in WALL_CLOCK_NAMES)):
                    findings.append(Finding(
                        "wall-clock", src.rel, cursor.location.line,
                        f"wall-clock read ({name}) in result-affecting code; "
                        "results may only see SimTime"))
                if want_rng and name in RNG_NAMES:
                    findings.append(Finding(
                        "rng-discipline", src.rel, cursor.location.line,
                        f"{name} outside src/util/rng.*; draw from the seeded "
                        "per-sim wcs::Rng instead"))
            if (cursor.kind == ck.CXX_FOR_RANGE_STMT
                    and src.rel.startswith("src/")):
                range_init = self._range_initializer(cursor)
                range_type = (self._unordered_type_of(range_init)
                              if range_init is not None else "")
                if range_type:
                    # Name the iterated entity the same way the token engine
                    # does: allowlist 'contains' entries written against one
                    # engine's message must match the other's too.
                    name = self._expr_name(range_init)
                    findings.append(Finding(
                        "unordered-iteration", src.rel, cursor.location.line,
                        f"range-for over unordered container "
                        f"'{name or '<expr>'}' ({range_type}): hash-table "
                        "order is nondeterministic; iterate a deterministic "
                        "structure (vector / map / order index)"))
        return findings

    def _range_initializer(self, cursor):
        """The range-init expression of a CXX_FOR_RANGE_STMT.

        Child ordering of range-for statements is not a documented libclang
        contract, so identify the initializer by kind: it is the expression
        child that is neither the loop variable (VAR_DECL/DECL_STMT) nor
        the body (always the last child). Fall back to the second-to-last
        child for bindings that expose a different child set.
        """
        ck = self.cindex.CursorKind
        children = list(cursor.get_children())
        candidates = [child for child in children[:-1]
                      if child.kind not in (ck.VAR_DECL, ck.DECL_STMT)
                      and child.kind.is_expression()]
        if candidates:
            return candidates[0]
        return children[-2] if len(children) >= 2 else None

    @staticmethod
    def _unordered_type_of(cursor) -> str:
        """Spelling of the cursor's type when it is an unordered container,
        looking through sugar (typedefs/aliases) and references/pointers."""
        seen = []
        node_type = cursor.type
        for base in (node_type, node_type.get_pointee()):
            for variant in (base, base.get_canonical()):
                spelling = variant.spelling
                if spelling and spelling not in seen:
                    seen.append(spelling)
        for spelling in seen:
            if "unordered_" in spelling:
                return spelling
        return ""

    @staticmethod
    def _expr_name(cursor) -> str:
        """Terminal identifier of an expression (member name for a.b.c),
        unwrapping implicit casts/parens that carry no spelling."""
        node = cursor
        while node is not None and not node.spelling:
            children = list(node.get_children())
            node = children[0] if children else None
        return node.spelling if node is not None else ""


class TokenEngine:
    """Degraded token-stream evaluation of the semantic rules."""

    def findings_for(self, src: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        if in_result_dirs(src.rel):
            for lineno, line in enumerate(src.code_lines, 1):
                if WALL_CLOCK_RE.search(line):
                    findings.append(Finding(
                        "wall-clock", src.rel, lineno,
                        "wall-clock read in result-affecting code; results may "
                        "only see SimTime (wall time belongs to src/obs/ spans)"))
        if src.rel.startswith("src/") and src.rel not in RNG_HOME:
            for lineno, line in enumerate(src.code_lines, 1):
                if RNG_RE.search(line):
                    findings.append(Finding(
                        "rng-discipline", src.rel, lineno,
                        "raw randomness outside src/util/rng.*; draw from the "
                        "seeded per-sim wcs::Rng instead"))
        if src.rel.startswith("src/"):
            findings.extend(self._unordered_iteration(src))
        return findings

    @staticmethod
    def _unordered_iteration(src: SourceFile) -> list[Finding]:
        # Pass 1: names declared with an unordered container type anywhere in
        # this file (members and locals; token mode cannot see through
        # typedefs or cross-file types — the documented degradation).
        unordered_names: set[str] = set()
        code = src.code
        for match in UNORDERED_DECL_RE.finditer(code):
            depth, i = 1, match.end()
            while i < len(code) and depth > 0:
                if code[i] == "<":
                    depth += 1
                elif code[i] == ">":
                    depth -= 1
                i += 1
            name = re.match(r"\s*&?\s*(\w+)\s*[;={(]", code[i:])
            if name:
                unordered_names.add(name.group(1))
        if not unordered_names:
            return []
        findings = []
        for lineno, line in enumerate(src.code_lines, 1):
            for match in RANGE_FOR_RE.finditer(line):
                target = re.split(r"\.|->", match.group(1))[-1]
                if target in unordered_names:
                    findings.append(Finding(
                        "unordered-iteration", src.rel, lineno,
                        f"range-for over unordered container '{target}': "
                        "hash-table order is nondeterministic; iterate a "
                        "deterministic structure (vector / map / order index)"))
        return findings


# ---------------------------------------------------------------------------
# Lexical rules (identical under both engines)
# ---------------------------------------------------------------------------


def check_layering(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    edges: dict[tuple[str, str], tuple[str, int]] = {}  # (from, to) -> first site

    for src in files:
        if not src.rel.startswith("src/"):
            continue
        module = src.rel.split("/")[1]
        for lineno, line in enumerate(src.raw_lines, 1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target_module, target_rest = match.group(1), match.group(2)
            target = f"src/{target_module}/{target_rest}"
            if target_module == module:
                continue
            edges.setdefault((module, target_module), (src.rel, lineno))
            if target_module == "obs":
                # The ObsRecorder* seam: implementation files may pull the
                # recorder facade; anything else couples a layer to obs.
                if target == OBS_SEAM_HEADER and src.rel.endswith(".cpp"):
                    continue
                findings.append(Finding(
                    "include-layering", src.rel, lineno,
                    f"#include \"{target}\": src/obs/ is importable only via "
                    f"the nullable ObsRecorder* seam ({OBS_SEAM_HEADER} from a "
                    ".cpp file)",
                    suggestion="take an ObsRecorder* (forward-declared) and "
                               f"include {OBS_SEAM_HEADER} in the .cpp"))
                continue
            if module not in ALLOWED_IMPORTS:
                findings.append(Finding(
                    "include-layering", src.rel, lineno,
                    f"module 'src/{module}/' is not in the layering table; add "
                    "it to ALLOWED_IMPORTS in tools/wcs_analyze.py with its "
                    "permitted imports"))
                continue
            if target_module not in ALLOWED_IMPORTS:
                findings.append(Finding(
                    "include-layering", src.rel, lineno,
                    f"#include \"{target}\": unknown module 'src/{target_module}/'"
                    " — extend ALLOWED_IMPORTS in tools/wcs_analyze.py"))
                continue
            if target_module not in ALLOWED_IMPORTS[module]:
                findings.append(Finding(
                    "include-layering", src.rel, lineno,
                    f"#include \"{target}\": layering violation — src/{module}/ "
                    f"may import only {{{', '.join(sorted(ALLOWED_IMPORTS[module])) or '∅'}}}"))

    # Cycle detection over the observed module graph (allowlisted edges
    # included: suppressing a finding must not be able to hide a cycle).
    graph: dict[str, set[str]] = {}
    for (src_mod, dst_mod) in edges:
        graph.setdefault(src_mod, set()).add(dst_mod)
    for cycle in find_cycles(graph):
        first_edge = edges[(cycle[0], cycle[1])]
        findings.append(Finding(
            "include-layering", first_edge[0], first_edge[1],
            "module cycle: " + " -> ".join(cycle + [cycle[0]])))
    return findings


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Minimal deterministic cycle enumeration (one cycle per SCC > 1)."""
    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    sccs: list[list[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sccs


def check_mutex_annotations(src: SourceFile) -> list[Finding]:
    if src.rel == TSA_HOME:
        return []
    findings: list[Finding] = []
    code = src.code

    for lineno, line in enumerate(src.code_lines, 1):
        if STD_MUTEX_RE.search(line):
            findings.append(Finding(
                "mutex-annotation", src.rel, lineno,
                "raw std::mutex is invisible to Clang Thread Safety Analysis; "
                "declare wcs::Mutex (src/util/thread_annotations.h) so "
                "-Wthread-safety can prove the lock discipline",
                suggestion="replace std::mutex with wcs::Mutex and guard its "
                           "state with WCS_GUARDED_BY(<mutex>)"))

    for class_match in CLASS_RE.finditer(code):
        markers, class_name = class_match.group(1), class_match.group(2)
        body, body_offset = _matched_braces(code, class_match.end() - 1)
        if body is None:
            continue
        affine = "WCS_THREAD_AFFINE" in markers
        for member in MUTEX_MEMBER_RE.finditer(body):
            mutex_name = member.group(1)
            lineno = code.count("\n", 0, body_offset + member.start()) + 1
            if affine:
                findings.append(Finding(
                    "mutex-annotation", src.rel, lineno,
                    f"{class_name} is marked WCS_THREAD_AFFINE (single-owner "
                    f"by design) yet declares mutex member '{mutex_name}' — "
                    "drop the marker or drop the lock"))
                continue
            users = re.search(
                r"WCS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|"
                r"RELEASE|ASSERT_CAPABILITY|RETURN_CAPABILITY)\s*\(\s*"
                + re.escape(mutex_name) + r"\s*\)", body)
            if users is None:
                findings.append(Finding(
                    "mutex-annotation", src.rel, lineno,
                    f"mutex member '{class_name}::{mutex_name}' has no "
                    "WCS_GUARDED_BY user and no WCS_REQUIRES/WCS_EXCLUDES "
                    "contract — the lock protects nothing the analysis can see",
                    suggestion=f"annotate the state it protects: <member> "
                               f"WCS_GUARDED_BY({mutex_name}); and the methods "
                               f"that take it: WCS_EXCLUDES({mutex_name})"))
    return findings


def _matched_braces(code: str, open_index: int) -> tuple[str | None, int]:
    """Body text between the brace at open_index and its match."""
    depth = 0
    for i in range(open_index, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[open_index + 1:i], open_index + 1
    return None, open_index


def _comment_text(context: str) -> str:
    """Concatenated body text of real comments in ``context``.

    Scans outside string/char literals, so a ``//`` inside a quoted URL is
    not mistaken for a justification comment."""
    parts: list[str] = []
    i, n = 0, len(context)
    while i < n:
        ch = context[i]
        nxt = context[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            end = context.find("\n", i)
            end = n if end == -1 else end
            parts.append(context[i + 2:end])
            i = end
        elif ch == "/" and nxt == "*":
            end = context.find("*/", i + 2)
            end = n if end == -1 else end
            parts.append(context[i + 2:end])
            i = end + 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and context[i] not in (quote, "\n"):
                if context[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            i += 1
    return " ".join(parts)


def check_tsa_escape(src: SourceFile) -> list[Finding]:
    if src.rel == TSA_HOME:
        return []
    findings = []
    for lineno, line in enumerate(src.code_lines, 1):
        if not NO_TSA_RE.search(line):
            continue
        context = "\n".join(src.raw_lines[max(0, lineno - 2):lineno])
        # A justification is an actual comment token (not a "//" inside a
        # string literal) with at least a couple of words of content.
        if len(re.findall(r"\w+", _comment_text(context))) < 2:
            findings.append(Finding(
                "tsa-escape", src.rel, lineno,
                "WCS_NO_THREAD_SAFETY_ANALYSIS without a justification comment "
                "on the same or preceding line — the escape hatch must say why "
                "the analysis cannot model this function"))
    return findings


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------


def apply_allowlist(findings: list[Finding], allowlist_path: Path | None,
                    root: Path) -> tuple[list[Finding], list[dict], list[Finding]]:
    """Partition findings; return (active, entries_with_counts, meta_findings)."""
    if allowlist_path is None or not allowlist_path.is_file():
        return findings, [], []
    try:
        document = json.loads(allowlist_path.read_text())
        entries = document["entries"]
    except (json.JSONDecodeError, KeyError) as error:
        return findings, [], [Finding(
            "stale-allowlist", allowlist_path.name, 1,
            f"allowlist is not valid ({error})")]

    rel_allowlist = allowlist_path.resolve()
    try:
        allowlist_rel = rel_allowlist.relative_to(root.resolve()).as_posix()
    except ValueError:
        allowlist_rel = allowlist_path.name

    meta: list[Finding] = []
    counts = [0] * len(entries)
    for i, entry in enumerate(entries):
        if not str(entry.get("justification", "")).strip():
            meta.append(Finding(
                "stale-allowlist", allowlist_rel, 1,
                f"entry {i} ({entry.get('rule')}/{entry.get('file')}) has no "
                "justification — every suppression must say why"))

    active: list[Finding] = []
    for finding in findings:
        matched = None
        for i, entry in enumerate(entries):
            if entry.get("rule") != finding.rule:
                continue
            if entry.get("file") != finding.file:
                continue
            contains = entry.get("contains")
            if contains and contains not in finding.message:
                continue
            matched = i
            break
        if matched is None:
            active.append(finding)
        else:
            counts[matched] += 1
            finding.allowlisted_by = matched

    for i, entry in enumerate(entries):
        if counts[i] == 0:
            meta.append(Finding(
                "stale-allowlist", allowlist_rel, 1,
                f"entry {i} ({entry.get('rule')}/{entry.get('file')}) matched "
                "no finding — delete it (allowlists may only shrink silently)"))

    annotated = [dict(entry, matched=counts[i]) for i, entry in enumerate(entries)]
    return active, annotated, meta


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(root: Path) -> list[SourceFile]:
    files = []
    for directory in SCAN_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".h", ".cpp") and path.is_file():
                files.append(SourceFile.load(root, path))
    return files


def analyze(root: Path, engine_choice: str,
            compile_commands: Path | None) -> tuple[str, list[str], list[Finding], int]:
    files = collect_files(root)
    token_engine = TokenEngine()
    ast_engine = None
    engine_used = "tokens"
    if engine_choice in ("auto", "libclang"):
        try:
            ast_engine = LibclangEngine(root, compile_commands)
            engine_used = "libclang"
        except Exception as error:
            if engine_choice == "libclang":
                raise SystemExit(
                    f"wcs_analyze: --engine libclang requested but unavailable: {error}")
            engine_used = "tokens"

    findings: list[Finding] = []
    degraded_files: list[str] = []
    for src in files:
        if ast_engine is not None:
            try:
                findings.extend(ast_engine.findings_for(src))
            except Exception as error:
                # Fail-safe: a TU that will not parse falls back to tokens
                # rather than silently contributing zero findings.
                degraded_files.append(src.rel)
                print(f"wcs_analyze: note: {src.rel}: libclang parse failed "
                      f"({error}); degrading to the token engine for this "
                      "file — semantic rules see tokens, not types",
                      file=sys.stderr)
                findings.extend(token_engine.findings_for(src))
        else:
            findings.extend(token_engine.findings_for(src))
        findings.extend(check_mutex_annotations(src))
        findings.extend(check_tsa_escape(src))
    findings.extend(check_layering(files))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    return engine_used, degraded_files, findings, len(files)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="webcachesim semantic determinism & lock-discipline analyzer")
    parser.add_argument("root", nargs="?",
                        default=str(Path(__file__).resolve().parent.parent))
    parser.add_argument("--engine", choices=("auto", "libclang", "tokens"),
                        default="auto")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json feeding the libclang engine")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist JSON (default: <root>/tools/"
                             "wcs_analyze_allowlist.json when present)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the machine-readable report to FILE ('-' = stdout)")
    parser.add_argument("--fix-suggestions", action="store_true",
                        help="print the concrete annotation/edit per finding")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub workflow-command annotations")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"wcs_analyze: {root} is not a directory", file=sys.stderr)
        return 2
    compile_commands = Path(args.compile_commands) if args.compile_commands else None
    allowlist_path = (Path(args.allowlist) if args.allowlist
                      else root / "tools" / "wcs_analyze_allowlist.json")

    engine_used, degraded_files, findings, files_checked = analyze(
        root, args.engine, compile_commands)
    if files_checked == 0:
        print(f"wcs_analyze: no sources under {root}", file=sys.stderr)
        return 2

    active, allow_entries, meta = apply_allowlist(findings, allowlist_path, root)
    active.extend(meta)
    suppressed = len(findings) - (len(active) - len(meta))

    for finding in active:
        print(f"{finding.file}:{finding.line}: [{finding.rule}] {finding.message}")
        if args.fix_suggestions and finding.suggestion:
            print(f"    fix: {finding.suggestion}")
    if args.github:
        for finding in active:
            print(f"::error file={finding.file},line={finding.line},"
                  f"title=wcs_analyze {finding.rule}::{finding.message}")

    report = {
        "tool": "wcs_analyze",
        "engine": engine_used,
        "degraded": engine_used == "tokens",
        "degraded_files": degraded_files,
        "root": str(root),
        "files_checked": files_checked,
        "findings": [finding.to_json() for finding in active],
        "suppressed": suppressed,
        "allowlist": allow_entries,
    }
    if args.json_out == "-":
        print(json.dumps(report, indent=2))
    elif args.json_out:
        Path(args.json_out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"wcs_analyze: engine={engine_used} files={files_checked} "
          f"findings={len(active)} suppressed={suppressed}")
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
