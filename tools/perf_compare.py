#!/usr/bin/env python3
"""Render a before/after per-policy comparison of two BENCH_perf.json files.

Usage:
    python3 tools/perf_compare.py BEFORE.json AFTER.json [-o TABLE.md]

CI's perf-smoke job runs it with the checked-in bench/BENCH_perf.json as
BEFORE and the freshly regenerated measurement as AFTER, and uploads the
markdown table as an artifact — so every PR carries a reviewable
per-policy view of what it did to the eviction hot path, not just the
pass/fail verdict of tools/check_perf.py.

The table covers the grid headline and every micro row (workload x
policy): requests/sec before and after, the relative change, and each
side's speedup over the retained node-based legacy engine (blank where a
side predates the legacy leg for that row).

Exit status: 0 on success, 2 on unreadable/mismatched inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    return json.loads(Path(path).read_text())


def fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value / 1e6:.2f}"


def fmt_speedup(value: float | None) -> str:
    return "-" if value is None else f"{value:.2f}x"


def fmt_delta(before: float | None, after: float | None) -> str:
    if not before or after is None:
        return "-"
    return f"{100.0 * (after / before - 1.0):+.1f}%"


def micro_index(measured: dict) -> dict[tuple[str, str], dict]:
    return {(row["workload"], row["policy"]): row for row in measured.get("micro", [])}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before", help="baseline BENCH_perf.json (e.g. checked-in)")
    parser.add_argument("after", help="fresh BENCH_perf.json from this run")
    parser.add_argument("-o", "--out", metavar="PATH",
                        help="write the markdown table here (default: stdout)")
    args = parser.parse_args()

    try:
        before = load(args.before)
        after = load(args.after)
    except (OSError, json.JSONDecodeError) as error:
        print(f"perf_compare: cannot load inputs: {error}", file=sys.stderr)
        return 2

    lines: list[str] = []
    lines.append("# Performance comparison")
    lines.append("")
    lines.append(f"before: `{args.before}` (scale {before.get('scale', '?')}) — "
                 f"after: `{args.after}` (scale {after.get('scale', '?')})")
    if before.get("scale") != after.get("scale"):
        lines.append("")
        lines.append("> **warning:** the two measurements use different WCS_SCALE "
                     "values; absolute rates are not comparable.")
    lines.append("")

    grid_before = before.get("grid", {}).get("serial_requests_per_sec")
    grid_after = after.get("grid", {}).get("serial_requests_per_sec")
    lines.append("| metric | before Mreq/s | after Mreq/s | change |")
    lines.append("|---|---:|---:|---:|")
    lines.append(f"| grid serial (36 cells) | {fmt_rate(grid_before)} | "
                 f"{fmt_rate(grid_after)} | {fmt_delta(grid_before, grid_after)} |")
    lines.append("")

    lines.append("| workload | policy | before Mreq/s | after Mreq/s | change "
                 "| before vs legacy | after vs legacy |")
    lines.append("|---|---|---:|---:|---:|---:|---:|")
    before_rows = micro_index(before)
    after_rows = micro_index(after)
    for key in sorted(set(before_rows) | set(after_rows)):
        b = before_rows.get(key, {})
        a = after_rows.get(key, {})
        lines.append(
            f"| {key[0]} | {key[1]} "
            f"| {fmt_rate(b.get('requests_per_sec'))} "
            f"| {fmt_rate(a.get('requests_per_sec'))} "
            f"| {fmt_delta(b.get('requests_per_sec'), a.get('requests_per_sec'))} "
            f"| {fmt_speedup(b.get('speedup_vs_legacy'))} "
            f"| {fmt_speedup(a.get('speedup_vs_legacy'))} |")
    lines.append("")

    text = "\n".join(lines)
    if args.out:
        try:
            Path(args.out).write_text(text + "\n")
        except OSError as error:
            print(f"perf_compare: cannot write {args.out}: {error}", file=sys.stderr)
            return 2
        print(f"perf_compare: wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
