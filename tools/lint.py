#!/usr/bin/env python3
"""Project-specific lint for webcachesim.

Enforces repo rules that clang-tidy cannot express. Run from anywhere:

    python3 tools/lint.py [repo-root]

Exit status 0 when clean, 1 when any rule fires (one line per finding,
``path:line: [rule] message``). Wired into ctest as the ``wcs_lint`` test.

Rules
-----
rng-isolation     All randomness flows through src/util/rng.*. ``rand()``,
                  ``srand()``, ``std::random_device``, ``std::mt19937`` (et
                  al.) anywhere else silently break the (preset, seed) ->
                  result determinism the trace-repro story depends on.
no-build-include  ``#include`` paths must never reach into a build tree;
                  generated headers differ per machine.
pragma-once       Every header carries ``#pragma once``.
no-float          ``float`` is banned in src/core/: byte accounting and rank
                  arithmetic must stay exact (uint64/int64; ``double`` is
                  allowed only for the paper's ratio outputs).
stats-coverage    Every counter field of ``CacheStats`` (src/core/cache.h)
                  and of ``ProxyCache::Stats`` (src/proxy/proxy.h) must be
                  mentioned in src/sim/metrics.{h,cpp} so reporting code —
                  stats_rows / proxy_stats_rows and the observability
                  publishers (publish_stats / publish_proxy_stats) — cannot
                  silently fall behind the structs.
no-raw-logging    Library code under src/ must not write to stdout/stderr
                  (``printf``/``fprintf``/``std::cout``/``std::cerr``).
                  Diagnostics flow through the observability subsystem
                  (src/obs/) or return values; ad-hoc prints are invisible
                  to the exporters and corrupt machine-read output (CSV,
                  JSONL). Allowed: src/obs/ (it owns the exporters),
                  src/util/table.cpp (renders to a caller's stream), and
                  src/core/audit.cpp (abort-path assert reporting).
no-using-namespace-header
                  Headers must not inject namespaces into every includer.
position-of-hot-path
                  ``SortedPolicy::position_of`` is a linear scan kept only
                  for tests and offline diagnostics; calling it from src/
                  puts an O(n) walk where the simulator expects O(log n).
                  Only its home (src/core/sorted_policy.{h,cpp}) may name
                  it; tests/ and bench/ may call it freely.
no-trace-scan-in-sim
                  ``trace.requests()`` loops inside src/sim/ materialize the
                  whole request vector in the hot path. Simulation code
                  streams through ``RequestSource`` (wrap a Trace in
                  ``TraceSource`` when a materialized pass is genuinely
                  needed); only the streaming-free field accesses of
                  ``stats.requests`` (no parens) remain legal.
no-unchecked-upstream
                  Direct ``upstream_(...)`` calls in src/proxy/ bypass the
                  resilience layer (retries, circuit breaker, negative
                  cache, stale-if-error) and its failure accounting. Only
                  the wrapper itself (src/proxy/resilience.{h,cpp}) may
                  call the raw upstream; everything else goes through
                  ``ResilientUpstream::fetch``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".h", ".cpp"}
SOURCE_DIRS = ("src", "tests", "bench", "examples")

RNG_HOME = ("src/util/rng.h", "src/util/rng.cpp")
RNG_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\w+|knuth_b)\b"), "a std <random> engine"),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^">]+)[">]')
FLOAT_RE = re.compile(r"\bfloat\b")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\s+\w")
POSITION_OF_RE = re.compile(r"\bposition_of\s*\(")
POSITION_OF_HOME = ("src/core/sorted_policy.h", "src/core/sorted_policy.cpp")
TRACE_SCAN_RE = re.compile(r"\.\s*requests\s*\(\s*\)")
UPSTREAM_CALL_RE = re.compile(r"\bupstream_\s*\(")
RESILIENCE_HOME = ("src/proxy/resilience.h", "src/proxy/resilience.cpp")
# \b keeps snprintf (string formatting, not logging) legal.
RAW_LOGGING_RE = re.compile(r"\b(?:std\s*::\s*)?(?:printf|fprintf)\s*\(|std\s*::\s*(?:cout|cerr)\b")
RAW_LOGGING_ALLOWED = ("src/util/table.cpp", "src/core/audit.cpp")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks.

    A lexer-lite pass: good enough for the token-level patterns above without
    false-positives from prose in comments ("uniformly random order") or
    quoted examples.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated literal; bail to newline
                    break
                i += 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{line}: [{rule}] {message}")

    # -- per-file rules ----------------------------------------------------

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_and_strings(raw)
        code_lines = code.splitlines()
        raw_lines = raw.splitlines()

        if path.suffix == ".h" and "#pragma once" not in raw:
            self.report(path, 1, "pragma-once", "header is missing '#pragma once'")

        if rel not in RNG_HOME:
            for lineno, line in enumerate(code_lines, 1):
                for pattern, what in RNG_PATTERNS:
                    if pattern.search(line):
                        self.report(
                            path, lineno, "rng-isolation",
                            f"{what} outside src/util/rng.* breaks trace-repro "
                            "determinism; draw from wcs::Rng instead")

        for lineno, line in enumerate(raw_lines, 1):
            match = INCLUDE_RE.match(line)
            if match and re.search(r"(^|/)build[^/]*/", match.group(1)):
                self.report(path, lineno, "no-build-include",
                            f"#include of a build tree path '{match.group(1)}'")

        if rel.startswith("src/core/"):
            for lineno, line in enumerate(code_lines, 1):
                if FLOAT_RE.search(line):
                    self.report(
                        path, lineno, "no-float",
                        "'float' in byte-accounting code; use std::uint64_t / "
                        "std::int64_t (or double for final ratios)")

        if path.suffix == ".h":
            for lineno, line in enumerate(code_lines, 1):
                if USING_NAMESPACE_RE.search(line):
                    self.report(path, lineno, "no-using-namespace-header",
                                "'using namespace' in a header leaks into every includer")

        if rel.startswith("src/") and rel not in POSITION_OF_HOME:
            for lineno, line in enumerate(code_lines, 1):
                if POSITION_OF_RE.search(line):
                    self.report(
                        path, lineno, "position-of-hot-path",
                        "position_of() is an O(n) scan reserved for tests and "
                        "diagnostics; simulation code must stay O(log n) per op")

        if rel.startswith("src/proxy/") and rel not in RESILIENCE_HOME:
            for lineno, line in enumerate(code_lines, 1):
                if UPSTREAM_CALL_RE.search(line):
                    self.report(
                        path, lineno, "no-unchecked-upstream",
                        "direct upstream_(...) call bypasses the resilience "
                        "wrapper (retries, breaker, stale-if-error); route "
                        "through ResilientUpstream::fetch instead")

        if (rel.startswith("src/") and not rel.startswith("src/obs/")
                and rel not in RAW_LOGGING_ALLOWED):
            for lineno, line in enumerate(code_lines, 1):
                if RAW_LOGGING_RE.search(line):
                    self.report(
                        path, lineno, "no-raw-logging",
                        "raw stdout/stderr write in library code; route "
                        "diagnostics through src/obs/ (events, metrics) or "
                        "return them to the caller")

        if rel.startswith("src/sim/"):
            for lineno, line in enumerate(code_lines, 1):
                if TRACE_SCAN_RE.search(line):
                    self.report(
                        path, lineno, "no-trace-scan-in-sim",
                        "scanning trace.requests() in src/sim/ bypasses the "
                        "streaming architecture; pull from a RequestSource "
                        "(TraceSource for a materialized pass) instead")

    # -- whole-repo rules --------------------------------------------------

    def lint_stats_coverage(self) -> None:
        # A partial tree (linting a subdirectory extract) simply skips the
        # coverage rule instead of crashing on the absent files.
        sources = [self.root / "src/sim/metrics.h", self.root / "src/sim/metrics.cpp"]
        if not all(path.is_file() for path in sources):
            return
        metrics = "".join(path.read_text() for path in sources)
        self._check_struct_coverage(
            self.root / "src/core/cache.h",
            re.compile(r"struct\s+CacheStats\s*\{(.*?)\n\};", re.DOTALL),
            "CacheStats", "wcs::stats_rows()", metrics)
        self._check_struct_coverage(
            self.root / "src/proxy/proxy.h",
            re.compile(r"struct\s+Stats\s*\{(.*?)\n  \};", re.DOTALL),
            "ProxyCache::Stats", "wcs::proxy_stats_rows()", metrics)

    def _check_struct_coverage(self, header: Path, struct_re: re.Pattern,
                               struct_name: str, rows_fn: str, metrics: str) -> None:
        if not header.is_file():
            return
        struct = struct_re.search(header.read_text())
        if struct is None:
            self.report(header, 1, "stats-coverage",
                        f"could not locate struct {struct_name}")
            return
        body = strip_comments_and_strings(struct.group(1))
        counters = re.findall(r"\bstd::uint64_t\s+(\w+)\s*=", body)
        if not counters:
            self.report(header, 1, "stats-coverage",
                        f"no counters parsed from {struct_name}")
            return
        for counter in counters:
            if not re.search(rf"\b{re.escape(counter)}\b", metrics):
                self.report(
                    header, 1, "stats-coverage",
                    f"{struct_name} counter '{counter}' is never mentioned in "
                    f"src/sim/metrics.h or metrics.cpp; extend {rows_fn}")

    def run(self) -> int:
        files = sorted(
            path
            for directory in SOURCE_DIRS
            for path in (self.root / directory).rglob("*")
            if path.suffix in CPP_SUFFIXES and path.is_file())
        if not files:
            print(f"lint.py: no sources found under {self.root}", file=sys.stderr)
            return 2
        for path in files:
            self.lint_file(path)
        self.lint_stats_coverage()
        for finding in self.findings:
            print(finding)
        print(f"lint.py: {len(files)} files checked, {len(self.findings)} finding(s)")
        return 1 if self.findings else 0


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
