#!/usr/bin/env python3
"""Project-specific lint for webcachesim.

Enforces repo rules that clang-tidy cannot express. Run from anywhere:

    python3 tools/lint.py [repo-root] [--github]

Exit status 0 when clean, 1 when any rule fires (one line per finding,
``path:line: [rule] message``), 2 when the tree looks wrong (no sources).
``--github`` additionally emits GitHub workflow commands (``::error
file=...``) so CI surfaces findings as inline annotations. Wired into
ctest as the ``wcs_lint`` test; ``tools/test_lint.py`` (ctest
``wcs_lint_selftest``) runs every rule against fixture trees under
``tools/testdata/lint/``.

Rule dispatch is a declarative table: a ``PatternRule`` is one regex plus
a path scope (and optional per-match filter), scanned per line of
comment/string-stripped source; ``FILE_RULES`` and ``REPO_RULES`` hold the
few checks that need whole-file or cross-file context. Adding a rule means
adding a table row (see DESIGN.md §11 "Adding a rule").

Rules
-----
rng-isolation     All randomness flows through src/util/rng.*. ``rand()``,
                  ``srand()``, ``std::random_device``, ``std::mt19937`` (et
                  al.) anywhere else silently break the (preset, seed) ->
                  result determinism the trace-repro story depends on.
no-wall-clock     Result-affecting code (src/core, src/sim, src/trace,
                  src/workload, src/proxy, src/zoo) never reads the wall clock
                  (``system_clock``/``steady_clock``/``time()``/...).
                  Simulated time is the only clock results may see; wall
                  time lives in src/obs/ wall spans, which never feed
                  results. Fast regex backstop — tools/wcs_analyze.py's
                  wall-clock rule is the authoritative, AST-level check.
no-build-include  ``#include`` paths must never reach into a build tree;
                  generated headers differ per machine.
pragma-once       Every header carries ``#pragma once``.
no-float          ``float`` is banned in src/core/: byte accounting and rank
                  arithmetic must stay exact (uint64/int64; ``double`` is
                  allowed only for the paper's ratio outputs).
stats-coverage    Every counter field of ``CacheStats`` (src/core/cache.h)
                  and of ``ProxyCache::Stats`` (src/proxy/proxy.h) must be
                  mentioned in src/sim/metrics.{h,cpp} so reporting code —
                  stats_rows / proxy_stats_rows and the observability
                  publishers (publish_stats / publish_proxy_stats) — cannot
                  silently fall behind the structs.
no-raw-logging    Library code under src/ must not write to stdout/stderr
                  (``printf``/``fprintf``/``std::cout``/``std::cerr``).
                  Diagnostics flow through the observability subsystem
                  (src/obs/) or return values; ad-hoc prints are invisible
                  to the exporters and corrupt machine-read output (CSV,
                  JSONL). Allowed: src/obs/ (it owns the exporters),
                  src/util/table.cpp (renders to a caller's stream), and
                  src/core/audit.cpp (abort-path assert reporting).
no-using-namespace-header
                  Headers must not inject namespaces into every includer.
position-of-hot-path
                  ``SortedPolicy::position_of`` is a linear scan kept only
                  for tests and offline diagnostics; calling it from src/
                  puts an O(n) walk where the simulator expects O(log n).
                  Only its home (src/core/sorted_policy.{h,cpp}) may name
                  it; tests/ and bench/ may call it freely.
no-trace-scan-in-sim
                  ``trace.requests()`` loops inside src/sim/ materialize the
                  whole request vector in the hot path. Simulation code
                  streams through ``RequestSource`` (wrap a Trace in
                  ``TraceSource`` when a materialized pass is genuinely
                  needed); only the streaming-free field accesses of
                  ``stats.requests`` (no parens) remain legal.
no-unchecked-upstream
                  Direct ``upstream_(...)`` calls in src/proxy/ bypass the
                  resilience layer (retries, circuit breaker, negative
                  cache, stale-if-error) and its failure accounting. Only
                  the wrapper itself (src/proxy/resilience.{h,cpp}) may
                  call the raw upstream; everything else goes through
                  ``ResilientUpstream::fetch``.
policy-name-coverage
                  Every name ``make_policy_by_name`` resolves — the
                  ``lower == "..."`` built-ins in src/core/policy.cpp plus
                  everything src/zoo/registry.cpp registers — must appear,
                  quoted, in at least one test under tests/. By-name
                  surfaces (proxy config strings, topology tiers, demos)
                  otherwise accumulate names the suite never exercises.
no-node-based-hot-path
                  Node-based containers (``std::set``/``std::map`` and
                  their multi/unordered variants) are banned in src/core/:
                  the eviction hot path runs on flat arena-backed structures
                  (src/core/flat_index.h) — per-node allocation and pointer
                  chasing is the regression the flat engine removed. A
                  deliberate exception carries a justification on the same
                  line: ``// node-based-ok: <why>``.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

CPP_SUFFIXES = {".h", ".cpp"}
SOURCE_DIRS = ("src", "tests", "bench", "examples")

# The dirs whose output is (or feeds) a reproducible result table. src/obs/
# is deliberately absent: wall spans measure the machine, not the model.
RESULT_DIRS = ("src/core/", "src/sim/", "src/trace/", "src/workload/", "src/proxy/", "src/zoo/")


# -- path scopes -------------------------------------------------------------
# A scope is a predicate over the repo-relative posix path; combinators keep
# the rule table below readable.

PathPred = Callable[[str], bool]


def everywhere(_rel: str) -> bool:
    return True


def under(*prefixes: str) -> PathPred:
    return lambda rel: rel.startswith(prefixes)


def outside(*files: str) -> PathPred:
    return lambda rel: rel not in files


def headers(rel: str) -> bool:
    return rel.endswith(".h")


def all_of(*preds: PathPred) -> PathPred:
    return lambda rel: all(pred(rel) for pred in preds)


# -- declarative rule tables -------------------------------------------------


@dataclass(frozen=True)
class PatternRule:
    """One regex scanned per line of comment/string-stripped code.

    ``where`` narrows a match beyond the regex (e.g. only build-tree paths
    among all includes); ``raw`` matches the unstripped source instead
    (include directives live outside the token stream proper).
    """

    name: str
    pattern: re.Pattern
    message: str
    applies: PathPred
    where: Callable[[re.Match], bool] | None = None
    raw: bool = False


RNG_HOME = ("src/util/rng.h", "src/util/rng.cpp")
POSITION_OF_HOME = ("src/core/sorted_policy.h", "src/core/sorted_policy.cpp")
RESILIENCE_HOME = ("src/proxy/resilience.h", "src/proxy/resilience.cpp")
# The only library files allowed to own std::thread objects: the two
# audited concurrency seams (their lock discipline is TSA-annotated and
# TSan-tested in CI). Everything else hands parallel work to them.
CONCURRENCY_HOME = ("src/sim/runner.h", "src/sim/runner.cpp", "src/sim/loadgen.cpp")
RAW_LOGGING_ALLOWED = ("src/util/table.cpp", "src/core/audit.cpp")

_RNG_MESSAGE = ("{what} outside src/util/rng.* breaks trace-repro "
                "determinism; draw from wcs::Rng instead")

PATTERN_RULES: tuple[PatternRule, ...] = (
    PatternRule(
        name="rng-isolation",
        pattern=re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
        message=_RNG_MESSAGE.format(what="rand()/srand()"),
        applies=outside(*RNG_HOME)),
    PatternRule(
        name="rng-isolation",
        pattern=re.compile(r"\bstd\s*::\s*random_device\b"),
        message=_RNG_MESSAGE.format(what="std::random_device"),
        applies=outside(*RNG_HOME)),
    PatternRule(
        name="rng-isolation",
        pattern=re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
                           r"default_random_engine|ranlux\w+|knuth_b)\b"),
        message=_RNG_MESSAGE.format(what="a std <random> engine"),
        applies=outside(*RNG_HOME)),
    PatternRule(
        name="no-wall-clock",
        pattern=re.compile(r"std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
                           r"high_resolution_clock)\b|"
                           r"\b(?:std\s*::\s*)?time\s*\(|"
                           r"\b(?:gettimeofday|clock_gettime|localtime|gmtime|"
                           r"mktime|timegm)\s*\("),
        message=("wall-clock read in result-affecting code; results may only "
                 "see SimTime (wall time belongs to src/obs/ wall spans). "
                 "Authoritative check: tools/wcs_analyze.py wall-clock"),
        applies=under(*RESULT_DIRS)),
    PatternRule(
        name="no-build-include",
        pattern=re.compile(r'^\s*#\s*include\s*[<"]([^">]+)[">]'),
        message="#include of a build tree path",
        applies=everywhere,
        where=lambda match: re.search(r"(^|/)build[^/]*/", match.group(1)) is not None,
        raw=True),
    PatternRule(
        name="no-float",
        pattern=re.compile(r"\bfloat\b"),
        message=("'float' in byte-accounting code; use std::uint64_t / "
                 "std::int64_t (or double for final ratios)"),
        applies=under("src/core/")),
    PatternRule(
        name="no-using-namespace-header",
        pattern=re.compile(r"\busing\s+namespace\s+\w"),
        message="'using namespace' in a header leaks into every includer",
        applies=headers),
    PatternRule(
        name="position-of-hot-path",
        pattern=re.compile(r"\bposition_of\s*\("),
        message=("position_of() is an O(n) scan reserved for tests and "
                 "diagnostics; simulation code must stay O(log n) per op"),
        applies=all_of(under("src/"), outside(*POSITION_OF_HOME))),
    PatternRule(
        name="no-unchecked-upstream",
        pattern=re.compile(r"\bupstream_\s*\("),
        message=("direct upstream_(...) call bypasses the resilience "
                 "wrapper (retries, breaker, stale-if-error); route "
                 "through ResilientUpstream::fetch instead"),
        applies=all_of(under("src/proxy/"), outside(*RESILIENCE_HOME))),
    PatternRule(
        name="no-raw-logging",
        # \b keeps snprintf (string formatting, not logging) legal.
        pattern=re.compile(r"\b(?:std\s*::\s*)?(?:printf|fprintf)\s*\(|"
                           r"std\s*::\s*(?:cout|cerr)\b"),
        message=("raw stdout/stderr write in library code; route "
                 "diagnostics through src/obs/ (events, metrics) or "
                 "return them to the caller"),
        applies=all_of(under("src/"),
                       lambda rel: not rel.startswith("src/obs/"),
                       outside(*RAW_LOGGING_ALLOWED))),
    PatternRule(
        name="no-unguarded-shared-state",
        # `std::thread::` (hardware_concurrency, id — read-only queries, not
        # spawns) stays legal everywhere; `std::this_thread` never matches.
        pattern=re.compile(r"std\s*::\s*(?:jthread\b|async\b|thread\b(?!\s*::))"),
        message=("thread spawn outside the audited concurrency seams; "
                 "library code must hand parallel work to ParallelRunner "
                 "(src/sim/runner) or run_load (src/sim/loadgen), whose "
                 "lock discipline is TSA-annotated and TSan-tested"),
        applies=all_of(under("src/"), outside(*CONCURRENCY_HOME))),
    PatternRule(
        name="no-trace-scan-in-sim",
        pattern=re.compile(r"\.\s*requests\s*\(\s*\)"),
        message=("scanning trace.requests() in src/sim/ bypasses the "
                 "streaming architecture; pull from a RequestSource "
                 "(TraceSource for a materialized pass) instead"),
        applies=under("src/sim/")),
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks.

    A lexer-lite pass: good enough for the token-level patterns above without
    false-positives from prose in comments ("uniformly random order") or
    quoted examples.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated literal; bail to newline
                    break
                i += 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []
        self.github: list[str] = []

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{line}: [{rule}] {message}")
        self.github.append(
            f"::error file={rel},line={line},title=lint {rule}::{message}")

    # -- per-file dispatch ---------------------------------------------------

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()

        for rule in PATTERN_RULES:
            if not rule.applies(rel):
                continue
            lines = raw_lines if rule.raw else code_lines
            for lineno, line in enumerate(lines, 1):
                match = rule.pattern.search(line)
                if match is None:
                    continue
                if rule.where is not None and not rule.where(match):
                    continue
                self.report(path, lineno, rule.name, rule.message)

        for name, check in FILE_RULES:
            check(self, path, rel, raw)

    # -- whole-file rules ----------------------------------------------------

    def check_pragma_once(self, path: Path, rel: str, raw: str) -> None:
        if rel.endswith(".h") and "#pragma once" not in raw:
            self.report(path, 1, "pragma-once", "header is missing '#pragma once'")

    NODE_CONTAINER_RE = re.compile(
        r"\bstd\s*::\s*(?:unordered_)?(?:multi)?(?:set|map)\b")
    NODE_OK_RE = re.compile(r"node-based-ok:\s*\S")

    def check_no_node_based_hot_path(self, path: Path, rel: str, raw: str) -> None:
        """Ban node-based std containers from the eviction hot path.

        Needs the *raw* line alongside the stripped one (the allowlist
        marker lives in a comment), hence a file rule rather than a
        PatternRule row.
        """
        if not rel.startswith("src/core/"):
            return
        raw_lines = raw.splitlines()
        for lineno, line in enumerate(
                strip_comments_and_strings(raw).splitlines(), 1):
            if self.NODE_CONTAINER_RE.search(line) is None:
                continue
            if self.NODE_OK_RE.search(raw_lines[lineno - 1]):
                continue
            self.report(
                path, lineno, "no-node-based-hot-path",
                "node-based std container in src/core/; the eviction hot "
                "path uses the flat structures in src/core/flat_index.h "
                "(justify a deliberate exception with '// node-based-ok: "
                "<why>' on the same line)")

    # -- whole-repo rules ----------------------------------------------------

    def lint_stats_coverage(self) -> None:
        # A partial tree (linting a subdirectory extract) simply skips the
        # coverage rule instead of crashing on the absent files.
        sources = [self.root / "src/sim/metrics.h", self.root / "src/sim/metrics.cpp"]
        if not all(path.is_file() for path in sources):
            return
        metrics = "".join(path.read_text() for path in sources)
        self._check_struct_coverage(
            self.root / "src/core/cache.h",
            re.compile(r"struct\s+CacheStats\s*\{(.*?)\n\};", re.DOTALL),
            "CacheStats", "wcs::stats_rows()", metrics)
        self._check_struct_coverage(
            self.root / "src/proxy/proxy.h",
            re.compile(r"struct\s+Stats\s*\{(.*?)\n  \};", re.DOTALL),
            "ProxyCache::Stats", "wcs::proxy_stats_rows()", metrics)

    def _check_struct_coverage(self, header: Path, struct_re: re.Pattern,
                               struct_name: str, rows_fn: str, metrics: str) -> None:
        if not header.is_file():
            return
        struct = struct_re.search(header.read_text())
        if struct is None:
            self.report(header, 1, "stats-coverage",
                        f"could not locate struct {struct_name}")
            return
        body = strip_comments_and_strings(struct.group(1))
        counters = re.findall(r"\bstd::uint64_t\s+(\w+)\s*=", body)
        if not counters:
            self.report(header, 1, "stats-coverage",
                        f"no counters parsed from {struct_name}")
            return
        for counter in counters:
            if not re.search(rf"\b{re.escape(counter)}\b", metrics):
                self.report(
                    header, 1, "stats-coverage",
                    f"{struct_name} counter '{counter}' is never mentioned in "
                    f"src/sim/metrics.h or metrics.cpp; extend {rows_fn}")

    POLICY_NAME_RE = re.compile(r'lower\s*==\s*"([^"]+)"')
    REGISTER_POLICY_RE = re.compile(r'register_policy\(\s*"([^"]+)"')

    def lint_policy_name_coverage(self) -> None:
        """Every name make_policy_by_name resolves must appear, quoted, in
        at least one test. By-name surfaces (proxy config strings, topology
        tiers, the zoo registry) otherwise accumulate names the suite never
        exercises — a renamed or broken factory would ship silently."""
        policy_cpp = self.root / "src/core/policy.cpp"
        registry_cpp = self.root / "src/zoo/registry.cpp"
        tests_dir = self.root / "tests"
        if not policy_cpp.is_file() or not tests_dir.is_dir():
            return  # partial tree: skip rather than crash
        # Raw text on purpose: the names live inside string literals, which
        # strip_comments_and_strings would blank out.
        names: dict[str, Path] = {}
        for match in self.POLICY_NAME_RE.finditer(policy_cpp.read_text()):
            names.setdefault(match.group(1), policy_cpp)
        if registry_cpp.is_file():
            for match in self.REGISTER_POLICY_RE.finditer(registry_cpp.read_text()):
                names.setdefault(match.group(1), registry_cpp)
        if not names:
            self.report(policy_cpp, 1, "policy-name-coverage",
                        "no by-name policies parsed from make_policy_by_name")
            return
        tests = "".join(
            path.read_text() for path in sorted(tests_dir.rglob("*.cpp")))
        for name in sorted(names):
            if f'"{name}"' not in tests:
                self.report(
                    names[name], 1, "policy-name-coverage",
                    f"policy name '{name}' resolves via make_policy_by_name "
                    "but is never exercised by name in tests/; add a by-name "
                    "test or retire the name")

    def run(self, github: bool = False) -> int:
        files = sorted(
            path
            for directory in SOURCE_DIRS
            for path in (self.root / directory).rglob("*")
            if path.suffix in CPP_SUFFIXES and path.is_file())
        if not files:
            print(f"lint.py: no sources found under {self.root}", file=sys.stderr)
            return 2
        for path in files:
            self.lint_file(path)
        for name, check in REPO_RULES:
            check(self)
        for finding in self.findings:
            print(finding)
        if github:
            for annotation in self.github:
                print(annotation)
        print(f"lint.py: {len(files)} files checked, {len(self.findings)} finding(s)")
        return 1 if self.findings else 0


# Whole-file and whole-repo rules: (name, callable) rows so the self-test
# can enumerate every rule by name (RULE_NAMES below).
FILE_RULES: tuple[tuple[str, Callable[[Linter, Path, str, str], None]], ...] = (
    ("pragma-once", Linter.check_pragma_once),
    ("no-node-based-hot-path", Linter.check_no_node_based_hot_path),
)
REPO_RULES: tuple[tuple[str, Callable[[Linter], None]], ...] = (
    ("stats-coverage", Linter.lint_stats_coverage),
    ("policy-name-coverage", Linter.lint_policy_name_coverage),
)

RULE_NAMES: tuple[str, ...] = tuple(
    dict.fromkeys([rule.name for rule in PATTERN_RULES]
                  + [name for name, _ in FILE_RULES]
                  + [name for name, _ in REPO_RULES]))


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    github = "--github" in args
    if github:
        args.remove("--github")
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parent.parent
    return Linter(root).run(github=github)


if __name__ == "__main__":
    sys.exit(main())
