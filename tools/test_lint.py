#!/usr/bin/env python3
"""Self-tests for tools/lint.py (ctest ``wcs_lint_selftest``).

Each directory under tools/testdata/lint/ is a miniature repo root named
after one lint rule. Running the real Linter over it must produce

  * the named rule, firing at every path containing ``bad`` (or
    ``missing``) — the rule works;
  * zero findings at every other path — the rule's scope and allowlists
    hold (each fixture plants the banned construct in an allowed location
    too: src/util/rng.cpp for rng-isolation, src/obs/ for no-raw-logging
    and no-wall-clock, ...).

The ``clean`` fixture asserts a compliant tree lints silent, and a
completeness check requires a fixture directory for every rule in
lint.RULE_NAMES — a new rule without a self-test fails here.

Exit 0 when all checks pass; 1 otherwise, one line per failure.
"""

from __future__ import annotations

import io
import re
import sys
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lint  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "testdata" / "lint"
FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\] ")

# Fixtures whose firing path cannot carry the bad/missing naming convention:
# stats-coverage anchors its finding on the struct's header, whose path is
# fixed by the rule itself.
EXPECTED_PATHS = {
    "stats_coverage": ["src/core/cache.h"],
    "policy_name_coverage": ["src/core/policy.cpp", "src/zoo/registry.cpp"],
}

failures: list[str] = []


def fail(message: str) -> None:
    failures.append(message)


def run_lint(root: Path) -> tuple[int, list[tuple[str, str]]]:
    """Run the real linter; return (exit_status, [(rule, posix_path), ...])."""
    out = io.StringIO()
    with redirect_stdout(out):
        status = lint.main([str(root)])
    findings = []
    for line in out.getvalue().splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.append((match.group("rule"), Path(match.group("path")).as_posix()))
    return status, findings


def check_fixture(fixture: Path) -> None:
    rule = fixture.name.replace("_", "-")
    status, findings = run_lint(fixture)
    expect_clean = fixture.name == "clean"

    bad_paths = EXPECTED_PATHS.get(fixture.name) or sorted(
        p.relative_to(fixture).as_posix()
        for p in fixture.rglob("*")
        if p.is_file() and ("bad" in p.name or "missing" in p.name))

    if expect_clean:
        if status != 0 or findings:
            fail(f"{fixture.name}: expected a silent lint, got {findings}")
        return

    if status != 1:
        fail(f"{fixture.name}: expected exit 1, got {status}")
    if not bad_paths:
        fail(f"{fixture.name}: fixture defines no bad/missing file")

    fired_paths = {path for r, path in findings if r == rule}
    for bad in bad_paths:
        if bad not in fired_paths:
            fail(f"{fixture.name}: [{rule}] did not fire at {bad} "
                 f"(findings: {findings})")

    # The rule's scope/allowlist must hold: no finding of any rule outside
    # the designated bad files.
    for r, path in findings:
        if path not in bad_paths:
            fail(f"{fixture.name}: unexpected [{r}] at {path} — "
                 "scope or allowlist regressed")


def main() -> int:
    fixtures = sorted(d for d in FIXTURES.iterdir() if d.is_dir())
    if not fixtures:
        print(f"test_lint: no fixtures under {FIXTURES}", file=sys.stderr)
        return 1

    for fixture in fixtures:
        check_fixture(fixture)

    # Completeness: every rule has a fixture, every fixture names a rule.
    fixture_rules = {d.name.replace("_", "-") for d in fixtures} - {"clean"}
    for rule in lint.RULE_NAMES:
        if rule not in fixture_rules:
            fail(f"rule [{rule}] has no fixture directory under testdata/lint/")
    for name in sorted(fixture_rules - set(lint.RULE_NAMES)):
        fail(f"fixture directory '{name}' matches no rule in lint.RULE_NAMES")

    # The empty-tree guard (exit 2) stays intact.
    status, _ = run_lint(FIXTURES / "clean" / "src")  # has no src/ underneath
    if status != 2:
        fail(f"empty tree: expected exit 2, got {status}")

    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"test_lint: {len(fixtures)} fixture(s), {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
