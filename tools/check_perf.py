#!/usr/bin/env python3
"""Gate BENCH_perf.json against the checked-in throughput floors.

Usage:
    python3 tools/check_perf.py BENCH_perf.json [baseline.json]
        [--tolerance 0.30] [--report report.json]

Reads the measurement JSON written by bench/bench_perf and the floor file
(default: bench/BENCH_perf_baseline.json next to this script's repo root).
A metric fails when

    measured < floor * (1 - tolerance)

i.e. the floors are already conservative and the tolerance (default 30%)
is slack on top, so only genuine regressions — an accidentally quadratic
hot path, a debug build, a re-introduced per-hit allocation storm — trip
the gate, not CI-runner jitter.

Floors/ceilings understood:
  grid.serial_requests_per_sec_floor   serial grid throughput
  grid.parallel_speedup_floor          parallel runner speedup; SKIPPED
                                       (annotated in the report) when the
                                       measurement says hardware_threads <= 1
                                       — a single-core runner cannot exhibit
                                       parallelism and gating on it would
                                       fail every run on such machines
  sharded.speedup_at_4_threads_floor   sharded-cache aggregate throughput at
                                       4 load-generator threads over the
                                       1-thread leg; SKIPPED (annotated)
                                       when hardware_threads < 4
  micro.requests_per_sec_floor         every micro row's absolute throughput
  micro.speedup_vs_legacy_floor        per-policy map {policy: floor} gating
                                       the flat engine's speedup over the
                                       retained node-based legacy engine
  zoo.requests_per_sec_floor           every zoo row's absolute throughput
                                       (GDSF / SLRU / W-TinyLFU on the BR
                                       preset)
  streaming.max_resident_fraction      ceiling, no tolerance
  faults.max_overhead_ratio            ceiling, tolerance applied
  obs.max_overhead_ratio               ceiling, tolerance applied
  topology.max_overhead_ratio          ceiling, tolerance applied: a 3-tier
                                       fault-free topology vs one flat proxy
                                       of equal total capacity

``--report`` writes a machine-readable JSON summary of every check — value,
floor, limit, status — plus a ``skipped`` list carrying the reason for any
check not run (CI archives it next to BENCH_perf.json).

Exit status: 0 clean, 1 any metric under its floor, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def fmt(value: float) -> str:
    """Counts print as integers, ratios keep their decimals."""
    return f"{value:,.0f}" if abs(value) >= 1000 else f"{value:,.2f}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="BENCH_perf.json written by bench_perf")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "bench" / "BENCH_perf_baseline.json"),
        help="floor file (default: bench/BENCH_perf_baseline.json)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="fractional slack below the floor (default 0.30)")
    parser.add_argument("--report", metavar="PATH",
                        help="write a JSON report of every check (and every "
                             "skipped check with its reason) to PATH")
    args = parser.parse_args()

    try:
        measured = json.loads(Path(args.measured).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_perf: cannot load inputs: {error}", file=sys.stderr)
        return 2

    failures: list[str] = []
    results: list[dict] = []
    skipped: list[dict] = []
    checked = 0

    def check(label: str, value: float, floor: float) -> None:
        nonlocal checked
        checked += 1
        limit = floor * (1.0 - args.tolerance)
        status = "ok" if value >= limit else "FAIL"
        print(f"  {status:4} {label}: {fmt(value)} (floor {fmt(floor)}, limit {fmt(limit)})")
        results.append({"metric": label, "value": value, "floor": floor,
                        "limit": limit, "kind": "floor", "status": status})
        if value < limit:
            failures.append(label)

    def skip(label: str, reason: str) -> None:
        print(f"  skip {label}: {reason}")
        skipped.append({"metric": label, "reason": reason})

    grid_floor = baseline.get("grid", {}).get("serial_requests_per_sec_floor")
    if grid_floor is not None:
        check("grid.serial_requests_per_sec",
              float(measured["grid"]["serial_requests_per_sec"]), float(grid_floor))

    # Parallel speedup: meaningless on a single hardware thread — the serial
    # and parallel legs run the same inline schedule there, so the "speedup"
    # is pure timer noise around 1.0. Skip (annotated), don't fail.
    speedup_floor = baseline.get("grid", {}).get("parallel_speedup_floor")
    if speedup_floor is not None:
        threads = int(measured.get("hardware_threads", 0))
        if threads <= 1:
            skip("grid.parallel_speedup",
                 f"hardware_threads == {threads}: no parallelism available "
                 "on this runner")
        else:
            check("grid.parallel_speedup",
                  float(measured["grid"]["parallel_speedup"]), float(speedup_floor))

    # Sharded scaling gate: aggregate throughput at 4 load-generator threads
    # vs 1 thread over the same sharded cache. Like grid.parallel_speedup,
    # the ratio is meaningless without the hardware to run 4 workers — skip
    # (annotated) below 4 hardware threads instead of failing every run on
    # small runners.
    sharded_floor = baseline.get("sharded", {}).get("speedup_at_4_threads_floor")
    if sharded_floor is not None:
        threads = int(measured.get("hardware_threads", 0))
        if threads < 4:
            skip("sharded.speedup_at_4_threads",
                 f"hardware_threads == {threads}: cannot exhibit 4-thread "
                 "scaling on this runner")
        else:
            check("sharded.speedup_at_4_threads",
                  float(measured["sharded"]["speedup_at_4_threads"]),
                  float(sharded_floor))

    micro_floor = baseline.get("micro", {}).get("requests_per_sec_floor")
    if micro_floor is not None:
        for row in measured.get("micro", []):
            label = f"micro.{row['workload']}.{row['policy']}.requests_per_sec"
            check(label, float(row["requests_per_sec"]), float(micro_floor))

    # Flat-vs-legacy speedup floors: per-policy, because the win differs by
    # comparator depth (a 3-key composite saves more per hit than pure LRU).
    legacy_floors = baseline.get("micro", {}).get("speedup_vs_legacy_floor") or {}
    if legacy_floors:
        for row in measured.get("micro", []):
            floor = legacy_floors.get(row["policy"])
            if floor is None or "speedup_vs_legacy" not in row:
                continue
            label = f"micro.{row['workload']}.{row['policy']}.speedup_vs_legacy"
            check(label, float(row["speedup_vs_legacy"]), float(floor))

    # Zoo rows: absolute throughput only. The zoo policies do strictly more
    # per touch than the core sorted policies (sketch updates, segment
    # migration, duels), so they get their own — lower — floor rather than
    # inheriting micro's.
    zoo_floor = baseline.get("zoo", {}).get("requests_per_sec_floor")
    if zoo_floor is not None:
        for row in measured.get("zoo", []):
            label = f"zoo.{row['workload']}.{row['policy']}.requests_per_sec"
            check(label, float(row["requests_per_sec"]), float(zoo_floor))

    # Streaming memory gate: a *ceiling*, not a floor. The streaming leg's
    # resident bytes must stay below max_resident_fraction of the
    # materialized trace's — if it creeps up, someone re-introduced an
    # O(requests) buffer into the streaming path. Tolerance is NOT applied:
    # the fraction is already far above the measured ratio.
    streaming_cap = baseline.get("streaming", {}).get("max_resident_fraction")
    if streaming_cap is not None and "streaming" in measured:
        checked += 1
        ratio = float(measured["streaming"]["resident_ratio"])
        cap = float(streaming_cap)
        status = "ok" if ratio <= cap else "FAIL"
        print(f"  {status:4} streaming.resident_ratio: {ratio:.3f} (ceiling {cap:.3f})")
        results.append({"metric": "streaming.resident_ratio", "value": ratio,
                        "ceiling": cap, "limit": cap, "kind": "ceiling",
                        "status": status})
        if ratio > cap:
            failures.append("streaming.resident_ratio")

    # Faults overhead gate: also a ceiling. The resilience wrapper must stay
    # within max_overhead_ratio of the direct-upstream path when no faults
    # are configured. Timing ratios are noisier than memory ratios, so the
    # --tolerance slack applies multiplicatively on top of the cap.
    # The obs gate is the same contract for the observability recorder:
    # attaching one to the proxy replay must stay within max_overhead_ratio
    # of the default null-recorder path. The topology gate likewise bounds
    # what the routing/failover ladder may cost: a fault-free multi-tier
    # topology vs a single flat proxy of equal total capacity.
    for section in ("faults", "obs", "topology"):
        cap_value = baseline.get(section, {}).get("max_overhead_ratio")
        if cap_value is None or section not in measured:
            continue
        checked += 1
        ratio = float(measured[section]["overhead_ratio"])
        cap = float(cap_value)
        limit = cap * (1.0 + args.tolerance)
        status = "ok" if ratio <= limit else "FAIL"
        print(f"  {status:4} {section}.overhead_ratio: {ratio:+.4f} "
              f"(ceiling {cap:.3f}, limit {limit:.3f})")
        results.append({"metric": f"{section}.overhead_ratio", "value": ratio,
                        "ceiling": cap, "limit": limit, "kind": "ceiling",
                        "status": status})
        if ratio > limit:
            failures.append(f"{section}.overhead_ratio")

    if args.report:
        report = {
            "schema": "wcs-perf-report-v1",
            "measured": str(args.measured),
            "baseline": str(args.baseline),
            "tolerance": args.tolerance,
            "checked": checked,
            "failures": failures,
            "skipped": skipped,
            "results": results,
        }
        try:
            Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        except OSError as error:
            print(f"check_perf: cannot write report: {error}", file=sys.stderr)
            return 2

    if checked == 0:
        print("check_perf: no metrics checked — baseline file defines no floors",
              file=sys.stderr)
        return 2
    if failures:
        print(f"check_perf: {len(failures)}/{checked} metric(s) below floor: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    skipped_note = f" ({len(skipped)} skipped)" if skipped else ""
    print(f"check_perf: {checked} metric(s) at or above their floors{skipped_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
