#!/usr/bin/env python3
"""Validate the four observability export formats (DESIGN.md §10).

Two modes:

    python3 tools/check_obs.py <dir>
        Validate an existing export directory containing events.jsonl,
        trace.json, metrics.prom and series.csv.

    python3 tools/check_obs.py --run <obs_report binary>
        Run the obs_report example into a temporary directory, require it to
        exit 0, then validate what it wrote. This is the ``wcs_obs_report``
        ctest; WCS_SCALE in the environment keeps it fast.

Exit status 0 when every file round-trips, 1 otherwise (one line per
problem). The checks are deliberately parsers, not golden files: they prove
the writers emit what the README tells users to load into jq / pandas /
Perfetto / Prometheus, without pinning byte-level output.
"""

from __future__ import annotations

import csv
import json
import subprocess
import sys
import tempfile
from pathlib import Path

EVENT_KINDS = {
    "admission", "eviction", "size_change_miss", "periodic_sweep",
    "upstream_retry", "breaker_transition", "stale_served", "negative_hit",
    "chaos_fault", "run_marker",
}

SERIES_HEADER = ("series,day,requests,hits,hit_rate,bytes,hit_bytes,"
                 "byte_hit_rate,annotation_label,annotation")

RESILIENCE_GAUGES = ("wcs_proxy_breaker_open_hosts",
                     "wcs_proxy_negative_cache_entries")

problems: list[str] = []


def problem(path: Path, message: str) -> None:
    problems.append(f"{path}: {message}")


def check_events_jsonl(path: Path) -> None:
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            problem(path, f"line {lineno}: not valid JSON ({error})")
            continue
        if not isinstance(event, dict):
            problem(path, f"line {lineno}: not a JSON object")
            continue
        if event.get("kind") not in EVENT_KINDS:
            problem(path, f"line {lineno}: unknown kind {event.get('kind')!r}")
        if not isinstance(event.get("t"), int):
            problem(path, f"line {lineno}: missing integer 't'")
        for key in ("url", "size", "a", "b"):
            if key in event and not isinstance(event[key], int):
                problem(path, f"line {lineno}: '{key}' is not an integer")
        if "ranks" in event:
            ranks = event["ranks"]
            if (not isinstance(ranks, list) or not ranks
                    or not all(isinstance(r, int) for r in ranks)):
                problem(path, f"line {lineno}: 'ranks' is not a non-empty int list")
        if "detail" in event and not isinstance(event["detail"], str):
            problem(path, f"line {lineno}: 'detail' is not a string")


def check_trace_json(path: Path, require_spans: bool = False) -> None:
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        problem(path, f"not valid JSON ({error})")
        return
    records = document.get("traceEvents")
    if not isinstance(records, list) or not records:
        problem(path, "no non-empty 'traceEvents' array")
        return
    phases = set()
    for index, record in enumerate(records):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            problem(path, f"{where}: not an object")
            continue
        for key, kind in (("name", str), ("ph", str), ("pid", int),
                          ("tid", int), ("ts", (int, float))):
            if not isinstance(record.get(key), kind):
                problem(path, f"{where}: missing/mistyped '{key}'")
        phase = record.get("ph")
        phases.add(phase)
        if phase == "X" and not isinstance(record.get("dur"), (int, float)):
            problem(path, f"{where}: complete span without 'dur'")
        if phase == "C" and not isinstance(record.get("args"), dict):
            problem(path, f"{where}: counter sample without 'args'")
        if phase not in {"M", "X", "i", "C"}:
            problem(path, f"{where}: unexpected phase {phase!r}")
    # "M" metadata is always written; "X" spans exist only when the run
    # recorded any (obs_report always does — enforced in --run mode).
    required = ("M", "X") if require_spans else ("M",)
    for expected in required:
        if expected not in phases:
            problem(path, f"no '{expected}' records (metadata/span tracks missing)")


def check_metrics_prom(path: Path) -> None:
    typed: dict[str, str] = {}
    histograms: dict[str, list[tuple[str, float]]] = {}
    counts: dict[str, float] = {}
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 and line.startswith("# HELP "):
                continue  # empty help text is legal
            if line.startswith("# TYPE "):
                if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram"):
                    problem(path, f"line {lineno}: malformed TYPE line")
                else:
                    typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problem(path, f"line {lineno}: unknown comment form")
            continue
        name, _, value = line.partition(" ")
        try:
            number = float(value)
        except ValueError:
            problem(path, f"line {lineno}: sample value {value!r} is not a number")
            continue
        base, _, labels = name.partition("{")
        metric = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                metric = base[: -len(suffix)]
        if metric not in typed:
            problem(path, f"line {lineno}: sample for {base!r} has no TYPE header")
            continue
        if base.endswith("_bucket"):
            le = labels.rstrip("}").removeprefix('le="').rstrip('"')
            bound = float("inf") if le == "+Inf" else float(le)
            histograms.setdefault(metric, []).append((number, bound))
        elif base.endswith("_count"):
            counts[metric] = number
    for metric, buckets in histograms.items():
        values = [value for value, _ in buckets]
        if values != sorted(values):
            problem(path, f"histogram {metric}: buckets are not cumulative")
        if buckets and buckets[-1][1] != float("inf"):
            problem(path, f"histogram {metric}: missing +Inf bucket")
        if buckets and metric in counts and buckets[-1][0] != counts[metric]:
            problem(path, f"histogram {metric}: +Inf bucket != _count")
    # The resilience occupancy gauges ride along with every proxy stats
    # snapshot: wherever wcs_proxy_* metrics appear, both must be present
    # and typed gauge (they move in both directions, unlike the counters).
    if any(name.startswith("wcs_proxy_") for name in typed):
        for gauge in RESILIENCE_GAUGES:
            if gauge not in typed:
                problem(path, f"missing resilience gauge {gauge}")
            elif typed[gauge] != "gauge":
                problem(path, f"{gauge}: TYPE {typed[gauge]}, expected gauge")


def check_series_csv(path: Path) -> None:
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            problem(path, "empty file (expected at least the header)")
            return
        if ",".join(header) != SERIES_HEADER:
            problem(path, f"header mismatch: {','.join(header)!r}")
            return
        for lineno, row in enumerate(reader, 2):
            if len(row) != len(header):
                problem(path, f"line {lineno}: {len(row)} columns")
                continue
            try:
                day = int(row[1])
                requests, hits = int(row[2]), int(row[3])
                hit_rate = float(row[4])
                bytes_, hit_bytes = int(row[5]), int(row[6])
                byte_hit_rate = float(row[7])
            except ValueError as error:
                problem(path, f"line {lineno}: {error}")
                continue
            if day < 0:
                problem(path, f"line {lineno}: negative day")
            if hits > requests:
                problem(path, f"line {lineno}: hits > requests")
            if hit_bytes > bytes_:
                problem(path, f"line {lineno}: hit_bytes > bytes")
            for rate in (hit_rate, byte_hit_rate):
                if not 0.0 <= rate <= 1.0:
                    problem(path, f"line {lineno}: rate {rate} outside [0, 1]")


def check_directory(directory: Path, require_spans: bool = False) -> None:
    checks = {
        "events.jsonl": check_events_jsonl,
        "trace.json": lambda p: check_trace_json(p, require_spans),
        "metrics.prom": check_metrics_prom,
        "series.csv": check_series_csv,
    }
    for name, check in checks.items():
        path = directory / name
        if not path.is_file():
            problem(path, "missing")
            continue
        check(path)


def main() -> int:
    args = sys.argv[1:]
    if len(args) == 2 and args[0] == "--run":
        with tempfile.TemporaryDirectory(prefix="wcs_obs_") as scratch:
            out_dir = Path(scratch) / "exports"
            result = subprocess.run([args[1], "--out", str(out_dir)],
                                    stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                                    text=True)
            if result.returncode != 0:
                print(result.stdout)
                print(f"check_obs.py: {args[1]} exited {result.returncode}")
                return 1
            check_directory(out_dir, require_spans=True)
    elif len(args) == 1 and not args[0].startswith("-"):
        check_directory(Path(args[0]))
    else:
        print(__doc__)
        return 2
    for entry in problems:
        print(entry)
    print(f"check_obs.py: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
