// Extension bench — §5 open problem 2, quantified:
//
//   "a cache is only useless for dynamic documents if the document content
//    completely changes; otherwise a portion but not all of the cached copy
//    remains valid ... a server could send the 'diff'"
//
// A population of semi-static pages (news front pages, course schedules) is
// edited daily with varying churn; a proxy revalidates every page each day.
// Measured: upstream bytes with plain HTTP/1.0 refetches vs with delta
// transfer, across edit sizes — the byte savings the paper predicts.
#include <iostream>
#include <vector>

#include "src/http/delta.h"
#include "src/proxy/origin.h"
#include "src/proxy/proxy.h"
#include "src/util/rng.h"
#include "src/util/table.h"

using namespace wcs;

namespace {

struct Scenario {
  const char* label;
  double edited_fraction;   // of the document, per edit
  int edits_per_day;        // documents edited each day
};

std::string make_page(Rng& rng, std::size_t size) {
  std::string page;
  page.reserve(size);
  while (page.size() < size) {
    page += "<tr><td>item " + std::to_string(rng.below(10'000)) + "</td><td>" +
            std::to_string(rng.below(100)) + "</td></tr>\n";
  }
  page.resize(size);
  return page;
}

void edit_page(Rng& rng, std::string& page, double fraction) {
  // Replace a contiguous region — a typical "update the changed rows" edit.
  const auto span = static_cast<std::size_t>(static_cast<double>(page.size()) * fraction);
  if (span == 0 || page.size() < span + 1) return;
  const std::size_t at = rng.below(page.size() - span);
  for (std::size_t i = 0; i < span; ++i) {
    page[at + i] = static_cast<char>('A' + rng.below(26));
  }
}

struct Result {
  std::uint64_t upstream_bytes = 0;
  std::uint64_t delta_updates = 0;
};

Result run(bool deltas_enabled, const Scenario& scenario) {
  constexpr int kPages = 40;
  constexpr int kDays = 30;
  constexpr std::size_t kPageSize = 24'000;

  Rng rng{0xde17a};
  OriginServer origin{"news.example"};
  std::vector<std::string> pages;
  for (int p = 0; p < kPages; ++p) {
    pages.push_back(make_page(rng, kPageSize));
    origin.put("/page" + std::to_string(p) + ".html", pages.back(), 0);
  }

  std::uint64_t upstream_bytes = 0;
  ProxyCache::Config config;
  config.capacity_bytes = 64ULL << 20;
  config.revalidate_after = kSecondsPerHour;  // daily visits always revalidate
  config.accept_deltas = deltas_enabled;
  ProxyCache proxy{config, [&](const HttpRequest& request, SimTime now) {
                     HttpResponse response = origin.handle(request, now);
                     upstream_bytes += response.body.size();
                     return response;
                   }};

  for (int day = 0; day < kDays; ++day) {
    const SimTime noon = day_start(day) + 12 * kSecondsPerHour;
    // Overnight edits.
    for (int e = 0; e < scenario.edits_per_day; ++e) {
      const auto p = static_cast<int>(rng.below(kPages));
      edit_page(rng, pages[static_cast<std::size_t>(p)], scenario.edited_fraction);
      origin.edit("/page" + std::to_string(p) + ".html",
                  pages[static_cast<std::size_t>(p)], noon - kSecondsPerHour);
    }
    // The morning crowd reads every page.
    for (int p = 0; p < kPages; ++p) {
      HttpRequest request;
      request.method = "GET";
      request.target = "http://news.example/page" + std::to_string(p) + ".html";
      (void)proxy.handle(request, noon + p);
    }
  }
  return {upstream_bytes, proxy.stats().delta_updates};
}

}  // namespace

int main() {
  std::cout << "§5 open problem 2 — delta transfer for semi-static documents\n"
               "40 pages x 24 kB, 30 days, every page revalidated daily\n\n";

  const std::vector<Scenario> scenarios = {
      {"light churn (1% edits, 4 pages/day)", 0.01, 4},
      {"medium churn (5% edits, 10 pages/day)", 0.05, 10},
      {"heavy churn (20% edits, 20 pages/day)", 0.20, 20},
      {"full rewrite (95% edits, 20 pages/day)", 0.95, 20},
  };

  Table table{"upstream bytes fetched by the proxy"};
  table.header({"scenario", "plain HTTP/1.0", "with deltas", "bytes saved", "delta updates"});
  for (const Scenario& scenario : scenarios) {
    const Result plain = run(false, scenario);
    const Result with_delta = run(true, scenario);
    const double saved =
        plain.upstream_bytes == 0
            ? 0.0
            : 1.0 - static_cast<double>(with_delta.upstream_bytes) /
                        static_cast<double>(plain.upstream_bytes);
    table.row({scenario.label, std::to_string(plain.upstream_bytes),
               std::to_string(with_delta.upstream_bytes), Table::pct(saved, 1),
               std::to_string(with_delta.delta_updates)});
  }
  table.print(std::cout);

  std::cout << "\nReading: the smaller the edit, the closer delta transfer gets to\n"
               "eliminating refetch traffic entirely; even heavy churn saves\n"
               "most of the bytes, and only near-total rewrites defeat it (the\n"
               "origin then declines to send a delta at all).\n";
  return 0;
}
