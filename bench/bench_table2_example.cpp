// Table 2 — the paper's worked removal example: a 42.5 kB cache, the
// 15-request trace over documents A-H, and a new 1.5 kB document I. Prints
// the key values (middle table) and, per policy, the sorted removal order
// and which documents are removed to make room for I (bottom table).
#include <iostream>
#include <map>
#include <vector>

#include "src/core/cache.h"
#include "src/core/policy.h"
#include "src/core/sorted_policy.h"
#include "src/util/table.h"

using namespace wcs;

namespace {

constexpr std::uint64_t kB = 1024;

struct Doc {
  UrlId id;
  std::uint64_t size;
};

const std::map<char, Doc> kDocs = {
    {'A', {1, 1945}}, {'B', {2, 1229}}, {'C', {3, 9216}},  {'D', {4, 15360}},
    {'E', {5, 8192}}, {'F', {6, 307}},  {'G', {7, 1945}},  {'H', {8, 5325}},
};
constexpr std::string_view kTrace = "ABCBBADECDFGADH";

Cache run_trace(std::unique_ptr<RemovalPolicy> policy) {
  CacheConfig config;
  config.capacity_bytes = static_cast<std::uint64_t>(42.5 * kB);
  Cache cache{config, std::move(policy)};
  SimTime t = 1;
  for (const char name : kTrace) {
    const Doc& doc = kDocs.at(name);
    cache.access(t++, doc.id, doc.size);
  }
  return cache;
}

}  // namespace

int main() {
  std::cout << "Table 2 — removal example, 42.5 kB cache, incoming document I = 1.5 kB\n\n";

  // Middle table: key values at time 15+.
  {
    Cache cache = run_trace(make_lru());
    Table table{"Key values at time 15+ (paper Table 2, middle)"};
    table.header({"URL", "SIZE (kB)", "floor(log2 SIZE)", "ETIME", "ATIME", "NREF"});
    for (const auto& [name, doc] : kDocs) {
      const CacheEntry* entry = cache.find(doc.id);
      table.row({std::string(1, name), Table::num(static_cast<double>(entry->size) / kB, 1),
                 std::to_string(64 - __builtin_clzll(entry->size) - 1),
                 std::to_string(entry->etime), std::to_string(entry->atime),
                 std::to_string(entry->nref)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Bottom table: per policy, sorted order and removals.
  struct Row {
    const char* label;
    std::function<std::unique_ptr<RemovalPolicy>()> factory;
  };
  const std::vector<Row> rows = {
      {"SIZE + ATIME", [] { return make_sorted_policy(KeySpec{{Key::kSize, Key::kAtime}}); }},
      {"LOG2SIZE + ATIME",
       [] { return make_sorted_policy(KeySpec{{Key::kLog2Size, Key::kAtime}}); }},
      {"ETIME (FIFO)", [] { return make_fifo(); }},
      {"ATIME (LRU)", [] { return make_lru(); }},
      {"NREF + ETIME", [] { return make_sorted_policy(KeySpec{{Key::kNref, Key::kEtime}}); }},
      {"Hyper-G", [] { return make_hyper_g(); }},
      {"LRU-MIN", [] { return make_lru_min(); }},
      {"Pitkow/Recker", [] { return make_pitkow_recker(); }},
  };

  Table table{"Removals to admit I (paper Table 2, bottom; * = removed)"};
  table.header({"policy", "sorted head -> tail (before I)", "removed"});
  for (const Row& row : rows) {
    Cache cache = run_trace(row.factory());
    // Render the sorted order where the policy exposes one.
    std::string order;
    if (auto* sorted = dynamic_cast<SortedPolicy*>(&cache.policy())) {
      std::vector<std::pair<std::size_t, char>> positions;
      for (const auto& [name, doc] : kDocs) {
        positions.emplace_back(*sorted->position_of(doc.id), name);
      }
      std::sort(positions.begin(), positions.end());
      for (const auto& [pos, name] : positions) {
        order += name;
        order += ' ';
      }
    } else {
      order = "(threshold/day-dependent)";
    }
    cache.access(16, 9, static_cast<std::uint64_t>(1.5 * kB));
    std::string removed;
    for (const auto& [name, doc] : kDocs) {
      if (!cache.contains(doc.id)) {
        removed += name;
        removed += "* ";
      }
    }
    table.row({row.label, order, removed});
  }
  table.print(std::cout);

  std::cout << "\nPaper checks: SIZE removes D; LRU removes B then E; FIFO removes A;\n"
               "LOG2SIZE+ATIME, NREF+ETIME, Hyper-G and LRU-MIN remove E;\n"
               "Pitkow/Recker (all docs touched today) falls back to SIZE -> D.\n";
  return 0;
}
