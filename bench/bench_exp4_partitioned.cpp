// Experiment 4 (Figs 19-20): partitioned cache on workload BR — the audio
// partition gets 1/4, 1/2 or 3/4 of a total budget of 10% of MaxNeeded, the
// rest serves non-audio documents. WHRs are measured over ALL requests,
// with the infinite-cache per-class WHR as the reference curve.
#include "bench/common.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("Experiment 4 — partitioned cache (audio vs non-audio) on workload BR");
  print_calibration("BR");

  const Trace& trace = workload("BR").trace;
  const Experiment1Result infinite = run_experiment1("BR", trace);
  // Each partition split is one cell on the shared WCS_JOBS pool.
  const Experiment4Result result =
      run_experiment4("BR", trace, infinite.max_needed, 0.10, {0.25, 0.5, 0.75},
                      ParallelRunner::shared());

  Table table{"WHR over all requests, total cache = " +
              Table::num(static_cast<double>(result.total_capacity) / 1e6, 1) +
              " MB (10% of MaxNeeded), SIZE policy"};
  table.header({"audio share", "audio WHR", "non-audio WHR", "combined WHR"});
  for (const Experiment4Curve& curve : result.curves) {
    table.row({Table::num(curve.audio_fraction, 2), Table::pct(curve.audio_whr, 1),
               Table::pct(curve.non_audio_whr, 1),
               Table::pct(curve.audio_whr + curve.non_audio_whr, 1)});
  }
  table.print(std::cout);

  std::cout << "\nFig 19 — audio WHR (infinite reference first):\n";
  print_curve("infinite audio WHR", result.infinite_audio_whr, 0.0, 1.0);
  for (const Experiment4Curve& curve : result.curves) {
    print_curve(Table::num(curve.audio_fraction, 2) + " of cache is audio   ",
                curve.audio_smoothed_whr, 0.0, 1.0);
  }
  std::cout << "\nFig 20 — non-audio WHR (infinite reference first):\n";
  print_curve("infinite non-audio WHR", result.infinite_non_audio_whr, 0.0, 0.25);
  for (const Experiment4Curve& curve : result.curves) {
    print_curve(Table::num(1.0 - curve.audio_fraction, 2) + " of cache is non-audio",
                curve.non_audio_smoothed_whr, 0.0, 0.25);
  }

  std::cout << "\nPaper shape checks:\n"
               "  - heavy audio volume overwhelms even a 3/4 audio partition of a\n"
               "    10% cache (audio WHR far below the infinite reference)\n"
               "  - growing the audio share helps audio and hurts non-audio;\n"
               "    the equal split maximizes the combined WHR\n";
  return 0;
}
