// Fig 15: secondary-key study. Primary key LOG2SIZE (chosen because its
// buckets tie often, exercising the secondary key more than SIZE would);
// each candidate secondary key's WHR is plotted as a ratio to the WHR with
// a RANDOM secondary key. The paper's finding: no secondary key matters —
// the ratio hugs 100%, NREF peaking ~105% with an overall mean ~101%.
#include "bench/common.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("Fig 15 — secondary sort key performance vs random secondary");

  // One cell per workload study; each study fans its per-secondary-key
  // simulations out as nested cells (run inline on the owning worker).
  ParallelRunner& runner = ParallelRunner::shared();
  const std::vector<std::string> names = {"G", "U", "C", "BL", "BR"};
  preload_workloads(names, runner);
  const std::vector<SecondaryKeyResult> results = runner.map(names.size(), [&](std::size_t i) {
    return [&names, i] {
      return run_secondary_key_study(names[i], workload(names[i]).trace, 0.10);
    };
  });

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const SecondaryKeyResult& result = results[i];

    Table table{"workload " + std::string{name} +
                ", primary LOG2SIZE, 10% of MaxNeeded"};
    table.header({"secondary key", "WHR % of random", "HR % of random"});
    for (const SecondaryKeyOutcome& outcome : result.outcomes) {
      table.row({outcome.secondary, Table::num(outcome.whr_pct_of_random, 2),
                 Table::num(outcome.hr_pct_of_random, 2)});
    }
    table.print(std::cout);
    if (std::string{name} == "G") {
      std::cout << "Daily WHR ratio curves (percent of random-secondary WHR):\n";
      for (const SecondaryKeyOutcome& outcome : result.outcomes) {
        print_curve(outcome.secondary, outcome.whr_ratio_curve, 90.0, 110.0);
      }
    }
    std::cout << '\n';
  }

  std::cout << "Paper shape checks:\n"
               "  - all ratios stay within a few percent of 100\n"
               "  - no secondary key is consistently above 100 by enough to\n"
               "    justify non-random tie-breaking (paper: overall 101.14% for\n"
               "    NREF on G was the best case)\n";
  return 0;
}
