// Experiment 2, full design: all 36 primary x secondary key combinations
// (Table 5's key factor) at both cache sizes (10% and 50% of MaxNeeded),
// per workload — the complete factor-level sweep behind §4.2-4.5 — plus
// the literature policies of Table 3 (FIFO, LRU, LFU, Hyper-G, LRU-MIN,
// Pitkow/Recker with and without its end-of-day sweep).
#include "bench/common.h"

#include <algorithm>

using namespace wcs;
using namespace wcs::bench;

namespace {

void print_matrix(const Experiment2Result& result) {
  Table table{"workload " + result.workload + ", cache = " +
              Table::num(result.cache_fraction * 100, 0) + "% of MaxNeeded (" +
              Table::num(static_cast<double>(result.capacity_bytes) / 1e6, 1) + " MB)"};
  table.header({"policy (primary+secondary)", "HR", "%inf HR", "WHR", "%inf WHR"});
  std::vector<PolicyOutcome> sorted = result.outcomes;
  std::sort(sorted.begin(), sorted.end(),
            [](const PolicyOutcome& a, const PolicyOutcome& b) { return a.hr > b.hr; });
  for (const PolicyOutcome& outcome : sorted) {
    table.row({outcome.policy, Table::pct(outcome.hr, 1),
               Table::num(outcome.hr_pct_of_infinite, 1), Table::pct(outcome.whr, 1),
               Table::num(outcome.whr_pct_of_infinite, 1)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  print_header("Experiment 2 — full 36-policy matrix + literature policies (Table 5)");
  const auto grid = KeySpec::experiment2_grid();

  // Fan the grid out on the WCS_JOBS-sized pool: workload generation and
  // the per-workload infinite-cache references are one cell each, then
  // every (policy, capacity) simulation is a cell inside run_experiment2.
  // Results collect in submission order, so output is identical to the old
  // serial loops for any job count.
  ParallelRunner& runner = ParallelRunner::shared();
  const std::vector<std::string> names = {"U", "G", "C", "BL", "BR"};
  preload_workloads(names, runner);
  const std::vector<Experiment1Result> infinites = runner.map(names.size(), [&](std::size_t i) {
    return [&names, i] { return run_experiment1(names[i], workload(names[i]).trace); };
  });

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const Trace& trace = workload(name).trace;
    for (const double fraction : {0.10, 0.50}) {
      print_matrix(run_experiment2(name, trace, infinites[i], fraction, grid, runner));
    }
    std::cout << "Literature policies (Table 3), 10% of MaxNeeded:\n";
    print_matrix(run_experiment2_literature(name, trace, infinites[i], 0.10, runner));
  }

  std::cout << "Paper shape checks:\n"
               "  - every SIZE-primary and LOG2SIZE-primary combination tops the\n"
               "    HR ranking regardless of secondary key\n"
               "  - the secondary key barely moves either metric (see also\n"
               "    bench_exp2_secondary_keys)\n"
               "  - at 50% of MaxNeeded every policy closes most of the gap to\n"
               "    the infinite cache\n";
  return 0;
}
