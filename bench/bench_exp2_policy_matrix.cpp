// Experiment 2, full design: all 36 primary x secondary key combinations
// (Table 5's key factor) at both cache sizes (10% and 50% of MaxNeeded),
// per workload — the complete factor-level sweep behind §4.2-4.5 — plus
// the literature policies of Table 3 (FIFO, LRU, LFU, Hyper-G, LRU-MIN,
// Pitkow/Recker with and without its end-of-day sweep).
#include "bench/common.h"

#include <algorithm>

using namespace wcs;
using namespace wcs::bench;

namespace {

void print_matrix(const Experiment2Result& result) {
  Table table{"workload " + result.workload + ", cache = " +
              Table::num(result.cache_fraction * 100, 0) + "% of MaxNeeded (" +
              Table::num(static_cast<double>(result.capacity_bytes) / 1e6, 1) + " MB)"};
  table.header({"policy (primary+secondary)", "HR", "%inf HR", "WHR", "%inf WHR"});
  std::vector<PolicyOutcome> sorted = result.outcomes;
  std::sort(sorted.begin(), sorted.end(),
            [](const PolicyOutcome& a, const PolicyOutcome& b) { return a.hr > b.hr; });
  for (const PolicyOutcome& outcome : sorted) {
    table.row({outcome.policy, Table::pct(outcome.hr, 1),
               Table::num(outcome.hr_pct_of_infinite, 1), Table::pct(outcome.whr, 1),
               Table::num(outcome.whr_pct_of_infinite, 1)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  print_header("Experiment 2 — full 36-policy matrix + literature policies (Table 5)");
  const auto grid = KeySpec::experiment2_grid();

  for (const char* name : {"U", "G", "C", "BL", "BR"}) {
    const Trace& trace = workload(name).trace;
    const Experiment1Result infinite = run_experiment1(name, trace);
    for (const double fraction : {0.10, 0.50}) {
      print_matrix(run_experiment2(name, trace, infinite, fraction, grid));
    }
    std::cout << "Literature policies (Table 3), 10% of MaxNeeded:\n";
    print_matrix(run_experiment2_literature(name, trace, infinite, 0.10));
  }

  std::cout << "Paper shape checks:\n"
               "  - every SIZE-primary and LOG2SIZE-primary combination tops the\n"
               "    HR ranking regardless of secondary key\n"
               "  - the secondary key barely moves either metric (see also\n"
               "    bench_exp2_secondary_keys)\n"
               "  - at 50% of MaxNeeded every policy closes most of the gap to\n"
               "    the infinite cache\n";
  return 0;
}
