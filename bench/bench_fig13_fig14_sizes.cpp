// Figs 13-14 (workload BL): the request-size histogram whose mass below a
// few kB explains why SIZE wins (Fig 13), and the size vs interreference-
// time structure showing weak temporal locality (Fig 14) — summarized as
// quantiles of the sample cloud plus the observations the paper reads off
// the scatter plot.
#include "bench/common.h"

#include <algorithm>

#include "src/trace/trace_stats.h"
#include "src/util/stats.h"
#include "src/util/strings.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("Figs 13-14 — document sizes and interreference times (workload BL)");
  print_calibration("BL");
  const Trace& trace = workload("BL").trace;

  // Fig 13: request counts per size bin (paper bins up to 20 kB).
  const LinearHistogram hist = request_size_histogram(trace, 20'000.0, 20);
  Table fig13{"Fig 13 — requests per document size (1 kB bins, last bin = >19 kB)"};
  fig13.header({"size bin", "requests", "cumulative %"});
  for (std::size_t bin = 0; bin < hist.bin_count(); ++bin) {
    fig13.row({std::to_string(static_cast<int>(hist.bin_lo(bin) / 1000)) + "-" +
                   std::to_string(static_cast<int>(hist.bin_hi(bin) / 1000)) + " kB",
               std::to_string(hist.count(bin)),
               Table::pct(hist.cumulative_fraction(bin), 1)});
  }
  fig13.print(std::cout);
  {
    std::vector<double> counts;
    for (std::size_t bin = 0; bin < hist.bin_count(); ++bin) {
      counts.push_back(static_cast<double>(hist.count(bin)));
    }
    const double peak = *std::max_element(counts.begin(), counts.end());
    std::cout << "  shape: " << sparkline(counts, 0.0, peak) << '\n';
  }

  // Fig 14: one (size, gap) sample per re-reference.
  const auto samples = interreference_samples(trace);
  const InterreferenceSummary summary = summarize_interreference(samples);
  Table fig14{"Fig 14 — size vs time since last reference (summary of the cloud)"};
  fig14.header({"metric", "value"});
  fig14.row({"re-reference samples", std::to_string(summary.samples)});
  fig14.row({"median size of re-referenced doc", format_bytes(
                 static_cast<std::uint64_t>(summary.median_size))});
  fig14.row({"median interreference gap", format_duration(
                 static_cast<SimTime>(summary.median_gap_seconds))});
  fig14.row({"mean interreference gap", format_duration(
                 static_cast<SimTime>(summary.mean_gap_seconds))});
  fig14.row({"fraction of gaps > 1 hour", Table::pct(summary.fraction_gap_over_hour, 1)});
  fig14.print(std::cout);

  // The paper's reading of the scatter: the center of mass sits at small
  // sizes (~1 kB) with large gaps (~4 hours) -> little temporal locality,
  // so ATIME/LRU discards documents that will be referenced again.
  std::vector<double> gaps;
  std::uint64_t mb_range_rerefs = 0;
  for (const auto& sample : samples) {
    gaps.push_back(static_cast<double>(sample.gap));
    if (sample.size >= 1'000'000 && sample.size <= 2'000'000) ++mb_range_rerefs;
  }
  if (!gaps.empty()) {
    std::cout << "  gap p25/p50/p75: " << format_duration(static_cast<SimTime>(
                     percentile(gaps, 25)))
              << " / " << format_duration(static_cast<SimTime>(percentile(gaps, 50)))
              << " / " << format_duration(static_cast<SimTime>(percentile(gaps, 75))) << '\n';
  }
  std::cout << "  re-references to 1-2 MB documents: " << mb_range_rerefs
            << " (paper: \"a fairly large number\")\n";

  std::cout << "\nPaper shape checks:\n"
               "  - Fig 13 mass is concentrated in the smallest bins\n"
               "  - median interreference gap is hours, not seconds: weak\n"
               "    temporal locality, which is why LRU underperforms\n";
  return 0;
}
