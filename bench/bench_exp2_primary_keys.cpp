// Experiment 2, primary keys (Figs 8-12 + §4.4): for each workload, the
// ratio of finite-cache HR (10% of MaxNeeded, random secondary key) to the
// infinite-cache HR, per primary key — the paper's central result that
// SIZE-based removal maximizes hit rate — plus the WHR comparison where the
// ranking flips.
#include "bench/common.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header(
      "Experiment 2 — primary sort key performance at 10% of MaxNeeded (Figs 8-12, §4.4)");

  std::vector<KeySpec> specs;
  for (const Key key : kPrimaryKeys) specs.push_back(KeySpec{{key, Key::kRandom}});

  // Cells: workload generation, then per-workload (infinite reference +
  // 6-policy sweep); collection order keeps the printout deterministic.
  ParallelRunner& runner = ParallelRunner::shared();
  const std::vector<std::string> names = {"U", "G", "C", "BL", "BR"};
  preload_workloads(names, runner);
  const std::vector<Experiment2Result> results = runner.map(names.size(), [&](std::size_t i) {
    return [&names, &specs, i] {
      const Trace& trace = workload(names[i]).trace;
      const Experiment1Result infinite = run_experiment1(names[i], trace);
      return run_experiment2(names[i], trace, infinite, 0.10, specs);
    };
  });

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const Experiment2Result& result = results[i];

    const std::string fig = std::string{name} == "U"    ? "8"
                            : std::string{name} == "G"  ? "9"
                            : std::string{name} == "C"  ? "10"
                            : std::string{name} == "BL" ? "11"
                                                        : "12";
    Table table{"Fig " + fig + " — workload " + std::string{name} + ", cache = " +
                Table::num(static_cast<double>(result.capacity_bytes) / 1e6, 1) +
                " MB (10% of MaxNeeded)"};
    table.header({"primary key", "HR", "% of infinite HR", "WHR", "% of infinite WHR"});
    for (const PolicyOutcome& outcome : result.outcomes) {
      table.row({outcome.policy, Table::pct(outcome.hr, 1),
                 Table::num(outcome.hr_pct_of_infinite, 1), Table::pct(outcome.whr, 1),
                 Table::num(outcome.whr_pct_of_infinite, 1)});
    }
    table.print(std::cout);
    std::cout << "Daily HR ratio curves (percent of infinite-cache HR):\n";
    for (const PolicyOutcome& outcome : result.outcomes) {
      print_curve(outcome.policy, outcome.hr_ratio_curve, 0.0, 100.0);
    }
    std::cout << '\n';
  }

  std::cout << "Paper shape checks:\n"
               "  - SIZE and LOG2SIZE achieve the highest HR on every workload,\n"
               "    >90% of optimal most of the time at only 10% of MaxNeeded\n"
               "  - NREF (LFU) is second best; ATIME (LRU) and DAY(ATIME) follow;\n"
               "    ETIME (FIFO) is worst\n"
               "  - On WHR the ranking flips: SIZE is worst on the byte-heavy\n"
               "    workloads and NREF is clearly best on BR\n";
  return 0;
}
