// Experiment 1 (Figs 3-7 + the §4.1 MaxNeeded table): infinite-cache daily
// hit rate and weighted hit rate for all five workloads — the theoretical
// maxima no removal policy can beat — and the cache size needed so that no
// document is ever removed.
#include "bench/common.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("Experiment 1 — maximum possible HR/WHR (infinite cache), Figs 3-7");

  // Paper MaxNeeded values, MB (§4.1).
  const std::map<std::string, double> paper_max_needed = {
      {"U", 1400.0}, {"G", 413.0}, {"C", 221.0}, {"BR", 198.0}, {"BL", 408.0}};
  // Paper mean-over-days rates quoted in §5 ("~50%" for U/G/C, 95% WHR BR).

  Table table{"§4.1 — cache size for zero replacements (MaxNeeded)"};
  table.header({"workload", "MaxNeeded (sim)", "paper (scaled)", "overall HR", "overall WHR",
                "mean daily HR", "mean daily WHR"});

  for (const char* name : {"U", "G", "C", "BR", "BL"}) {
    print_calibration(name);
    const Experiment1Result result = run_experiment1(name, workload(name).trace);
    table.row({name, Table::num(static_cast<double>(result.max_needed) / 1e6, 1) + " MB",
               Table::num(paper_max_needed.at(name) * scale_from_env(), 1) + " MB",
               Table::pct(result.overall_hr, 1), Table::pct(result.overall_whr, 1),
               Table::pct(result.mean_daily_hr, 1), Table::pct(result.mean_daily_whr, 1)});

    std::cout << "Fig " << (std::string{name} == "U"    ? "3"
                            : std::string{name} == "G"  ? "4"
                            : std::string{name} == "C"  ? "5"
                            : std::string{name} == "BL" ? "6"
                                                        : "7")
              << " — workload " << name << ", 7-day moving average:\n";
    print_curve("HR ", result.smoothed_hr, 0.0, 1.0);
    print_curve("WHR", result.smoothed_whr, 0.0, 1.0);
    std::cout << '\n';
  }
  table.print(std::cout);

  std::cout << "\nPaper shape checks:\n"
               "  - BR sustains ~98% HR and WHR (one popular audio site)\n"
               "  - U dips at the semester break and declines for good when the\n"
               "    fall influx of new users arrives (~day 155)\n"
               "  - G climbs at the end of the semester (exam review)\n"
               "  - U/G/C mean daily rates sit around 50%\n";
  return 0;
}
