// Shared scaffolding for the reproduction benches.
//
// Every bench binary regenerates one of the paper's tables or figures:
// it prints the workload calibration table (generated vs paper), then the
// table rows / figure series. Figures are rendered three ways: summary
// statistics, a terminal sparkline conveying curve shape, and a
// gnuplot-ready data block (enable with WCS_GNUPLOT=1).
//
// WCS_SCALE scales request volume and footprint (default 1.0 = the paper's
// published trace sizes; use e.g. WCS_SCALE=0.1 for a quick smoke run).
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/experiments.h"
#include "src/sim/runner.h"
#include "src/util/table.h"
#include "src/util/thread_annotations.h"
#include "src/workload/generator.h"
#include "src/workload/report.h"

namespace wcs::bench {

inline double scale_from_env() {
  if (const char* text = std::getenv("WCS_SCALE")) {
    const double value = std::atof(text);
    if (value > 0.0) return value;
  }
  return 1.0;
}

inline bool gnuplot_from_env() {
  const char* text = std::getenv("WCS_GNUPLOT");
  return text != nullptr && text[0] != '\0' && text[0] != '0';
}

/// Memoized workload presets at the bench scale.
///
/// Thread-safe, and statically provably so under the `tsa` preset: the
/// slot map is WCS_GUARDED_BY its mutex, so any future access outside the
/// critical section fails the `-Wthread-safety -Werror` build instead of
/// racing at runtime. Each preset generates under its own std::once_flag,
/// so ParallelRunner cells may request workloads concurrently — two cells
/// asking for *distinct* presets generate in parallel, two asking for the
/// *same* preset generate once and share the result (call_once publishes
/// the generated value to every waiter). Slots are heap-allocated so the
/// returned reference stays stable across later insertions.
class WorkloadCache {
 public:
  const GeneratedWorkload& get(const std::string& name) WCS_EXCLUDES(mutex_) {
    Slot* slot = nullptr;
    {
      const MutexLock lock{mutex_};
      auto& owned = slots_[name];
      if (!owned) owned = std::make_unique<Slot>();
      slot = owned.get();
    }
    // Outside the map lock: generation is long, and holding mutex_ here
    // would serialize distinct presets behind one generator.
    std::call_once(slot->once, [slot, &name] {
      WorkloadGenerator generator{WorkloadSpec::preset(name).scaled(scale_from_env())};
      slot->value = generator.generate();
    });
    return *slot->value;
  }

  static WorkloadCache& shared() {
    static WorkloadCache cache;
    return cache;
  }

 private:
  struct Slot {
    std::once_flag once;
    std::optional<GeneratedWorkload> value;  // written once, under `once`
  };

  Mutex mutex_;
  std::map<std::string, std::unique_ptr<Slot>> slots_ WCS_GUARDED_BY(mutex_);
};

/// Generate (and memoize) a workload preset at the bench scale.
inline const GeneratedWorkload& workload(const std::string& name) {
  return WorkloadCache::shared().get(name);
}

/// Warm the workload cache for `names`, generating distinct presets
/// concurrently on `runner`. Benches call this before fanning experiment
/// cells out so no cell stalls on trace generation.
inline void preload_workloads(const std::vector<std::string>& names,
                              ParallelRunner& runner = ParallelRunner::shared()) {
  (void)runner.map(names.size(), [&](std::size_t i) {
    return [&names, i] {
      (void)workload(names[i]);
      return 0;
    };
  });
}

inline void print_calibration(const std::string& name) {
  const GeneratedWorkload& generated = workload(name);
  print_report(std::cout, make_report(generated.spec, generated.trace));
  std::cout << '\n';
}

inline void print_header(const std::string& what) {
  std::cout << "==================================================================\n"
            << what << '\n'
            << "(workload scale " << scale_from_env() << "; see EXPERIMENTS.md)\n"
            << "==================================================================\n\n";
}

/// Render an optional-valued daily series: mean over defined days, a
/// sparkline of its shape, and optionally a gnuplot block.
inline void print_curve(const std::string& label, const OptSeries& series, double lo,
                        double hi) {
  std::vector<double> defined;
  std::vector<std::pair<double, double>> points;
  for (std::size_t day = 0; day < series.size(); ++day) {
    if (series[day]) {
      defined.push_back(*series[day]);
      points.emplace_back(static_cast<double>(day), *series[day]);
    }
  }
  double mean = 0.0;
  for (const double v : defined) mean += v;
  if (!defined.empty()) mean /= static_cast<double>(defined.size());
  std::cout << "  " << label << "  mean=" << Table::num(mean, 2) << "  "
            << sparkline(defined, lo, hi) << '\n';
  if (gnuplot_from_env()) {
    print_series(std::cout, label, {Series{label, points}});
  }
}

}  // namespace wcs::bench
