// Ablation bench (DESIGN.md §5): which modeling choices in the synthetic
// workload drive the paper's headline result?
//
// Sweeps, on workload BL at 10% of MaxNeeded:
//   1. size-popularity bias      — does SIZE's win need "popular docs are
//                                   small", or does size skew alone do it?
//   2. URL Zipf exponent         — sensitivity of the SIZE-vs-LRU gap to
//                                   popularity concentration
//   3. modification rate         — how much consistency misses (size
//                                   changes) erode all policies
// Reported: HR of SIZE and LRU (and the gap), plus infinite-cache HR.
#include "bench/common.h"

using namespace wcs;
using namespace wcs::bench;

namespace {

struct Measured {
  double infinite_hr;
  double size_hr;
  double lru_hr;
};

Measured measure(WorkloadSpec spec) {
  const GeneratedWorkload generated = WorkloadGenerator{std::move(spec)}.generate();
  const Experiment1Result infinite = run_experiment1("ablation", generated.trace);
  const std::uint64_t capacity = fraction_of(infinite.max_needed, 0.10);
  const SimResult size = simulate(generated.trace, capacity, [] { return make_size(); });
  const SimResult lru = simulate(generated.trace, capacity, [] { return make_lru(); });
  return {infinite.overall_hr, size.daily.overall_hr(), lru.daily.overall_hr()};
}

void sweep(const std::string& title, const std::vector<double>& values,
           const std::function<void(WorkloadSpec&, double)>& apply) {
  Table table{title};
  table.header({"value", "infinite HR", "SIZE HR", "LRU HR", "SIZE-LRU gap"});
  for (const double value : values) {
    WorkloadSpec spec = WorkloadSpec::preset("BL").scaled(scale_from_env() * 0.5);
    apply(spec, value);
    const Measured m = measure(spec);
    table.row({Table::num(value, 3), Table::pct(m.infinite_hr, 1), Table::pct(m.size_hr, 1),
               Table::pct(m.lru_hr, 1), Table::pct(m.size_hr - m.lru_hr, 1)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  print_header("Ablation — workload-model choices vs the SIZE-beats-LRU result");

  sweep("1. size-popularity bias (0 = sizes independent of popularity)",
        {0.0, 0.1, 0.2, 0.35, 0.5},
        [](WorkloadSpec& spec, double v) { spec.size_popularity_bias = v; });

  sweep("2. URL popularity Zipf exponent", {0.5, 0.65, 0.74, 0.9, 1.05},
        [](WorkloadSpec& spec, double v) { spec.url_zipf = v; });

  sweep("3. document modification rate (size-change consistency misses)",
        {0.0, 0.006, 0.02, 0.05, 0.1},
        [](WorkloadSpec& spec, double v) { spec.modification_rate = v; });

  std::cout << "Readings:\n"
               "  - SIZE beats LRU even with bias 0: the heavy size skew alone\n"
               "    (many small docs per big one) carries the paper's result;\n"
               "    bias widens the gap\n"
               "  - higher Zipf concentration lifts every policy and narrows\n"
               "    relative gaps (popular docs fit in any cache)\n"
               "  - modification churn costs all policies roughly equally\n";
  return 0;
}
