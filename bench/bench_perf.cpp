// bench_perf — the machine-readable performance harness.
//
// Unlike the figure benches, this binary tracks the *simulator's own*
// performance trajectory from PR to PR. It measures:
//
//   1. grid: wall time for a full Experiment-2 grid (36 key combinations,
//      workload U, 10% of MaxNeeded) run serially (1 job) and on the
//      parallel runner (WCS_JOBS, default hardware concurrency) — the
//      parallel-speedup headline.
//   2. micro: single-thread requests/sec and evictions/sec per
//      representative policy (SIZE, LRU, LFU, LRU-MIN, Hyper-G's 3-key
//      composite) on the U and BR presets, each compared against a
//      faithful reimplementation of its pre-optimization node-based
//      engine (std::set rank tuples with heap-allocated vectors for the
//      sorted policies, std::map-of-std::set size buckets for LRU-MIN) to
//      quantify the flat arena/heap engine's win, with a stats-level
//      bit-identity cross-check between the two engines on every row.
//   3. streaming: the BL preset at 10x duration simulated twice — from a
//      fully materialized Trace and from a WorkloadStream that never holds
//      more than one day of raw log — with a bit-identity cross-check and
//      the resident-memory row (source_resident_bytes per leg) that
//      tools/check_perf.py gates on.
//   4. faults: the resilience layer's no-fault overhead on the proxy hot
//      path — the BR preset replayed through a real ProxyCache with the
//      resilience wrapper enabled (faults off) vs disabled (the pre-
//      resilience direct-call path), interleaved best-of-N, with a
//      behavior cross-check. tools/check_perf.py gates the overhead
//      ratio at <= 2%.
//   5. obs: the observability recorder's overhead on the same proxy
//      replay surface — the BL preset replayed with an ObsRecorder
//      attached (cache events, histogram, end-of-replay publication) vs
//      the default null recorder, interleaved best-of-N, with a behavior
//      cross-check. tools/check_perf.py gates the ratio at <= 2%.
//   6. sharded: the concurrent sharded cache's aggregate throughput — the
//      BR preset driven through an 8-shard ShardedCache by the closed-loop
//      load generator at 1/2/4/8 worker threads, best-of-N per leg, with a
//      merged-stats bit-identity cross-check against the 1-thread leg (the
//      thread-count-invariance contract from DESIGN.md §13).
//      tools/check_perf.py gates speedup_at_4_threads >= 1.8x when the
//      runner has >= 4 hardware threads (annotated skip otherwise).
//   7. topology: the routing ladder's warm all-hit overhead — a 3-tier
//      CacheTopology vs one flat proxy of equal total capacity, hit counts
//      cross-checked. tools/check_perf.py gates the ratio at <= 3%.
//   8. zoo: the modern-policy throughput leg — GDSF, SLRU and W-TinyLFU on
//      the BR preset at 10% of MaxNeeded. GDSF and SLRU are cross-checked
//      bit-for-bit against naive node-based references (a std::set of
//      (H, tag, url) tuples; two std::lists of iterators) before timing;
//      W-TinyLFU has no classical counterpart, so its check is a two-run
//      bit-identity pass plus a periodically audited run.
//      tools/check_perf.py gates each row's absolute throughput.
//
// Results print as a table and are written as JSON (default
// BENCH_perf.json; override with argv[1] or WCS_BENCH_OUT) so CI can
// archive them and gate on regressions (tools/check_perf.py).
//
// Honest-measurement notes: workload generation happens before any timer
// starts; the serial grid leg runs on a ParallelRunner{1}, which executes
// cells inline and spawns no threads; the reported speedup is wall time
// serial / wall time parallel on this machine (core count is recorded).
#include "bench/common.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include <list>

#include "src/core/sorted_policy.h"
#include "src/obs/recorder.h"
#include "src/sim/chaos.h"
#include "src/sim/loadgen.h"
#include "src/workload/stream.h"
#include "src/zoo/gds.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

using namespace wcs;
using namespace wcs::bench;

namespace {

// ---- the pre-PR SortedPolicy, kept verbatim as the micro baseline -------

/// The original heap-allocated rank tuple: a std::vector per cached
/// document, re-materialized (and its set node re-allocated) on every hit.
struct LegacyTuple {
  std::vector<std::int64_t> ranks;
  std::uint64_t random_tag = 0;
  UrlId url = kInvalidUrl;

  friend bool operator<(const LegacyTuple& a, const LegacyTuple& b) noexcept {
    const std::size_t n = a.ranks.size() < b.ranks.size() ? a.ranks.size() : b.ranks.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (a.ranks[i] != b.ranks[i]) return a.ranks[i] < b.ranks[i];
    }
    if (a.random_tag != b.random_tag) return a.random_tag < b.random_tag;
    return a.url < b.url;
  }
};

LegacyTuple make_legacy_tuple(const KeySpec& spec, const CacheEntry& entry) {
  LegacyTuple tuple;
  tuple.ranks.reserve(spec.keys.size());
  for (const Key k : spec.keys) tuple.ranks.push_back(key_rank(k, entry));
  tuple.random_tag = entry.random_tag;
  tuple.url = entry.url;
  return tuple;
}

class LegacySortedPolicy final : public RemovalPolicy {
 public:
  explicit LegacySortedPolicy(KeySpec spec) : spec_(std::move(spec)), name_(spec_.name()) {}

  void on_insert(const CacheEntry& entry) override {
    LegacyTuple tuple = make_legacy_tuple(spec_, entry);
    index_.emplace(entry.url, tuple);
    order_.insert(std::move(tuple));
  }
  void on_hit(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    order_.erase(it->second);
    it->second = make_legacy_tuple(spec_, entry);
    order_.insert(it->second);
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    order_.erase(it->second);
    index_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext&) override {
    if (order_.empty()) return std::nullopt;
    return order_.begin()->url;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 private:
  KeySpec spec_;
  std::string name_;
  std::set<LegacyTuple> order_;
  std::unordered_map<UrlId, LegacyTuple> index_;
};

/// The pre-flat LRU-MIN, kept verbatim: floor(log2(size)) buckets held in a
/// std::map of std::set<LruKey> — one tree-node allocation per mutation.
class LegacyLruMinPolicy final : public RemovalPolicy {
 public:
  void on_insert(const CacheEntry& entry) override {
    DocState doc{entry.size, LruKey{entry.atime, entry.random_tag, entry.url}};
    state_.emplace(entry.url, doc);
    insert_key(doc);
  }
  void on_hit(const CacheEntry& entry) override {
    auto& doc = state_.at(entry.url);
    erase_key(doc);
    doc.key.atime = entry.atime;
    doc.size = entry.size;
    insert_key(doc);
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = state_.find(entry.url);
    erase_key(it->second);
    state_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override {
    if (state_.empty()) return std::nullopt;
    std::uint64_t threshold = ctx.incoming_size;
    for (;;) {
      if (threshold <= 1) {
        const LruKey* best = nullptr;
        for (const auto& [bucket, keys] : buckets_) {
          const LruKey& front = *keys.begin();
          if (best == nullptr || front < *best) best = &front;
        }
        return best->url;
      }
      const int boundary = bucket_of(threshold);
      const LruKey* best = nullptr;
      for (auto it = buckets_.upper_bound(boundary); it != buckets_.end(); ++it) {
        const LruKey& front = *it->second.begin();
        if (best == nullptr || front < *best) best = &front;
      }
      if (const auto it = buckets_.find(boundary); it != buckets_.end()) {
        for (const LruKey& key : it->second) {
          if (state_.at(key.url).size >= threshold && (best == nullptr || key < *best)) {
            best = &key;
            break;  // keys are LRU-ordered; the first qualifier is the bucket's best
          }
        }
      }
      if (best != nullptr) return best->url;
      threshold /= 2;
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "legacy-LRU-MIN"; }

 private:
  struct LruKey {
    SimTime atime;
    std::uint64_t tie;
    UrlId url;
    friend auto operator<=>(const LruKey&, const LruKey&) = default;
  };
  struct DocState {
    std::uint64_t size;
    LruKey key;
  };

  static int bucket_of(std::uint64_t size) noexcept {
    return size == 0 ? 0 : std::bit_width(size) - 1;
  }
  void insert_key(const DocState& doc) { buckets_[bucket_of(doc.size)].insert(doc.key); }
  void erase_key(const DocState& doc) {
    const auto it = buckets_.find(bucket_of(doc.size));
    it->second.erase(doc.key);
    if (it->second.empty()) buckets_.erase(it);
  }

  std::map<int, std::set<LruKey>> buckets_;
  std::unordered_map<UrlId, DocState> state_;
};

// ---- naive zoo references ------------------------------------------------

/// GreedyDual-Size(-Frequency) on a std::set of (H, random_tag, url)
/// tuples — one tree-node reallocation per touch, the textbook structure
/// the flat heap in src/zoo/gds.h replaces. Same integer fixed-point H and
/// the same inflation-offset clock (L rises to the victim's H on eviction
/// only), so stats must match the flat engine bit for bit.
class ReferenceGreedyDualPolicy final : public RemovalPolicy {
 public:
  explicit ReferenceGreedyDualPolicy(bool frequency)
      : frequency_(frequency), name_(frequency ? "reference-gdsf" : "reference-gds") {}

  void on_insert(const CacheEntry& entry) override {
    const Key key{inflation_ + value_of(entry), entry.random_tag, entry.url};
    index_.emplace(entry.url, key);
    order_.insert(key);
  }
  void on_hit(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    order_.erase(it->second);
    it->second = Key{inflation_ + value_of(entry), entry.random_tag, entry.url};
    order_.insert(it->second);
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = index_.find(entry.url);
    if (entry.url == victim_) inflation_ = it->second.value;
    victim_ = kInvalidUrl;
    order_.erase(it->second);
    index_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext&) override {
    if (order_.empty()) return std::nullopt;
    victim_ = order_.begin()->url;
    return victim_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 private:
  struct Key {
    std::uint64_t value;
    std::uint64_t tag;
    UrlId url;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  [[nodiscard]] std::uint64_t value_of(const CacheEntry& entry) const noexcept {
    const std::uint64_t freq = frequency_ ? entry.nref : 1;
    const std::uint64_t size = entry.size == 0 ? 1 : entry.size;
    return (freq << 16) / size;
  }

  bool frequency_;
  std::string name_;
  std::uint64_t inflation_ = 0;
  UrlId victim_ = kInvalidUrl;
  std::set<Key> order_;
  std::unordered_map<UrlId, Key> index_;
};

/// Segmented LRU on two std::lists (front = MRU) with a map of iterators —
/// the classic pointer-chasing layout. The flat engine's per-touch seq
/// numbers are unique, so its (seq, tag, url) order IS list order; the
/// promote / demote-to-probation-MRU / probation-first-victim rules match
/// src/zoo/slru.h exactly, so stats must match bit for bit.
class ReferenceSlruPolicy final : public RemovalPolicy {
 public:
  void attach(std::uint64_t capacity_bytes) override {
    protected_cap_ = capacity_bytes == 0 ? ~0ULL : capacity_bytes * 800 / 1000;
  }
  void on_insert(const CacheEntry& entry) override {
    probation_.push_front(entry.url);
    docs_.emplace(entry.url, Doc{probation_.begin(), entry.size, false});
  }
  void on_hit(const CacheEntry& entry) override {
    Doc& doc = docs_.at(entry.url);
    if (doc.in_protected) {
      shelter_.erase(doc.where);
      shelter_.push_front(entry.url);
      doc.where = shelter_.begin();
      return;
    }
    probation_.erase(doc.where);
    doc.in_protected = true;
    protected_bytes_ += doc.size;
    shelter_.push_front(entry.url);
    doc.where = shelter_.begin();
    while (protected_bytes_ > protected_cap_ && !shelter_.empty()) {
      Doc& demoted = docs_.at(shelter_.back());
      probation_.push_front(shelter_.back());
      shelter_.pop_back();
      demoted.in_protected = false;
      protected_bytes_ -= demoted.size;
      demoted.where = probation_.begin();
    }
  }
  void on_remove(const CacheEntry& entry) override {
    const auto it = docs_.find(entry.url);
    if (it->second.in_protected) {
      protected_bytes_ -= it->second.size;
      shelter_.erase(it->second.where);
    } else {
      probation_.erase(it->second.where);
    }
    docs_.erase(it);
  }
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext&) override {
    if (!probation_.empty()) return probation_.back();
    if (!shelter_.empty()) return shelter_.back();
    return std::nullopt;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "reference-slru"; }

 private:
  struct Doc {
    std::list<UrlId>::iterator where;
    std::uint64_t size;
    bool in_protected;
  };

  std::uint64_t protected_cap_ = ~0ULL;
  std::uint64_t protected_bytes_ = 0;
  std::list<UrlId> probation_;
  std::list<UrlId> shelter_;
  std::unordered_map<UrlId, Doc> docs_;
};

// ---- measurement helpers -------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct MicroRow {
  std::string workload;
  std::string policy;
  std::uint64_t requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double evictions_per_sec = 0.0;
  double legacy_seconds = 0.0;
  double legacy_requests_per_sec = 0.0;
  double speedup_vs_legacy = 0.0;
};

/// Time one full simulation of `trace` at `capacity`; returns {seconds, evictions}.
std::pair<double, std::uint64_t> time_sim(const Trace& trace, std::uint64_t capacity,
                                          const PolicyFactory& factory) {
  const auto start = std::chrono::steady_clock::now();
  const SimResult sim = simulate(trace, capacity, factory);
  const double elapsed = seconds_since(start);
  return {elapsed, sim.stats.evictions};
}

/// Best-of-`reps` wall time. The minimum filters scheduler noise (shared
/// runners, single-core VMs); the simulation itself is deterministic, so
/// evictions are identical across reps.
std::pair<double, std::uint64_t> time_sim_best(const Trace& trace, std::uint64_t capacity,
                                               const PolicyFactory& factory, int reps) {
  double best = 0.0;
  std::uint64_t evictions = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto [seconds, evicted] = time_sim(trace, capacity, factory);
    if (rep == 0 || seconds < best) best = seconds;
    evictions = evicted;
  }
  return {best, evictions};
}

// ---- minimal JSON writer -------------------------------------------------

std::string json_num(double value) {
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Performance harness — parallel grid speedup + per-policy microbench");

  const double scale = scale_from_env();
  const unsigned jobs = ParallelRunner::jobs_from_env();
  const unsigned cores = std::thread::hardware_concurrency();

  // ---- 1. grid: serial vs parallel Experiment-2 sweep ---------------------
  const auto grid = KeySpec::experiment2_grid();
  const Trace& grid_trace = workload("U").trace;
  const Experiment1Result grid_infinite = run_experiment1("U", grid_trace);

  // Each leg runs twice; the best wall time is reported (noise filtering,
  // same rationale as time_sim_best) and the first run's table is kept for
  // the bit-identity cross-check.
  constexpr int kGridReps = 2;
  ParallelRunner serial_runner{1};
  Experiment2Result serial_grid;
  double grid_serial_seconds = 0.0;
  for (int rep = 0; rep < kGridReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    Experiment2Result result =
        run_experiment2("U", grid_trace, grid_infinite, 0.10, grid, serial_runner);
    const double seconds = seconds_since(start);
    if (rep == 0) serial_grid = std::move(result);
    if (rep == 0 || seconds < grid_serial_seconds) grid_serial_seconds = seconds;
  }

  ParallelRunner parallel_runner{jobs};
  Experiment2Result parallel_grid;
  double grid_parallel_seconds = 0.0;
  for (int rep = 0; rep < kGridReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    Experiment2Result result =
        run_experiment2("U", grid_trace, grid_infinite, 0.10, grid, parallel_runner);
    const double seconds = seconds_since(start);
    if (rep == 0) parallel_grid = std::move(result);
    if (rep == 0 || seconds < grid_parallel_seconds) grid_parallel_seconds = seconds;
  }

  // Sanity: the two runs must agree bit-for-bit (the determinism contract).
  for (std::size_t i = 0; i < serial_grid.outcomes.size(); ++i) {
    if (serial_grid.outcomes[i].policy != parallel_grid.outcomes[i].policy ||
        serial_grid.outcomes[i].hr != parallel_grid.outcomes[i].hr ||
        serial_grid.outcomes[i].whr != parallel_grid.outcomes[i].whr) {
      std::cerr << "FATAL: serial/parallel grid results diverge at cell " << i << "\n";
      return 1;
    }
  }

  const double grid_requests =
      static_cast<double>(grid_trace.size()) * static_cast<double>(grid.size());
  const double grid_speedup =
      grid_parallel_seconds > 0.0 ? grid_serial_seconds / grid_parallel_seconds : 0.0;

  Table grid_table{"Experiment-2 grid (36 cells, workload U, 10% of MaxNeeded)"};
  grid_table.header({"jobs", "wall s", "cells/s", "requests/s"});
  grid_table.row({"1", Table::num(grid_serial_seconds, 2),
                  Table::num(36.0 / grid_serial_seconds, 2),
                  Table::num(grid_requests / grid_serial_seconds, 0)});
  grid_table.row({std::to_string(jobs), Table::num(grid_parallel_seconds, 2),
                  Table::num(36.0 / grid_parallel_seconds, 2),
                  Table::num(grid_requests / grid_parallel_seconds, 0)});
  grid_table.print(std::cout);
  std::cout << "  parallel speedup: " << Table::num(grid_speedup, 2) << "x on " << cores
            << " hardware threads (WCS_JOBS=" << jobs << ")\n\n";

  // ---- 2. micro: per-policy single-thread throughput ----------------------
  struct Candidate {
    const char* label;
    KeySpec spec;          // empty => LRU-MIN (no sorted/legacy counterpart)
  };
  const std::vector<Candidate> candidates = {
      {"SIZE", KeySpec{{Key::kSize}}},
      {"LRU", KeySpec{{Key::kAtime}}},
      {"LFU", KeySpec{{Key::kNref}}},
      {"NREF+ATIME+SIZE", KeySpec{{Key::kNref, Key::kAtime, Key::kSize}}},
      {"LRU-MIN", KeySpec{{}}},
  };

  std::vector<MicroRow> micro;
  Table micro_table{"Single-thread policy microbench (10% of MaxNeeded)"};
  micro_table.header(
      {"workload", "policy", "Mreq/s", "evict/s", "legacy Mreq/s", "speedup"});
  for (const char* name : {"U", "BR"}) {
    const Trace& trace = workload(name).trace;
    const std::uint64_t max_needed = run_experiment1(name, trace).max_needed;
    const std::uint64_t capacity = fraction_of(max_needed, 0.10);
    for (const Candidate& candidate : candidates) {
      const bool is_lru_min = candidate.spec.keys.empty();
      MicroRow row;
      row.workload = name;
      row.policy = candidate.label;
      row.requests = trace.size();

      const PolicyFactory factory = is_lru_min
          ? PolicyFactory{[] { return make_lru_min(); }}
          : PolicyFactory{[&candidate] { return make_sorted_policy(candidate.spec); }};
      const PolicyFactory legacy = is_lru_min
          ? PolicyFactory{[] { return std::make_unique<LegacyLruMinPolicy>(); }}
          : PolicyFactory{[&candidate] {
              return std::make_unique<LegacySortedPolicy>(candidate.spec);
            }};

      // Bit-identity cross-check doubling as the warm-up pass (faults the
      // trace in, stabilizes the allocator): both engines total-order their
      // victims through the same (ranks, random_tag, url) comparator, so
      // any stats divergence is a flat-engine bug, not noise.
      const SimResult flat_check = simulate(trace, capacity, factory);
      const SimResult legacy_check = simulate(trace, capacity, legacy);
      if (flat_check.stats.hits != legacy_check.stats.hits ||
          flat_check.stats.hit_bytes != legacy_check.stats.hit_bytes ||
          flat_check.stats.evictions != legacy_check.stats.evictions ||
          flat_check.stats.evicted_bytes != legacy_check.stats.evicted_bytes ||
          flat_check.stats.insertions != legacy_check.stats.insertions ||
          flat_check.max_used_bytes != legacy_check.max_used_bytes) {
        std::cerr << "FATAL: flat and legacy engines diverge for " << candidate.label
                  << " on workload " << name << "\n";
        return 1;
      }

      const auto [seconds, evictions] = time_sim_best(trace, capacity, factory, 3);
      row.seconds = seconds;
      row.requests_per_sec = static_cast<double>(row.requests) / seconds;
      row.evictions_per_sec = static_cast<double>(evictions) / seconds;

      const auto [legacy_seconds, legacy_evictions] =
          time_sim_best(trace, capacity, legacy, 3);
      (void)legacy_evictions;
      row.legacy_seconds = legacy_seconds;
      row.legacy_requests_per_sec = static_cast<double>(row.requests) / legacy_seconds;
      row.speedup_vs_legacy = row.requests_per_sec / row.legacy_requests_per_sec;

      micro_table.row({row.workload, row.policy,
                       Table::num(row.requests_per_sec / 1e6, 2),
                       Table::num(row.evictions_per_sec, 0),
                       Table::num(row.legacy_requests_per_sec / 1e6, 2),
                       Table::num(row.speedup_vs_legacy, 2)});
      micro.push_back(std::move(row));
    }
  }
  micro_table.print(std::cout);

  // ---- 3. streaming: materialized vs streaming at 10x duration ------------
  // Same request sequence both ways (the RequestSource determinism
  // contract); the materialized leg pays O(requests) for the trace while
  // the streaming leg pays O(corpus). The streaming wall time includes
  // generation — that is its honest cost: it generates and simulates in
  // one pass instead of two.
  constexpr int kDurationFactor = 10;
  const WorkloadSpec streaming_spec =
      WorkloadSpec::preset("BL").scaled(scale).extended(kDurationFactor);
  WorkloadGenerator streaming_generator{streaming_spec};

  const auto materialize_start = std::chrono::steady_clock::now();
  const GeneratedWorkload streaming_workload = streaming_generator.generate();
  const double materialize_seconds = seconds_since(materialize_start);
  const std::uint64_t streaming_capacity = streaming_workload.trace.unique_bytes() / 10;
  const PolicyFactory streaming_policy = [] { return make_size(); };

  const auto materialized_start = std::chrono::steady_clock::now();
  const SimResult materialized_result =
      simulate(streaming_workload.trace, streaming_capacity, streaming_policy);
  const double materialized_sim_seconds = seconds_since(materialized_start);

  const auto streaming_start = std::chrono::steady_clock::now();
  WorkloadStream stream = streaming_generator.stream();
  const SimResult streaming_result = simulate(stream, streaming_capacity, streaming_policy);
  const double streaming_seconds = seconds_since(streaming_start);

  // Bit-identity cross-check: any divergence is a broken RNG schedule or
  // intern-order drift, not noise.
  {
    const auto rows_a = stats_rows(materialized_result.stats);
    const auto rows_b = stats_rows(streaming_result.stats);
    bool identical = materialized_result.max_used_bytes == streaming_result.max_used_bytes &&
                     materialized_result.daily.overall_hr() == streaming_result.daily.overall_hr() &&
                     materialized_result.daily.overall_whr() == streaming_result.daily.overall_whr();
    for (std::size_t i = 0; identical && i < rows_a.size(); ++i) {
      identical = rows_a[i].value == rows_b[i].value;
    }
    if (!identical) {
      std::cerr << "FATAL: streaming and materialized simulations diverge\n";
      return 1;
    }
  }

  const std::uint64_t materialized_bytes =
      materialized_result.footprint.source_resident_bytes;
  const std::uint64_t streaming_bytes = streaming_result.footprint.source_resident_bytes;
  const double resident_ratio = materialized_bytes > 0
      ? static_cast<double>(streaming_bytes) / static_cast<double>(materialized_bytes)
      : 0.0;

  Table streaming_table{"Streaming vs materialized (workload BL x" +
                        std::to_string(kDurationFactor) + " duration, SIZE policy)"};
  streaming_table.header({"leg", "wall s", "source MB", "requests"});
  streaming_table.row({"materialized (gen + sim)",
                       Table::num(materialize_seconds + materialized_sim_seconds, 2),
                       Table::num(static_cast<double>(materialized_bytes) / 1e6, 2),
                       std::to_string(materialized_result.footprint.requests)});
  streaming_table.row({"streaming (one pass)", Table::num(streaming_seconds, 2),
                       Table::num(static_cast<double>(streaming_bytes) / 1e6, 2),
                       std::to_string(streaming_result.footprint.requests)});
  streaming_table.print(std::cout);
  std::cout << "  results bit-identical; streaming keeps "
            << Table::num(100.0 * resident_ratio, 1) << "% of the materialized bytes resident"
            << " (peak RSS " << Table::num(
                   static_cast<double>(streaming_result.footprint.peak_rss_bytes) / 1e6, 1)
            << " MB)\n\n";

  // ---- 4. faults: resilience-layer overhead on the proxy hot path ---------
  // Every ProxyCache upstream call now routes through ResilientUpstream;
  // the contract is that with no faults configured the wrapper costs <= 2%
  // over the direct pass-through (resilience.enabled = false IS that
  // path, preserved verbatim). Each timed measurement replays the trace
  // `faults_passes` times so a leg is long enough to time honestly; the
  // legs are interleaved and the minimum kept, which filters scheduler
  // noise out of the ratio.
  const Trace& faults_trace = workload("BR").trace;
  const std::uint64_t faults_capacity = faults_trace.unique_bytes() / 10;

  ProxyReplayConfig faults_enabled;
  faults_enabled.proxy.capacity_bytes = faults_capacity;
  ProxyReplayConfig faults_disabled = faults_enabled;
  faults_disabled.proxy.resilience.enabled = false;

  const auto run_replay = [&faults_trace](const ProxyReplayConfig& config) {
    TraceSource source{faults_trace};
    return replay_through_proxy(source, config);
  };

  // Behavior cross-check: the enabled wrapper must be invisible when the
  // upstream never fails.
  {
    const ProxyReplayResult with_wrapper = run_replay(faults_enabled);
    const ProxyReplayResult without_wrapper = run_replay(faults_disabled);
    if (with_wrapper.stats.hits != without_wrapper.stats.hits ||
        with_wrapper.stats.misses != without_wrapper.stats.misses ||
        with_wrapper.stats.hit_bytes != without_wrapper.stats.hit_bytes ||
        with_wrapper.stats.failed_requests + without_wrapper.stats.failed_requests != 0 ||
        with_wrapper.stats.retries != 0) {
      std::cerr << "FATAL: resilience wrapper changed no-fault proxy behavior\n";
      return 1;
    }
  }

  // Size a measurement to >= 0.25 s from a calibration pass (both legs use
  // the same pass count, so the ratio is unaffected).
  const auto calibrate_start = std::chrono::steady_clock::now();
  (void)run_replay(faults_disabled);
  const double calibrate_seconds = seconds_since(calibrate_start);
  const int faults_passes =
      calibrate_seconds > 0.0
          ? std::max(1, static_cast<int>(0.25 / calibrate_seconds) + 1)
          : 1;
  const auto time_replay = [&](const ProxyReplayConfig& config) {
    const auto start = std::chrono::steady_clock::now();
    for (int pass = 0; pass < faults_passes; ++pass) (void)run_replay(config);
    return seconds_since(start);
  };

  constexpr int kFaultsReps = 5;
  double faults_disabled_seconds = 0.0;
  double faults_enabled_seconds = 0.0;
  for (int rep = 0; rep < kFaultsReps; ++rep) {
    const double disabled_seconds = time_replay(faults_disabled);
    const double enabled_seconds = time_replay(faults_enabled);
    if (rep == 0 || disabled_seconds < faults_disabled_seconds) {
      faults_disabled_seconds = disabled_seconds;
    }
    if (rep == 0 || enabled_seconds < faults_enabled_seconds) {
      faults_enabled_seconds = enabled_seconds;
    }
  }
  const double faults_overhead_ratio =
      faults_disabled_seconds > 0.0
          ? faults_enabled_seconds / faults_disabled_seconds - 1.0
          : 0.0;
  const double faults_requests =
      static_cast<double>(faults_trace.size()) * faults_passes;

  Table faults_table{"Resilience wrapper overhead (workload BR proxy replay, faults off)"};
  faults_table.header({"leg", "wall s", "Mreq/s"});
  faults_table.row({"resilience disabled", Table::num(faults_disabled_seconds, 3),
                    Table::num(faults_requests / faults_disabled_seconds / 1e6, 2)});
  faults_table.row({"resilience enabled", Table::num(faults_enabled_seconds, 3),
                    Table::num(faults_requests / faults_enabled_seconds / 1e6, 2)});
  faults_table.print(std::cout);
  std::cout << "  overhead " << Table::num(100.0 * faults_overhead_ratio, 2)
            << "% (" << faults_passes << " passes/measurement, best of " << kFaultsReps
            << "; behavior cross-checked identical)\n\n";

  // ---- 5. obs: observability recorder overhead on the proxy replay path ---
  // The null recorder is the default everywhere, costing one pointer test
  // per wiring point; an attached recorder additionally streams
  // admission/eviction events through the bus into the collecting sink,
  // feeds the eviction-size histogram, and publishes stats + the per-day
  // series at the end-of-replay sync point. The gate runs on the proxy
  // replay (the production-shaped surface, same as the faults leg): per-
  // request HTTP/cache work dominates there, and the <= 2% contract bounds
  // what attaching a recorder may add on top. (On the raw simulate() hot
  // loop — ~60 ns/request — per-event collection is necessarily a far
  // larger fraction; attach recorders to simulate() when you want the
  // events, not in throughput measurements.)
  //
  // The enabled leg reuses ONE recorder across every pass and drains the
  // collecting sink (clear_events, capacity retained) between passes: that
  // is the steady state being gated — a deployment keeps one recorder for
  // the process lifetime and drains after each export checkpoint.
  // Constructing a fresh recorder per 2.7k-request pass, or letting the
  // event buffer grow without bound, measures allocator page faults (~6%
  // on a shared runner: every pass first-touches ~400 KB) rather than
  // observation. Gated by tools/check_perf.py.
  const Trace& obs_trace = workload("BL").trace;
  ProxyReplayConfig obs_replay;
  obs_replay.proxy.capacity_bytes = obs_trace.unique_bytes() / 10;
  const auto run_obs_replay = [&obs_trace, &obs_replay](ObsRecorder* obs) {
    ProxyReplayConfig config = obs_replay;
    config.obs = obs;
    TraceSource source{obs_trace};
    return replay_through_proxy(source, config);
  };

  // Behavior cross-check: recording must not perturb a single counter.
  {
    ObsRecorder recorder;
    const ProxyReplayResult on = run_obs_replay(&recorder);
    const ProxyReplayResult off = run_obs_replay(nullptr);
    if (on.stats.hits != off.stats.hits || on.stats.misses != off.stats.misses ||
        on.stats.hit_bytes != off.stats.hit_bytes ||
        on.cache_stats.evictions != off.cache_stats.evictions ||
        on.cache_stats.max_used_bytes != off.cache_stats.max_used_bytes) {
      std::cerr << "FATAL: observability recorder changed replay results\n";
      return 1;
    }
  }

  // One pass is a natural timing quantum (~tens of ms). Each rep times one
  // pass of each leg back to back (ABBA order across reps) and yields one
  // paired ratio; the gated number is the MEDIAN of those ratios. A
  // scheduler burst that lands on one pass corrupts one ratio (up or
  // down), which the median discards; sustained frequency drift shifts
  // both passes of a pair together, which the ratio cancels. Per-leg
  // minima are kept for the throughput rows only.
  constexpr int kObsReps = 24;
  ObsRecorder obs_steady_recorder;
  double obs_disabled_seconds = 0.0;
  double obs_enabled_seconds = 0.0;
  std::vector<double> obs_ratios;
  obs_ratios.reserve(kObsReps);
  const auto time_obs_pass = [&](bool enabled) {
    // The drain is checkpoint bookkeeping between runs, not observation:
    // it stays outside the timer (it is an O(1) capacity-retaining clear).
    if (enabled) obs_steady_recorder.clear_events();
    const auto start = std::chrono::steady_clock::now();
    (void)run_obs_replay(enabled ? &obs_steady_recorder : nullptr);
    return seconds_since(start);
  };
  // Warmup pass per leg: maps the event buffer and warms data caches so
  // rep 0 measures the same steady state as rep 23.
  (void)time_obs_pass(false);
  (void)time_obs_pass(true);
  for (int rep = 0; rep < kObsReps; ++rep) {
    const bool enabled_first = rep % 2 == 1;
    const double first_seconds = time_obs_pass(enabled_first);
    const double second_seconds = time_obs_pass(!enabled_first);
    const double enabled_seconds = enabled_first ? first_seconds : second_seconds;
    const double disabled_seconds = enabled_first ? second_seconds : first_seconds;
    if (disabled_seconds > 0.0) {
      obs_ratios.push_back(enabled_seconds / disabled_seconds - 1.0);
    }
    if (rep == 0 || disabled_seconds < obs_disabled_seconds) {
      obs_disabled_seconds = disabled_seconds;
    }
    if (rep == 0 || enabled_seconds < obs_enabled_seconds) {
      obs_enabled_seconds = enabled_seconds;
    }
  }
  std::sort(obs_ratios.begin(), obs_ratios.end());
  const double obs_overhead_ratio =
      obs_ratios.empty()
          ? 0.0
          : (obs_ratios.size() % 2 == 1
                 ? obs_ratios[obs_ratios.size() / 2]
                 : 0.5 * (obs_ratios[obs_ratios.size() / 2 - 1] +
                          obs_ratios[obs_ratios.size() / 2]));
  const double obs_requests = static_cast<double>(obs_trace.size());

  Table obs_table{"Observability recorder overhead (workload BL proxy replay)"};
  obs_table.header({"leg", "wall s", "Mreq/s"});
  obs_table.row({"recorder off (default)", Table::num(obs_disabled_seconds, 3),
                 Table::num(obs_requests / obs_disabled_seconds / 1e6, 2)});
  obs_table.row({"recorder on (steady state)", Table::num(obs_enabled_seconds, 3),
                 Table::num(obs_requests / obs_enabled_seconds / 1e6, 2)});
  obs_table.print(std::cout);
  std::cout << "  overhead " << Table::num(100.0 * obs_overhead_ratio, 2)
            << "% (median of " << kObsReps
            << " interleaved paired ratios; results cross-checked identical)\n\n";

  // ---- 6. sharded: concurrent sharded-cache scaling -----------------------
  // The load generator drives a fresh 8-shard ShardedCache over the BR
  // preset (SIZE policy, 10% of unique bytes) at 1/2/4/8 closed-loop
  // worker threads. Each timed leg is best-of-N over complete runs; the
  // timer covers run_load() whole — source materialization included, the
  // same O(requests) copy in every leg, so the ratio is unaffected. The
  // merged CacheStats of every leg must be bit-identical to the 1-thread
  // leg's (thread-count invariance: each shard sees its own requests in
  // trace order whatever the worker count), which turns the speedup row
  // into a *verified* number — a data race that corrupted results would
  // show up here before it showed up in the timing. On a single-core
  // runner the speedup is ~1.0 by construction; tools/check_perf.py
  // annotates-and-skips the floor below 4 hardware threads.
  const Trace& sharded_trace = workload("BR").trace;
  const std::uint64_t sharded_capacity = sharded_trace.unique_bytes() / 10;
  constexpr std::uint32_t kShards = 8;
  constexpr int kShardedReps = 3;

  struct ShardedLeg {
    unsigned threads = 0;
    double seconds = 0.0;
    double requests_per_sec = 0.0;
  };
  std::vector<ShardedLeg> sharded_legs;
  std::vector<CounterRow> sharded_reference;

  Table sharded_table{"Sharded cache scaling (workload BR, " + std::to_string(kShards) +
                      " shards, SIZE policy, closed loop)"};
  sharded_table.header({"threads", "wall s", "Mreq/s", "speedup"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ShardedLeg leg;
    leg.threads = threads;
    CacheStats merged{};
    for (int rep = 0; rep < kShardedReps; ++rep) {
      ShardedCacheConfig sharded_config;
      sharded_config.capacity_bytes = sharded_capacity;
      sharded_config.shards = kShards;
      ShardedCache sharded_cache{sharded_config, [] { return make_size(); }};
      ShardedCacheTarget target{sharded_cache};
      TraceSource source{sharded_trace};
      LoadGenConfig loadgen_config;
      loadgen_config.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      (void)run_load(target, source, loadgen_config);
      const double seconds = seconds_since(start);
      if (rep == 0 || seconds < leg.seconds) leg.seconds = seconds;
      merged = sharded_cache.merged_stats();
    }
    const std::vector<CounterRow> merged_rows = stats_rows(merged);
    if (sharded_legs.empty()) {
      sharded_reference = merged_rows;
    } else {
      for (std::size_t i = 0; i < merged_rows.size(); ++i) {
        if (merged_rows[i].value != sharded_reference[i].value) {
          std::cerr << "FATAL: sharded merged stats diverge at " << threads
                    << " threads (counter " << merged_rows[i].name << ")\n";
          return 1;
        }
      }
    }
    leg.requests_per_sec = static_cast<double>(sharded_trace.size()) / leg.seconds;
    sharded_table.row({std::to_string(threads), Table::num(leg.seconds, 3),
                       Table::num(leg.requests_per_sec / 1e6, 2),
                       Table::num(leg.requests_per_sec /
                                      (sharded_legs.empty() ? leg.requests_per_sec
                                                            : sharded_legs.front().requests_per_sec),
                                  2)});
    sharded_legs.push_back(leg);
  }
  double sharded_speedup_at_4 = 0.0;
  for (const ShardedLeg& leg : sharded_legs) {
    if (leg.threads == 4) {
      sharded_speedup_at_4 = leg.requests_per_sec / sharded_legs.front().requests_per_sec;
    }
  }
  sharded_table.print(std::cout);
  std::cout << "  speedup at 4 threads: " << Table::num(sharded_speedup_at_4, 2) << "x on "
            << cores << " hardware threads (best of " << kShardedReps
            << "; merged stats cross-checked identical across thread counts)\n\n";

  // ---- 7. topology: routing-ladder overhead on the steady-state hit path --
  // A 3-tier CacheTopology (4 edge siblings -> 2 regional -> 1 parent,
  // faults off) versus one flat ProxyCache of equal total capacity,
  // workload BR. Capacity is sized so BOTH sides hold the whole corpus
  // after a warm-up pass (each edge sibling gets the full corpus bytes, so
  // its URL partition always fits), pinning the two legs to the same
  // all-hit steady state; the hit counts are cross-checked equal. What
  // remains in the ratio is exactly what the topology layer adds per
  // request — the URL-hash route, the disabled per-link FaultPlan, the
  // failover ladder's bookkeeping. Cold-fill cost is deliberately NOT
  // gated: how a hierarchy spends misses is a capacity-allocation
  // trade-off (see examples/proxy_demo --topology), not overhead. The
  // warm-up stays outside the timer; legs are interleaved and the minimum
  // kept, like the faults leg. Gated by tools/check_perf.py
  // (topology.max_overhead_ratio).
  const Trace& topo_trace = workload("BR").trace;
  const std::uint64_t topo_unique = topo_trace.unique_bytes();
  const SimTime topo_fresh = SimTime{1} << 40;  // never stale within the trace

  TopologyConfig topo_shape;
  topo_shape.tiers.resize(3);
  topo_shape.tiers[0].label = "edge";
  topo_shape.tiers[0].caches = 4;
  topo_shape.tiers[0].proxy.capacity_bytes = topo_unique;
  topo_shape.tiers[0].proxy.revalidate_after = topo_fresh;
  topo_shape.tiers[1].label = "regional";
  topo_shape.tiers[1].caches = 2;
  topo_shape.tiers[1].proxy.capacity_bytes = topo_unique / 4;
  topo_shape.tiers[1].proxy.revalidate_after = topo_fresh;
  topo_shape.tiers[2].label = "parent";
  topo_shape.tiers[2].caches = 1;
  topo_shape.tiers[2].proxy.capacity_bytes = topo_unique / 2;
  topo_shape.tiers[2].proxy.revalidate_after = topo_fresh;

  SynthOrigin topo_origin;
  CacheTopology topo_target{topo_shape,
                            [&topo_origin](const HttpRequest& request, SimTime now) {
                              return topo_origin.handle(request, now);
                            }};

  ProxyCache::Config topo_flat_config;
  topo_flat_config.capacity_bytes = topo_target.total_capacity_bytes();
  topo_flat_config.revalidate_after = topo_fresh;
  SynthOrigin topo_flat_origin;
  ProxyCache topo_flat{topo_flat_config,
                       [&topo_flat_origin](const HttpRequest& request, SimTime now) {
                         return topo_flat_origin.handle(request, now);
                       }};

  // One trace pass against either target; returns the X-Cache: HIT count
  // (the cross-check, and an equal per-request cost in both legs).
  const auto topo_pass = [&topo_trace](auto& target, SynthOrigin& origin) {
    TraceSource source{topo_trace};
    Request request;
    HttpRequest http;
    std::uint64_t hits = 0;
    while (source.next(request)) {
      origin.set_next_size(request.size);
      http.target.assign(source.names().url_name(request.url));
      const HttpResponse response = target.handle(http, request.time);
      const auto header = response.headers.get("X-Cache");
      if (header && *header == "HIT") ++hits;
    }
    return hits;
  };

  // Warm-up fill, then the steady-state cross-check.
  (void)topo_pass(topo_flat, topo_flat_origin);
  (void)topo_pass(topo_target, topo_origin);
  {
    const std::uint64_t flat_hits = topo_pass(topo_flat, topo_flat_origin);
    const std::uint64_t topo_hits = topo_pass(topo_target, topo_origin);
    if (flat_hits != topo_hits) {
      std::cerr << "FATAL: warm topology hits (" << topo_hits
                << ") diverge from the flat proxy's (" << flat_hits << ")\n";
      return 1;
    }
  }

  // Size a measurement to >= 0.25 s (both legs share the pass count).
  const auto topo_calibrate_start = std::chrono::steady_clock::now();
  (void)topo_pass(topo_flat, topo_flat_origin);
  const double topo_calibrate_seconds = seconds_since(topo_calibrate_start);
  const int topo_passes =
      topo_calibrate_seconds > 0.0
          ? std::max(1, static_cast<int>(0.25 / topo_calibrate_seconds) + 1)
          : 1;
  const auto time_topo = [&](bool topology_leg) {
    const auto start = std::chrono::steady_clock::now();
    for (int pass = 0; pass < topo_passes; ++pass) {
      if (topology_leg) {
        (void)topo_pass(topo_target, topo_origin);
      } else {
        (void)topo_pass(topo_flat, topo_flat_origin);
      }
    }
    return seconds_since(start);
  };

  constexpr int kTopoReps = 5;
  double topo_flat_seconds = 0.0;
  double topo_tiered_seconds = 0.0;
  for (int rep = 0; rep < kTopoReps; ++rep) {
    const double flat_seconds = time_topo(false);
    const double tiered_seconds = time_topo(true);
    if (rep == 0 || flat_seconds < topo_flat_seconds) topo_flat_seconds = flat_seconds;
    if (rep == 0 || tiered_seconds < topo_tiered_seconds) {
      topo_tiered_seconds = tiered_seconds;
    }
  }
  const double topo_overhead_ratio =
      topo_flat_seconds > 0.0 ? topo_tiered_seconds / topo_flat_seconds - 1.0 : 0.0;
  const double topo_requests = static_cast<double>(topo_trace.size()) * topo_passes;

  Table topo_table{"Topology routing overhead (workload BR, warm all-hit steady state)"};
  topo_table.header({"leg", "wall s", "Mreq/s"});
  topo_table.row({"flat proxy (equal capacity)", Table::num(topo_flat_seconds, 3),
                  Table::num(topo_requests / topo_flat_seconds / 1e6, 2)});
  topo_table.row({"3-tier topology", Table::num(topo_tiered_seconds, 3),
                  Table::num(topo_requests / topo_tiered_seconds / 1e6, 2)});
  topo_table.print(std::cout);
  std::cout << "  overhead " << Table::num(100.0 * topo_overhead_ratio, 2)
            << "% (" << topo_passes << " passes/measurement, best of " << kTopoReps
            << "; warm hit counts cross-checked identical)\n\n";

  // ---- 8. zoo: modern-policy throughput -----------------------------------
  // GDSF, SLRU and W-TinyLFU (src/zoo) on the BR preset at the micro leg's
  // capacity rule (10% of MaxNeeded). GDSF and SLRU are first cross-checked
  // bit-for-bit against the naive node-based references above — the same
  // honesty device as the micro leg: a stats divergence is a flat-engine
  // bug, not noise — and their reference throughput and speedup are
  // reported alongside. W-TinyLFU has no classical reference structure, so
  // its cross-check is a two-run bit-identity pass plus one run with the
  // periodic deep audit enabled (every invariant in
  // TinyLfuPolicy::audit_index, throwing on the first violation).
  const Trace& zoo_trace = workload("BR").trace;
  const std::uint64_t zoo_max_needed = run_experiment1("BR", zoo_trace).max_needed;
  const std::uint64_t zoo_capacity = fraction_of(zoo_max_needed, 0.10);

  struct ZooRow {
    std::string policy;
    std::uint64_t requests = 0;
    double seconds = 0.0;
    double requests_per_sec = 0.0;
    double evictions_per_sec = 0.0;
    double reference_requests_per_sec = 0.0;  // 0 = no reference engine
    double speedup_vs_reference = 0.0;
  };
  struct ZooCandidate {
    const char* label;
    PolicyFactory factory;
    PolicyFactory reference;  // empty => two-run + audited cross-check
  };
  const std::vector<ZooCandidate> zoo_candidates = {
      {"GDSF", [] { return make_gdsf(); },
       [] { return std::make_unique<ReferenceGreedyDualPolicy>(true); }},
      {"SLRU", [] { return make_slru(); },
       [] { return std::make_unique<ReferenceSlruPolicy>(); }},
      {"W-TinyLFU", [] { return make_tinylfu(); }, {}},
  };

  std::vector<ZooRow> zoo_rows;
  Table zoo_table{"Zoo policy throughput (workload BR, 10% of MaxNeeded)"};
  zoo_table.header({"policy", "Mreq/s", "evict/s", "ref Mreq/s", "speedup"});
  for (const ZooCandidate& candidate : zoo_candidates) {
    ZooRow row;
    row.policy = candidate.label;
    row.requests = zoo_trace.size();

    // Cross-check doubling as warm-up, as in the micro leg.
    const SimResult flat_check = simulate(zoo_trace, zoo_capacity, candidate.factory);
    const SimResult other_check = candidate.reference
        ? simulate(zoo_trace, zoo_capacity, candidate.reference)
        : simulate(zoo_trace, zoo_capacity, candidate.factory, {}, SimAudit{2048});
    if (flat_check.stats.hits != other_check.stats.hits ||
        flat_check.stats.hit_bytes != other_check.stats.hit_bytes ||
        flat_check.stats.evictions != other_check.stats.evictions ||
        flat_check.stats.evicted_bytes != other_check.stats.evicted_bytes ||
        flat_check.stats.insertions != other_check.stats.insertions ||
        flat_check.max_used_bytes != other_check.max_used_bytes) {
      std::cerr << "FATAL: " << candidate.label
                << (candidate.reference ? " diverges from its naive reference"
                                        : " is not run-to-run deterministic")
                << " on workload BR\n";
      return 1;
    }

    const auto [seconds, evictions] = time_sim_best(zoo_trace, zoo_capacity,
                                                    candidate.factory, 3);
    row.seconds = seconds;
    row.requests_per_sec = static_cast<double>(row.requests) / seconds;
    row.evictions_per_sec = static_cast<double>(evictions) / seconds;
    if (candidate.reference) {
      const auto [reference_seconds, reference_evictions] =
          time_sim_best(zoo_trace, zoo_capacity, candidate.reference, 3);
      (void)reference_evictions;
      row.reference_requests_per_sec = static_cast<double>(row.requests) / reference_seconds;
      row.speedup_vs_reference = row.requests_per_sec / row.reference_requests_per_sec;
    }

    zoo_table.row({row.policy, Table::num(row.requests_per_sec / 1e6, 2),
                   Table::num(row.evictions_per_sec, 0),
                   row.reference_requests_per_sec > 0.0
                       ? Table::num(row.reference_requests_per_sec / 1e6, 2)
                       : "-",
                   row.speedup_vs_reference > 0.0
                       ? Table::num(row.speedup_vs_reference, 2)
                       : "-"});
    zoo_rows.push_back(std::move(row));
  }
  zoo_table.print(std::cout);
  std::cout << "  GDSF/SLRU stats cross-checked against naive references; "
               "W-TinyLFU two-run deterministic + audited\n\n";

  // ---- 9. JSON out --------------------------------------------------------
  std::string out_path = "BENCH_perf.json";
  if (const char* env = std::getenv("WCS_BENCH_OUT")) out_path = env;
  if (argc > 1) out_path = argv[1];

  std::ostringstream json;
  json << "{\n"
       << "  \"schema\": \"wcs-bench-perf-v1\",\n"
       << "  \"scale\": " << json_num(scale) << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"hardware_threads\": " << cores << ",\n"
       << "  \"grid\": {\n"
       << "    \"workload\": \"U\",\n"
       << "    \"cells\": " << grid.size() << ",\n"
       << "    \"requests_per_cell\": " << grid_trace.size() << ",\n"
       << "    \"serial_seconds\": " << json_num(grid_serial_seconds) << ",\n"
       << "    \"parallel_seconds\": " << json_num(grid_parallel_seconds) << ",\n"
       << "    \"parallel_speedup\": " << json_num(grid_speedup) << ",\n"
       << "    \"serial_requests_per_sec\": "
       << json_num(grid_requests / grid_serial_seconds) << ",\n"
       << "    \"parallel_requests_per_sec\": "
       << json_num(grid_requests / grid_parallel_seconds) << "\n"
       << "  },\n"
       << "  \"micro\": [\n";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const MicroRow& row = micro[i];
    json << "    {\"workload\": \"" << row.workload << "\", \"policy\": \"" << row.policy
         << "\", \"requests\": " << row.requests
         << ", \"seconds\": " << json_num(row.seconds)
         << ", \"requests_per_sec\": " << json_num(row.requests_per_sec)
         << ", \"evictions_per_sec\": " << json_num(row.evictions_per_sec);
    if (row.speedup_vs_legacy > 0.0) {
      json << ", \"legacy_requests_per_sec\": " << json_num(row.legacy_requests_per_sec)
           << ", \"speedup_vs_legacy\": " << json_num(row.speedup_vs_legacy);
    }
    json << "}" << (i + 1 < micro.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"streaming\": {\n"
       << "    \"workload\": \"BL\",\n"
       << "    \"duration_factor\": " << kDurationFactor << ",\n"
       << "    \"requests\": " << streaming_result.footprint.requests << ",\n"
       << "    \"materialized_bytes\": " << materialized_bytes << ",\n"
       << "    \"streaming_bytes\": " << streaming_bytes << ",\n"
       << "    \"resident_ratio\": " << json_num(resident_ratio) << ",\n"
       << "    \"peak_rss_bytes\": " << streaming_result.footprint.peak_rss_bytes << ",\n"
       << "    \"materialize_seconds\": " << json_num(materialize_seconds) << ",\n"
       << "    \"materialized_sim_seconds\": " << json_num(materialized_sim_seconds) << ",\n"
       << "    \"streaming_seconds\": " << json_num(streaming_seconds) << "\n"
       << "  },\n"
       << "  \"faults\": {\n"
       << "    \"workload\": \"BR\",\n"
       << "    \"requests_per_pass\": " << faults_trace.size() << ",\n"
       << "    \"passes\": " << faults_passes << ",\n"
       << "    \"disabled_seconds\": " << json_num(faults_disabled_seconds) << ",\n"
       << "    \"enabled_seconds\": " << json_num(faults_enabled_seconds) << ",\n"
       << "    \"overhead_ratio\": " << json_num(faults_overhead_ratio) << ",\n"
       << "    \"enabled_requests_per_sec\": "
       << json_num(faults_requests / faults_enabled_seconds) << "\n"
       << "  },\n"
       << "  \"obs\": {\n"
       << "    \"workload\": \"BL\",\n"
       << "    \"requests_per_pass\": " << obs_trace.size() << ",\n"
       << "    \"interleaved_reps\": " << kObsReps << ",\n"
       << "    \"disabled_seconds\": " << json_num(obs_disabled_seconds) << ",\n"
       << "    \"enabled_seconds\": " << json_num(obs_enabled_seconds) << ",\n"
       << "    \"overhead_ratio\": " << json_num(obs_overhead_ratio) << ",\n"
       << "    \"enabled_requests_per_sec\": "
       << json_num(obs_requests / obs_enabled_seconds) << "\n"
       << "  },\n"
       << "  \"sharded\": {\n"
       << "    \"workload\": \"BR\",\n"
       << "    \"shards\": " << kShards << ",\n"
       << "    \"policy\": \"SIZE\",\n"
       << "    \"arrival\": \"closed_loop\",\n"
       << "    \"requests_per_pass\": " << sharded_trace.size() << ",\n"
       << "    \"legs\": [\n";
  for (std::size_t i = 0; i < sharded_legs.size(); ++i) {
    const ShardedLeg& leg = sharded_legs[i];
    json << "      {\"threads\": " << leg.threads
         << ", \"seconds\": " << json_num(leg.seconds)
         << ", \"requests_per_sec\": " << json_num(leg.requests_per_sec) << "}"
         << (i + 1 < sharded_legs.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"speedup_at_4_threads\": " << json_num(sharded_speedup_at_4) << "\n"
       << "  },\n"
       << "  \"topology\": {\n"
       << "    \"workload\": \"BR\",\n"
       << "    \"tiers\": 3,\n"
       << "    \"total_capacity_bytes\": " << topo_target.total_capacity_bytes() << ",\n"
       << "    \"requests_per_pass\": " << topo_trace.size() << ",\n"
       << "    \"passes\": " << topo_passes << ",\n"
       << "    \"flat_seconds\": " << json_num(topo_flat_seconds) << ",\n"
       << "    \"topology_seconds\": " << json_num(topo_tiered_seconds) << ",\n"
       << "    \"overhead_ratio\": " << json_num(topo_overhead_ratio) << ",\n"
       << "    \"topology_requests_per_sec\": "
       << json_num(topo_requests / topo_tiered_seconds) << "\n"
       << "  },\n"
       << "  \"zoo\": [\n";
  for (std::size_t i = 0; i < zoo_rows.size(); ++i) {
    const ZooRow& row = zoo_rows[i];
    json << "    {\"workload\": \"BR\", \"policy\": \"" << row.policy
         << "\", \"requests\": " << row.requests
         << ", \"seconds\": " << json_num(row.seconds)
         << ", \"requests_per_sec\": " << json_num(row.requests_per_sec)
         << ", \"evictions_per_sec\": " << json_num(row.evictions_per_sec);
    if (row.speedup_vs_reference > 0.0) {
      json << ", \"reference_requests_per_sec\": "
           << json_num(row.reference_requests_per_sec)
           << ", \"speedup_vs_reference\": " << json_num(row.speedup_vs_reference);
    }
    json << "}" << (i + 1 < zoo_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out{out_path};
  out << json.str();
  if (!out) {
    std::cerr << "FATAL: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
