// Reproduces Figs 1-2: concentration of workload BL — requests per server
// (rank order) and bytes per URL (rank order), both Zipf-like, plus the
// paper's headline concentration facts (2543 servers, 84 servers with >=100
// requests, ~290 URLs carrying 50% of the bytes).
#include "bench/common.h"

#include <algorithm>

#include "src/trace/trace_stats.h"

using namespace wcs;
using namespace wcs::bench;

namespace {

void print_rank_curve(const std::string& caption, const std::vector<std::uint64_t>& ranked) {
  Table table{caption};
  table.header({"rank", "count"});
  for (std::size_t rank = 1; rank <= ranked.size(); rank *= 4) {
    table.row({std::to_string(rank), std::to_string(ranked[rank - 1])});
  }
  table.print(std::cout);
  std::cout << "  fitted Zipf exponent: " << Table::num(zipf_exponent_estimate(ranked), 2)
            << "  (paper: \"follows a Zipf distribution\")\n\n";
  if (gnuplot_from_env()) {
    std::vector<std::pair<double, double>> points;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      points.emplace_back(static_cast<double>(i + 1), static_cast<double>(ranked[i]));
    }
    print_series(std::cout, caption, {Series{"ranked", points}});
  }
}

}  // namespace

int main() {
  print_header("Figs 1-2 — request/byte concentration in workload BL");
  print_calibration("BL");
  const Trace& trace = workload("BL").trace;

  const auto per_server = requests_per_server_ranked(trace);
  print_rank_curve("Fig 1: requests per server (BL)", per_server);
  const std::size_t servers_100plus = static_cast<std::size_t>(std::count_if(
      per_server.begin(), per_server.end(), [](std::uint64_t c) { return c >= 100; }));
  const std::size_t servers_le10 = static_cast<std::size_t>(std::count_if(
      per_server.begin(), per_server.end(), [](std::uint64_t c) { return c <= 10; }));
  std::cout << "  servers total: " << per_server.size() << " (paper: 2543)\n"
            << "  servers with >=100 requests: " << servers_100plus << " (paper: 84)\n"
            << "  servers with <=10 requests: " << servers_le10 << " (paper: 1666)\n\n";

  const auto per_url = bytes_per_url_ranked(trace);
  print_rank_curve("Fig 2: bytes transferred per URL (BL)", per_url);
  const std::size_t urls_for_half = count_for_mass_fraction(per_url, 0.5);
  std::cout << "  unique URLs: " << per_url.size() << " (paper: 36,771)\n"
            << "  URLs returning 50% of all bytes: " << urls_for_half
            << " (paper: ~290)\n";
  return 0;
}
