// Extension bench — the paper's §5 open problems, implemented:
//
//   Open problem 1: sorting keys never explored in 1996 — document TYPE
//   (media evicted first, text kept) and refetch LATENCY (cheap-to-refetch
//   evicted first). Measured on HR, WHR and a new response variable the
//   original traces could not support: fraction of refetch latency avoided.
//
//   Open problem 3: a single second-level cache shared by several primary
//   caches — "how much commonality exists between the workloads if they
//   share a single second level cache?"
//   Open problem 3 (second half): a multi-level hierarchy deeper than two
//   levels — client cache -> department proxy -> campus proxy.
//
//   Open problem 4: interaction of removal with consistency — Harvest-style
//   expired-documents-first eviction at various TTLs.
#include "bench/common.h"

#include "src/core/expiry.h"
#include "src/core/hierarchy.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("§5 open problems — TYPE/LATENCY keys and a shared L2");

  std::cout << "--- Open problem 1: type- and latency-aware removal keys ---\n\n";
  for (const char* name : {"BL", "U", "BR"}) {
    const Trace& trace = workload(name).trace;
    const Experiment1Result infinite = run_experiment1(name, trace);
    const LatencyStudyResult result =
        run_latency_study(name, trace, infinite.max_needed, 0.10);
    Table table{"workload " + std::string{name} + ", cache = 10% of MaxNeeded (" +
                Table::num(static_cast<double>(result.capacity_bytes) / 1e6, 1) + " MB)"};
    table.header({"policy", "HR", "WHR", "latency saved"});
    for (const LatencyOutcome& outcome : result.outcomes) {
      table.row({outcome.policy, Table::pct(outcome.hr, 1), Table::pct(outcome.whr, 1),
                 Table::pct(outcome.latency_savings, 1)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Readings (resolving the open problem, negatively):\n"
               "  - a pure LATENCY key LOSES even on latency saved: it hoards\n"
               "    expensive but unpopular documents, while SIZE's many small\n"
               "    hits add up — popularity dominates per-hit refetch cost\n"
               "  - NREF/ATIME save the most latency on byte-heavy workloads by\n"
               "    keeping popular media, mirroring their WHR advantage\n"
               "  - TYPE+SIZE approximates SIZE on HR (media are the big\n"
               "    documents) while guaranteeing text stays resident\n\n";

  std::cout << "--- Open problem 3: shared vs dedicated second-level cache ---\n\n";
  Table shared_table{"L1 = SIZE policy, 10% of MaxNeeded split across groups; L2 infinite"};
  shared_table.header({"workload", "groups", "L1 HR", "shared L2 HR", "dedicated L2 HR",
                       "shared L2 WHR", "dedicated L2 WHR"});
  for (const char* name : {"BL", "U", "C"}) {
    const Trace& trace = workload(name).trace;
    const Experiment1Result infinite = run_experiment1(name, trace);
    for (const int groups : {2, 4, 8}) {
      const SharedL2Result result =
          run_shared_l2_study(name, trace, infinite.max_needed, 0.10, groups);
      shared_table.row({name, std::to_string(groups), Table::pct(result.l1_hr, 1),
                        Table::pct(result.shared_l2_hr, 1),
                        Table::pct(result.dedicated_l2_hr, 1),
                        Table::pct(result.shared_l2_whr, 1),
                        Table::pct(result.dedicated_l2_whr, 1)});
    }
  }
  shared_table.print(std::cout);
  std::cout << "\nReading: the shared L2 consistently beats per-group L2s — one\n"
               "group's miss warms the cache for every other group, quantifying\n"
               "the cross-client commonality the paper conjectured. The gap\n"
               "widens with more (smaller) groups.\n\n";

  std::cout << "--- Open problem 3 (cont.): three-level hierarchy ---\n\n";
  {
    Table table{"client cache (1%) -> department proxy (10%) -> campus proxy (50%)"};
    table.header({"workload", "L0 HR", "L1 HR", "L2 HR", "combined HR", "L2 WHR"});
    for (const char* name : {"BL", "U"}) {
      const Trace& trace = workload(name).trace;
      const Experiment1Result infinite = run_experiment1(name, trace);
      std::vector<CacheHierarchy::LevelSpec> levels;
      for (const double fraction : {0.01, 0.10, 0.50}) {
        CacheHierarchy::LevelSpec spec;
        spec.config.capacity_bytes = fraction_of(infinite.max_needed, fraction);
        spec.policy = make_size();
        levels.push_back(std::move(spec));
      }
      CacheHierarchy hierarchy{std::move(levels)};
      for (const Request& request : trace.requests()) hierarchy.access(request);
      table.row({name, Table::pct(hierarchy.hit_rate_of(0), 1),
                 Table::pct(hierarchy.hit_rate_of(1), 1),
                 Table::pct(hierarchy.hit_rate_of(2), 1),
                 Table::pct(hierarchy.combined_hit_rate(), 1),
                 Table::pct(hierarchy.weighted_hit_rate_of(2), 1)});
    }
    table.print(std::cout);
    std::cout << "\nReading: each level serves a meaningful share; the tiny client\n"
                 "cache soaks up the hottest documents, the outer levels add byte-\n"
                 "heavy coverage — deeper hierarchies keep paying, at diminishing\n"
                 "per-level rates.\n\n";
  }

  std::cout << "--- Open problem 4: expired-documents-first removal ---\n\n";
  {
    Table table{"workload BL, SIZE inner policy, 10% of MaxNeeded"};
    table.header({"TTL", "HR", "WHR"});
    const Trace& trace = workload("BL").trace;
    const Experiment1Result infinite = run_experiment1("BL", trace);
    const std::uint64_t capacity = fraction_of(infinite.max_needed, 0.10);
    const std::vector<std::pair<const char*, SimTime>> ttls = {
        {"none (pure SIZE)", 0},
        {"7 days", 7 * kSecondsPerDay},
        {"1 day", kSecondsPerDay},
        {"6 hours", 6 * kSecondsPerHour},
        {"1 hour", kSecondsPerHour},
    };
    for (const auto& [label, ttl] : ttls) {
      const SimResult sim = simulate(trace, capacity, [ttl = ttl] {
        return ttl > 0 ? make_expiry_first(make_size(), ttl) : make_size();
      });
      table.row({label, Table::pct(sim.daily.overall_hr(), 1),
                 Table::pct(sim.daily.overall_whr(), 1)});
    }
    table.print(std::cout);
    std::cout << "\nReading: expired-first removal costs hit rate at any TTL, and\n"
                 "once the TTL drops below the typical inter-eviction age the\n"
                 "policy *degenerates to FIFO* (every eviction finds an expired\n"
                 "oldest-entered document) — its HR pins to the ETIME row of\n"
                 "Fig 11. Expiry belongs in the consistency path, not the\n"
                 "removal path: exactly the interaction the paper flags.\n";
  }
  return 0;
}
