// Experiment 3 (Figs 16-18): a second-level (infinite) cache behind a
// memory-starved L1 (10% of MaxNeeded, SIZE policy). The paper reports L2
// HR of 1.2-8% and L2 WHR of 15-70% over all requests — because SIZE
// displaces exactly the large documents, L2 acts as extended memory for
// byte-heavy media.
#include "bench/common.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("Experiment 3 — second-level cache behind 10% L1 with SIZE policy");

  // Table 5 runs the first level at both 10% and 50% of MaxNeeded; the
  // figures show the memory-starved 10% case. Each (workload, L1 size)
  // simulation is one runner cell; collection order keeps the table rows
  // deterministic.
  ParallelRunner& runner = ParallelRunner::shared();
  const std::vector<std::string> names = {"BR", "C", "G", "U", "BL"};
  const std::vector<double> fractions = {0.10, 0.50};
  preload_workloads(names, runner);
  const std::vector<Experiment1Result> infinites = runner.map(names.size(), [&](std::size_t i) {
    return [&names, i] { return run_experiment1(names[i], workload(names[i]).trace); };
  });
  const std::vector<Experiment3Result> results =
      runner.map(names.size() * fractions.size(), [&](std::size_t cell) {
        return [&names, &fractions, &infinites, cell] {
          const std::size_t w = cell / fractions.size();
          const double fraction = fractions[cell % fractions.size()];
          return run_experiment3(names[w], workload(names[w]).trace,
                                 infinites[w].max_needed, fraction);
        };
      });

  Table table{"L2 performance over all requests (Figs 16-18)"};
  table.header({"workload", "L1 size", "L1 HR", "L2 HR", "L2 WHR", "L2 WHR / L2 HR"});
  for (std::size_t cell = 0; cell < results.size(); ++cell) {
    const std::string& name = names[cell / fractions.size()];
    const double fraction = fractions[cell % fractions.size()];
    const Experiment3Result& result = results[cell];
    table.row({name, Table::pct(fraction, 0), Table::pct(result.l1_hr, 1),
               Table::pct(result.l2_hr, 1), Table::pct(result.l2_whr, 1),
               result.l2_hr > 0 ? Table::num(result.l2_whr / result.l2_hr, 1) : "-"});
    if (fraction != 0.10) continue;
    const std::string fig = name == "BR"  ? "16"
                            : name == "C" ? "17"
                            : name == "G" ? "18"
                                          : "(not shown in paper)";
    std::cout << "Fig " << fig << " — workload " << name << " (10% L1):\n";
    print_curve("L2 HR ", result.l2_smoothed_hr, 0.0, 1.0);
    print_curve("L2 WHR", result.l2_smoothed_whr, 0.0, 1.0);
    std::cout << '\n';
  }
  table.print(std::cout);

  std::cout << "\nPaper shape checks:\n"
               "  - L2 WHR vastly exceeds L2 HR on every workload (big documents\n"
               "    live in L2 because SIZE pushed them out of L1)\n"
               "  - BR's L2 WHR is the highest and stays fairly level (Fig 16)\n"
               "  - C's working set fits L1 early on; L2 picks up later in the\n"
               "    semester (Fig 17)\n";
  return 0;
}
