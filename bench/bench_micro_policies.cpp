// Micro-benchmarks (google-benchmark): per-operation cost of every removal
// policy under a steady-state churn workload. Supports the paper's §1.3
// argument that on-demand removal is cheap — the sorted-list policies keep
// the order incrementally, so the victim is popped from the head in
// O(log n) and a hit costs one erase+insert.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/cache.h"
#include "src/core/policy.h"
#include "src/util/rng.h"

namespace wcs {
namespace {

enum class Which : int {
  kSize = 0,
  kLog2SizeAtime,
  kLru,
  kFifo,
  kLfu,
  kHyperG,
  kLruMin,
  kPitkowRecker,
  kRandom,
};

std::unique_ptr<RemovalPolicy> make_which(Which which) {
  switch (which) {
    case Which::kSize: return make_size();
    case Which::kLog2SizeAtime:
      return make_sorted_policy(KeySpec{{Key::kLog2Size, Key::kAtime}});
    case Which::kLru: return make_lru();
    case Which::kFifo: return make_fifo();
    case Which::kLfu: return make_lfu();
    case Which::kHyperG: return make_hyper_g();
    case Which::kLruMin: return make_lru_min();
    case Which::kPitkowRecker: return make_pitkow_recker();
    case Which::kRandom: return make_random();
  }
  return make_lru();
}

const char* name_of(Which which) {
  switch (which) {
    case Which::kSize: return "SIZE";
    case Which::kLog2SizeAtime: return "LOG2SIZE+ATIME";
    case Which::kLru: return "LRU";
    case Which::kFifo: return "FIFO";
    case Which::kLfu: return "LFU";
    case Which::kHyperG: return "Hyper-G";
    case Which::kLruMin: return "LRU-MIN";
    case Which::kPitkowRecker: return "Pitkow/Recker";
    case Which::kRandom: return "RANDOM";
  }
  return "?";
}

struct Op {
  UrlId url;
  std::uint64_t size;
};

std::vector<Op> make_ops(std::size_t universe, std::size_t count) {
  Rng rng{42};
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto url = static_cast<UrlId>(rng.below(universe));
    ops.push_back({url, 64 + (mix64(url) % 30'000)});
  }
  return ops;
}

/// Steady-state churn: cache holds ~n entries, every access is a hit or an
/// insert+evictions. Reported as time per access.
void BM_PolicyAccess(benchmark::State& state) {
  const auto which = static_cast<Which>(state.range(0));
  const auto universe = static_cast<std::size_t>(state.range(1));
  const auto ops = make_ops(universe, 1 << 14);

  CacheConfig config;
  // Capacity sized so roughly half the universe fits: constant eviction.
  config.capacity_bytes = static_cast<std::uint64_t>(universe) * 15'000 / 2;
  Cache cache{config, make_which(which)};

  SimTime now = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const Op& op = ops[i];
    i = (i + 1) & (ops.size() - 1);
    now += 13;
    benchmark::DoNotOptimize(cache.access(now, op.url, op.size));
  }
  state.SetLabel(name_of(which));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void register_all() {
  for (const Which which :
       {Which::kSize, Which::kLog2SizeAtime, Which::kLru, Which::kFifo, Which::kLfu,
        Which::kHyperG, Which::kLruMin, Which::kPitkowRecker, Which::kRandom}) {
    for (const std::int64_t universe : {1'000, 10'000, 100'000}) {
      const std::string name =
          std::string{"PolicyAccess/"} + name_of(which) + "/" + std::to_string(universe);
      benchmark::RegisterBenchmark(name.c_str(), BM_PolicyAccess)
          ->Args({static_cast<std::int64_t>(which), universe});
    }
  }
}

}  // namespace
}  // namespace wcs

int main(int argc, char** argv) {
  wcs::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
