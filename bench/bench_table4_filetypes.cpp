// Reproduces Table 4: file-type distributions (percentage of references and
// of bytes transferred) for all five workloads.
#include "bench/common.h"

#include "src/trace/trace_stats.h"

using namespace wcs;
using namespace wcs::bench;

int main() {
  print_header("Table 4 — file type distributions (%refs / %bytes) per workload");

  Table table{"Table 4 (generated; paper targets in parentheses)"};
  std::vector<std::string> header = {"File type"};
  for (const char* name : {"U", "G", "C", "BR", "BL"}) {
    header.push_back(std::string{name} + " %refs");
    header.push_back(std::string{name} + " %bytes");
  }
  table.header(header);

  std::map<std::string, FileTypeDistribution> dists;
  std::map<std::string, WorkloadSpec> specs;
  for (const char* name : {"U", "G", "C", "BR", "BL"}) {
    const GeneratedWorkload& generated = workload(name);
    dists.emplace(name, file_type_distribution(generated.trace));
    specs.emplace(name, generated.spec);
  }

  for (const FileType type : kAllFileTypes) {
    std::vector<std::string> row = {std::string{to_string(type)}};
    for (const char* name : {"U", "G", "C", "BR", "BL"}) {
      const auto i = static_cast<std::size_t>(type);
      row.push_back(Table::pct(dists.at(name).ref_fraction(type), 1) + " (" +
                    Table::pct(specs.at(name).ref_mix[i], 1) + ")");
      row.push_back(Table::pct(dists.at(name).byte_fraction(type), 1) + " (" +
                    Table::pct(specs.at(name).byte_mix[i], 1) + ")");
    }
    table.row(row);
  }
  table.print(std::cout);

  std::cout << "\nPaper shape checks:\n"
               "  - graphics+text dominate references everywhere\n"
               "  - audio is <3% of BR references but ~88% of BR bytes\n"
               "  - video is <1% of G/C references but ~26%/39% of bytes\n";
  return 0;
}
