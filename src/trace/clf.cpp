#include "src/trace/clf.h"

#include <istream>
#include <ostream>

#include "src/util/strings.h"

namespace wcs {

std::optional<RawRequest> parse_clf_line(std::string_view line) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;

  RawRequest out;

  // remotehost
  auto space = line.find(' ');
  if (space == std::string_view::npos) return std::nullopt;
  out.client = std::string{line.substr(0, space)};
  line = trim_left(line.substr(space + 1));

  // rfc931 and authuser: skip two space-delimited fields.
  for (int i = 0; i < 2; ++i) {
    space = line.find(' ');
    if (space == std::string_view::npos) return std::nullopt;
    line = trim_left(line.substr(space + 1));
  }

  // [date]
  if (line.empty() || line.front() != '[') return std::nullopt;
  const auto date_end = line.find(']');
  if (date_end == std::string_view::npos) return std::nullopt;
  if (!parse_clf_timestamp(std::string{line.substr(0, date_end + 1)}, out.time)) {
    return std::nullopt;
  }
  line = trim_left(line.substr(date_end + 1));

  // "request" — may contain spaces inside the URL; take the outermost quotes.
  if (line.empty() || line.front() != '"') return std::nullopt;
  const auto quote_end = line.rfind('"');
  if (quote_end == 0) return std::nullopt;
  const std::string_view request_line = line.substr(1, quote_end - 1);
  line = trim_left(line.substr(quote_end + 1));

  // request-line = method SP url [SP version]
  {
    const auto m_end = request_line.find(' ');
    if (m_end == std::string_view::npos) return std::nullopt;
    out.method = std::string{request_line.substr(0, m_end)};
    std::string_view rest = trim(request_line.substr(m_end + 1));
    // Strip a trailing "HTTP/x.y" token if present.
    const auto last_space = rest.rfind(' ');
    if (last_space != std::string_view::npos &&
        starts_with(rest.substr(last_space + 1), "HTTP/")) {
      rest = trim_right(rest.substr(0, last_space));
    }
    if (rest.empty()) return std::nullopt;
    out.url = std::string{rest};
  }

  // status bytes
  const auto fields = split(trim(line), ' ');
  if (fields.size() < 2) return std::nullopt;
  const auto status = parse_u64(fields[0]);
  if (!status || *status < 100 || *status > 599) return std::nullopt;
  out.status = static_cast<int>(*status);
  const std::string_view bytes_field = fields[1];
  if (bytes_field == "-") {
    out.size = 0;
  } else {
    const auto bytes = parse_u64(bytes_field);
    if (!bytes) return std::nullopt;
    out.size = *bytes;
  }
  return out;
}

std::string format_clf_line(const RawRequest& request) {
  std::string out;
  out.reserve(96 + request.url.size());
  out += request.client.empty() ? "-" : request.client;
  out += " - - ";
  out += to_clf_timestamp(request.time);
  out += " \"";
  out += request.method.empty() ? "GET" : request.method;
  out += ' ';
  out += request.url;
  out += " HTTP/1.0\" ";
  out += std::to_string(request.status);
  out += ' ';
  out += std::to_string(request.size);
  return out;
}

ClfReadResult read_clf(std::istream& in) {
  ClfReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    if (auto parsed = parse_clf_line(line)) {
      result.requests.push_back(std::move(*parsed));
    } else {
      ++result.malformed_lines;
    }
  }
  return result;
}

void write_clf(std::ostream& out, const std::vector<RawRequest>& requests) {
  for (const auto& r : requests) out << format_clf_line(r) << '\n';
}

}  // namespace wcs
