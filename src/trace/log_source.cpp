#include "src/trace/log_source.h"

#include <fstream>
#include <istream>
#include <stdexcept>

#include "src/trace/clf.h"
#include "src/trace/squid.h"

namespace wcs {

LogStreamSource::LogStreamSource(std::istream& in, ValidationOptions options, Format format)
    : in_(&in),
      format_(format),
      names_(std::make_unique<InternTable>()),
      core_(std::make_unique<StreamingValidator>(*names_, options)) {}

std::unique_ptr<LogStreamSource> LogStreamSource::open(const std::string& path,
                                                       ValidationOptions options, Format format) {
  auto stream = std::make_unique<std::ifstream>(path);
  if (!*stream) {
    throw std::runtime_error("LogStreamSource: cannot open " + path);
  }
  auto source = std::unique_ptr<LogStreamSource>(new LogStreamSource(*stream, options, format));
  source->owned_ = std::move(stream);
  return source;
}

bool LogStreamSource::next(Request& out) {
  if (stream_error_) return false;  // the stream is gone; don't touch it again
  while (std::getline(*in_, line_)) {
    ++lines_read_;
    if (line_.empty()) continue;
    if (format_ == Format::kAuto) {
      // Sniff from the first non-empty line; unrecognized lines fall back
      // to CLF and will be counted as malformed below.
      format_ = detect_log_format(line_) == "squid" ? Format::kSquid : Format::kClf;
    }
    const auto raw =
        format_ == Format::kSquid ? parse_squid_line(line_) : parse_clf_line(line_);
    if (!raw) {
      ++malformed_lines_;
      continue;
    }
    if (auto request = core_->feed(*raw)) {
      out = *request;
      return true;
    }
  }
  // getline stopped: clean EOF sets eofbit only, a mid-read I/O failure
  // sets badbit. Record the latter so it cannot masquerade as end-of-log.
  if (in_->bad()) {
    stream_error_ = "log stream I/O error after " + std::to_string(lines_read_) + " line(s)";
  }
  return false;
}

std::uint64_t LogStreamSource::resident_bytes() const noexcept {
  // Intern tables dominate; add the line buffer and a flat estimate of the
  // validator's per-URL last-size map (one entry per URL).
  constexpr std::uint64_t kMapEntry = sizeof(UrlId) + sizeof(std::uint64_t) + 4 * sizeof(void*);
  return names_->memory_footprint_bytes() + line_.capacity() +
         static_cast<std::uint64_t>(names_->url_count()) * kMapEntry;
}

}  // namespace wcs
