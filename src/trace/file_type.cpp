#include "src/trace/file_type.h"

#include "src/util/strings.h"

namespace wcs {

std::string_view to_string(FileType type) noexcept {
  switch (type) {
    case FileType::kGraphics: return "graphics";
    case FileType::kText: return "text/html";
    case FileType::kAudio: return "audio";
    case FileType::kVideo: return "video";
    case FileType::kCgi: return "cgi";
    case FileType::kUnknown: return "unknown";
  }
  return "unknown";
}

FileType classify_extension(std::string_view ext) noexcept {
  // Extension sets current in 1995-96 era logs plus their modern aliases.
  constexpr std::string_view kGraphics[] = {"gif",  "jpg", "jpeg", "xbm", "png",
                                            "tif",  "tiff", "bmp",  "pcx", "ppm",
                                            "pgm",  "pbm",  "rgb",  "ico"};
  constexpr std::string_view kText[] = {"html", "htm", "txt", "text", "ps",  "tex",
                                        "dvi",  "doc", "shtml", "css", "xml", "md"};
  constexpr std::string_view kAudio[] = {"au", "snd", "wav", "aif", "aiff", "mid",
                                         "midi", "ra", "ram", "mp2", "mp3"};
  constexpr std::string_view kVideo[] = {"mpg", "mpeg", "mpe", "mov", "qt", "avi", "fli"};
  constexpr std::string_view kCgi[] = {"cgi", "pl", "php", "asp"};
  for (const auto e : kGraphics) {
    if (ext == e) return FileType::kGraphics;
  }
  for (const auto e : kText) {
    if (ext == e) return FileType::kText;
  }
  for (const auto e : kAudio) {
    if (ext == e) return FileType::kAudio;
  }
  for (const auto e : kVideo) {
    if (ext == e) return FileType::kVideo;
  }
  for (const auto e : kCgi) {
    if (ext == e) return FileType::kCgi;
  }
  return FileType::kUnknown;
}

FileType classify_url(std::string_view url) {
  if (looks_dynamic(url)) return FileType::kCgi;
  const std::string ext = url_extension(url);
  if (ext.empty()) {
    // Directory URLs ("/", "/foo/") serve an index HTML document.
    if (url.empty() || url.back() == '/') return FileType::kText;
    return FileType::kUnknown;
  }
  return classify_extension(ext);
}

}  // namespace wcs
