// Squid native access.log support.
//
// Squid (the direct descendant of the Harvest cache the paper cites)
// writes:
//
//   timestamp.ms elapsed client action/code size method URL ident
//   hierarchy/from content-type
//
// e.g.  796430640.123    87 10.0.0.1 TCP_MISS/200 2934 GET
//         http://www.w3.org/pub/WWW/ - DIRECT/18.23.0.23 text/html
//
// Parsing one converts it to the same RawRequest the CLF reader produces,
// so the §1.1 validator and the whole simulator run unchanged on Squid
// logs. Timestamps are Unix epoch seconds; they are rebased onto the
// simulator's 1995-01-01 epoch.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "src/trace/trace.h"

namespace wcs {

/// Unix time of the simulator epoch (1995-01-01T00:00:00Z).
inline constexpr std::int64_t kUnixAtSimEpoch = 788'918'400;

/// Parse one Squid native log line; nullopt if structurally invalid.
[[nodiscard]] std::optional<RawRequest> parse_squid_line(std::string_view line);

/// Detect the format of a log line: "squid", "clf", or "unknown".
[[nodiscard]] std::string_view detect_log_format(std::string_view first_line);

struct SquidReadResult {
  std::vector<RawRequest> requests;
  std::size_t malformed_lines = 0;
};
[[nodiscard]] SquidReadResult read_squid(std::istream& in);

}  // namespace wcs
