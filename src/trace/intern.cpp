#include "src/trace/intern.h"

namespace wcs {

std::string_view url_server(std::string_view url) noexcept {
  const auto scheme = url.find("://");
  if (scheme == std::string_view::npos) return "-";
  const auto host_start = scheme + 3;
  const auto host_end = url.find('/', host_start);
  auto host = host_end == std::string_view::npos ? url.substr(host_start)
                                                 : url.substr(host_start, host_end - host_start);
  if (const auto colon = host.find(':'); colon != std::string_view::npos) {
    host = host.substr(0, colon);
  }
  return host.empty() ? "-" : host;
}

UrlId InternTable::intern_url(std::string_view url) {
  if (const auto it = url_index_.find(std::string{url}); it != url_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<UrlId>(urls_.size());
  urls_.emplace_back(url);
  url_server_.push_back(intern_server(url_server(url)));
  url_index_.emplace(urls_.back(), id);
  return id;
}

ServerId InternTable::intern_server(std::string_view server) {
  if (const auto it = server_index_.find(std::string{server}); it != server_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.emplace_back(server);
  server_index_.emplace(servers_.back(), id);
  return id;
}

ClientId InternTable::intern_client(std::string_view client) {
  if (const auto it = client_index_.find(std::string{client}); it != client_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<ClientId>(clients_.size());
  clients_.emplace_back(client);
  client_index_.emplace(clients_.back(), id);
  return id;
}

namespace {

std::uint64_t string_bytes(const std::vector<std::string>& strings) {
  std::uint64_t sum = strings.capacity() * sizeof(std::string);
  for (const auto& s : strings) sum += s.capacity();
  return sum;
}

}  // namespace

std::uint64_t InternTable::memory_footprint_bytes() const noexcept {
  // The index maps duplicate the key strings; count node + key per entry.
  constexpr std::uint64_t kNodeOverhead = 4 * sizeof(void*);
  std::uint64_t sum = string_bytes(urls_) + string_bytes(servers_) + string_bytes(clients_);
  sum += url_server_.capacity() * sizeof(ServerId);
  for (const auto& [key, value] : url_index_) sum += key.capacity() + kNodeOverhead;
  for (const auto& [key, value] : server_index_) sum += key.capacity() + kNodeOverhead;
  for (const auto& [key, value] : client_index_) sum += key.capacity() + kNodeOverhead;
  return sum;
}

}  // namespace wcs
