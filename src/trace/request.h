// Request records — the currency of every trace layer.
//
// A RawRequest is one parsed log line. A Request is the validated, compiled
// form the simulator consumes: URLs, servers and clients are interned to
// dense ids so the hot simulation loop never touches strings, and every
// request carries its resolved transfer size and file type.
#pragma once

#include <cstdint>
#include <string>

#include "src/trace/file_type.h"
#include "src/util/simtime.h"

namespace wcs {

using UrlId = std::uint32_t;
using ServerId = std::uint32_t;
using ClientId = std::uint32_t;

inline constexpr UrlId kInvalidUrl = static_cast<UrlId>(-1);

/// One log line as parsed from a common-format log (before validation).
struct RawRequest {
  SimTime time = 0;
  std::string client;    // remote host field
  std::string method;    // "GET", ...
  std::string url;       // request URL, absolute or path form
  int status = 0;        // HTTP status code; paper keeps only 200
  std::uint64_t size = 0;  // bytes transferred; 0 when the log said '-'
};

/// One validated, compiled request; POD, cache-friendly.
struct Request {
  SimTime time = 0;
  std::uint64_t size = 0;
  UrlId url = 0;
  ServerId server = 0;
  ClientId client = 0;
  FileType type = FileType::kUnknown;
  /// Estimated refetch latency from this document's origin (ms); 0 when
  /// unknown (e.g. real logs). Synthetic workloads stamp it from a
  /// per-server RTT/bandwidth model; feeds the LATENCY sorting key.
  std::uint32_t latency_ms = 0;
};

}  // namespace wcs
