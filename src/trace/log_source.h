// Streaming log reader: CLF or Squid access logs -> validated Requests,
// one line at a time.
//
// Unlike read_clf/read_squid + validate(), which materialize the whole log
// twice (RawRequest vector, then Trace), LogStreamSource holds one line,
// the intern tables and the validator's per-URL state — O(corpus) — so it
// replays logs of any length. Single pass: to simulate the same log again,
// open a fresh source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "src/trace/request_source.h"
#include "src/trace/validate.h"

namespace wcs {

class LogStreamSource final : public RequestSource {
 public:
  enum class Format { kAuto, kClf, kSquid };

  /// Stream from `in`, which must outlive the source. kAuto sniffs the
  /// format from the first line (falling back to CLF for unrecognized
  /// lines, which then count as malformed).
  explicit LogStreamSource(std::istream& in, ValidationOptions options = {},
                           Format format = Format::kAuto);

  /// Open a log file for streaming; throws std::runtime_error if the file
  /// cannot be opened. The returned source owns the stream.
  [[nodiscard]] static std::unique_ptr<LogStreamSource> open(const std::string& path,
                                                             ValidationOptions options = {},
                                                             Format format = Format::kAuto);

  bool next(Request& out) override;

  [[nodiscard]] const InternTable& names() const noexcept override { return *names_; }
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept override;
  /// Set when the underlying stream died mid-read (badbit): the log was
  /// NOT fully consumed and results so far cover only a prefix. Clean EOF
  /// (including an empty file) leaves this unset.
  [[nodiscard]] std::optional<std::string> stream_error() const override { return stream_error_; }

  /// §1.1 validation counters for everything consumed so far.
  [[nodiscard]] const ValidationStats& validation() const noexcept { return core_->stats(); }
  /// Structurally invalid lines skipped so far (distinct from validation
  /// drops, which are well-formed lines the paper's rules reject).
  [[nodiscard]] std::size_t malformed_lines() const noexcept { return malformed_lines_; }
  /// Resolved format (kAuto is replaced once the first line is read).
  [[nodiscard]] Format format() const noexcept { return format_; }

 private:
  std::unique_ptr<std::istream> owned_;  // set by open(); null when borrowing
  std::istream* in_;
  Format format_;
  // unique_ptr so the validator's pointer into the table survives moves.
  std::unique_ptr<InternTable> names_;
  std::unique_ptr<StreamingValidator> core_;
  std::string line_;
  std::size_t malformed_lines_ = 0;
  std::size_t lines_read_ = 0;
  std::optional<std::string> stream_error_;
};

}  // namespace wcs
