// Intern tables: the id <-> name mapping shared by every request source.
//
// URLs, servers and clients are interned to dense ids in first-seen order,
// so the simulator never touches strings and two sources fed the same
// record sequence assign identical ids (the bit-identity contract between
// materialized and streaming simulation rests on this). The table is
// append-only: ids already handed out stay valid for the table's lifetime.
//
// Thread affinity: one request source owns one table; first-seen-order ids
// *are* the determinism contract, so concurrent interning is meaningless
// here (it would make ids depend on thread scheduling). The sharded-cache
// era shares immutable tables after a single-owner build phase — it must
// not add a lock, it must keep the build single-threaded. WCS_THREAD_AFFINE
// makes that design choice machine-checkable: tools/wcs_analyze.py rejects
// a mutex member appearing in a thread-affine class.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/trace/request.h"
#include "src/util/thread_annotations.h"

namespace wcs {

class WCS_THREAD_AFFINE InternTable {
 public:
  /// Intern a URL (and its server, derived from the URL authority or "-")
  /// and return its id. Repeated calls are idempotent.
  UrlId intern_url(std::string_view url);
  ClientId intern_client(std::string_view client);

  [[nodiscard]] std::string_view url_name(UrlId id) const noexcept { return urls_[id]; }
  [[nodiscard]] std::string_view server_name(ServerId id) const noexcept { return servers_[id]; }
  [[nodiscard]] std::string_view client_name(ClientId id) const noexcept { return clients_[id]; }
  [[nodiscard]] ServerId server_of(UrlId id) const noexcept { return url_server_[id]; }

  [[nodiscard]] std::uint32_t url_count() const noexcept {
    return static_cast<std::uint32_t>(urls_.size());
  }
  [[nodiscard]] std::uint32_t server_count() const noexcept {
    return static_cast<std::uint32_t>(servers_.size());
  }
  [[nodiscard]] std::uint32_t client_count() const noexcept {
    return static_cast<std::uint32_t>(clients_.size());
  }

  /// Approximate resident bytes: string payloads + vector slots + index
  /// entries. O(corpus) — this is the floor any streaming source pays.
  [[nodiscard]] std::uint64_t memory_footprint_bytes() const noexcept;

 private:
  ServerId intern_server(std::string_view server);

  std::vector<std::string> urls_;
  std::vector<std::string> servers_;
  std::vector<std::string> clients_;
  std::vector<ServerId> url_server_;
  std::unordered_map<std::string, UrlId> url_index_;
  std::unordered_map<std::string, ServerId> server_index_;
  std::unordered_map<std::string, ClientId> client_index_;
};

/// Extract the server (authority) part of an absolute URL, or "-" for
/// path-only URLs. "http://a.b/c" -> "a.b".
[[nodiscard]] std::string_view url_server(std::string_view url) noexcept;

}  // namespace wcs
