#include "src/trace/trace.h"

#include <unordered_map>

namespace wcs {

std::string_view url_server(std::string_view url) noexcept {
  const auto scheme = url.find("://");
  if (scheme == std::string_view::npos) return "-";
  const auto host_start = scheme + 3;
  const auto host_end = url.find('/', host_start);
  auto host = host_end == std::string_view::npos ? url.substr(host_start)
                                                 : url.substr(host_start, host_end - host_start);
  if (const auto colon = host.find(':'); colon != std::string_view::npos) {
    host = host.substr(0, colon);
  }
  return host.empty() ? "-" : host;
}

UrlId Trace::intern_url(std::string_view url) {
  if (const auto it = url_index_.find(std::string{url}); it != url_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<UrlId>(urls_.size());
  urls_.emplace_back(url);
  url_server_.push_back(intern_server(url_server(url)));
  url_index_.emplace(urls_.back(), id);
  return id;
}

ServerId Trace::intern_server(std::string_view server) {
  if (const auto it = server_index_.find(std::string{server}); it != server_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.emplace_back(server);
  server_index_.emplace(servers_.back(), id);
  return id;
}

ClientId Trace::intern_client(std::string_view client) {
  if (const auto it = client_index_.find(std::string{client}); it != client_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<ClientId>(clients_.size());
  clients_.emplace_back(client);
  client_index_.emplace(clients_.back(), id);
  return id;
}

FileType Trace::type_of(UrlId id) const { return classify_url(urls_[id]); }

std::int64_t Trace::day_count() const noexcept {
  return requests_.empty() ? 0 : day_of(requests_.back().time) + 1;
}

std::uint64_t Trace::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& r : requests_) sum += r.size;
  return sum;
}

std::uint64_t Trace::unique_bytes() const {
  std::unordered_map<UrlId, std::uint64_t> last_size;
  last_size.reserve(urls_.size());
  for (const auto& r : requests_) last_size[r.url] = r.size;
  std::uint64_t sum = 0;
  for (const auto& [url, size] : last_size) sum += size;
  return sum;
}

}  // namespace wcs
