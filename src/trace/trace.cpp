#include "src/trace/trace.h"

#include <unordered_map>

namespace wcs {

FileType Trace::type_of(UrlId id) const { return classify_url(names_.url_name(id)); }

void Trace::stamp_latencies(const std::function<std::uint32_t(const Request&)>& fn) {
  for (auto& r : requests_) r.latency_ms = fn(r);
}

std::uint64_t Trace::memory_footprint_bytes() const noexcept {
  return requests_.capacity() * sizeof(Request) + names_.memory_footprint_bytes();
}

std::int64_t Trace::day_count() const noexcept {
  return requests_.empty() ? 0 : day_of(requests_.back().time) + 1;
}

std::uint64_t Trace::total_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& r : requests_) sum += r.size;
  return sum;
}

std::uint64_t Trace::unique_bytes() const {
  std::unordered_map<UrlId, std::uint64_t> last_size;
  last_size.reserve(names_.url_count());
  for (const auto& r : requests_) last_size[r.url] = r.size;
  std::uint64_t sum = 0;
  for (const auto& [url, size] : last_size) sum += size;
  return sum;
}

}  // namespace wcs
