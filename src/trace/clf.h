// Common log format (CLF) reader/writer.
//
// The paper's workloads U, G, C come from CERN proxy logs and BR/BL from a
// tcpdump-decoding filter, all in NCSA/CERN "common log format":
//
//   remotehost rfc931 authuser [date] "request" status bytes
//
// e.g.  csgrad.cs.vt.edu - - [17/Sep/1995:08:01:12 +0000]
//         "GET http://www.w3.org/pub/WWW/ HTTP/1.0" 200 2934
//
// The parser is tolerant of the usual real-log damage: '-' byte counts,
// embedded spaces inside the quoted request, missing protocol versions,
// and truncated lines (which are rejected, not mis-parsed).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/trace.h"

namespace wcs {

/// Parse one CLF line. Returns nullopt if the line is structurally invalid
/// (that is different from a line that parses but fails §1.1 validation —
/// see TraceValidator).
[[nodiscard]] std::optional<RawRequest> parse_clf_line(std::string_view line);

/// Format a RawRequest as one CLF line (no trailing newline).
[[nodiscard]] std::string format_clf_line(const RawRequest& request);

/// Parse every line of a stream; structurally invalid lines are counted and
/// skipped. Returns parsed requests in file order.
struct ClfReadResult {
  std::vector<RawRequest> requests;
  std::size_t malformed_lines = 0;
};
[[nodiscard]] ClfReadResult read_clf(std::istream& in);

/// Write requests as a CLF stream.
void write_clf(std::ostream& out, const std::vector<RawRequest>& requests);

}  // namespace wcs
