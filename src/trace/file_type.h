// The paper's file-type taxonomy (Table 4): documents are grouped by
// filename extension into graphics, text/html, audio, video, CGI and
// unknown. The partitioned-cache experiment (Experiment 4) splits on
// audio vs non-audio using exactly this classification.
#pragma once

#include <array>
#include <string_view>

namespace wcs {

enum class FileType : unsigned char {
  kGraphics = 0,
  kText,
  kAudio,
  kVideo,
  kCgi,
  kUnknown,
};

inline constexpr std::size_t kFileTypeCount = 6;

inline constexpr std::array<FileType, kFileTypeCount> kAllFileTypes = {
    FileType::kGraphics, FileType::kText, FileType::kAudio,
    FileType::kVideo,    FileType::kCgi,  FileType::kUnknown,
};

/// Human-readable name matching the paper's Table 4 rows.
[[nodiscard]] std::string_view to_string(FileType type) noexcept;

/// Classify a URL by its filename extension, mirroring the grouping the
/// paper describes ("files ending in .gif, .jpg, .jpeg, etc. are considered
/// graphics"). Query strings and "/cgi-bin/" paths classify as CGI.
[[nodiscard]] FileType classify_url(std::string_view url);

/// Classify a bare lower-case extension ("gif" -> graphics).
[[nodiscard]] FileType classify_extension(std::string_view extension) noexcept;

}  // namespace wcs
