#include "src/trace/validate.h"

#include "src/util/strings.h"

namespace wcs {

std::optional<Request> StreamingValidator::feed(const RawRequest& raw) {
  ++stats_.input;
  if (options_.keep_only_status_200 && raw.status != 200) {
    ++stats_.dropped_status;
    return std::nullopt;
  }
  if (options_.keep_only_get && !iequals(raw.method, "GET")) {
    ++stats_.dropped_method;
    return std::nullopt;
  }
  if (options_.exclude_dynamic && looks_dynamic(raw.url)) {
    ++stats_.dropped_dynamic;
    return std::nullopt;
  }

  const UrlId url = names_->intern_url(raw.url);
  std::uint64_t size = raw.size;
  const auto known = last_size_.find(url);
  if (size == 0) {
    if (known == last_size_.end()) {
      // Rule 3, first clause: zero-size for a never-seen URL — discard.
      ++stats_.dropped_zero_size_unknown;
      return std::nullopt;
    }
    size = known->second;  // assume unmodified, use last known size
    ++stats_.zero_size_resolved;
  } else if (known != last_size_.end() && known->second != size) {
    ++stats_.size_changes;
  }
  last_size_[url] = size;

  Request request;
  request.time = raw.time;
  request.size = size;
  request.url = url;
  request.server = names_->server_of(url);
  request.client = names_->intern_client(raw.client);
  request.type = classify_url(raw.url);
  ++stats_.kept;
  return request;
}

bool TraceValidator::feed(const RawRequest& raw) {
  const auto request = core_.feed(raw);
  if (!request) return false;
  trace_.add(*request);
  return true;
}

ValidatedTrace validate(const std::vector<RawRequest>& raw, ValidationOptions options) {
  TraceValidator validator{options};
  for (const auto& r : raw) validator.feed(r);
  ValidatedTrace out{validator.take_trace(), validator.stats()};
  return out;
}

}  // namespace wcs
