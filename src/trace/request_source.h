// RequestSource — the pull-based request stream every simulator entry point
// consumes.
//
// Source taxonomy:
//   * TraceSource      — adapter over a materialized Trace (multi-pass
//                        container; O(requests) memory, rewindable by
//                        constructing a fresh source).
//   * LogStreamSource  — parses + validates a CLF/Squid log line-by-line
//                        (log_source.h; O(corpus) memory, single pass).
//   * WorkloadStream   — lazily generates a synthetic preset in time order
//                        (src/workload/stream.h; O(corpus) memory,
//                        bit-identical to WorkloadGenerator::generate()).
//
// Determinism contract: two sources fed/derived from the same record
// sequence yield the same Request sequence and identical intern tables, so
// simulation results are bit-identical regardless of which source backs
// them. Sources are single-pass: a second pass means a fresh source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace wcs {

/// Pull-based stream of compiled Requests plus the intern table that maps
/// their ids back to names. Non-copyable; single pass.
class RequestSource {
 public:
  RequestSource() = default;
  RequestSource(const RequestSource&) = delete;
  RequestSource& operator=(const RequestSource&) = delete;
  virtual ~RequestSource() = default;

  /// Fill `out` with the next request and return true, or return false at
  /// end of stream (out is left untouched).
  virtual bool next(Request& out) = 0;

  /// Id -> name tables for everything emitted so far. Streaming sources
  /// grow the table as they go; ids already emitted never change meaning.
  [[nodiscard]] virtual const InternTable& names() const noexcept = 0;

  /// Approximate bytes this source keeps resident while streaming
  /// (intern tables, per-URL state, buffers). A materialized source also
  /// counts its request vector. Used for the streaming-vs-materialized
  /// observability row; 0 when unknown.
  [[nodiscard]] virtual std::uint64_t resident_bytes() const noexcept { return 0; }

  /// A fatal error that ended the stream early (I/O failure mid-file), or
  /// nullopt for a clean end of stream. next() returning false is
  /// ambiguous on its own — a silently truncated trace yields plausible-
  /// looking but wrong results — so consumers that care about completeness
  /// MUST check this after the stream ends. Every simulator entry point
  /// does, and throws.
  [[nodiscard]] virtual std::optional<std::string> stream_error() const { return std::nullopt; }
};

/// Materialized adapter: streams an existing Trace. The trace must outlive
/// the source.
class TraceSource final : public RequestSource {
 public:
  explicit TraceSource(const Trace& trace) noexcept : trace_(&trace) {}

  bool next(Request& out) override {
    if (index_ >= trace_->size()) return false;
    out = trace_->requests()[index_++];
    return true;
  }

  [[nodiscard]] const InternTable& names() const noexcept override { return trace_->names(); }

  [[nodiscard]] std::uint64_t resident_bytes() const noexcept override {
    return trace_->memory_footprint_bytes();
  }

 private:
  const Trace* trace_;
  std::size_t index_ = 0;
};

}  // namespace wcs
