#include "src/trace/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace wcs {

double FileTypeDistribution::ref_fraction(FileType t) const noexcept {
  if (total_refs == 0) return 0.0;
  return static_cast<double>(refs[static_cast<std::size_t>(t)]) /
         static_cast<double>(total_refs);
}

double FileTypeDistribution::byte_fraction(FileType t) const noexcept {
  if (total_bytes == 0) return 0.0;
  return static_cast<double>(bytes[static_cast<std::size_t>(t)]) /
         static_cast<double>(total_bytes);
}

FileTypeDistribution file_type_distribution(const Trace& trace) {
  FileTypeDistribution out;
  for (const auto& r : trace.requests()) {
    const auto idx = static_cast<std::size_t>(r.type);
    out.refs[idx] += 1;
    out.bytes[idx] += r.size;
    out.total_refs += 1;
    out.total_bytes += r.size;
  }
  return out;
}

namespace {

std::vector<std::uint64_t> ranked_descending(std::unordered_map<std::uint32_t, std::uint64_t>&& m) {
  std::vector<std::uint64_t> out;
  out.reserve(m.size());
  for (const auto& [key, value] : m) out.push_back(value);
  std::sort(out.begin(), out.end(), std::greater<>{});
  return out;
}

}  // namespace

std::vector<std::uint64_t> requests_per_server_ranked(const Trace& trace) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const auto& r : trace.requests()) counts[r.server] += 1;
  return ranked_descending(std::move(counts));
}

std::vector<std::uint64_t> bytes_per_url_ranked(const Trace& trace) {
  std::unordered_map<std::uint32_t, std::uint64_t> bytes;
  for (const auto& r : trace.requests()) bytes[r.url] += r.size;
  return ranked_descending(std::move(bytes));
}

double zipf_exponent_estimate(const std::vector<std::uint64_t>& ranked) {
  // Least squares on (log rank, log count), skipping zero counts.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == 0) continue;
    const double x = std::log10(static_cast<double>(i + 1));
    const double y = std::log10(static_cast<double>(ranked[i]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return -(dn * sxy - sx * sy) / denom;
}

LinearHistogram request_size_histogram(const Trace& trace, double max_size, std::size_t bins) {
  LinearHistogram hist{0.0, max_size, bins};
  for (const auto& r : trace.requests()) hist.add(static_cast<double>(r.size));
  return hist;
}

std::vector<InterreferenceSample> interreference_samples(const Trace& trace) {
  std::vector<InterreferenceSample> out;
  std::unordered_map<UrlId, SimTime> last_seen;
  last_seen.reserve(trace.url_count());
  for (const auto& r : trace.requests()) {
    if (const auto it = last_seen.find(r.url); it != last_seen.end()) {
      out.push_back({r.size, r.time - it->second});
    }
    last_seen[r.url] = r.time;
  }
  return out;
}

InterreferenceSummary summarize_interreference(
    const std::vector<InterreferenceSample>& samples) {
  InterreferenceSummary out;
  out.samples = samples.size();
  if (samples.empty()) return out;
  std::vector<double> sizes;
  std::vector<double> gaps;
  sizes.reserve(samples.size());
  gaps.reserve(samples.size());
  double gap_sum = 0.0;
  std::size_t over_hour = 0;
  for (const auto& s : samples) {
    sizes.push_back(static_cast<double>(s.size));
    gaps.push_back(static_cast<double>(s.gap));
    gap_sum += static_cast<double>(s.gap);
    if (s.gap > kSecondsPerHour) ++over_hour;
  }
  out.median_size = percentile(sizes, 50.0);
  out.median_gap_seconds = percentile(gaps, 50.0);
  out.mean_gap_seconds = gap_sum / static_cast<double>(samples.size());
  out.fraction_gap_over_hour =
      static_cast<double>(over_hour) / static_cast<double>(samples.size());
  return out;
}

std::size_t count_for_mass_fraction(const std::vector<std::uint64_t>& ranked, double fraction) {
  std::uint64_t total = 0;
  for (const auto v : ranked) total += v;
  if (total == 0) return 0;
  const auto target = static_cast<double>(total) * fraction;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    cumulative += static_cast<double>(ranked[i]);
    if (cumulative >= target) return i + 1;
  }
  return ranked.size();
}

}  // namespace wcs
