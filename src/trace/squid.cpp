#include "src/trace/squid.h"

#include <cmath>
#include <istream>

#include "src/util/strings.h"

namespace wcs {

std::optional<RawRequest> parse_squid_line(std::string_view line) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;

  // Tokenize on runs of whitespace (squid pads the elapsed column).
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  if (fields.size() < 7) return std::nullopt;

  RawRequest out;

  // timestamp.ms
  {
    const std::string_view stamp = fields[0];
    const auto dot = stamp.find('.');
    const auto seconds = parse_i64(dot == std::string_view::npos ? stamp : stamp.substr(0, dot));
    if (!seconds) return std::nullopt;
    out.time = *seconds - kUnixAtSimEpoch;
  }

  // fields[1] = elapsed ms (ignored), fields[2] = client
  out.client = std::string{fields[2]};

  // action/code, e.g. TCP_MISS/200
  {
    const std::string_view action = fields[3];
    const auto slash = action.rfind('/');
    if (slash == std::string_view::npos) return std::nullopt;
    const auto code = parse_u64(action.substr(slash + 1));
    if (!code || *code > 599) return std::nullopt;
    out.status = static_cast<int>(*code);
  }

  // size
  {
    const auto size = parse_u64(fields[4]);
    if (!size) return std::nullopt;
    out.size = *size;
  }

  out.method = std::string{fields[5]};
  out.url = std::string{fields[6]};
  return out;
}

std::string_view detect_log_format(std::string_view first_line) {
  first_line = trim(first_line);
  if (first_line.empty()) return "unknown";
  // Squid starts with a Unix timestamp ("796430640.123"); CLF starts with a
  // hostname/IP followed by " - - [".
  std::size_t digits = 0;
  while (digits < first_line.size() &&
         first_line[digits] >= '0' && first_line[digits] <= '9') {
    ++digits;
  }
  if (digits >= 9 && digits < first_line.size() && first_line[digits] == '.') {
    return "squid";
  }
  if (first_line.find(" [") != std::string_view::npos &&
      first_line.find('"') != std::string_view::npos) {
    return "clf";
  }
  return "unknown";
}

SquidReadResult read_squid(std::istream& in) {
  SquidReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    if (auto parsed = parse_squid_line(line)) {
      result.requests.push_back(std::move(*parsed));
    } else {
      ++result.malformed_lines;
    }
  }
  return result;
}

}  // namespace wcs
