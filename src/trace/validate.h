// §1.1 trace validation — the exact preprocessing the paper applies before
// simulation so that HR and WHR "are with respect to the same exact trace":
//
//   1. Only requests with server return code 200 are kept; client/server
//      errors and requests satisfied by the client's own cache (304) are
//      dropped.
//   2. Only GET requests are kept (the simulated cache serves GETs).
//   3. A logged size of 0 for a URL never seen before is discarded.
//      A logged size of 0 for a URL previously seen with a non-zero size is
//      assumed unmodified and assigned the last known size.
//   4. Requests are stamped with their file type and interned into a Trace.
//
// The validator is streaming and single pass; its per-URL state (last known
// size) is exactly the state a real simulator front-end would keep.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"

namespace wcs {

struct ValidationOptions {
  bool keep_only_get = true;
  bool keep_only_status_200 = true;
  /// Drop dynamically generated URLs ('?', cgi paths). The paper keeps them
  /// (CGI is a Table 4 class), so the default is false.
  bool exclude_dynamic = false;
};

struct ValidationStats {
  std::uint64_t input = 0;
  std::uint64_t kept = 0;
  std::uint64_t dropped_status = 0;
  std::uint64_t dropped_method = 0;
  std::uint64_t dropped_zero_size_unknown = 0;
  std::uint64_t dropped_dynamic = 0;
  std::uint64_t zero_size_resolved = 0;  // rule 3, second clause
  std::uint64_t size_changes = 0;        // same URL reappearing with a new size
};

/// Streaming validator; feed RawRequests in time order, read the compiled
/// Trace at the end.
class TraceValidator {
 public:
  explicit TraceValidator(ValidationOptions options = {}) : options_(options) {}

  /// Returns true if the request was kept.
  bool feed(const RawRequest& raw);

  [[nodiscard]] const ValidationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Move the compiled trace out; the validator is then empty.
  [[nodiscard]] Trace take_trace() noexcept { return std::move(trace_); }

 private:
  ValidationOptions options_;
  ValidationStats stats_;
  Trace trace_;
  std::unordered_map<UrlId, std::uint64_t> last_size_;
};

/// Convenience: validate a whole vector at once.
struct ValidatedTrace {
  Trace trace;
  ValidationStats stats;
};
[[nodiscard]] ValidatedTrace validate(const std::vector<RawRequest>& raw,
                                      ValidationOptions options = {});

}  // namespace wcs
