// §1.1 trace validation — the exact preprocessing the paper applies before
// simulation so that HR and WHR "are with respect to the same exact trace":
//
//   1. Only requests with server return code 200 are kept; client/server
//      errors and requests satisfied by the client's own cache (304) are
//      dropped.
//   2. Only GET requests are kept (the simulated cache serves GETs).
//   3. A logged size of 0 for a URL never seen before is discarded.
//      A logged size of 0 for a URL previously seen with a non-zero size is
//      assumed unmodified and assigned the last known size.
//   4. Requests are stamped with their file type and interned.
//
// StreamingValidator is the single-pass core: it interns into a caller-owned
// InternTable and hands back one compiled Request at a time, so a streaming
// reader never holds more than the per-URL last-known-size state.
// TraceValidator wraps it to accumulate a materialized Trace.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"

namespace wcs {

struct ValidationOptions {
  bool keep_only_get = true;
  bool keep_only_status_200 = true;
  /// Drop dynamically generated URLs ('?', cgi paths). The paper keeps them
  /// (CGI is a Table 4 class), so the default is false.
  bool exclude_dynamic = false;
};

struct ValidationStats {
  std::uint64_t input = 0;
  std::uint64_t kept = 0;
  std::uint64_t dropped_status = 0;
  std::uint64_t dropped_method = 0;
  std::uint64_t dropped_zero_size_unknown = 0;
  std::uint64_t dropped_dynamic = 0;
  std::uint64_t zero_size_resolved = 0;  // rule 3, second clause
  std::uint64_t size_changes = 0;        // same URL reappearing with a new size
};

/// Streaming core: feed RawRequests in time order; each kept record comes
/// back as a compiled Request interned into the bound table. Holds only the
/// per-URL last-known-size map — O(corpus), not O(requests).
class StreamingValidator {
 public:
  explicit StreamingValidator(InternTable& names, ValidationOptions options = {})
      : options_(options), names_(&names) {}

  /// Returns the compiled request if kept, std::nullopt if dropped.
  [[nodiscard]] std::optional<Request> feed(const RawRequest& raw);

  [[nodiscard]] const ValidationStats& stats() const noexcept { return stats_; }

 private:
  ValidationOptions options_;
  ValidationStats stats_;
  InternTable* names_;
  std::unordered_map<UrlId, std::uint64_t> last_size_;
};

/// Materializing wrapper: feed RawRequests, read the compiled Trace at the
/// end.
class TraceValidator {
 public:
  explicit TraceValidator(ValidationOptions options = {}) : core_(trace_.names(), options) {}

  /// Returns true if the request was kept.
  bool feed(const RawRequest& raw);

  [[nodiscard]] const ValidationStats& stats() const noexcept { return core_.stats(); }
  [[nodiscard]] Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  /// Move the compiled trace out; the validator must not be fed afterwards.
  [[nodiscard]] Trace take_trace() noexcept { return std::move(trace_); }

 private:
  Trace trace_;
  StreamingValidator core_;  // bound to trace_.names(); declared after it
};

/// Convenience: validate a whole vector at once.
struct ValidatedTrace {
  Trace trace;
  ValidationStats stats;
};
[[nodiscard]] ValidatedTrace validate(const std::vector<RawRequest>& raw,
                                      ValidationOptions options = {});

}  // namespace wcs
