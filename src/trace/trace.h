// Trace representation.
//
// A RawRequest is one parsed log line. A Trace is the validated, compiled
// form the simulator consumes: URLs, servers and clients are interned to
// dense ids so the hot simulation loop never touches strings, and every
// request carries its resolved transfer size and file type.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/trace/file_type.h"
#include "src/util/simtime.h"

namespace wcs {

using UrlId = std::uint32_t;
using ServerId = std::uint32_t;
using ClientId = std::uint32_t;

inline constexpr UrlId kInvalidUrl = static_cast<UrlId>(-1);

/// One log line as parsed from a common-format log (before validation).
struct RawRequest {
  SimTime time = 0;
  std::string client;    // remote host field
  std::string method;    // "GET", ...
  std::string url;       // request URL, absolute or path form
  int status = 0;        // HTTP status code; paper keeps only 200
  std::uint64_t size = 0;  // bytes transferred; 0 when the log said '-'
};

/// One validated, compiled request; POD, cache-friendly.
struct Request {
  SimTime time = 0;
  std::uint64_t size = 0;
  UrlId url = 0;
  ServerId server = 0;
  ClientId client = 0;
  FileType type = FileType::kUnknown;
  /// Estimated refetch latency from this document's origin (ms); 0 when
  /// unknown (e.g. real logs). Synthetic workloads stamp it from a
  /// per-server RTT/bandwidth model; feeds the LATENCY sorting key.
  std::uint32_t latency_ms = 0;
};

/// Compiled trace plus the intern tables needed to map ids back to names.
class Trace {
 public:
  /// Intern a URL (and its server, derived from the URL authority or the
  /// supplied fallback) and return its id. Repeated calls are idempotent.
  UrlId intern_url(std::string_view url);
  ClientId intern_client(std::string_view client);

  void add(Request request) { requests_.push_back(request); }
  void reserve(std::size_t n) { requests_.reserve(n); }

  [[nodiscard]] const std::vector<Request>& requests() const noexcept { return requests_; }
  /// Mutable access for post-validation annotation (latency stamping).
  [[nodiscard]] std::vector<Request>& mutable_requests() noexcept { return requests_; }
  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }

  [[nodiscard]] std::string_view url_name(UrlId id) const noexcept { return urls_[id]; }
  [[nodiscard]] std::string_view server_name(ServerId id) const noexcept { return servers_[id]; }
  [[nodiscard]] std::string_view client_name(ClientId id) const noexcept { return clients_[id]; }
  [[nodiscard]] ServerId server_of(UrlId id) const noexcept { return url_server_[id]; }
  [[nodiscard]] FileType type_of(UrlId id) const;

  [[nodiscard]] std::uint32_t url_count() const noexcept {
    return static_cast<std::uint32_t>(urls_.size());
  }
  [[nodiscard]] std::uint32_t server_count() const noexcept {
    return static_cast<std::uint32_t>(servers_.size());
  }
  [[nodiscard]] std::uint32_t client_count() const noexcept {
    return static_cast<std::uint32_t>(clients_.size());
  }

  /// Number of whole days spanned: last request's day + 1 (0 if empty).
  [[nodiscard]] std::int64_t day_count() const noexcept;

  /// Total bytes across all requests.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;

  /// Sum over unique URLs of the *last* size observed for that URL — the
  /// footprint an infinite cache holds at the end (MaxNeeded upper bound
  /// is computed by the simulator, which also accounts for size churn).
  [[nodiscard]] std::uint64_t unique_bytes() const;

 private:
  ServerId intern_server(std::string_view server);

  std::vector<Request> requests_;
  std::vector<std::string> urls_;
  std::vector<std::string> servers_;
  std::vector<std::string> clients_;
  std::vector<ServerId> url_server_;
  std::unordered_map<std::string, UrlId> url_index_;
  std::unordered_map<std::string, ServerId> server_index_;
  std::unordered_map<std::string, ClientId> client_index_;
};

/// Extract the server (authority) part of an absolute URL, or "-" for
/// path-only URLs. "http://a.b/c" -> "a.b".
[[nodiscard]] std::string_view url_server(std::string_view url) noexcept;

}  // namespace wcs
