// Materialized trace representation.
//
// A Trace is the validated, compiled form of a request log held fully in
// memory: an InternTable (id <-> name mapping) plus a flat vector of
// Requests. It is the multi-pass request container — experiments that
// replay the same workload many times build one Trace and scan it per
// configuration. Single-pass consumers should prefer a streaming
// RequestSource (see request_source.h) which bounds memory at O(corpus).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "src/trace/intern.h"
#include "src/trace/request.h"

namespace wcs {

/// Compiled trace plus the intern tables needed to map ids back to names.
class Trace {
 public:
  /// Intern a URL (and its server, derived from the URL authority or the
  /// supplied fallback) and return its id. Repeated calls are idempotent.
  UrlId intern_url(std::string_view url) { return names_.intern_url(url); }
  ClientId intern_client(std::string_view client) { return names_.intern_client(client); }

  void add(Request request) { requests_.push_back(request); }
  void reserve(std::size_t n) { requests_.reserve(n); }

  [[nodiscard]] const std::vector<Request>& requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }

  /// The id <-> name tables. The non-const overload lets validators intern
  /// directly into the trace; it never invalidates existing ids.
  [[nodiscard]] const InternTable& names() const noexcept { return names_; }
  [[nodiscard]] InternTable& names() noexcept { return names_; }

  [[nodiscard]] std::string_view url_name(UrlId id) const noexcept { return names_.url_name(id); }
  [[nodiscard]] std::string_view server_name(ServerId id) const noexcept {
    return names_.server_name(id);
  }
  [[nodiscard]] std::string_view client_name(ClientId id) const noexcept {
    return names_.client_name(id);
  }
  [[nodiscard]] ServerId server_of(UrlId id) const noexcept { return names_.server_of(id); }
  [[nodiscard]] FileType type_of(UrlId id) const;

  [[nodiscard]] std::uint32_t url_count() const noexcept { return names_.url_count(); }
  [[nodiscard]] std::uint32_t server_count() const noexcept { return names_.server_count(); }
  [[nodiscard]] std::uint32_t client_count() const noexcept { return names_.client_count(); }

  /// Stamp every request's latency_ms with fn(request). The one sanctioned
  /// post-validation mutation: requests are otherwise immutable once
  /// compiled. fn must be deterministic for the reproducibility contract.
  void stamp_latencies(const std::function<std::uint32_t(const Request&)>& fn);

  /// Approximate resident bytes of the whole trace: the request vector plus
  /// the intern tables. This is what streaming saves: a RequestSource pays
  /// only the intern-table part.
  [[nodiscard]] std::uint64_t memory_footprint_bytes() const noexcept;

  /// Number of whole days spanned: last request's day + 1 (0 if empty).
  [[nodiscard]] std::int64_t day_count() const noexcept;

  /// Total bytes across all requests.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;

  /// Sum over unique URLs of the *last* size observed for that URL — the
  /// footprint an infinite cache holds at the end (MaxNeeded upper bound
  /// is computed by the simulator, which also accounts for size churn).
  [[nodiscard]] std::uint64_t unique_bytes() const;

 private:
  std::vector<Request> requests_;
  InternTable names_;
};

}  // namespace wcs
