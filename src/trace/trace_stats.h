// Workload characterization (paper §2.2): file-type distributions (Table 4),
// per-server request concentration (Fig 1), per-URL byte concentration
// (Fig 2), document-size histogram (Fig 13), and the size-vs-interreference
// structure behind Fig 14.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/trace/trace.h"
#include "src/util/stats.h"

namespace wcs {

/// Table 4 row set: per file type, percentage of references and of bytes.
struct FileTypeDistribution {
  std::array<std::uint64_t, kFileTypeCount> refs{};
  std::array<std::uint64_t, kFileTypeCount> bytes{};
  std::uint64_t total_refs = 0;
  std::uint64_t total_bytes = 0;

  [[nodiscard]] double ref_fraction(FileType t) const noexcept;
  [[nodiscard]] double byte_fraction(FileType t) const noexcept;
};

[[nodiscard]] FileTypeDistribution file_type_distribution(const Trace& trace);

/// Rank-ordered concentration curve: element k is the count/bytes of the
/// (k+1)-th most popular entity. Fig 1 uses requests per server; Fig 2 uses
/// bytes per URL.
[[nodiscard]] std::vector<std::uint64_t> requests_per_server_ranked(const Trace& trace);
[[nodiscard]] std::vector<std::uint64_t> bytes_per_url_ranked(const Trace& trace);

/// Least-squares slope of log10(count) vs log10(rank) — a Zipf exponent
/// estimate for the ranked curves above (paper: "follows a Zipf
/// distribution"). Returns the (negated, positive) exponent.
[[nodiscard]] double zipf_exponent_estimate(const std::vector<std::uint64_t>& ranked);

/// Fig 13: histogram of request sizes (per reference, not per unique URL).
[[nodiscard]] LinearHistogram request_size_histogram(const Trace& trace, double max_size,
                                                     std::size_t bins);

/// One (size, interreference-seconds) sample per re-reference of a URL —
/// the point cloud of Fig 14.
struct InterreferenceSample {
  std::uint64_t size;
  SimTime gap;
};
[[nodiscard]] std::vector<InterreferenceSample> interreference_samples(const Trace& trace);

/// Summary statistics of the Fig 14 cloud used by the benches: median size,
/// median gap, and fraction of re-references with gap above a threshold.
struct InterreferenceSummary {
  double median_size = 0.0;
  double median_gap_seconds = 0.0;
  double mean_gap_seconds = 0.0;
  double fraction_gap_over_hour = 0.0;
  std::size_t samples = 0;
};
[[nodiscard]] InterreferenceSummary summarize_interreference(
    const std::vector<InterreferenceSample>& samples);

/// Smallest number of top-ranked entities holding at least `fraction` of
/// the total mass (paper: "~290 of 36,771 URLs returned 50% of bytes").
[[nodiscard]] std::size_t count_for_mass_fraction(const std::vector<std::uint64_t>& ranked,
                                                  double fraction);

}  // namespace wcs
