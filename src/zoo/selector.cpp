#include "src/zoo/selector.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/core/flat_index.h"
#include "src/zoo/gds.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

namespace wcs {

ShadowSelectorPolicy::ShadowSelectorPolicy(SelectorConfig config)
    : config_(std::move(config)) {
  if (config_.candidates.empty()) {
    throw std::invalid_argument{"ShadowSelectorPolicy: needs at least one candidate"};
  }
  if (config_.sample_rate_log2 >= 32) {
    throw std::invalid_argument{"ShadowSelectorPolicy: sample_rate_log2 must be < 32"};
  }
  if (config_.epoch_events == 0) {
    throw std::invalid_argument{"ShadowSelectorPolicy: epoch_events must be positive"};
  }
  for (const auto& candidate : config_.candidates) {
    if (candidate.name.empty() || !candidate.factory) {
      throw std::invalid_argument{"ShadowSelectorPolicy: candidate needs a name and factory"};
    }
  }
  sample_salt_ = mix_url_hash(config_.seed ^ 0x5d0d0e5a17ULL);
  sample_mask_ = (std::uint64_t{1} << config_.sample_rate_log2) - 1;
}

ShadowSelectorPolicy::~ShadowSelectorPolicy() = default;

void ShadowSelectorPolicy::attach(std::uint64_t capacity_bytes) {
  capacity_bytes_ = capacity_bytes;
  inner_ = config_.candidates[current_].factory(config_.seed);
  inner_->attach(capacity_bytes_);
  shadows_.clear();
  epoch_base_hits_.assign(config_.candidates.size(), 0);
  const std::uint64_t shadow_capacity =
      capacity_bytes == 0
          ? 0
          : std::max<std::uint64_t>(1, capacity_bytes >> config_.sample_rate_log2);
  for (std::size_t i = 0; i < config_.candidates.size(); ++i) {
    CacheConfig shadow_config;
    shadow_config.capacity_bytes = shadow_capacity;
    // Distinct tag seed per shadow so their tiebreaks are independent; the
    // candidate policy itself gets the selector's seed, matching what the
    // same factory would receive as a static (non-shadow) policy.
    shadow_config.seed = mix_url_hash(config_.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    shadows_.push_back(std::make_unique<Cache>(std::move(shadow_config),
                                               config_.candidates[i].factory(config_.seed)));
  }
}

bool ShadowSelectorPolicy::sampled(UrlId url) const noexcept {
  return (mix_url_hash(url ^ sample_salt_) & sample_mask_) == 0;
}

void ShadowSelectorPolicy::feed_shadows(const CacheEntry& entry) {
  if (!sampled(entry.url)) return;
  for (auto& shadow : shadows_) {
    // entry.atime is the time of the access that triggered this
    // notification, so the shadows replay the live clock.
    shadow->access(entry.atime, entry.url, entry.size, entry.type, entry.latency_ms);
  }
}

void ShadowSelectorPolicy::tick() {
  ++events_;
  if (++events_in_epoch_ >= config_.epoch_events) end_epoch();
}

void ShadowSelectorPolicy::end_epoch() {
  EpochChoice choice;
  choice.epoch = epoch_++;
  choice.event_index = events_;
  choice.shadow_hits.resize(shadows_.size());
  std::size_t best = 0;
  for (std::size_t i = 0; i < shadows_.size(); ++i) {
    const std::uint64_t total = shadows_[i]->stats().hits;
    choice.shadow_hits[i] = total - epoch_base_hits_[i];
    epoch_base_hits_[i] = total;
    // Strict > keeps ties on the lowest index — deterministic argmax.
    if (choice.shadow_hits[i] > choice.shadow_hits[best]) best = i;
  }
  if (best != current_ &&
      choice.shadow_hits[best] > choice.shadow_hits[current_] + config_.min_advantage) {
    current_ = best;
    ++switches_;
    choice.switched = true;
    rebuild_inner();
  }
  choice.chosen = config_.candidates[current_].name;
  epoch_log_.push_back(std::move(choice));
  events_in_epoch_ = 0;
}

void ShadowSelectorPolicy::rebuild_inner() {
  inner_ = config_.candidates[current_].factory(config_.seed);
  inner_->attach(capacity_bytes_);
  // The mirror's dense order is a deterministic function of the request
  // stream (insert order with swap-remove holes), so the rebuilt index is
  // reproducible bit for bit.
  for (const CacheEntry& entry : mirror_.dense()) inner_->on_insert(entry);
}

void ShadowSelectorPolicy::on_insert(const CacheEntry& entry) {
  WCS_ASSERT(inner_ != nullptr, "ShadowSelectorPolicy used before attach()");
  mirror_.insert(entry);
  inner_->on_insert(entry);
  feed_shadows(entry);
  tick();
}

void ShadowSelectorPolicy::on_hit(const CacheEntry& entry) {
  CacheEntry* mirrored = mirror_.find(entry.url);
  WCS_ASSERT(mirrored != nullptr, "ShadowSelectorPolicy::on_hit for an untracked URL");
  *mirrored = entry;
  inner_->on_hit(entry);
  feed_shadows(entry);
  tick();
}

void ShadowSelectorPolicy::on_remove(const CacheEntry& entry) {
  const bool erased = mirror_.erase(entry.url);
  WCS_ASSERT(erased, "ShadowSelectorPolicy::on_remove for an untracked URL");
  (void)erased;
  inner_->on_remove(entry);
}

std::optional<UrlId> ShadowSelectorPolicy::choose_victim(const EvictionContext& ctx) {
  return inner_->choose_victim(ctx);
}

std::optional<RankTuple> ShadowSelectorPolicy::rank_of(UrlId url) const {
  return inner_ == nullptr ? std::nullopt : inner_->rank_of(url);
}

void ShadowSelectorPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (mirror_.size() != entries.size()) {
    report.add("selector.mirror_count",
               "mirror holds " + std::to_string(mirror_.size()) + " entries but the cache holds " +
                   std::to_string(entries.size()));
  }
  for (const auto& [url, entry] : entries) {
    const CacheEntry* mirrored = mirror_.find(url);
    if (mirrored == nullptr) {
      report.add("selector.mirror_missing",
                 "cached url " + std::to_string(url) + " absent from the mirror");
      continue;
    }
    if (mirrored->size != entry.size || mirrored->atime != entry.atime ||
        mirrored->nref != entry.nref) {
      report.add("selector.mirror_stale",
                 "url " + std::to_string(url) + " mirrored as {size " +
                     std::to_string(mirrored->size) + ", atime " +
                     std::to_string(mirrored->atime) + ", nref " +
                     std::to_string(mirrored->nref) + "} but cached as {size " +
                     std::to_string(entry.size) + ", atime " + std::to_string(entry.atime) +
                     ", nref " + std::to_string(entry.nref) + "}");
    }
  }
  mirror_.audit("selector.mirror", report);
  if (inner_ != nullptr) {
    AuditReport nested;
    inner_->audit_index(entries, nested);
    report.absorb("selector.inner", nested);
  }
  for (std::size_t i = 0; i < shadows_.size(); ++i) {
    report.absorb("selector.shadow." + config_.candidates[i].name, shadows_[i]->audit());
  }
  if (events_in_epoch_ >= config_.epoch_events) {
    report.add("selector.epoch_schedule",
               std::to_string(events_in_epoch_) + " events in the current epoch, beyond the " +
                   std::to_string(config_.epoch_events) + "-event period");
  }
}

std::unique_ptr<RemovalPolicy> make_shadow_selector(SelectorConfig config) {
  return std::make_unique<ShadowSelectorPolicy>(std::move(config));
}

std::unique_ptr<RemovalPolicy> make_adaptive_selector(std::uint64_t seed) {
  SelectorConfig config;
  config.seed = config.seed ^ mix_url_hash(seed);
  config.candidates = {
      {"size", [](std::uint64_t s) { return make_size(s); }},
      {"lru", [](std::uint64_t s) { return make_lru(s); }},
      {"gdsf", [](std::uint64_t s) { return make_gdsf(s); }},
      {"slru", [](std::uint64_t s) { return make_slru(s); }},
      {"w-tinylfu", [](std::uint64_t s) { return make_tinylfu(s); }},
  };
  return make_shadow_selector(std::move(config));
}

}  // namespace wcs
