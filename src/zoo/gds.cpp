#include "src/zoo/gds.h"

namespace wcs {

GreedyDualPolicy::GreedyDualPolicy(Mode mode, std::uint64_t /*seed*/)
    : mode_(mode),
      name_(mode == Mode::kGds ? "gds" : "gdsf"),
      by_value_(SlotLess{this}, &heap_pos_) {}

std::uint64_t GreedyDualPolicy::value_of(const CacheEntry& entry) const noexcept {
  const std::uint64_t freq = mode_ == Mode::kGdsf ? entry.nref : 1;
  const std::uint64_t size = entry.size == 0 ? 1 : entry.size;
  return (freq * kScale) / size;
}

std::uint32_t GreedyDualPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    prios_.push_back(0);
    offsets_.push_back(0);
    tags_.push_back(0);
    urls_.push_back(kInvalidUrl);
    heap_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

std::uint32_t GreedyDualPolicy::slot_of(UrlId url) const noexcept {
  if (victim_slot_ != kInvalidSlot && urls_[victim_slot_] == url &&
      heap_pos_[victim_slot_] != kInvalidSlot) {
    return victim_slot_;
  }
  return table_.find(url);
}

void GreedyDualPolicy::on_insert(const CacheEntry& entry) {
  const std::uint32_t slot = acquire_slot();
  prios_[slot] = inflation_ + value_of(entry);
  offsets_[slot] = inflation_;
  tags_[slot] = entry.random_tag;
  urls_[slot] = entry.url;
  table_.insert(entry.url, slot);
  by_value_.push(slot);
}

void GreedyDualPolicy::on_hit(const CacheEntry& entry) {
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "GreedyDualPolicy::on_hit for an untracked URL");
  // Restore full value at the *current* clock: H = L + F*C/S. The paper's
  // formulation — a hit cannot lower H, since L only rose since the last
  // write and the frequency term never shrinks.
  prios_[slot] = inflation_ + value_of(entry);
  offsets_[slot] = inflation_;
  by_value_.update(slot);
}

void GreedyDualPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = slot_of(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "GreedyDualPolicy::on_remove for an untracked URL");
  if (slot == victim_slot_) {
    // Our own eviction: the clock advances to the departing minimum H —
    // the inflation-offset trick. Size-change removals and explicit erases
    // do not advance the clock (the document did not lose a value contest).
    inflation_ = prios_[slot];
  }
  victim_slot_ = kInvalidSlot;
  by_value_.erase(slot);
  const bool erased = table_.erase(entry.url);
  WCS_ASSERT(erased, "GreedyDualPolicy::on_remove url missing from table");
  (void)erased;
  arena_.release(slot);
}

std::optional<UrlId> GreedyDualPolicy::choose_victim(const EvictionContext& /*ctx*/) {
  if (by_value_.empty()) return std::nullopt;
  victim_slot_ = by_value_.top();
  return urls_[victim_slot_];
}

std::optional<RankTuple> GreedyDualPolicy::rank_of(UrlId url) const {
  const std::uint32_t slot = table_.find(url);
  if (slot == kInvalidSlot) return std::nullopt;
  RankTuple tuple;
  tuple.count = 1;
  tuple.ranks[0] = static_cast<std::int64_t>(prios_[slot]);
  tuple.random_tag = tags_[slot];
  tuple.url = urls_[slot];
  return tuple;
}

void GreedyDualPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("gds.tracked_count",
               "policy tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (by_value_.size() != table_.size()) {
    report.add("gds.order_count",
               "heap holds " + std::to_string(by_value_.size()) + " slots but table maps " +
                   std::to_string(table_.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("gds.arena_live",
               "arena has " + std::to_string(arena_.live()) + " live slots but table maps " +
                   std::to_string(table_.size()));
  }
  arena_.audit("gds", report);
  table_.audit("gds", report);
  by_value_.audit("gds", report);

  bool have_min = false;
  std::uint32_t min_slot = kInvalidSlot;
  const SlotLess less{this};
  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("gds.untracked", "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    if (urls_[slot] != url) {
      report.add("gds.table_slot",
                 "url " + std::to_string(url) + " maps to slot " + std::to_string(slot) +
                     " which claims url " + std::to_string(urls_[slot]));
      continue;
    }
    if (offsets_[slot] > inflation_) {
      report.add("gds.offset_clock",
                 "url " + std::to_string(url) + " was written at offset " +
                     std::to_string(offsets_[slot]) + ", beyond the clock " +
                     std::to_string(inflation_));
    }
    if (prios_[slot] != offsets_[slot] + value_of(entry)) {
      report.add("gds.stale_value",
                 "url " + std::to_string(url) +
                     " has a stored H that no longer matches offset + recomputed value");
    }
    if (!have_min || less(slot, min_slot)) {
      min_slot = slot;
      have_min = true;
    }
  }

  if (have_min && !by_value_.empty() && by_value_.top() != min_slot) {
    report.add("gds.victim_order",
               "heap root is url " + std::to_string(urls_[by_value_.top()]) +
                   " but the comparator minimum is url " + std::to_string(urls_[min_slot]));
  }
}

std::unique_ptr<RemovalPolicy> make_gds(std::uint64_t seed) {
  return std::make_unique<GreedyDualPolicy>(GreedyDualPolicy::Mode::kGds, seed);
}

std::unique_ptr<RemovalPolicy> make_gdsf(std::uint64_t seed) {
  return std::make_unique<GreedyDualPolicy>(GreedyDualPolicy::Mode::kGdsf, seed);
}

}  // namespace wcs
