// W-TinyLFU (Einziger, Friedman & Manes) on the flat engine.
//
// Layout: a small *window* LRU in front of a segmented-LRU main area
// (probation / protected). New documents enter the window; when the window
// is over its byte cap, its LRU document becomes the *candidate* and duels
// the main area's prospective victim on estimated frequency (the
// CountMinSketch + doorkeeper of src/zoo/sketch.h): the candidate is
// admitted to probation only if it is strictly more popular, otherwise the
// candidate itself is the victim. Recency-biased traffic lives happily in
// the window; frequency-biased traffic is sheltered by the sketch — and a
// hill-climbing adaptation moves the window/main boundary toward whichever
// mix the workload currently rewards.
//
// Determinism: the sketch is seeded and integer-only; the hill climb steps
// on the sketch's halving schedule (an event count, not wall time) and
// compares integer hit counts. Same seed + same request sequence -> same
// window size trajectory, same duels, same victims, bit for bit.
#pragma once

#include <memory>
#include <string>

#include "src/core/flat_index.h"
#include "src/core/policy.h"
#include "src/zoo/sketch.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

struct TinyLfuConfig {
  /// Initial window fraction of capacity, per-mille (10 = the classic 1%).
  std::uint32_t window_permille = 10;
  /// Protected fraction of the *main* (non-window) area, per-mille.
  std::uint32_t protected_permille = 800;
  /// Hill-climb bounds and step for the window fraction, per-mille.
  std::uint32_t min_window_permille = 10;
  std::uint32_t max_window_permille = 800;
  std::uint32_t step_permille = 50;
  /// false freezes the window at window_permille (plain TinyLFU+window).
  bool adaptive = true;
  /// Sketch halving (and doorkeeper reset, and hill-climb step) every
  /// `sample_multiplier * expected-entry-count` recorded references.
  std::uint64_t sample_multiplier = 10;
  /// Bytes-per-document estimate used to derive the expected entry count
  /// (and hence sketch width) from the cache capacity at attach().
  std::uint64_t assumed_doc_bytes = 4096;
  std::uint64_t seed = 0x7131f00dULL;
};

class TinyLfuPolicy final : public RemovalPolicy {
 public:
  explicit TinyLfuPolicy(TinyLfuConfig config = {});

  /// Sizes the window/protected byte caps, the sketch width and the sample
  /// period from the cache capacity. Capacity 0 (infinite) leaves every
  /// segment unbounded (no duels ever happen — nothing is evicted).
  void attach(std::uint64_t capacity_bytes) override;

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::optional<RankTuple> rank_of(UrlId url) const override;

  [[nodiscard]] const CountMinSketch& sketch() const noexcept { return sketch_; }
  [[nodiscard]] std::uint32_t window_permille() const noexcept { return window_permille_; }
  [[nodiscard]] std::uint64_t window_bytes() const noexcept { return window_bytes_; }
  [[nodiscard]] std::uint64_t window_cap() const noexcept { return window_cap_; }
  /// Candidates admitted to the main area via a won duel / duels lost.
  [[nodiscard]] std::uint64_t duels_won() const noexcept { return duels_won_; }
  [[nodiscard]] std::uint64_t duels_lost() const noexcept { return duels_lost_; }

  /// Verifies tracked-set equality, arena/table/heap invariants, segment
  /// flag vs heap membership, the window/protected byte tallies, sketch
  /// invariants (width, saturation), the hill-climb bounds, and that each
  /// segment's heap root is its full-scan (seq, random_tag, url) minimum.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  enum Segment : std::uint8_t { kWindow = 0, kProbation = 1, kProtected = 2 };

  struct SlotLess {
    const TinyLfuPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->seqs_[a] != p->seqs_[b]) return p->seqs_[a] < p->seqs_[b];
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  [[nodiscard]] std::uint32_t slot_of(UrlId url) const noexcept;
  [[nodiscard]] DaryHeap<SlotLess>& heap_of(std::uint8_t segment) noexcept;
  [[nodiscard]] const DaryHeap<SlotLess>& heap_of(std::uint8_t segment) const noexcept;
  /// Doorkeeper-then-sketch frequency recording + the maintenance trigger.
  void record_reference(UrlId url);
  /// Doorkeeper-augmented estimate (TinyLFU's combined filter).
  [[nodiscard]] std::uint32_t estimate(UrlId url) const noexcept;
  /// Halve the sketch, reset the doorkeeper, hill-climb the window split.
  void maintenance();
  void rebalance_protected();
  /// Move window overflow into probation while the main area has spare
  /// room; once main is full, overflow stays put and choose_victim duels.
  void drain_window();
  /// Move a slot between segments (fresh seq; byte tallies adjusted).
  void migrate(std::uint32_t slot, std::uint8_t to);

  TinyLfuConfig config_;
  std::string name_;
  std::uint64_t capacity_bytes_ = 0;
  std::uint32_t window_permille_;
  std::uint64_t window_cap_ = ~0ULL;     // unbounded until attach()
  std::uint64_t protected_cap_ = ~0ULL;  // unbounded until attach()
  std::uint64_t window_bytes_ = 0;
  std::uint64_t protected_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;  // all segments (main = total - window)
  std::uint64_t sample_size_ = 0;  // 0 = maintenance disabled (no capacity)
  std::uint64_t next_seq_ = 1;
  std::uint32_t victim_slot_ = kInvalidSlot;  // choose_victim -> on_remove memo

  // Hill-climb state: compare this sample period's hits against the last;
  // keep direction on improvement, reverse on regression.
  std::uint64_t epoch_hits_ = 0;
  std::uint64_t prev_epoch_hits_ = 0;
  std::int32_t climb_direction_ = 1;
  std::uint64_t duels_won_ = 0;
  std::uint64_t duels_lost_ = 0;

  // Struct-of-arrays per-slot state.
  std::vector<std::uint64_t> seqs_;
  std::vector<std::uint64_t> tags_;
  std::vector<UrlId> urls_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint8_t> segments_;
  std::vector<std::uint32_t> heap_pos_;  // shared: a slot is in exactly one segment

  SlotArena arena_;
  UrlSlotTable table_;
  DaryHeap<SlotLess> window_;
  DaryHeap<SlotLess> probation_;
  DaryHeap<SlotLess> shelter_;  // the protected segment

  CountMinSketch sketch_;
  Doorkeeper doorkeeper_;
};

[[nodiscard]] std::unique_ptr<RemovalPolicy> make_tinylfu(std::uint64_t seed = 1,
                                                          TinyLfuConfig config = {});

}  // namespace wcs
