// Segmented LRU (Karedla, Love & Wherry) on the flat engine.
//
// Two LRU segments: new documents enter *probation*; a hit promotes a
// probationary document into *protected* (capped at a configurable byte
// fraction of the cache, default 80%); protected overflow demotes the
// protected-LRU document back to the probation MRU position. Victims come
// from the probation LRU end while probation is non-empty, then from
// protected — so documents referenced at least twice are sheltered from
// scan/burst traffic that floods probation.
//
// Flat layout: recency is a monotone per-touch sequence number, and each
// segment is a DaryHeap over (seq asc, random_tag, url) — the root is the
// segment's LRU document. Both heaps share the single heap_pos_ column:
// a slot sits in exactly one segment at a time (the LRU-MIN 64-bucket
// precedent in src/core/lru_min.h).
#pragma once

#include <memory>
#include <string>

#include "src/core/flat_index.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class SlruPolicy final : public RemovalPolicy {
 public:
  /// `protected_permille` bounds the protected segment at that fraction of
  /// the cache's byte capacity (per-mille; 800 = the classic 20/80 split).
  explicit SlruPolicy(std::uint32_t protected_permille = 800, std::uint64_t seed = 1);

  /// Sizes the protected cap. Capacity 0 (infinite cache) leaves the
  /// protected segment unbounded — no eviction ever happens there anyway.
  void attach(std::uint64_t capacity_bytes) override;

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::optional<RankTuple> rank_of(UrlId url) const override;

  [[nodiscard]] std::uint64_t protected_bytes() const noexcept { return protected_bytes_; }
  [[nodiscard]] std::uint64_t protected_cap() const noexcept { return protected_cap_; }
  [[nodiscard]] std::size_t probation_count() const noexcept { return probation_.size(); }
  [[nodiscard]] std::size_t protected_count() const noexcept { return shelter_.size(); }

  /// Verifies tracked-set equality with the cache, arena/table/heap
  /// invariants, that each slot's segment flag matches the heap holding it,
  /// that the protected byte tally is the exact sum of protected sizes and
  /// within the cap, and that each segment's heap root is its full-scan
  /// (seq, random_tag, url) minimum.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  enum Segment : std::uint8_t { kProbation = 0, kProtected = 1 };

  struct SlotLess {
    const SlruPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->seqs_[a] != p->seqs_[b]) return p->seqs_[a] < p->seqs_[b];
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  [[nodiscard]] std::uint32_t slot_of(UrlId url) const noexcept;
  /// Demote protected-LRU documents to the probation MRU position until
  /// the protected byte tally is back under the cap.
  void rebalance_protected();

  std::uint32_t protected_permille_;
  std::string name_;
  std::uint64_t protected_cap_ = ~0ULL;  // unbounded until attach()
  std::uint64_t protected_bytes_ = 0;
  std::uint64_t next_seq_ = 1;  // monotone touch clock (0 = never)
  std::uint32_t victim_slot_ = kInvalidSlot;  // choose_victim -> on_remove memo

  // Struct-of-arrays per-slot state.
  std::vector<std::uint64_t> seqs_;
  std::vector<std::uint64_t> tags_;
  std::vector<UrlId> urls_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint8_t> segments_;
  std::vector<std::uint32_t> heap_pos_;  // shared: a slot is in exactly one segment

  SlotArena arena_;
  UrlSlotTable table_;
  DaryHeap<SlotLess> probation_;
  DaryHeap<SlotLess> shelter_;  // the protected segment ("protected" is reserved)
};

[[nodiscard]] std::unique_ptr<RemovalPolicy> make_slru(std::uint64_t seed = 1,
                                                       std::uint32_t protected_permille = 800);

}  // namespace wcs
