#include "src/zoo/slru.h"

#include <stdexcept>

namespace wcs {

SlruPolicy::SlruPolicy(std::uint32_t protected_permille, std::uint64_t /*seed*/)
    : protected_permille_(protected_permille),
      name_("slru"),
      probation_(SlotLess{this}, &heap_pos_),
      shelter_(SlotLess{this}, &heap_pos_) {
  if (protected_permille_ == 0 || protected_permille_ >= 1000) {
    throw std::invalid_argument{"SlruPolicy: protected_permille must be in (0, 1000)"};
  }
}

void SlruPolicy::attach(std::uint64_t capacity_bytes) {
  protected_cap_ =
      capacity_bytes == 0 ? ~0ULL : (capacity_bytes * protected_permille_) / 1000;
}

std::uint32_t SlruPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    seqs_.push_back(0);
    tags_.push_back(0);
    urls_.push_back(kInvalidUrl);
    sizes_.push_back(0);
    segments_.push_back(kProbation);
    heap_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

std::uint32_t SlruPolicy::slot_of(UrlId url) const noexcept {
  if (victim_slot_ != kInvalidSlot && urls_[victim_slot_] == url &&
      heap_pos_[victim_slot_] != kInvalidSlot) {
    return victim_slot_;
  }
  return table_.find(url);
}

void SlruPolicy::rebalance_protected() {
  while (protected_bytes_ > protected_cap_ && !shelter_.empty()) {
    const std::uint32_t demoted = shelter_.top();
    shelter_.erase(demoted);
    protected_bytes_ -= sizes_[demoted];
    segments_[demoted] = kProbation;
    seqs_[demoted] = next_seq_++;  // probation MRU: one more chance to re-earn shelter
    probation_.push(demoted);
  }
}

void SlruPolicy::on_insert(const CacheEntry& entry) {
  const std::uint32_t slot = acquire_slot();
  seqs_[slot] = next_seq_++;
  tags_[slot] = entry.random_tag;
  urls_[slot] = entry.url;
  sizes_[slot] = entry.size;
  segments_[slot] = kProbation;
  table_.insert(entry.url, slot);
  probation_.push(slot);
}

void SlruPolicy::on_hit(const CacheEntry& entry) {
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "SlruPolicy::on_hit for an untracked URL");
  seqs_[slot] = next_seq_++;
  if (segments_[slot] == kProtected) {
    shelter_.update(slot);
    return;
  }
  // Second reference: promote into the protected segment, then demote its
  // LRU end until the byte cap holds again.
  probation_.erase(slot);
  segments_[slot] = kProtected;
  protected_bytes_ += sizes_[slot];
  shelter_.push(slot);
  rebalance_protected();
}

void SlruPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = slot_of(entry.url);
  victim_slot_ = kInvalidSlot;
  WCS_ASSERT(slot != kInvalidSlot, "SlruPolicy::on_remove for an untracked URL");
  if (segments_[slot] == kProtected) {
    shelter_.erase(slot);
    protected_bytes_ -= sizes_[slot];
  } else {
    probation_.erase(slot);
  }
  const bool erased = table_.erase(entry.url);
  WCS_ASSERT(erased, "SlruPolicy::on_remove url missing from table");
  (void)erased;
  arena_.release(slot);
}

std::optional<UrlId> SlruPolicy::choose_victim(const EvictionContext& /*ctx*/) {
  if (!probation_.empty()) {
    victim_slot_ = probation_.top();
  } else if (!shelter_.empty()) {
    victim_slot_ = shelter_.top();
  } else {
    return std::nullopt;
  }
  return urls_[victim_slot_];
}

std::optional<RankTuple> SlruPolicy::rank_of(UrlId url) const {
  const std::uint32_t slot = table_.find(url);
  if (slot == kInvalidSlot) return std::nullopt;
  RankTuple tuple;
  tuple.count = 2;
  tuple.ranks[0] = segments_[slot];  // victims drain probation (0) first
  tuple.ranks[1] = static_cast<std::int64_t>(seqs_[slot]);
  tuple.random_tag = tags_[slot];
  tuple.url = urls_[slot];
  return tuple;
}

void SlruPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("slru.tracked_count",
               "policy tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (probation_.size() + shelter_.size() != table_.size()) {
    report.add("slru.order_count",
               "segments hold " + std::to_string(probation_.size() + shelter_.size()) +
                   " slots but table maps " + std::to_string(table_.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("slru.arena_live",
               "arena has " + std::to_string(arena_.live()) + " live slots but table maps " +
                   std::to_string(table_.size()));
  }
  arena_.audit("slru", report);
  table_.audit("slru", report);
  probation_.audit("slru.probation", report);
  shelter_.audit("slru.protected", report);

  std::uint64_t shelter_sum = 0;
  const SlotLess less{this};
  std::uint32_t min_probation = kInvalidSlot;
  std::uint32_t min_shelter = kInvalidSlot;
  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("slru.untracked", "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    if (urls_[slot] != url) {
      report.add("slru.table_slot",
                 "url " + std::to_string(url) + " maps to slot " + std::to_string(slot) +
                     " which claims url " + std::to_string(urls_[slot]));
      continue;
    }
    if (sizes_[slot] != entry.size) {
      report.add("slru.stale_size",
                 "url " + std::to_string(url) + " has stored size " +
                     std::to_string(sizes_[slot]) + " but the cache holds " +
                     std::to_string(entry.size) + " bytes");
    }
    if (segments_[slot] == kProtected) {
      shelter_sum += sizes_[slot];
      if (min_shelter == kInvalidSlot || less(slot, min_shelter)) min_shelter = slot;
    } else {
      if (min_probation == kInvalidSlot || less(slot, min_probation)) min_probation = slot;
    }
    // The segment flag must agree with the heap that actually holds the
    // slot: positions are shared, so membership is checked via each heap's
    // layout array.
    const std::uint32_t pos = heap_pos_[slot];
    const DaryHeap<SlotLess>& home = segments_[slot] == kProtected ? shelter_ : probation_;
    if (pos == kInvalidSlot || pos >= home.size() || home.slots()[pos] != slot) {
      report.add("slru.segment_membership",
                 "url " + std::to_string(url) + "'s slot is not in its segment's heap");
    }
  }
  if (shelter_sum != protected_bytes_) {
    report.add("slru.protected_bytes",
               "protected tally is " + std::to_string(protected_bytes_) +
                   " but protected entries sum to " + std::to_string(shelter_sum));
  }
  if (protected_bytes_ > protected_cap_) {
    report.add("slru.protected_cap",
               "protected tally " + std::to_string(protected_bytes_) + " exceeds the cap " +
                   std::to_string(protected_cap_));
  }
  if (min_probation != kInvalidSlot && !probation_.empty() &&
      probation_.top() != min_probation) {
    report.add("slru.victim_order",
               "probation root is url " + std::to_string(urls_[probation_.top()]) +
                   " but the comparator minimum is url " + std::to_string(urls_[min_probation]));
  }
  if (min_shelter != kInvalidSlot && !shelter_.empty() && shelter_.top() != min_shelter) {
    report.add("slru.victim_order",
               "protected root is url " + std::to_string(urls_[shelter_.top()]) +
                   " but the comparator minimum is url " + std::to_string(urls_[min_shelter]));
  }
}

std::unique_ptr<RemovalPolicy> make_slru(std::uint64_t seed, std::uint32_t protected_permille) {
  return std::make_unique<SlruPolicy>(protected_permille, seed);
}

}  // namespace wcs
