#include "src/zoo/tinylfu.h"

#include <stdexcept>

namespace wcs {

namespace {

constexpr std::uint32_t kDefaultSketchWidth = 1u << 10;

[[nodiscard]] std::uint64_t clamp64(std::uint64_t value, std::uint64_t lo,
                                    std::uint64_t hi) noexcept {
  return value < lo ? lo : (value > hi ? hi : value);
}

}  // namespace

TinyLfuPolicy::TinyLfuPolicy(TinyLfuConfig config)
    : config_(config),
      name_("w-tinylfu"),
      window_permille_(config.window_permille),
      window_(SlotLess{this}, &heap_pos_),
      probation_(SlotLess{this}, &heap_pos_),
      shelter_(SlotLess{this}, &heap_pos_),
      sketch_(kDefaultSketchWidth, config.seed),
      doorkeeper_(kDefaultSketchWidth * 8, config.seed ^ 0xd00f ) {
  if (config_.window_permille == 0 || config_.window_permille >= 1000 ||
      config_.protected_permille == 0 || config_.protected_permille >= 1000) {
    throw std::invalid_argument{"TinyLfuPolicy: per-mille fractions must be in (0, 1000)"};
  }
  if (config_.min_window_permille > config_.max_window_permille ||
      window_permille_ < config_.min_window_permille ||
      window_permille_ > config_.max_window_permille) {
    throw std::invalid_argument{"TinyLfuPolicy: window_permille outside its climb bounds"};
  }
}

void TinyLfuPolicy::attach(std::uint64_t capacity_bytes) {
  capacity_bytes_ = capacity_bytes;
  if (capacity_bytes == 0) {
    // Infinite cache: no evictions, so no duels, no adaptation, and the
    // default-width sketch only ever feeds estimates nobody reads.
    window_cap_ = ~0ULL;
    protected_cap_ = ~0ULL;
    sample_size_ = 0;
    return;
  }
  const std::uint64_t doc_bytes = config_.assumed_doc_bytes == 0 ? 1 : config_.assumed_doc_bytes;
  const std::uint64_t expected_entries =
      clamp64(capacity_bytes / doc_bytes, 1024, 1u << 20);
  sketch_ = CountMinSketch(static_cast<std::uint32_t>(expected_entries), config_.seed);
  doorkeeper_ = Doorkeeper(static_cast<std::uint32_t>(expected_entries) * 8,
                           config_.seed ^ 0xd00f);
  sample_size_ = config_.sample_multiplier * expected_entries;
  window_cap_ = (capacity_bytes * window_permille_) / 1000;
  const std::uint64_t main_bytes = capacity_bytes - window_cap_;
  protected_cap_ = (main_bytes * config_.protected_permille) / 1000;
}

std::uint32_t TinyLfuPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    seqs_.push_back(0);
    tags_.push_back(0);
    urls_.push_back(kInvalidUrl);
    sizes_.push_back(0);
    segments_.push_back(kWindow);
    heap_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

std::uint32_t TinyLfuPolicy::slot_of(UrlId url) const noexcept {
  if (victim_slot_ != kInvalidSlot && urls_[victim_slot_] == url &&
      heap_pos_[victim_slot_] != kInvalidSlot) {
    return victim_slot_;
  }
  return table_.find(url);
}

DaryHeap<TinyLfuPolicy::SlotLess>& TinyLfuPolicy::heap_of(std::uint8_t segment) noexcept {
  switch (segment) {
    case kWindow: return window_;
    case kProbation: return probation_;
    default: return shelter_;
  }
}

const DaryHeap<TinyLfuPolicy::SlotLess>& TinyLfuPolicy::heap_of(
    std::uint8_t segment) const noexcept {
  switch (segment) {
    case kWindow: return window_;
    case kProbation: return probation_;
    default: return shelter_;
  }
}

void TinyLfuPolicy::record_reference(UrlId url) {
  // Doorkeeper front: a first reference in this sample period stops at the
  // bloom filter; only repeats consume sketch counters.
  if (!doorkeeper_.contains(url)) {
    doorkeeper_.insert(url);
  } else {
    sketch_.add(url);
  }
  if (sample_size_ != 0 && sketch_.additions() >= sample_size_) maintenance();
}

std::uint32_t TinyLfuPolicy::estimate(UrlId url) const noexcept {
  return sketch_.estimate(url) + (doorkeeper_.contains(url) ? 1 : 0);
}

void TinyLfuPolicy::maintenance() {
  sketch_.halve();
  doorkeeper_.clear();
  if (!config_.adaptive || capacity_bytes_ == 0) {
    epoch_hits_ = 0;
    return;
  }
  // Hill climb: keep walking while the hit count improves, turn around
  // when it regresses. Integer comparison, event-count schedule — fully
  // deterministic.
  if (epoch_hits_ < prev_epoch_hits_) climb_direction_ = -climb_direction_;
  const std::int64_t stepped =
      static_cast<std::int64_t>(window_permille_) +
      climb_direction_ * static_cast<std::int64_t>(config_.step_permille);
  const std::int64_t lo = config_.min_window_permille;
  const std::int64_t hi = config_.max_window_permille;
  window_permille_ = static_cast<std::uint32_t>(stepped < lo ? lo : (stepped > hi ? hi : stepped));
  window_cap_ = (capacity_bytes_ * window_permille_) / 1000;
  const std::uint64_t main_bytes = capacity_bytes_ - window_cap_;
  protected_cap_ = (main_bytes * config_.protected_permille) / 1000;
  prev_epoch_hits_ = epoch_hits_;
  epoch_hits_ = 0;
  rebalance_protected();
  // A shrunken window drains into probation immediately while main has
  // room; past that the overflow surfaces as duel candidates on the next
  // eviction.
  drain_window();
}

void TinyLfuPolicy::rebalance_protected() {
  while (protected_bytes_ > protected_cap_ && !shelter_.empty()) {
    migrate(shelter_.top(), kProbation);
  }
}

void TinyLfuPolicy::drain_window() {
  if (capacity_bytes_ == 0) return;
  // While the main area has spare room, window overflow is admitted to
  // probation without a duel (the frequency filter only matters when an
  // admission costs an eviction). Once main is full, overflow stays in the
  // window and choose_victim runs the duel.
  const std::uint64_t main_cap = capacity_bytes_ - window_cap_;
  while (window_bytes_ > window_cap_ && !window_.empty()) {
    const std::uint32_t candidate = window_.top();
    const std::uint64_t main_bytes = total_bytes_ - window_bytes_;
    if (main_bytes + sizes_[candidate] > main_cap) break;
    migrate(candidate, kProbation);
  }
}

void TinyLfuPolicy::migrate(std::uint32_t slot, std::uint8_t to) {
  const std::uint8_t from = segments_[slot];
  WCS_ASSERT(from != to, "TinyLfuPolicy::migrate to the slot's own segment");
  heap_of(from).erase(slot);
  if (from == kWindow) window_bytes_ -= sizes_[slot];
  if (from == kProtected) protected_bytes_ -= sizes_[slot];
  segments_[slot] = to;
  seqs_[slot] = next_seq_++;  // lands at the MRU end of its new segment
  if (to == kWindow) window_bytes_ += sizes_[slot];
  if (to == kProtected) protected_bytes_ += sizes_[slot];
  heap_of(to).push(slot);
}

void TinyLfuPolicy::on_insert(const CacheEntry& entry) {
  record_reference(entry.url);
  const std::uint32_t slot = acquire_slot();
  seqs_[slot] = next_seq_++;
  tags_[slot] = entry.random_tag;
  urls_[slot] = entry.url;
  sizes_[slot] = entry.size;
  segments_[slot] = kWindow;
  window_bytes_ += entry.size;
  total_bytes_ += entry.size;
  table_.insert(entry.url, slot);
  window_.push(slot);
  drain_window();
}

void TinyLfuPolicy::on_hit(const CacheEntry& entry) {
  record_reference(entry.url);
  ++epoch_hits_;
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "TinyLfuPolicy::on_hit for an untracked URL");
  switch (segments_[slot]) {
    case kWindow:
      seqs_[slot] = next_seq_++;
      window_.update(slot);
      break;
    case kProbation:
      migrate(slot, kProtected);
      rebalance_protected();
      break;
    default:  // kProtected
      seqs_[slot] = next_seq_++;
      shelter_.update(slot);
      break;
  }
}

void TinyLfuPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = slot_of(entry.url);
  victim_slot_ = kInvalidSlot;
  WCS_ASSERT(slot != kInvalidSlot, "TinyLfuPolicy::on_remove for an untracked URL");
  const std::uint8_t segment = segments_[slot];
  heap_of(segment).erase(slot);
  if (segment == kWindow) window_bytes_ -= sizes_[slot];
  if (segment == kProtected) protected_bytes_ -= sizes_[slot];
  total_bytes_ -= sizes_[slot];
  const bool erased = table_.erase(entry.url);
  WCS_ASSERT(erased, "TinyLfuPolicy::on_remove url missing from table");
  (void)erased;
  arena_.release(slot);
}

std::optional<UrlId> TinyLfuPolicy::choose_victim(const EvictionContext& /*ctx*/) {
  if (table_.size() == 0) return std::nullopt;
  if (window_bytes_ > window_cap_ && !window_.empty()) {
    const std::uint32_t candidate = window_.top();
    // Main-area victim: probation LRU first, protected LRU as fallback.
    const std::uint32_t main_victim =
        !probation_.empty() ? probation_.top() : (!shelter_.empty() ? shelter_.top() : kInvalidSlot);
    if (main_victim == kInvalidSlot) {
      victim_slot_ = candidate;  // nothing to duel: the window evicts alone
      return urls_[victim_slot_];
    }
    // The TinyLFU admission duel. Strict inequality: on a tie the candidate
    // loses, which also blunts hash-flood attacks on the sketch.
    if (estimate(urls_[candidate]) > estimate(urls_[main_victim])) {
      ++duels_won_;
      migrate(candidate, kProbation);
      victim_slot_ = main_victim;
    } else {
      ++duels_lost_;
      victim_slot_ = candidate;
    }
    return urls_[victim_slot_];
  }
  if (!probation_.empty()) {
    victim_slot_ = probation_.top();
  } else if (!shelter_.empty()) {
    victim_slot_ = shelter_.top();
  } else {
    victim_slot_ = window_.top();  // table non-empty, so the window holds it
  }
  return urls_[victim_slot_];
}

std::optional<RankTuple> TinyLfuPolicy::rank_of(UrlId url) const {
  const std::uint32_t slot = table_.find(url);
  if (slot == kInvalidSlot) return std::nullopt;
  RankTuple tuple;
  tuple.count = 2;
  tuple.ranks[0] = segments_[slot];
  tuple.ranks[1] = static_cast<std::int64_t>(seqs_[slot]);
  tuple.random_tag = tags_[slot];
  tuple.url = urls_[slot];
  return tuple;
}

void TinyLfuPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("tinylfu.tracked_count",
               "policy tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  const std::size_t queued = window_.size() + probation_.size() + shelter_.size();
  if (queued != table_.size()) {
    report.add("tinylfu.order_count",
               "segments hold " + std::to_string(queued) + " slots but table maps " +
                   std::to_string(table_.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("tinylfu.arena_live",
               "arena has " + std::to_string(arena_.live()) + " live slots but table maps " +
                   std::to_string(table_.size()));
  }
  arena_.audit("tinylfu", report);
  table_.audit("tinylfu", report);
  window_.audit("tinylfu.window", report);
  probation_.audit("tinylfu.probation", report);
  shelter_.audit("tinylfu.protected", report);
  sketch_.audit_index(report);
  if (window_permille_ < config_.min_window_permille ||
      window_permille_ > config_.max_window_permille) {
    report.add("tinylfu.window_bounds",
               "window fraction " + std::to_string(window_permille_) +
                   " per-mille escaped its climb bounds");
  }

  std::uint64_t window_sum = 0;
  std::uint64_t shelter_sum = 0;
  std::uint64_t total_sum = 0;
  const SlotLess less{this};
  std::uint32_t min_slot[3] = {kInvalidSlot, kInvalidSlot, kInvalidSlot};
  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("tinylfu.untracked", "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    if (urls_[slot] != url) {
      report.add("tinylfu.table_slot",
                 "url " + std::to_string(url) + " maps to slot " + std::to_string(slot) +
                     " which claims url " + std::to_string(urls_[slot]));
      continue;
    }
    if (sizes_[slot] != entry.size) {
      report.add("tinylfu.stale_size",
                 "url " + std::to_string(url) + " has stored size " +
                     std::to_string(sizes_[slot]) + " but the cache holds " +
                     std::to_string(entry.size) + " bytes");
    }
    const std::uint8_t segment = segments_[slot];
    if (segment > kProtected) {
      report.add("tinylfu.segment_flag",
                 "url " + std::to_string(url) + " carries segment flag " +
                     std::to_string(segment));
      continue;
    }
    if (segment == kWindow) window_sum += sizes_[slot];
    if (segment == kProtected) shelter_sum += sizes_[slot];
    total_sum += sizes_[slot];
    if (min_slot[segment] == kInvalidSlot || less(slot, min_slot[segment])) {
      min_slot[segment] = slot;
    }
    const std::uint32_t pos = heap_pos_[slot];
    const DaryHeap<SlotLess>& home = heap_of(segment);
    if (pos == kInvalidSlot || pos >= home.size() || home.slots()[pos] != slot) {
      report.add("tinylfu.segment_membership",
                 "url " + std::to_string(url) + "'s slot is not in its segment's heap");
    }
  }
  if (window_sum != window_bytes_) {
    report.add("tinylfu.window_bytes",
               "window tally is " + std::to_string(window_bytes_) +
                   " but window entries sum to " + std::to_string(window_sum));
  }
  if (total_sum != total_bytes_) {
    report.add("tinylfu.total_bytes",
               "total tally is " + std::to_string(total_bytes_) + " but entries sum to " +
                   std::to_string(total_sum));
  }
  if (shelter_sum != protected_bytes_) {
    report.add("tinylfu.protected_bytes",
               "protected tally is " + std::to_string(protected_bytes_) +
                   " but protected entries sum to " + std::to_string(shelter_sum));
  }
  if (protected_bytes_ > protected_cap_) {
    report.add("tinylfu.protected_cap",
               "protected tally " + std::to_string(protected_bytes_) + " exceeds the cap " +
                   std::to_string(protected_cap_));
  }
  const char* segment_names[3] = {"window", "probation", "protected"};
  for (std::uint8_t segment = 0; segment <= kProtected; ++segment) {
    const DaryHeap<SlotLess>& home = heap_of(segment);
    if (min_slot[segment] != kInvalidSlot && !home.empty() &&
        home.top() != min_slot[segment]) {
      report.add("tinylfu.victim_order",
                 std::string{segment_names[segment]} + " root is url " +
                     std::to_string(urls_[home.top()]) + " but the comparator minimum is url " +
                     std::to_string(urls_[min_slot[segment]]));
    }
  }
}

std::unique_ptr<RemovalPolicy> make_tinylfu(std::uint64_t seed, TinyLfuConfig config) {
  config.seed ^= mix_url_hash(seed);
  return std::make_unique<TinyLfuPolicy>(config);
}

}  // namespace wcs
