// Hooks the zoo's policies into make_policy_by_name (src/core/policy.h).
//
// Core cannot include zoo headers (the include-layering DAG puts zoo above
// core), so name resolution flows the other way: anything that wants
// "gdsf"/"slru"/"tinylfu"/"adaptive" to resolve by string — proxy config,
// topology tiers, demos, studies — calls register_zoo_policies() once at
// startup. Registration is idempotent (re-registering replaces the factory
// with an identical one) and thread-safe.
#pragma once

namespace wcs::zoo {

/// Registers "gds", "gdsf", "slru", "tinylfu", "w-tinylfu" (alias) and
/// "adaptive" with make_policy_by_name. Safe to call repeatedly.
void register_zoo_policies();

}  // namespace wcs::zoo
