// GreedyDual-Size and GDSF (Cao & Irani; Cherkasova) on the flat engine.
//
// Each cached document carries a value H = L + F * C / S, where L is the
// global inflation offset, F the reference count (1 for plain GDS), C the
// fetch cost (uniform here — the traces carry no cost signal) and S the
// size. The victim is the minimum-H document; on eviction L rises to the
// victim's H, so surviving documents age *relatively* without a single
// stored value changing — the inflation-offset trick that makes the clock
// advance free (no re-heapify, ever).
//
// Integer fixed-point: H = L + (F << 16) / max(1, S). src/core's no-float
// rule does not bind src/zoo, but integer H keeps the comparator exact and
// platform-independent (no FP rounding in a determinism-gated order).
// Overflow headroom: one eviction raises L by at most one document value
// (<= F << 16); with F capped by nref over a run, 2^63 is out of reach for
// any trace this repo can generate.
//
// Comparator: (H asc, random_tag, url) — the repo's always-random final
// tiebreak contract, so the heap root is the unique minimum.
#pragma once

#include <memory>
#include <string>

#include "src/core/flat_index.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class GreedyDualPolicy final : public RemovalPolicy {
 public:
  enum class Mode {
    kGds,   // F = 1: pure GreedyDual-Size
    kGdsf,  // F = nref: GDSF (frequency-weighted)
  };

  explicit GreedyDualPolicy(Mode mode, std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::optional<RankTuple> rank_of(UrlId url) const override;

  /// Current inflation offset (monotone non-decreasing; tests).
  [[nodiscard]] std::uint64_t inflation() const noexcept { return inflation_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Verifies tracked-set equality with the cache, the arena/table/heap
  /// invariants, that each slot's stored H equals its recorded insertion
  /// offset plus the value recomputed from the live entry (freq/size), that
  /// no recorded offset exceeds the current inflation, and that the heap
  /// root is the full-scan (H, random_tag, url) minimum.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  static constexpr std::uint64_t kScale = 1ULL << 16;

  struct SlotLess {
    const GreedyDualPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->prios_[a] != p->prios_[b]) return p->prios_[a] < p->prios_[b];
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  [[nodiscard]] std::uint64_t value_of(const CacheEntry& entry) const noexcept;
  [[nodiscard]] std::uint32_t acquire_slot();
  [[nodiscard]] std::uint32_t slot_of(UrlId url) const noexcept;

  Mode mode_;
  std::string name_;
  std::uint64_t inflation_ = 0;  // L: rises to the victim's H on eviction
  std::uint32_t victim_slot_ = kInvalidSlot;  // choose_victim -> on_remove memo

  // Struct-of-arrays per-slot state.
  std::vector<std::uint64_t> prios_;    // H = offset + value at last write
  std::vector<std::uint64_t> offsets_;  // L captured when H was written
  std::vector<std::uint64_t> tags_;
  std::vector<UrlId> urls_;
  std::vector<std::uint32_t> heap_pos_;

  SlotArena arena_;
  UrlSlotTable table_;
  DaryHeap<SlotLess> by_value_;
};

[[nodiscard]] std::unique_ptr<RemovalPolicy> make_gds(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_gdsf(std::uint64_t seed = 1);

}  // namespace wcs
