// Deterministic frequency sketch for W-TinyLFU (src/zoo/tinylfu.h).
//
// CountMinSketch is the classic depth-4 count-min estimator with TinyLFU's
// two modifications: counters saturate at a small cap (4-bit style — a
// frequency beyond 15 carries no extra eviction information) and every
// counter is halved on a fixed schedule (the owner calls halve() every
// sample-size additions), which ages out stale popularity so the sketch
// tracks the *recent* reference distribution.
//
// Doorkeeper is the bloom filter TinyLFU puts in front of the sketch:
// one-hit wonders stop at the doorkeeper and never consume sketch
// counters; only the second reference within a sample period reaches the
// sketch. It is cleared at each halving.
//
// Determinism: row salts derive from the constructor seed via the
// splitmix64 finalizer (mix_url_hash), widths are powers of two, and no
// global RNG or wall clock is consulted — (seed, url sequence) -> state,
// bit for bit, on every platform. Integer math only.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/audit.h"
#include "src/core/flat_index.h"
#include "src/trace/request.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class CountMinSketch {
 public:
  static constexpr std::uint32_t kDepth = 4;
  /// TinyLFU saturation cap: estimates are only ever compared, and a
  /// frequency above this ceiling cannot change any comparison the policy
  /// makes before the next halving resets the scale.
  static constexpr std::uint8_t kMaxCount = 15;

  /// `min_width` is rounded up to a power of two (>= 16). All four rows
  /// share one contiguous counter array.
  explicit CountMinSketch(std::uint32_t min_width, std::uint64_t seed = 0x5ce7c4f0);

  /// Count one reference: saturating increment of one cell per row.
  void add(UrlId url);

  /// Estimated reference count: the minimum across rows (classic count-min
  /// upper-bound estimate, tightened by the saturation cap).
  [[nodiscard]] std::uint32_t estimate(UrlId url) const noexcept;

  /// The aging step: halve every counter (rounding down) and forget the
  /// additions seen so far. The owner calls this every sample-size adds.
  void halve();

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  /// Additions since the last halve() (the owner's halving trigger).
  [[nodiscard]] std::uint64_t additions() const noexcept { return additions_; }
  /// Total halvings performed (tests pin the schedule to this).
  [[nodiscard]] std::uint64_t halvings() const noexcept { return halvings_; }

  /// Internal invariants: width is a power of two, the counter array spans
  /// exactly kDepth rows, and no counter exceeds the saturation cap.
  void audit_index(AuditReport& report) const;

 private:
  friend struct AuditTamper;

  [[nodiscard]] std::size_t cell(std::uint32_t row, UrlId url) const noexcept {
    return static_cast<std::size_t>(row) * width_ +
           (mix_url_hash(static_cast<std::uint64_t>(url) ^ salts_[row]) & (width_ - 1));
  }

  std::uint32_t width_ = 0;
  std::uint64_t additions_ = 0;
  std::uint64_t halvings_ = 0;
  std::uint64_t salts_[kDepth] = {};
  std::vector<std::uint8_t> counters_;
};

class Doorkeeper {
 public:
  /// `min_bits` is rounded up to a power of two (>= 64); two probe bits per
  /// url, salted from `seed`.
  explicit Doorkeeper(std::uint32_t min_bits, std::uint64_t seed = 0xd0c4beefULL);

  [[nodiscard]] bool contains(UrlId url) const noexcept;
  void insert(UrlId url);
  /// Reset every bit (performed at each sketch halving).
  void clear() noexcept;

  [[nodiscard]] std::uint32_t bit_count() const noexcept { return mask_ + 1; }

 private:
  [[nodiscard]] std::uint32_t bit_of(std::uint32_t probe, UrlId url) const noexcept {
    return static_cast<std::uint32_t>(
        mix_url_hash(static_cast<std::uint64_t>(url) ^ salts_[probe]) & mask_);
  }

  std::uint32_t mask_ = 0;  // bit_count - 1 (power of two)
  std::uint64_t salts_[2] = {};
  std::vector<std::uint64_t> words_;
};

}  // namespace wcs
