// Admission policies for the Cache's AdmissionPolicy seam (src/core/
// policy.h). Eviction asks "who leaves?"; admission asks the cheaper
// question "was this worth letting in at all?" — a veto costs zero
// evictions and keeps dead-on-arrival documents (inserted, never
// re-referenced, CacheStats::dead_on_arrival_evictions) from churning the
// resident set.
//
//   always      the null policy (what a null AdmissionFactory also means)
//   size<=N     veto documents larger than a byte threshold (derived from
//               capacity at attach() when constructed with 0)
//   doorkeeper  veto first-time URLs within a reset period: only a URL's
//               second request within the period is cached (TinyLFU's
//               doorkeeper, standalone)
//   doa         veto URLs whose recent cache lives ended dead-on-arrival
//               twice in a row (the inserted-but-never-reused tracker)
//
// All are deterministic: seeded hashes, event-count reset schedules, no
// wall clock, no global RNG.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/core/policy.h"
#include "src/zoo/sketch.h"

namespace wcs {

/// Explicit always-admit (handy for study tables; equivalent to none).
class AlwaysAdmit final : public AdmissionPolicy {
 public:
  [[nodiscard]] bool should_admit(SimTime /*now*/, UrlId /*url*/,
                                  std::uint64_t /*size*/) override {
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "always"; }
};

/// Veto documents larger than `max_bytes`. Constructed with 0, the
/// threshold derives from the cache capacity at attach() (capacity / 64 —
/// any document worth more than ~1.5% of the cache must earn its bytes
/// through the removal policy of a cache that admitted it smaller days).
class SizeThresholdAdmission final : public AdmissionPolicy {
 public:
  explicit SizeThresholdAdmission(std::uint64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  void attach(std::uint64_t capacity_bytes) override {
    if (max_bytes_ == 0) {
      max_bytes_ = capacity_bytes == 0 ? ~0ULL : (capacity_bytes / 64 == 0 ? 1 : capacity_bytes / 64);
    }
  }
  [[nodiscard]] bool should_admit(SimTime /*now*/, UrlId /*url*/,
                                  std::uint64_t size) override {
    return size <= max_bytes_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "size-threshold"; }
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

 private:
  std::uint64_t max_bytes_;
};

/// Standalone doorkeeper: a URL is admitted only on its second (or later)
/// request within a reset period, so one-hit wonders never enter the cache
/// at all. The bloom filter clears every `reset_interval` decisions.
class DoorkeeperAdmission final : public AdmissionPolicy {
 public:
  explicit DoorkeeperAdmission(std::uint32_t min_bits = 1u << 16,
                               std::uint64_t reset_interval = 1u << 16,
                               std::uint64_t seed = 0xd00753a1ULL);

  [[nodiscard]] bool should_admit(SimTime now, UrlId url, std::uint64_t size) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "doorkeeper"; }
  [[nodiscard]] std::uint64_t resets() const noexcept { return resets_; }
  void audit_index(AuditReport& report) const override;

 private:
  Doorkeeper door_;
  std::uint64_t reset_interval_;
  std::uint64_t decisions_ = 0;  // since the last reset
  std::uint64_t resets_ = 0;
};

/// Dead-on-arrival tracker: watches removals for entries that left with
/// nref == 1 (cached, never re-referenced). A URL that has gone dead on
/// arrival `strike_limit` consecutive times is vetoed until it proves
/// itself again (any hit clears its record). The strike map is bounded:
/// when it outgrows `max_tracked` URLs it resets — a forgetting schedule,
/// event-count driven and deterministic.
class DeadOnArrivalAdmission final : public AdmissionPolicy {
 public:
  explicit DeadOnArrivalAdmission(std::uint32_t strike_limit = 2,
                                  std::size_t max_tracked = 1u << 20);

  [[nodiscard]] bool should_admit(SimTime now, UrlId url, std::uint64_t size) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "doa"; }
  [[nodiscard]] std::size_t tracked() const noexcept { return strikes_.size(); }
  void audit_index(AuditReport& report) const override;

 private:
  std::uint32_t strike_limit_;
  std::size_t max_tracked_;
  // UrlId -> consecutive dead-on-arrival departures. Cold path (touched on
  // removal/admission decisions, never per-hit on the flat engine's hot
  // loops) — node-based is fine outside src/core, and the ordered map keeps
  // audit_index iteration deterministic.
  std::map<UrlId, std::uint32_t> strikes_;
};

[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_always_admit();
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_size_threshold_admission(
    std::uint64_t max_bytes = 0);
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_doorkeeper_admission(
    std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_doa_admission();

/// Admission policy by name ("always", "size-threshold", "doorkeeper",
/// "doa"); nullptr if unknown.
[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_admission_by_name(std::string_view name,
                                                                      std::uint64_t seed = 1);

}  // namespace wcs
