// Online policy selection via shadow caches.
//
// ROADMAP's modern-policy question ("does SIZE still win?") has no single
// answer: the best removal policy depends on the workload, and the workload
// drifts. The ShadowSelectorPolicy runs K candidate policies *concurrently*
// as small shadow caches — each a real Cache at capacity >> sample_rate_log2
// fed a deterministic URL-hash sample of the request stream — and every
// `epoch_events` insert/hit events compares their shadow hit counts. When a
// challenger beats the incumbent by more than `min_advantage` shadow hits,
// the selector switches: the live index is rebuilt under the challenger from
// a mirror of the cache's resident set, and subsequent victims come from the
// new policy. Hysteresis (the advantage margin) keeps the selector from
// thrashing between near-tied candidates.
//
// Determinism: sampling is a pure hash of the URL id, epochs are event
// counts (never wall time), ties in the hit comparison break toward the
// lowest candidate index, and the rebuilt index replays the mirror's dense
// order — itself a deterministic function of the request stream. Same seed,
// same stream -> same switch points, same victims, bit for bit. With a
// single candidate the selector never switches and is the candidate,
// decision for decision.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

struct SelectorCandidate {
  std::string name;
  NamedPolicyFactory factory;  // seed -> policy instance
};

struct SelectorConfig {
  std::vector<SelectorCandidate> candidates;
  /// Shadow caches run at capacity >> sample_rate_log2 and see the
  /// 1-in-2^sample_rate_log2 URL-hash sample of the stream (0 = full
  /// stream, full-size shadows).
  std::uint32_t sample_rate_log2 = 3;
  /// Insert+hit events per decision epoch.
  std::uint64_t epoch_events = 4096;
  /// A challenger must beat the incumbent by more than this many shadow
  /// hits within an epoch to take over (hysteresis).
  std::uint64_t min_advantage = 8;
  std::uint64_t seed = 0x5e1ec707ULL;
};

/// One epoch-boundary decision, for study output and the proxy demo.
struct EpochChoice {
  std::uint64_t epoch = 0;        // 0-based epoch index
  std::uint64_t event_index = 0;  // insert+hit events seen at the boundary
  std::string chosen;             // candidate in charge after the decision
  bool switched = false;
  std::vector<std::uint64_t> shadow_hits;  // per candidate, this epoch only
};

class ShadowSelectorPolicy final : public RemovalPolicy {
 public:
  explicit ShadowSelectorPolicy(SelectorConfig config);
  ~ShadowSelectorPolicy() override;

  /// Builds the live inner policy and one shadow cache per candidate at
  /// capacity >> sample_rate_log2 (infinite stays infinite).
  void attach(std::uint64_t capacity_bytes) override;

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "adaptive"; }
  [[nodiscard]] std::optional<RankTuple> rank_of(UrlId url) const override;

  [[nodiscard]] std::size_t current_index() const noexcept { return current_; }
  [[nodiscard]] const std::string& current_name() const noexcept {
    return config_.candidates[current_].name;
  }
  /// Every epoch-boundary decision so far, in order.
  [[nodiscard]] const std::vector<EpochChoice>& epoch_log() const noexcept {
    return epoch_log_;
  }
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }
  /// The candidate shadow caches, for study output (hit rates per policy).
  [[nodiscard]] const Cache& shadow(std::size_t i) const { return *shadows_[i]; }
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return config_.candidates.size();
  }

  /// Verifies the mirror tracks exactly the cached set (url, size, atime,
  /// nref), forwards the live inner policy's audit under "selector.inner",
  /// absorbs every shadow cache's full audit, and checks the epoch
  /// schedule. O(K * n log n) — diagnostics only.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  [[nodiscard]] bool sampled(UrlId url) const noexcept;
  void feed_shadows(const CacheEntry& entry);
  /// Count one insert/hit event; runs the epoch decision at the boundary.
  void tick();
  void end_epoch();
  /// Fresh instance of candidate `index` replaying the mirror's dense order.
  void rebuild_inner();

  SelectorConfig config_;
  std::uint64_t capacity_bytes_ = 0;
  std::uint64_t sample_salt_;
  std::uint64_t sample_mask_;

  std::size_t current_ = 0;
  std::unique_ptr<RemovalPolicy> inner_;
  std::vector<std::unique_ptr<Cache>> shadows_;
  std::vector<std::uint64_t> epoch_base_hits_;  // shadow hits at epoch start

  EntryTable mirror_;  // the live cache's resident set, for index rebuilds
  std::uint64_t events_ = 0;  // insert+hit events since attach
  std::uint64_t events_in_epoch_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t switches_ = 0;
  std::vector<EpochChoice> epoch_log_;
};

/// The default zoo panel: SIZE (the paper's winner), LRU, GDSF, SLRU and
/// W-TinyLFU as candidates, with the config's default sampling and
/// hysteresis. Registered as "adaptive" in make_policy_by_name.
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_adaptive_selector(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_shadow_selector(SelectorConfig config);

}  // namespace wcs
