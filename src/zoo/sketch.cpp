#include "src/zoo/sketch.h"

#include <string>

namespace wcs {

namespace {

[[nodiscard]] std::uint32_t round_up_pow2(std::uint32_t value, std::uint32_t floor) noexcept {
  std::uint32_t width = floor;
  while (width < value) width <<= 1;
  return width;
}

}  // namespace

CountMinSketch::CountMinSketch(std::uint32_t min_width, std::uint64_t seed)
    : width_(round_up_pow2(min_width, 16)) {
  for (std::uint32_t row = 0; row < kDepth; ++row) {
    salts_[row] = mix_url_hash(seed + row);
  }
  counters_.assign(static_cast<std::size_t>(width_) * kDepth, 0);
}

void CountMinSketch::add(UrlId url) {
  for (std::uint32_t row = 0; row < kDepth; ++row) {
    std::uint8_t& counter = counters_[cell(row, url)];
    if (counter < kMaxCount) ++counter;
  }
  ++additions_;
}

std::uint32_t CountMinSketch::estimate(UrlId url) const noexcept {
  std::uint32_t minimum = kMaxCount;
  for (std::uint32_t row = 0; row < kDepth; ++row) {
    const std::uint8_t counter = counters_[cell(row, url)];
    if (counter < minimum) minimum = counter;
  }
  return minimum;
}

void CountMinSketch::halve() {
  for (std::uint8_t& counter : counters_) counter = static_cast<std::uint8_t>(counter >> 1);
  additions_ = 0;
  ++halvings_;
}

void CountMinSketch::audit_index(AuditReport& report) const {
  if (width_ < 16 || (width_ & (width_ - 1)) != 0) {
    report.add("sketch.width", "width " + std::to_string(width_) + " is not a power of two");
  }
  if (counters_.size() != static_cast<std::size_t>(width_) * kDepth) {
    report.add("sketch.rows", "counter array holds " + std::to_string(counters_.size()) +
                                  " cells, expected " +
                                  std::to_string(static_cast<std::size_t>(width_) * kDepth));
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > kMaxCount) {
      report.add("sketch.saturation",
                 "cell " + std::to_string(i) + " holds " + std::to_string(counters_[i]) +
                     ", beyond the saturation cap " + std::to_string(kMaxCount));
    }
  }
}

Doorkeeper::Doorkeeper(std::uint32_t min_bits, std::uint64_t seed)
    : mask_(round_up_pow2(min_bits, 64) - 1) {
  salts_[0] = mix_url_hash(seed);
  salts_[1] = mix_url_hash(seed + 0x9e3779b97f4a7c15ULL);
  words_.assign((static_cast<std::size_t>(mask_) + 1) / 64, 0);
}

bool Doorkeeper::contains(UrlId url) const noexcept {
  for (std::uint32_t probe = 0; probe < 2; ++probe) {
    const std::uint32_t bit = bit_of(probe, url);
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void Doorkeeper::insert(UrlId url) {
  for (std::uint32_t probe = 0; probe < 2; ++probe) {
    const std::uint32_t bit = bit_of(probe, url);
    words_[bit >> 6] |= 1ULL << (bit & 63);
  }
}

void Doorkeeper::clear() noexcept {
  for (std::uint64_t& word : words_) word = 0;
}

}  // namespace wcs
