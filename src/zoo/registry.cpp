#include "src/zoo/registry.h"

#include "src/core/policy.h"
#include "src/zoo/gds.h"
#include "src/zoo/selector.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

namespace wcs::zoo {

void register_zoo_policies() {
  register_policy("gds", [](std::uint64_t seed) { return make_gds(seed); });
  register_policy("gdsf", [](std::uint64_t seed) { return make_gdsf(seed); });
  register_policy("slru", [](std::uint64_t seed) { return make_slru(seed); });
  register_policy("tinylfu", [](std::uint64_t seed) { return make_tinylfu(seed); });
  register_policy("w-tinylfu", [](std::uint64_t seed) { return make_tinylfu(seed); });
  register_policy("adaptive", [](std::uint64_t seed) { return make_adaptive_selector(seed); });
}

}  // namespace wcs::zoo
