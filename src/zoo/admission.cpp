#include "src/zoo/admission.h"

#include "src/util/strings.h"

namespace wcs {

DoorkeeperAdmission::DoorkeeperAdmission(std::uint32_t min_bits, std::uint64_t reset_interval,
                                         std::uint64_t seed)
    : door_(min_bits, seed), reset_interval_(reset_interval == 0 ? 1 : reset_interval) {}

bool DoorkeeperAdmission::should_admit(SimTime /*now*/, UrlId url, std::uint64_t /*size*/) {
  if (++decisions_ >= reset_interval_) {
    door_.clear();
    decisions_ = 0;
    ++resets_;
  }
  const bool seen = door_.contains(url);
  if (!seen) door_.insert(url);
  return seen;
}

void DoorkeeperAdmission::audit_index(AuditReport& report) const {
  if (decisions_ >= reset_interval_) {
    report.add("doorkeeper.reset_schedule",
               std::to_string(decisions_) + " decisions since the last reset, beyond the " +
                   std::to_string(reset_interval_) + "-decision period");
  }
}

DeadOnArrivalAdmission::DeadOnArrivalAdmission(std::uint32_t strike_limit,
                                               std::size_t max_tracked)
    : strike_limit_(strike_limit == 0 ? 1 : strike_limit),
      max_tracked_(max_tracked == 0 ? 1 : max_tracked) {}

bool DeadOnArrivalAdmission::should_admit(SimTime /*now*/, UrlId url, std::uint64_t /*size*/) {
  const auto it = strikes_.find(url);
  return it == strikes_.end() || it->second < strike_limit_;
}

void DeadOnArrivalAdmission::on_hit(const CacheEntry& entry) {
  // Re-referenced: the document proved itself; forget its record.
  strikes_.erase(entry.url);
}

void DeadOnArrivalAdmission::on_remove(const CacheEntry& entry) {
  if (entry.nref > 1) {
    strikes_.erase(entry.url);
    return;
  }
  if (strikes_.size() >= max_tracked_ && strikes_.find(entry.url) == strikes_.end()) {
    // Bounded memory: forget everything rather than evict selectively —
    // selective forgetting would need an order, and any order is another
    // index to maintain. A rare full reset is deterministic and cheap.
    strikes_.clear();
  }
  std::uint32_t& strikes = strikes_[entry.url];
  if (strikes < strike_limit_) ++strikes;
}

void DeadOnArrivalAdmission::audit_index(AuditReport& report) const {
  if (strikes_.size() > max_tracked_) {
    report.add("doa.tracked_bound", "strike map holds " + std::to_string(strikes_.size()) +
                                        " URLs, beyond the bound " +
                                        std::to_string(max_tracked_));
  }
  for (const auto& [url, strikes] : strikes_) {
    if (strikes == 0 || strikes > strike_limit_) {
      report.add("doa.strike_range", "url " + std::to_string(url) + " carries strike count " +
                                         std::to_string(strikes) + " outside [1, " +
                                         std::to_string(strike_limit_) + "]");
    }
  }
}

std::unique_ptr<AdmissionPolicy> make_always_admit() { return std::make_unique<AlwaysAdmit>(); }

std::unique_ptr<AdmissionPolicy> make_size_threshold_admission(std::uint64_t max_bytes) {
  return std::make_unique<SizeThresholdAdmission>(max_bytes);
}

std::unique_ptr<AdmissionPolicy> make_doorkeeper_admission(std::uint64_t seed) {
  return std::make_unique<DoorkeeperAdmission>(1u << 16, 1u << 16,
                                               0xd00753a1ULL ^ mix_url_hash(seed));
}

std::unique_ptr<AdmissionPolicy> make_doa_admission() {
  return std::make_unique<DeadOnArrivalAdmission>();
}

std::unique_ptr<AdmissionPolicy> make_admission_by_name(std::string_view name,
                                                        std::uint64_t seed) {
  const std::string lower = to_lower(name);
  if (lower == "always") return make_always_admit();
  if (lower == "size-threshold") return make_size_threshold_admission();
  if (lower == "doorkeeper") return make_doorkeeper_admission(seed);
  if (lower == "doa") return make_doa_admission();
  return nullptr;
}

}  // namespace wcs
