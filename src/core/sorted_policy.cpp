#include "src/core/sorted_policy.h"

#include <stdexcept>
#include <utility>

namespace wcs {

SortedPolicy::SortedPolicy(KeySpec spec, std::uint64_t /*seed*/)
    : spec_(std::move(spec)),
      name_(spec_.name()),
      key_count_(spec_.keys.size()),
      heap_(SlotLess{this}, &heap_pos_) {
  if (key_count_ > kMaxRankKeys) {
    // Same contract as make_rank_tuple: the inline rank columns cannot hold
    // a deeper spec, and silently truncating would change the comparator.
    throw std::length_error{"SortedPolicy: KeySpec deeper than kMaxRankKeys (" +
                            std::to_string(key_count_) + " keys); raise the "
                            "RankTuple inline bound"};
  }
}

std::uint32_t SortedPolicy::slot_of(UrlId url) const noexcept {
  if (victim_slot_ != kInvalidSlot && urls_[victim_slot_] == url &&
      heap_pos_[victim_slot_] != kInvalidSlot) {
    return victim_slot_;
  }
  return table_.find(url);
}

std::uint32_t SortedPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    for (std::size_t k = 0; k < key_count_; ++k) rank_cols_[k].push_back(0);
    tags_.push_back(0);
    urls_.push_back(kInvalidUrl);
    heap_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

void SortedPolicy::write_ranks(std::uint32_t slot, const CacheEntry& entry) {
  for (std::size_t k = 0; k < key_count_; ++k) {
    rank_cols_[k][slot] = key_rank(spec_.keys[k], entry);
  }
}

RankTuple SortedPolicy::tuple_of(std::uint32_t slot) const noexcept {
  RankTuple tuple;
  tuple.count = static_cast<std::uint8_t>(key_count_);
  for (std::size_t k = 0; k < key_count_; ++k) tuple.ranks[k] = rank_cols_[k][slot];
  tuple.random_tag = tags_[slot];
  tuple.url = urls_[slot];
  return tuple;
}

void SortedPolicy::on_insert(const CacheEntry& entry) {
  const std::uint32_t slot = acquire_slot();
  write_ranks(slot, entry);
  tags_[slot] = entry.random_tag;
  urls_[slot] = entry.url;
  table_.insert(entry.url, slot);
  heap_.push(slot);
}

void SortedPolicy::on_hit(const CacheEntry& entry) {
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "SortedPolicy::on_hit for an untracked URL");
  // Re-rank in place: overwrite the slot's rank columns and sift. The tree
  // extract/relink this replaces walked O(log n) pointer hops twice; a sift
  // touches log4(n) contiguous heap words.
  write_ranks(slot, entry);
  heap_.update(slot);
}

void SortedPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = slot_of(entry.url);
  victim_slot_ = kInvalidSlot;
  WCS_ASSERT(slot != kInvalidSlot, "SortedPolicy::on_remove for an untracked URL");
  heap_.erase(slot);
  const bool erased = table_.erase(entry.url);
  WCS_ASSERT(erased, "SortedPolicy::on_remove url missing from table");
  (void)erased;
  arena_.release(slot);
}

std::optional<UrlId> SortedPolicy::choose_victim(const EvictionContext& /*ctx*/) {
  if (heap_.empty()) return std::nullopt;
  victim_slot_ = heap_.top();
  return urls_[victim_slot_];
}

std::optional<RankTuple> SortedPolicy::rank_of(UrlId url) const {
  const std::uint32_t slot = table_.find(url);
  if (slot == kInvalidSlot) return std::nullopt;
  return tuple_of(slot);
}

void SortedPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("sorted.tracked_count",
               "policy tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (heap_.size() != table_.size()) {
    report.add("sorted.order_count",
               "heap holds " + std::to_string(heap_.size()) + " slots but table maps " +
                   std::to_string(table_.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("sorted.arena_live",
               "arena has " + std::to_string(arena_.live()) + " live slots but table maps " +
                   std::to_string(table_.size()));
  }
  arena_.audit("sorted", report);
  table_.audit("sorted", report);
  heap_.audit("sorted", report);

  bool have_min = false;
  RankTuple min_tuple;
  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("sorted.untracked", "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    if (urls_[slot] != url) {
      report.add("sorted.table_slot",
                 "url " + std::to_string(url) + " maps to slot " + std::to_string(slot) +
                     " which claims url " + std::to_string(urls_[slot]));
      continue;
    }
    RankTuple expected = make_rank_tuple(spec_, entry);
    if (!(tuple_of(slot) == expected)) {
      report.add("sorted.stale_rank",
                 "url " + std::to_string(url) +
                     " has stored ranks that no longer match its recomputed ranks");
    }
    const std::uint32_t pos = heap_pos_[slot];
    if (pos == kInvalidSlot || pos >= heap_.size() || heap_.slots()[pos] != slot) {
      report.add("sorted.order_missing",
                 "url " + std::to_string(url) + "'s slot is absent from the heap");
    }
    if (!have_min || expected < min_tuple) {
      min_tuple = std::move(expected);
      have_min = true;
    }
  }

  // The victim the policy would return must be the recomputed minimum —
  // i.e. the declared (primary, secondary, ..., random-tag, url) comparator
  // still governs the head of the sorted order.
  if (have_min && !heap_.empty() && urls_[heap_.top()] != min_tuple.url) {
    report.add("sorted.victim_order",
               "heap root is url " + std::to_string(urls_[heap_.top()]) +
                   " but the comparator minimum is url " + std::to_string(min_tuple.url));
  }
}

std::optional<std::size_t> SortedPolicy::position_of(UrlId url) const {
  const std::uint32_t slot = table_.find(url);
  if (slot == kInvalidSlot) return std::nullopt;
  // Sorted-list position == number of live slots strictly below the target
  // under the (total) comparator. A heap is unordered beyond its root, so
  // this is a full scan — diagnostics only (see the header contract).
  const SlotLess less{this};
  std::size_t position = 0;
  for (const std::uint32_t other : heap_.slots()) {
    if (other != slot && less(other, slot)) ++position;
  }
  return position;
}

}  // namespace wcs
