#include "src/core/sorted_policy.h"

#include <utility>

namespace wcs {

SortedPolicy::SortedPolicy(KeySpec spec, std::uint64_t /*seed*/)
    : spec_(std::move(spec)), name_(spec_.name()) {}

void SortedPolicy::on_insert(const CacheEntry& entry) {
  RankTuple tuple = make_rank_tuple(spec_, entry);
  const auto [it, inserted] = index_.emplace(entry.url, tuple);
  WCS_ASSERT(inserted, "SortedPolicy::on_insert for an already-tracked URL");
  (void)it;
  (void)inserted;
  order_.insert(std::move(tuple));
}

void SortedPolicy::on_hit(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  WCS_ASSERT(it != index_.end(), "SortedPolicy::on_hit for an untracked URL");
  // Re-rank without touching the allocator: unlink the existing tree node,
  // overwrite its tuple in place, and relink it. The erase+insert it
  // replaces freed and reallocated a node on every single hit, which
  // dominated the simulator's hot path.
  auto node = order_.extract(it->second);
  WCS_ASSERT(!node.empty(), "SortedPolicy::on_hit tuple missing from order set");
  node.value() = make_rank_tuple(spec_, entry);
  it->second = node.value();
  order_.insert(std::move(node));
}

void SortedPolicy::on_remove(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  WCS_ASSERT(it != index_.end(), "SortedPolicy::on_remove for an untracked URL");
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<UrlId> SortedPolicy::choose_victim(const EvictionContext& /*ctx*/) {
  if (order_.empty()) return std::nullopt;
  return order_.begin()->url;
}

void SortedPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (index_.size() != entries.size()) {
    report.add("sorted.tracked_count",
               "policy tracks " + std::to_string(index_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (order_.size() != index_.size()) {
    report.add("sorted.order_count",
               "order set holds " + std::to_string(order_.size()) + " tuples but index has " +
                   std::to_string(index_.size()));
  }

  bool have_min = false;
  RankTuple min_tuple;
  for (const auto& [url, entry] : entries) {
    const auto it = index_.find(url);
    if (it == index_.end()) {
      report.add("sorted.untracked", "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    RankTuple expected = make_rank_tuple(spec_, entry);
    if (!(it->second == expected)) {
      report.add("sorted.stale_rank",
                 "url " + std::to_string(url) +
                     " has a stored tuple that no longer matches its recomputed ranks");
    }
    if (!order_.contains(it->second)) {
      report.add("sorted.order_missing",
                 "url " + std::to_string(url) + "'s tuple is absent from the order set");
    }
    if (!have_min || expected < min_tuple) {
      min_tuple = std::move(expected);
      have_min = true;
    }
  }

  // The victim the policy would return must be the recomputed minimum —
  // i.e. the declared (primary, secondary, ..., random-tag, url) comparator
  // still governs the head of the sorted list.
  if (have_min && !order_.empty() && order_.begin()->url != min_tuple.url) {
    report.add("sorted.victim_order",
               "head of order set is url " + std::to_string(order_.begin()->url) +
                   " but the comparator minimum is url " + std::to_string(min_tuple.url));
  }
}

std::optional<std::size_t> SortedPolicy::position_of(UrlId url) const {
  const auto it = index_.find(url);
  if (it == index_.end()) return std::nullopt;
  const auto pos = order_.find(it->second);
  return static_cast<std::size_t>(std::distance(order_.begin(), pos));
}

}  // namespace wcs
