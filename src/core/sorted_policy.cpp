#include "src/core/sorted_policy.h"

#include <cassert>

namespace wcs {

SortedPolicy::SortedPolicy(KeySpec spec, std::uint64_t /*seed*/)
    : spec_(std::move(spec)), name_(spec_.name()) {}

void SortedPolicy::on_insert(const CacheEntry& entry) {
  RankTuple tuple = make_rank_tuple(spec_, entry);
  const auto [it, inserted] = index_.emplace(entry.url, tuple);
  assert(inserted && "on_insert for an already-tracked URL");
  (void)inserted;
  order_.insert(std::move(tuple));
}

void SortedPolicy::on_hit(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  assert(it != index_.end() && "on_hit for an untracked URL");
  order_.erase(it->second);
  it->second = make_rank_tuple(spec_, entry);
  order_.insert(it->second);
}

void SortedPolicy::on_remove(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  assert(it != index_.end() && "on_remove for an untracked URL");
  order_.erase(it->second);
  index_.erase(it);
}

std::optional<UrlId> SortedPolicy::choose_victim(const EvictionContext& /*ctx*/) {
  if (order_.empty()) return std::nullopt;
  return order_.begin()->url;
}

std::optional<std::size_t> SortedPolicy::position_of(UrlId url) const {
  const auto it = index_.find(url);
  if (it == index_.end()) return std::nullopt;
  const auto pos = order_.find(it->second);
  return static_cast<std::size_t>(std::distance(order_.begin(), pos));
}

}  // namespace wcs
