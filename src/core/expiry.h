// Expiry-aware removal (paper §5 open problem 4): "the Harvest cache tries
// to remove expired documents first" — study the interaction of removal
// policies with consistency/expiration.
//
// ExpiryFirstPolicy wraps any removal policy: documents older (by cache
// entry time, the HTTP/1.0-era freshness heuristic when no Expires header
// exists) than a TTL are evicted first, oldest first; while nothing is
// expired, the inner policy chooses as usual.
//
// Flat engine: the (etime asc, url) order lives in a 4-ary min-heap over
// arena slots — the root is the oldest entry, the only one the expiry
// check ever needs. The comparator is a strict total order, so the root is
// the unique minimum the former std::set surfaced at begin().
#pragma once

#include <memory>
#include <string>

#include "src/core/flat_index.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class ExpiryFirstPolicy final : public RemovalPolicy {
 public:
  /// `ttl` <= 0 disables the expiry check (pure pass-through).
  ExpiryFirstPolicy(std::unique_ptr<RemovalPolicy> inner, SimTime ttl);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] SimTime ttl() const noexcept { return ttl_; }
  [[nodiscard]] RemovalPolicy& inner() noexcept { return *inner_; }
  /// Number of currently-tracked documents older than the TTL at `now`.
  [[nodiscard]] std::size_t expired_count(SimTime now) const;

  /// Audits the wrapper's own etime index (heap/table/arena agreement with
  /// the cache, ids "expiry.*") and forwards to the inner policy's audit.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  /// (etime asc, url) over slots — root = oldest entry.
  struct EtimeLess {
    const ExpiryFirstPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->etimes_[a] != p->etimes_[b]) return p->etimes_[a] < p->etimes_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot();

  std::unique_ptr<RemovalPolicy> inner_;
  SimTime ttl_;
  std::string name_;

  // Struct-of-arrays per-slot state.
  std::vector<SimTime> etimes_;
  std::vector<UrlId> urls_;
  std::vector<std::uint32_t> heap_pos_;

  SlotArena arena_;
  UrlSlotTable table_;
  DaryHeap<EtimeLess> by_etime_;
};

/// Convenience factory mirroring the policy.h ones.
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_expiry_first(
    std::unique_ptr<RemovalPolicy> inner, SimTime ttl);

}  // namespace wcs
