// Expiry-aware removal (paper §5 open problem 4): "the Harvest cache tries
// to remove expired documents first" — study the interaction of removal
// policies with consistency/expiration.
//
// ExpiryFirstPolicy wraps any removal policy: documents older (by cache
// entry time, the HTTP/1.0-era freshness heuristic when no Expires header
// exists) than a TTL are evicted first, oldest first; while nothing is
// expired, the inner policy chooses as usual.
#pragma once

#include <memory>
#include <set>
#include <string>

#include "src/core/policy.h"

namespace wcs {

class ExpiryFirstPolicy final : public RemovalPolicy {
 public:
  /// `ttl` <= 0 disables the expiry check (pure pass-through).
  ExpiryFirstPolicy(std::unique_ptr<RemovalPolicy> inner, SimTime ttl);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] SimTime ttl() const noexcept { return ttl_; }
  [[nodiscard]] RemovalPolicy& inner() noexcept { return *inner_; }
  /// Number of currently-tracked documents older than the TTL at `now`.
  [[nodiscard]] std::size_t expired_count(SimTime now) const;

 private:
  struct ByEntryTime {
    SimTime etime;
    UrlId url;
    friend auto operator<=>(const ByEntryTime&, const ByEntryTime&) = default;
  };

  std::unique_ptr<RemovalPolicy> inner_;
  SimTime ttl_;
  std::string name_;
  std::set<ByEntryTime> by_etime_;
};

/// Convenience factory mirroring the policy.h ones.
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_expiry_first(
    std::unique_ptr<RemovalPolicy> inner, SimTime ttl);

}  // namespace wcs
