#include "src/core/two_level.h"

namespace wcs {

TwoLevelCache::TwoLevelCache(CacheConfig l1_config, std::unique_ptr<RemovalPolicy> l1_policy,
                             CacheConfig l2_config, std::unique_ptr<RemovalPolicy> l2_policy)
    : l1_(std::move(l1_config), std::move(l1_policy)),
      l2_(std::move(l2_config), std::move(l2_policy)) {}

TwoLevelResult TwoLevelCache::access(SimTime now, UrlId url, std::uint64_t size,
                                     FileType type) {
  ++stats_.requests;
  stats_.requested_bytes += size;

  // L1 access admits on miss, exactly as a standalone cache would.
  const AccessResult r1 = l1_.access(now, url, size, type);
  if (r1.hit) {
    ++stats_.l1_hits;
    stats_.l1_hit_bytes += size;
    return {HitLevel::kL1};
  }

  // L1 missed; consult L2. An L2 hit refreshes the L2 copy's metadata and
  // counts as a network-saving hit; an L2 miss stores the document there
  // too (the document was already admitted to L1 above).
  const AccessResult r2 = l2_.access(now, url, size, type);
  if (r2.hit) {
    ++stats_.l2_hits;
    stats_.l2_hit_bytes += size;
    return {HitLevel::kL2};
  }
  return {HitLevel::kMiss};
}

AuditReport TwoLevelCache::audit() const {
  AuditReport report;
  report.absorb("l1", l1_.audit());
  report.absorb("l2", l2_.audit());

  if (stats_.l1_hits + stats_.l2_hits > stats_.requests) {
    report.add("two_level.hit_flow", "level hits exceed total requests");
  }
  if (l1_.stats().requests != stats_.requests) {
    report.add("two_level.l1_requests",
               "L1 saw " + std::to_string(l1_.stats().requests) + " requests but the "
                   "hierarchy recorded " + std::to_string(stats_.requests));
  }
  if (l2_.stats().requests != stats_.requests - stats_.l1_hits) {
    report.add("two_level.l2_requests",
               "L2 saw " + std::to_string(l2_.stats().requests) +
                   " requests but L1 missed " +
                   std::to_string(stats_.requests - stats_.l1_hits));
  }

  // Inclusion (the paper's Experiment 3 arrangement): with an infinite L2,
  // every document L1 holds entered L2 on the same miss and L2 never evicts.
  if (l2_.is_infinite()) {
    for (const CacheEntry& entry : l1_.snapshot()) {
      const CacheEntry* twin = l2_.find(entry.url);
      if (twin == nullptr) {
        report.add("two_level.inclusion", "url " + std::to_string(entry.url) +
                                              " cached in L1 but missing from infinite L2");
      } else if (twin->size != entry.size) {
        report.add("two_level.inclusion_size",
                   "url " + std::to_string(entry.url) + " is " +
                       std::to_string(entry.size) + " bytes in L1 but " +
                       std::to_string(twin->size) + " in L2");
      }
    }
  }
  return report;
}

}  // namespace wcs
