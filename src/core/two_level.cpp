#include "src/core/two_level.h"

namespace wcs {

TwoLevelCache::TwoLevelCache(CacheConfig l1_config, std::unique_ptr<RemovalPolicy> l1_policy,
                             CacheConfig l2_config, std::unique_ptr<RemovalPolicy> l2_policy)
    : l1_(l1_config, std::move(l1_policy)), l2_(l2_config, std::move(l2_policy)) {}

TwoLevelResult TwoLevelCache::access(SimTime now, UrlId url, std::uint64_t size,
                                     FileType type) {
  ++stats_.requests;
  stats_.requested_bytes += size;

  // L1 access admits on miss, exactly as a standalone cache would.
  const AccessResult r1 = l1_.access(now, url, size, type);
  if (r1.hit) {
    ++stats_.l1_hits;
    stats_.l1_hit_bytes += size;
    return {HitLevel::kL1};
  }

  // L1 missed; consult L2. An L2 hit refreshes the L2 copy's metadata and
  // counts as a network-saving hit; an L2 miss stores the document there
  // too (the document was already admitted to L1 above).
  const AccessResult r2 = l2_.access(now, url, size, type);
  if (r2.hit) {
    ++stats_.l2_hits;
    stats_.l2_hit_bytes += size;
    return {HitLevel::kL2};
  }
  return {HitLevel::kMiss};
}

}  // namespace wcs
