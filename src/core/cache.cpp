#include "src/core/cache.h"

#include <stdexcept>

#include "src/obs/recorder.h"

namespace wcs {

// Eviction events carry the victim's full rank tuple inline.
static_assert(kMaxRankKeys <= kMaxEventRanks,
              "Event::ranks must hold any RankTuple a policy can produce");

namespace {

/// Eviction event tagged with the victim's materialized rank tuple — the
/// per-document form of the paper's sorted-list narrative. Called only when
/// recording is enabled; rank_of is O(1) for SortedPolicy and nullopt for
/// rank-free policies.
void emit_eviction(ObsRecorder& obs, const RemovalPolicy& policy, SimTime now,
                   const CacheEntry& victim) {
  Event event;
  event.kind = EventKind::kEviction;
  event.time = now;
  event.url = static_cast<ObsUrlId>(victim.url);
  event.size = victim.size;
  event.a = victim.nref;
  event.b = victim.atime;
  if (const auto tuple = policy.rank_of(victim.url)) {
    event.rank_count = tuple->count;
    for (std::size_t i = 0; i < tuple->count; ++i) event.ranks[i] = tuple->ranks[i];
  }
  obs.emit(event);
}

}  // namespace

Cache::Cache(CacheConfig config, std::unique_ptr<RemovalPolicy> policy)
    : config_(std::move(config)), policy_(std::move(policy)), rng_(config_.seed) {
  if (policy_ == nullptr) throw std::invalid_argument{"Cache: null policy"};
  if (config_.periodic.enabled &&
      (config_.periodic.comfort_fraction <= 0.0 || config_.periodic.comfort_fraction > 1.0)) {
    throw std::invalid_argument{"Cache: comfort_fraction must be in (0, 1]"};
  }
  policy_->attach(config_.capacity_bytes);
  if (config_.admission) {
    admission_ = config_.admission();
    if (admission_ != nullptr) admission_->attach(config_.capacity_bytes);
  }
  if (config_.obs != nullptr) {
    evicted_size_hist_ = &config_.obs->registry().histogram(
        "wcs_evicted_document_bytes", Histogram::exponential_bounds(512, 1u << 24),
        "Size distribution of evicted documents (log2 buckets)");
  }
}

const CacheEntry* Cache::find(UrlId url) const { return entries_.find(url); }

void Cache::advance_day(SimTime now) {
  const std::int64_t today = day_of(now);
  if (current_day_ < 0) {
    current_day_ = today;
    return;
  }
  if (today <= current_day_) return;
  current_day_ = today;
  if (!config_.periodic.enabled || is_infinite()) return;

  // Pitkow/Recker-style end-of-day sweep: trim to the comfort level.
  const auto comfort = static_cast<std::uint64_t>(
      config_.periodic.comfort_fraction * static_cast<double>(config_.capacity_bytes));
  const std::uint64_t evictions_before = stats_.evictions;
  const std::uint64_t bytes_before = stats_.evicted_bytes;
  bool removed_any = false;
  while (used_bytes_ > comfort) {
    const EvictionContext ctx{now, 0, used_bytes_ - comfort};
    const auto victim = policy_->choose_victim(ctx);
    if (!victim) break;
    evict(now, *victim);
    removed_any = true;
  }
  if (removed_any) ++stats_.periodic_sweeps;
  if (removed_any && config_.obs != nullptr) {
    Event event;
    event.kind = EventKind::kPeriodicSweep;
    event.time = now;
    event.size = stats_.evicted_bytes - bytes_before;
    event.a = static_cast<std::int64_t>(stats_.evictions - evictions_before);
    config_.obs->emit(event);
  }
  // Day boundaries are rare enough to afford a full sweep in audit builds.
  WCS_AUDIT(*this);
}

void Cache::evict(SimTime now, UrlId victim) {
  const CacheEntry* found = entries_.find(victim);
  WCS_ASSERT(found != nullptr, "policy chose a victim that is not cached");
  // Copy before erasing: the swap-remove relocates another entry into the
  // victim's position, so the pointer must not outlive the erase.
  const CacheEntry entry = *found;
  if (config_.obs != nullptr) {
    // Tag before on_remove drops the policy's index entry for the victim.
    emit_eviction(*config_.obs, *policy_, now, entry);
    evicted_size_hist_->observe(entry.size);
  }
  policy_->on_remove(entry);
  if (admission_ != nullptr) admission_->on_remove(entry);
  used_bytes_ -= entry.size;
  ++stats_.evictions;
  stats_.evicted_bytes += entry.size;
  // nref == 1 means the document was inserted and never referenced again —
  // the dead-on-arrival population admission control exists to keep out.
  if (entry.nref == 1) ++stats_.dead_on_arrival_evictions;
  if (config_.on_evict) config_.on_evict(entry);
  entries_.erase(victim);
}

bool Cache::make_room(SimTime now, std::uint64_t incoming_size) {
  if (is_infinite()) return true;
  std::uint32_t evicted = 0;
  while (config_.capacity_bytes - used_bytes_ < incoming_size) {
    const EvictionContext ctx{now, incoming_size,
                              incoming_size - (config_.capacity_bytes - used_bytes_)};
    const auto victim = policy_->choose_victim(ctx);
    if (!victim) return false;  // nothing left to evict
    evict(now, *victim);
    ++evicted;
  }
  (void)evicted;
  return true;
}

AccessResult Cache::access(SimTime now, UrlId url, std::uint64_t size, FileType type,
                           std::uint32_t latency_ms) {
  advance_day(now);

  AccessResult result;
  ++stats_.requests;
  stats_.requested_bytes += size;

  CacheEntry* cached = entries_.find(url);
  if (cached != nullptr && cached->size == size) {
    // §1.1 hit: URL and size both match.
    cached->atime = now;
    ++cached->nref;
    policy_->on_hit(*cached);
    if (admission_ != nullptr) admission_->on_hit(*cached);
    ++stats_.hits;
    stats_.hit_bytes += size;
    result.hit = true;
    return result;
  }

  if (cached != nullptr) {
    // Same URL, different size: the origin document changed; the cached
    // copy is inconsistent. Discard it; this access is a miss.
    const CacheEntry stale = *cached;  // survives the swap-remove below
    result.size_change = true;
    ++stats_.size_change_misses;
    if (config_.obs != nullptr) {
      Event event;
      event.kind = EventKind::kSizeChangeMiss;
      event.time = now;
      event.url = static_cast<ObsUrlId>(url);
      event.size = size;                                  // new size
      event.a = static_cast<std::int64_t>(stale.size);    // stale size
      config_.obs->emit(event);
    }
    policy_->on_remove(stale);
    if (admission_ != nullptr) admission_->on_remove(stale);
    used_bytes_ -= stale.size;
    if (config_.on_evict) config_.on_evict(stale);
    entries_.erase(url);
  }

  // Admit the newly fetched copy.
  if (!is_infinite() && size > config_.capacity_bytes) {
    ++stats_.rejected_too_large;
    return result;  // served from origin, never cached
  }
  // Admission veto runs before make_room: a rejected document must not
  // cost a single eviction. The removal policy never hears about it.
  if (admission_ != nullptr && !admission_->should_admit(now, url, size)) {
    ++stats_.admission_rejects;
    return result;  // served from origin, never cached
  }
  const std::uint64_t evictions_before = stats_.evictions;
  if (!make_room(now, size)) return result;
  result.evictions = static_cast<std::uint32_t>(stats_.evictions - evictions_before);

  CacheEntry entry;
  entry.url = url;
  entry.size = size;
  entry.etime = now;
  entry.atime = now;
  entry.nref = 1;
  entry.random_tag = rng_();
  entry.type = type;
  entry.latency_ms = latency_ms;
  used_bytes_ += size;
  if (used_bytes_ > stats_.max_used_bytes) stats_.max_used_bytes = used_bytes_;
  WCS_ASSERT(!entries_.contains(url), "admitting a URL that is already cached");
  entries_.insert(entry);
  policy_->on_insert(entry);
  if (admission_ != nullptr) admission_->on_insert(entry);
  ++stats_.insertions;
  result.inserted = true;
  if (config_.obs != nullptr) {
    Event event;
    event.kind = EventKind::kAdmission;
    event.time = now;
    event.url = static_cast<ObsUrlId>(url);
    event.size = size;
    event.a = static_cast<std::int64_t>(result.evictions);  // evictions it cost
    config_.obs->emit(event);
  }
  return result;
}

bool Cache::erase(UrlId url) {
  const CacheEntry* found = entries_.find(url);
  if (found == nullptr) return false;
  const CacheEntry entry = *found;  // survives the swap-remove below
  policy_->on_remove(entry);
  if (admission_ != nullptr) admission_->on_remove(entry);
  used_bytes_ -= entry.size;
  if (config_.on_evict) config_.on_evict(entry);
  entries_.erase(url);
  return true;
}

AuditReport Cache::audit() const {
  AuditReport report;

  // Entry store: the url index and the dense vector must agree.
  entries_.audit("cache", report);

  // Byte accounting: used_bytes must equal the sum of entry sizes exactly.
  std::uint64_t sum = 0;
  for (const CacheEntry& entry : entries_.dense()) {
    sum += entry.size;
    if (entry.nref == 0) {
      report.add("cache.entry_nref",
                 "url " + std::to_string(entry.url) + " is cached with nref == 0");
    }
    if (entry.atime < entry.etime) {
      report.add("cache.entry_times",
                 "url " + std::to_string(entry.url) + " has atime " +
                     std::to_string(entry.atime) + " before etime " +
                     std::to_string(entry.etime));
    }
  }
  if (sum != used_bytes_) {
    report.add("cache.used_bytes", "used_bytes=" + std::to_string(used_bytes_) +
                                       " but entries sum to " + std::to_string(sum));
  }
  if (!is_infinite() && used_bytes_ > config_.capacity_bytes) {
    report.add("cache.capacity", "used_bytes=" + std::to_string(used_bytes_) +
                                     " exceeds capacity " +
                                     std::to_string(config_.capacity_bytes));
  }
  if (stats_.max_used_bytes < used_bytes_) {
    report.add("cache.high_water",
               "max_used_bytes=" + std::to_string(stats_.max_used_bytes) +
                   " below current used_bytes=" + std::to_string(used_bytes_));
  }

  // Counter sanity: the stats must describe a possible history.
  if (stats_.hits > stats_.requests) {
    report.add("cache.stats_hits", "hits exceed requests");
  }
  if (stats_.hit_bytes > stats_.requested_bytes) {
    report.add("cache.stats_hit_bytes", "hit_bytes exceed requested_bytes");
  }
  if (stats_.insertions > stats_.requests || stats_.evictions > stats_.insertions) {
    report.add("cache.stats_flow",
               "insertions/evictions inconsistent: " + std::to_string(stats_.insertions) +
                   " insertions, " + std::to_string(stats_.evictions) + " evictions, " +
                   std::to_string(stats_.requests) + " requests");
  }
  if (stats_.dead_on_arrival_evictions > stats_.evictions) {
    report.add("cache.stats_doa", "dead_on_arrival_evictions exceed evictions");
  }
  if (stats_.admission_rejects > stats_.requests) {
    report.add("cache.stats_admission", "admission_rejects exceed requests");
  }
  if (admission_ == nullptr && stats_.admission_rejects != 0) {
    report.add("cache.stats_admission", "admission_rejects nonzero without an admission policy");
  }

  // Policy index: must mirror the entry table under the declared comparator.
  // audit_index takes the audit-path EntryMap view (an O(n) rebuild is fine
  // here; the hot path never materializes it).
  EntryMap entries;
  entries.reserve(entries_.size());
  for (const CacheEntry& entry : entries_.dense()) entries.emplace(entry.url, entry);
  AuditReport policy_report;
  policy_->audit_index(entries, policy_report);
  report.absorb("policy", policy_report);
  if (admission_ != nullptr) {
    AuditReport admission_report;
    admission_->audit_index(admission_report);
    report.absorb("admission", admission_report);
  }
  return report;
}

std::vector<CacheEntry> Cache::snapshot() const { return entries_.dense(); }

}  // namespace wcs
