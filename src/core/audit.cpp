#include "src/core/audit.h"

#include <cstdio>
#include <cstdlib>

namespace wcs {

std::size_t AuditReport::count(std::string_view invariant) const {
  std::size_t n = 0;
  for (const AuditViolation& violation : violations_) {
    if (violation.invariant == invariant) ++n;
  }
  return n;
}

void AuditReport::add(std::string invariant, std::string detail) {
  violations_.push_back({std::move(invariant), std::move(detail)});
}

void AuditReport::absorb(std::string_view scope, const AuditReport& nested) {
  for (const AuditViolation& violation : nested.violations_) {
    std::string id;
    id.reserve(scope.size() + 1 + violation.invariant.size());
    id.append(scope).append(".").append(violation.invariant);
    violations_.push_back({std::move(id), violation.detail});
  }
}

std::string AuditReport::to_string() const {
  if (ok()) return "audit: ok";
  std::string out = "audit: " + std::to_string(violations_.size()) + " violation(s)";
  for (const AuditViolation& violation : violations_) {
    out.append("\n  [").append(violation.invariant).append("] ").append(violation.detail);
  }
  return out;
}

namespace audit_detail {

void assert_fail(const char* expr, const char* message, const char* file,
                 int line) noexcept {
  std::fprintf(stderr, "%s:%d: WCS_ASSERT(%s) failed: %s\n", file, line, expr, message);
  std::abort();
}

void check_report(const AuditReport& report, const char* expr, const char* file, int line) {
  if (report.ok()) return;
  std::fprintf(stderr, "%s:%d: WCS_AUDIT(%s) failed:\n%s\n", file, line, expr,
               report.to_string().c_str());
  std::abort();
}

}  // namespace audit_detail

}  // namespace wcs
