// LRU-MIN (Abrams et al. 1995), implemented exactly as the paper describes
// it in §1.2 — *not* via the LOG2SIZE approximation:
//
//   Let S be the incoming document's size and T = S. If any cached document
//   has size >= T, evict the least recently used among them. Otherwise
//   halve T and retry (T = S/2, S/4, ...), so eviction prefers documents at
//   least as large as the incoming one, then at least half as large, etc.
//
// The paper notes LOG2SIZE+ATIME differs because its buckets are absolute
// rather than relative to the incoming size; having the exact policy lets
// the benches measure that difference.
//
// Flat engine: documents are arena slots bucketed by floor(log2(size))
// into one 4-ary min-heap per size class, ordered by the LRU key
// (atime, random tag, url) — the bucket root is its least recently used
// member. All 64 heaps share a single position column (a slot sits in
// exactly one bucket at a time). A threshold scan reads at most 64 roots
// plus the boundary bucket's members; victim selection is the minimum LRU
// key among qualifiers, which is exactly the document the former
// std::set-per-bucket walk surfaced (the sets' in-order walk stopped at
// the first qualifier == the minimum qualifying key).
#pragma once

#include "src/core/flat_index.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class LruMinPolicy final : public RemovalPolicy {
 public:
  explicit LruMinPolicy(std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "LRU-MIN"; }

  [[nodiscard]] std::size_t tracked() const noexcept { return table_.size(); }

  /// Verifies the per-slot state mirrors the cache (size/atime/tag) and
  /// the size-class thresholds: every bucketed slot lives in the bucket
  /// floor(log2(size)) — i.e. bucket b holds exactly sizes in [2^b, 2^(b+1))
  /// — plus the bucket heaps' order/position invariants and the arena
  /// free list.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  /// (atime, tag, url) ascending over slots — bucket root = least recently
  /// used member.
  struct LruLess {
    const LruMinPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->atimes_[a] != p->atimes_[b]) return p->atimes_[a] < p->atimes_[b];
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  /// One bucket per possible floor(log2(size)) of a uint64 size.
  static constexpr int kBucketCount = 64;

  [[nodiscard]] static int bucket_of(std::uint64_t size) noexcept;
  [[nodiscard]] std::uint32_t slot_of(UrlId url) const noexcept;
  [[nodiscard]] std::uint32_t acquire_slot();

  // Struct-of-arrays per-slot state.
  std::vector<std::uint64_t> sizes_;
  std::vector<SimTime> atimes_;
  std::vector<std::uint64_t> tags_;
  std::vector<UrlId> urls_;
  std::vector<std::uint32_t> heap_pos_;  // shared by every bucket heap

  SlotArena arena_;
  UrlSlotTable table_;
  std::vector<DaryHeap<LruLess>> buckets_;  // kBucketCount heaps

  std::uint32_t victim_slot_ = kInvalidSlot;  // choose_victim -> on_remove memo
};

}  // namespace wcs
