// LRU-MIN (Abrams et al. 1995), implemented exactly as the paper describes
// it in §1.2 — *not* via the LOG2SIZE approximation:
//
//   Let S be the incoming document's size and T = S. If any cached document
//   has size >= T, evict the least recently used among them. Otherwise
//   halve T and retry (T = S/2, S/4, ...), so eviction prefers documents at
//   least as large as the incoming one, then at least half as large, etc.
//
// The paper notes LOG2SIZE+ATIME differs because its buckets are absolute
// rather than relative to the incoming size; having the exact policy lets
// the benches measure that difference.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class LruMinPolicy final : public RemovalPolicy {
 public:
  explicit LruMinPolicy(std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "LRU-MIN"; }

  [[nodiscard]] std::size_t tracked() const noexcept { return state_.size(); }

  /// Verifies the per-document state mirrors the cache (size/atime/tag) and
  /// the size-class thresholds: every bucketed key lives in the bucket
  /// floor(log2(size)) — i.e. bucket b holds exactly sizes in [2^b, 2^(b+1)).
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;
  // (atime, tie, url) ascending — front = least recently used.
  struct LruKey {
    SimTime atime;
    std::uint64_t tie;
    UrlId url;
    friend auto operator<=>(const LruKey&, const LruKey&) = default;
  };
  struct DocState {
    std::uint64_t size;
    LruKey key;
  };

  // Documents bucketed by floor(log2(size)); each bucket ordered by LRU.
  // A threshold scan visits at most ~64 buckets, and within the boundary
  // bucket at most its own population.
  std::map<int, std::set<LruKey>> buckets_;
  std::unordered_map<UrlId, DocState> state_;

  [[nodiscard]] static int bucket_of(std::uint64_t size) noexcept;
  void insert_key(const DocState& doc);
  void erase_key(const DocState& doc);
};

}  // namespace wcs
