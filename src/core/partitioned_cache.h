// Partitioned cache (the paper's Experiment 4).
//
// A fixed byte budget is divided into independent partitions, each with its
// own capacity and removal policy, and every request is routed to exactly
// one partition by a media-class rule. The paper partitions workload BR
// into {audio, non-audio} with the audio share swept over 1/4, 1/2, 3/4 of
// the total — a large audio file can then never displace the small
// text/graphics working set.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cache.h"

namespace wcs {

class PartitionedCache {
 public:
  struct PartitionSpec {
    std::string name;
    std::uint64_t capacity_bytes = 0;
    std::function<std::unique_ptr<RemovalPolicy>()> make_policy;
  };

  /// `classify` maps a request's file type to a partition index; it must
  /// return a value < partitions.size() for every FileType.
  PartitionedCache(std::vector<PartitionSpec> partitions,
                   std::function<std::size_t(FileType)> classify);

  AccessResult access(SimTime now, UrlId url, std::uint64_t size, FileType type);
  AccessResult access(const Request& request) {
    return access(request.time, request.url, request.size, request.type);
  }

  [[nodiscard]] std::size_t partition_count() const noexcept { return caches_.size(); }
  [[nodiscard]] const Cache& partition(std::size_t i) const { return caches_.at(i); }
  [[nodiscard]] const std::string& partition_name(std::size_t i) const { return names_.at(i); }
  [[nodiscard]] std::size_t partition_of(FileType type) const { return classify_(type); }

  /// Totals across partitions.
  [[nodiscard]] CacheStats combined_stats() const;

  /// Audits every partition (scoped by partition name) plus the routing
  /// invariant: a document cached in partition i must classify to i — a
  /// misrouted document would corrupt the per-class byte accounting the
  /// paper's Experiment 4 depends on.
  [[nodiscard]] AuditReport audit() const;

  /// The canonical Experiment 4 split: partition 0 audio, partition 1
  /// everything else; both use the given policy factory.
  static PartitionedCache audio_split(
      std::uint64_t total_capacity, double audio_fraction,
      const std::function<std::unique_ptr<RemovalPolicy>()>& make_policy);

 private:
  friend struct AuditTamper;
  std::vector<Cache> caches_;
  std::vector<std::string> names_;
  std::function<std::size_t(FileType)> classify_;
};

}  // namespace wcs
