#include "src/core/expiry.h"

#include <cassert>
#include <stdexcept>

namespace wcs {

ExpiryFirstPolicy::ExpiryFirstPolicy(std::unique_ptr<RemovalPolicy> inner, SimTime ttl)
    : inner_(std::move(inner)), ttl_(ttl) {
  if (inner_ == nullptr) throw std::invalid_argument{"ExpiryFirstPolicy: null inner"};
  name_ = "EXPIRED->" + std::string{inner_->name()};
}

void ExpiryFirstPolicy::on_insert(const CacheEntry& entry) {
  by_etime_.insert({entry.etime, entry.url});
  inner_->on_insert(entry);
}

void ExpiryFirstPolicy::on_hit(const CacheEntry& entry) {
  // etime does not change on a hit; only the inner index moves.
  inner_->on_hit(entry);
}

void ExpiryFirstPolicy::on_remove(const CacheEntry& entry) {
  const auto erased = by_etime_.erase({entry.etime, entry.url});
  assert(erased == 1 && "ExpiryFirstPolicy: removing untracked entry");
  (void)erased;
  inner_->on_remove(entry);
}

std::optional<UrlId> ExpiryFirstPolicy::choose_victim(const EvictionContext& ctx) {
  if (ttl_ > 0 && !by_etime_.empty()) {
    const ByEntryTime& oldest = *by_etime_.begin();
    if (ctx.now - oldest.etime > ttl_) return oldest.url;
  }
  return inner_->choose_victim(ctx);
}

std::size_t ExpiryFirstPolicy::expired_count(SimTime now) const {
  if (ttl_ <= 0) return 0;
  std::size_t count = 0;
  for (const auto& entry : by_etime_) {
    if (now - entry.etime <= ttl_) break;  // set is etime-ordered
    ++count;
  }
  return count;
}

std::unique_ptr<RemovalPolicy> make_expiry_first(std::unique_ptr<RemovalPolicy> inner,
                                                 SimTime ttl) {
  return std::make_unique<ExpiryFirstPolicy>(std::move(inner), ttl);
}

}  // namespace wcs
