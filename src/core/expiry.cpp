#include "src/core/expiry.h"

#include <stdexcept>

namespace wcs {

ExpiryFirstPolicy::ExpiryFirstPolicy(std::unique_ptr<RemovalPolicy> inner, SimTime ttl)
    : inner_(std::move(inner)), ttl_(ttl), by_etime_(EtimeLess{this}, &heap_pos_) {
  if (inner_ == nullptr) throw std::invalid_argument{"ExpiryFirstPolicy: null inner"};
  name_ = "EXPIRED->" + std::string{inner_->name()};
}

std::uint32_t ExpiryFirstPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    etimes_.push_back(0);
    urls_.push_back(kInvalidUrl);
    heap_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

void ExpiryFirstPolicy::on_insert(const CacheEntry& entry) {
  const std::uint32_t slot = acquire_slot();
  etimes_[slot] = entry.etime;
  urls_[slot] = entry.url;
  table_.insert(entry.url, slot);
  by_etime_.push(slot);
  inner_->on_insert(entry);
}

void ExpiryFirstPolicy::on_hit(const CacheEntry& entry) {
  // etime does not change on a hit; only the inner index moves.
  inner_->on_hit(entry);
}

void ExpiryFirstPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "ExpiryFirstPolicy: removing an untracked entry");
  by_etime_.erase(slot);
  table_.erase(entry.url);
  arena_.release(slot);
  inner_->on_remove(entry);
}

std::optional<UrlId> ExpiryFirstPolicy::choose_victim(const EvictionContext& ctx) {
  if (ttl_ > 0 && !by_etime_.empty()) {
    const std::uint32_t oldest = by_etime_.top();
    if (ctx.now - etimes_[oldest] > ttl_) return urls_[oldest];
  }
  return inner_->choose_victim(ctx);
}

std::size_t ExpiryFirstPolicy::expired_count(SimTime now) const {
  if (ttl_ <= 0) return 0;
  // The heap has no sorted iteration, so count by full scan — same answer
  // as the former ordered walk, and this is a diagnostics-only query.
  std::size_t count = 0;
  for (const std::uint32_t slot : by_etime_.slots()) {
    if (now - etimes_[slot] > ttl_) ++count;
  }
  return count;
}

void ExpiryFirstPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("expiry.tracked_count",
               "wrapper tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (by_etime_.size() != table_.size()) {
    report.add("expiry.order_count",
               "etime heap holds " + std::to_string(by_etime_.size()) +
                   " slots but table maps " + std::to_string(table_.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("expiry.arena_live",
               "arena has " + std::to_string(arena_.live()) + " live slots but table maps " +
                   std::to_string(table_.size()));
  }
  arena_.audit("expiry", report);
  table_.audit("expiry", report);
  by_etime_.audit("expiry", report);

  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("expiry.untracked",
                 "cached url " + std::to_string(url) + " not in the etime index");
      continue;
    }
    if (etimes_[slot] != entry.etime || urls_[slot] != url) {
      report.add("expiry.stale_etime",
                 "url " + std::to_string(url) +
                     " has a stored etime that no longer matches the cache entry");
    }
  }

  inner_->audit_index(entries, report);
}

std::unique_ptr<RemovalPolicy> make_expiry_first(std::unique_ptr<RemovalPolicy> inner,
                                                 SimTime ttl) {
  return std::make_unique<ExpiryFirstPolicy>(std::move(inner), ttl);
}

}  // namespace wcs
