#include "src/core/pitkow_recker.h"

namespace wcs {

PitkowReckerPolicy::PitkowReckerPolicy(std::uint64_t /*seed*/)
    : by_day_(DayLess{this}, &day_pos_), by_size_(SizeLess{this}, &size_pos_) {}

std::uint32_t PitkowReckerPolicy::slot_of(UrlId url) const noexcept {
  if (victim_slot_ != kInvalidSlot && urls_[victim_slot_] == url &&
      day_pos_[victim_slot_] != kInvalidSlot) {
    return victim_slot_;
  }
  return table_.find(url);
}

std::uint32_t PitkowReckerPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    days_.push_back(0);
    sizes_.push_back(0);
    tags_.push_back(0);
    urls_.push_back(kInvalidUrl);
    day_pos_.push_back(kInvalidSlot);
    size_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

void PitkowReckerPolicy::on_insert(const CacheEntry& entry) {
  const std::uint32_t slot = acquire_slot();
  days_[slot] = day_of(entry.atime);
  sizes_[slot] = entry.size;
  tags_[slot] = entry.random_tag;
  urls_[slot] = entry.url;
  table_.insert(entry.url, slot);
  by_day_.push(slot);
  by_size_.push(slot);
}

void PitkowReckerPolicy::on_hit(const CacheEntry& entry) {
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "Pitkow/Recker: on_hit for an untracked URL");
  days_[slot] = day_of(entry.atime);
  sizes_[slot] = entry.size;
  by_day_.update(slot);
  by_size_.update(slot);
}

void PitkowReckerPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = slot_of(entry.url);
  victim_slot_ = kInvalidSlot;
  WCS_ASSERT(slot != kInvalidSlot, "Pitkow/Recker: on_remove for an untracked URL");
  by_day_.erase(slot);
  by_size_.erase(slot);
  const bool erased = table_.erase(entry.url);
  WCS_ASSERT(erased, "Pitkow/Recker: on_remove url missing from table");
  (void)erased;
  arena_.release(slot);
}

void PitkowReckerPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("pitkow_recker.tracked_count",
               "policy tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (by_day_.size() != table_.size() || by_size_.size() != table_.size()) {
    report.add("pitkow_recker.order_count",
               "day heap holds " + std::to_string(by_day_.size()) + ", size heap " +
                   std::to_string(by_size_.size()) + ", table " +
                   std::to_string(table_.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("pitkow_recker.arena_live",
               "arena has " + std::to_string(arena_.live()) +
                   " live slots but table maps " + std::to_string(table_.size()));
  }
  arena_.audit("pitkow_recker", report);
  table_.audit("pitkow_recker", report);
  by_day_.audit("pitkow_recker.day", report);
  by_size_.audit("pitkow_recker.size", report);

  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("pitkow_recker.untracked",
                 "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    if (days_[slot] != day_of(entry.atime) || sizes_[slot] != entry.size ||
        tags_[slot] != entry.random_tag || urls_[slot] != url) {
      report.add("pitkow_recker.stale_key",
                 "url " + std::to_string(url) +
                     " has stored day/size state that no longer matches the cache entry");
    }
    const std::uint32_t dpos = day_pos_[slot];
    const std::uint32_t spos = size_pos_[slot];
    if (dpos == kInvalidSlot || dpos >= by_day_.size() || by_day_.slots()[dpos] != slot ||
        spos == kInvalidSlot || spos >= by_size_.size() || by_size_.slots()[spos] != slot) {
      report.add("pitkow_recker.order_missing",
                 "url " + std::to_string(url) + "'s slot is absent from an order heap");
    }
  }
}

std::optional<UrlId> PitkowReckerPolicy::choose_victim(const EvictionContext& ctx) {
  if (by_day_.empty()) return std::nullopt;
  const std::int64_t today = day_of(ctx.now);
  const std::uint32_t oldest = by_day_.top();
  if (days_[oldest] != today) {  // some document is days old
    victim_slot_ = oldest;
    return urls_[oldest];
  }
  victim_slot_ = by_size_.top();  // all touched today: largest first
  return urls_[victim_slot_];
}

}  // namespace wcs
