#include "src/core/pitkow_recker.h"

#include <cassert>

namespace wcs {

PitkowReckerPolicy::PitkowReckerPolicy(std::uint64_t /*seed*/) {}

PitkowReckerPolicy::DayKey PitkowReckerPolicy::day_key(const CacheEntry& entry) noexcept {
  return DayKey{day_of(entry.atime), -static_cast<std::int64_t>(entry.size),
                entry.random_tag, entry.url};
}

PitkowReckerPolicy::SizeKey PitkowReckerPolicy::size_key(const CacheEntry& entry) noexcept {
  return SizeKey{-static_cast<std::int64_t>(entry.size), entry.random_tag, entry.url};
}

void PitkowReckerPolicy::on_insert(const CacheEntry& entry) {
  const auto keys = std::pair{day_key(entry), size_key(entry)};
  const auto [it, inserted] = index_.emplace(entry.url, keys);
  assert(inserted && "Pitkow/Recker on_insert for tracked URL");
  (void)it;
  (void)inserted;
  by_day_.insert(keys.first);
  by_size_.insert(keys.second);
}

void PitkowReckerPolicy::on_hit(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  assert(it != index_.end());
  by_day_.erase(it->second.first);
  by_size_.erase(it->second.second);
  it->second = {day_key(entry), size_key(entry)};
  by_day_.insert(it->second.first);
  by_size_.insert(it->second.second);
}

void PitkowReckerPolicy::on_remove(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  assert(it != index_.end());
  by_day_.erase(it->second.first);
  by_size_.erase(it->second.second);
  index_.erase(it);
}

std::optional<UrlId> PitkowReckerPolicy::choose_victim(const EvictionContext& ctx) {
  if (by_day_.empty()) return std::nullopt;
  const std::int64_t today = day_of(ctx.now);
  const DayKey& oldest = *by_day_.begin();
  if (oldest.day != today) return oldest.url;  // some document is days old
  return by_size_.begin()->url;                // all touched today: largest first
}

}  // namespace wcs
