#include "src/core/pitkow_recker.h"

namespace wcs {

PitkowReckerPolicy::PitkowReckerPolicy(std::uint64_t /*seed*/) {}

PitkowReckerPolicy::DayKey PitkowReckerPolicy::day_key(const CacheEntry& entry) noexcept {
  return DayKey{day_of(entry.atime), -static_cast<std::int64_t>(entry.size),
                entry.random_tag, entry.url};
}

PitkowReckerPolicy::SizeKey PitkowReckerPolicy::size_key(const CacheEntry& entry) noexcept {
  return SizeKey{-static_cast<std::int64_t>(entry.size), entry.random_tag, entry.url};
}

void PitkowReckerPolicy::on_insert(const CacheEntry& entry) {
  const auto keys = std::pair{day_key(entry), size_key(entry)};
  const auto [it, inserted] = index_.emplace(entry.url, keys);
  WCS_ASSERT(inserted, "Pitkow/Recker: on_insert for an already-tracked URL");
  (void)it;
  (void)inserted;
  by_day_.insert(keys.first);
  by_size_.insert(keys.second);
}

void PitkowReckerPolicy::on_hit(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  WCS_ASSERT(it != index_.end(), "Pitkow/Recker: on_hit for an untracked URL");
  by_day_.erase(it->second.first);
  by_size_.erase(it->second.second);
  it->second = {day_key(entry), size_key(entry)};
  by_day_.insert(it->second.first);
  by_size_.insert(it->second.second);
}

void PitkowReckerPolicy::on_remove(const CacheEntry& entry) {
  const auto it = index_.find(entry.url);
  WCS_ASSERT(it != index_.end(), "Pitkow/Recker: on_remove for an untracked URL");
  by_day_.erase(it->second.first);
  by_size_.erase(it->second.second);
  index_.erase(it);
}

void PitkowReckerPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (index_.size() != entries.size()) {
    report.add("pitkow_recker.tracked_count",
               "policy tracks " + std::to_string(index_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (by_day_.size() != index_.size() || by_size_.size() != index_.size()) {
    report.add("pitkow_recker.order_count",
               "day order holds " + std::to_string(by_day_.size()) + ", size order " +
                   std::to_string(by_size_.size()) + ", index " +
                   std::to_string(index_.size()));
  }
  for (const auto& [url, entry] : entries) {
    const auto it = index_.find(url);
    if (it == index_.end()) {
      report.add("pitkow_recker.untracked",
                 "cached url " + std::to_string(url) + " not in index");
      continue;
    }
    if (it->second.first != day_key(entry) || it->second.second != size_key(entry)) {
      report.add("pitkow_recker.stale_key",
                 "url " + std::to_string(url) +
                     " has stored keys that no longer match the cache entry");
    }
    if (!by_day_.contains(it->second.first) || !by_size_.contains(it->second.second)) {
      report.add("pitkow_recker.order_missing",
                 "url " + std::to_string(url) + "'s keys are absent from an order set");
    }
  }
}

std::optional<UrlId> PitkowReckerPolicy::choose_victim(const EvictionContext& ctx) {
  if (by_day_.empty()) return std::nullopt;
  const std::int64_t today = day_of(ctx.now);
  const DayKey& oldest = *by_day_.begin();
  if (oldest.day != today) return oldest.url;  // some document is days old
  return by_size_.begin()->url;                // all touched today: largest first
}

}  // namespace wcs
