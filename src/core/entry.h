// Metadata a proxy cache keeps per cached document — exactly the fields the
// paper's sorting keys read (Table 1): size, entry time (ETIME), last access
// time (ATIME, from which DAY(ATIME) derives) and reference count (NREF),
// plus a fixed random tag used for the always-random final tiebreak.
#pragma once

#include <cstdint>

#include "src/trace/file_type.h"
#include "src/trace/trace.h"
#include "src/util/simtime.h"

namespace wcs {

struct CacheEntry {
  UrlId url = kInvalidUrl;
  std::uint64_t size = 0;     // bytes; the document copy the cache holds
  SimTime etime = 0;          // when this copy entered the cache
  SimTime atime = 0;          // last access to this copy
  std::uint64_t nref = 0;     // number of references since entering
  std::uint64_t random_tag = 0;  // per-copy random tiebreak value
  FileType type = FileType::kUnknown;
  /// Estimated cost of refetching this document from its origin, in
  /// milliseconds (RTT + size/bandwidth). Feeds the LATENCY sorting key —
  /// the paper's open problem 1 ("a means of estimating the latency for
  /// refetching documents ... could be used as a primary sorting key").
  std::uint32_t latency_ms = 0;
};

}  // namespace wcs
