// Pitkow/Recker policy (1994), as characterized in the paper's §1.2 and
// Table 3:
//
//   If any cached document was last accessed before the current day
//   (DAY(ATIME) != today), sort by DAY(ATIME) and remove the document last
//   accessed the most days ago. Otherwise (everything was touched today)
//   sort by SIZE and remove the largest.
//
// Within the day-based branch, ties inside a day are broken by SIZE
// (largest first) — Pitkow & Recker's published ordering within an
// equal-recency group — then by the random tag.
//
// The original policy also runs *periodically* at the end of each day,
// removing documents until free space reaches a "comfort level"; in this
// library that schedule is a Cache-level option (CacheConfig::periodic)
// composable with any policy, matching the paper's observation that
// when-to-run is orthogonal to the sorting key (§1.3).
//
// Flat engine: each tracked document is an arena slot carried by two 4-ary
// min-heaps — day order (day asc, size desc, tag, url) and size order
// (size desc, tag, url) — each with its own position column. Both
// comparators are strict total orders, so each heap root is the unique
// minimum: the same victims the former twin std::sets surfaced at begin().
#pragma once

#include "src/core/flat_index.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class PitkowReckerPolicy final : public RemovalPolicy {
 public:
  explicit PitkowReckerPolicy(std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "Pitkow/Recker"; }

  [[nodiscard]] std::size_t tracked() const noexcept { return table_.size(); }

  /// Verifies both orderings (day asc / size desc) mirror the cache: every
  /// cached URL indexed, stored day/size state equal to the recomputed
  /// values, both heaps' order/position invariants, and the arena free
  /// list.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  /// Day order over slots: (day asc, size desc, tag, url).
  struct DayLess {
    const PitkowReckerPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->days_[a] != p->days_[b]) return p->days_[a] < p->days_[b];
      if (p->sizes_[a] != p->sizes_[b]) return p->sizes_[a] > p->sizes_[b];
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };
  /// Size order over slots: (size desc, tag, url).
  struct SizeLess {
    const PitkowReckerPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      if (p->sizes_[a] != p->sizes_[b]) return p->sizes_[a] > p->sizes_[b];
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  [[nodiscard]] std::uint32_t slot_of(UrlId url) const noexcept;
  [[nodiscard]] std::uint32_t acquire_slot();

  // Struct-of-arrays per-slot state.
  std::vector<std::int64_t> days_;      // day_of(atime)
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint64_t> tags_;
  std::vector<UrlId> urls_;
  std::vector<std::uint32_t> day_pos_;
  std::vector<std::uint32_t> size_pos_;

  SlotArena arena_;
  UrlSlotTable table_;
  DaryHeap<DayLess> by_day_;
  DaryHeap<SizeLess> by_size_;

  std::uint32_t victim_slot_ = kInvalidSlot;  // choose_victim -> on_remove memo
};

}  // namespace wcs
