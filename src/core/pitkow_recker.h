// Pitkow/Recker policy (1994), as characterized in the paper's §1.2 and
// Table 3:
//
//   If any cached document was last accessed before the current day
//   (DAY(ATIME) != today), sort by DAY(ATIME) and remove the document last
//   accessed the most days ago. Otherwise (everything was touched today)
//   sort by SIZE and remove the largest.
//
// Within the day-based branch, ties inside a day are broken by SIZE
// (largest first) — Pitkow & Recker's published ordering within an
// equal-recency group — then by the random tag.
//
// The original policy also runs *periodically* at the end of each day,
// removing documents until free space reaches a "comfort level"; in this
// library that schedule is a Cache-level option (CacheConfig::periodic)
// composable with any policy, matching the paper's observation that
// when-to-run is orthogonal to the sorting key (§1.3).
#pragma once

#include <set>
#include <unordered_map>

#include "src/core/policy.h"

namespace wcs {

class PitkowReckerPolicy final : public RemovalPolicy {
 public:
  explicit PitkowReckerPolicy(std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "Pitkow/Recker"; }

  [[nodiscard]] std::size_t tracked() const noexcept { return by_day_.size(); }

  /// Verifies both orderings (day asc / size desc) mirror the cache: every
  /// cached URL indexed, stored keys equal to recomputed day_key/size_key.
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  // Day order: (day asc, size desc, tag, url) — oldest day first, largest
  // first within a day.
  struct DayKey {
    std::int64_t day;
    std::int64_t neg_size;
    std::uint64_t tag;
    UrlId url;
    friend auto operator<=>(const DayKey&, const DayKey&) = default;
  };
  // Size order: (size desc, tag, url).
  struct SizeKey {
    std::int64_t neg_size;
    std::uint64_t tag;
    UrlId url;
    friend auto operator<=>(const SizeKey&, const SizeKey&) = default;
  };

  std::set<DayKey> by_day_;
  std::set<SizeKey> by_size_;
  std::unordered_map<UrlId, std::pair<DayKey, SizeKey>> index_;

  [[nodiscard]] static DayKey day_key(const CacheEntry& entry) noexcept;
  [[nodiscard]] static SizeKey size_key(const CacheEntry& entry) noexcept;
};

}  // namespace wcs
