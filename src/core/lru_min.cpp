#include "src/core/lru_min.h"

#include <bit>

namespace wcs {

LruMinPolicy::LruMinPolicy(std::uint64_t /*seed*/) {}

int LruMinPolicy::bucket_of(std::uint64_t size) noexcept {
  return size == 0 ? 0 : std::bit_width(size) - 1;
}

void LruMinPolicy::insert_key(const DocState& doc) {
  buckets_[bucket_of(doc.size)].insert(doc.key);
}

void LruMinPolicy::erase_key(const DocState& doc) {
  const int bucket = bucket_of(doc.size);
  const auto it = buckets_.find(bucket);
  WCS_ASSERT(it != buckets_.end(), "LRU-MIN: erase_key for an unbucketed size class");
  it->second.erase(doc.key);
  if (it->second.empty()) buckets_.erase(it);
}

void LruMinPolicy::on_insert(const CacheEntry& entry) {
  DocState doc{entry.size, LruKey{entry.atime, entry.random_tag, entry.url}};
  const auto [it, inserted] = state_.emplace(entry.url, doc);
  WCS_ASSERT(inserted, "LRU-MIN: on_insert for an already-tracked URL");
  (void)it;
  (void)inserted;
  insert_key(doc);
}

void LruMinPolicy::on_hit(const CacheEntry& entry) {
  const auto it = state_.find(entry.url);
  WCS_ASSERT(it != state_.end(), "LRU-MIN: on_hit for an untracked URL");
  erase_key(it->second);
  it->second.key.atime = entry.atime;
  it->second.size = entry.size;
  insert_key(it->second);
}

void LruMinPolicy::on_remove(const CacheEntry& entry) {
  const auto it = state_.find(entry.url);
  WCS_ASSERT(it != state_.end(), "LRU-MIN: on_remove for an untracked URL");
  erase_key(it->second);
  state_.erase(it);
}

void LruMinPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (state_.size() != entries.size()) {
    report.add("lru_min.tracked_count",
               "policy tracks " + std::to_string(state_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  for (const auto& [url, entry] : entries) {
    const auto it = state_.find(url);
    if (it == state_.end()) {
      report.add("lru_min.untracked", "cached url " + std::to_string(url) + " not in state");
      continue;
    }
    const DocState& doc = it->second;
    if (doc.size != entry.size || doc.key.atime != entry.atime ||
        doc.key.tie != entry.random_tag || doc.key.url != url) {
      report.add("lru_min.stale_state",
                 "url " + std::to_string(url) + " has state (size=" +
                     std::to_string(doc.size) + ", atime=" + std::to_string(doc.key.atime) +
                     ") that no longer matches the cache entry");
    }
  }

  // Size-class thresholds: bucket b holds exactly the sizes with
  // floor(log2(size)) == b, every key maps back to a tracked document, and
  // no bucket is left empty (an empty set would distort threshold scans).
  std::size_t bucketed = 0;
  for (const auto& [bucket, keys] : buckets_) {
    if (keys.empty()) {
      report.add("lru_min.empty_bucket",
                 "bucket " + std::to_string(bucket) + " exists but holds no keys");
      continue;
    }
    for (const LruKey& key : keys) {
      ++bucketed;
      const auto it = state_.find(key.url);
      if (it == state_.end()) {
        report.add("lru_min.orphan_key",
                   "bucket " + std::to_string(bucket) + " holds untracked url " +
                       std::to_string(key.url));
        continue;
      }
      if (bucket_of(it->second.size) != bucket) {
        report.add("lru_min.size_class",
                   "url " + std::to_string(key.url) + " (size " +
                       std::to_string(it->second.size) + ") sits in bucket " +
                       std::to_string(bucket) + " but belongs in bucket " +
                       std::to_string(bucket_of(it->second.size)));
      }
    }
  }
  if (bucketed != state_.size()) {
    report.add("lru_min.bucket_count",
               "buckets hold " + std::to_string(bucketed) + " keys but state tracks " +
                   std::to_string(state_.size()) + " documents");
  }
}

std::optional<UrlId> LruMinPolicy::choose_victim(const EvictionContext& ctx) {
  if (state_.empty()) return std::nullopt;

  // Descend thresholds T = S, S/2, S/4, ... until some document has
  // size >= T; among those, pick the least recently used.
  std::uint64_t threshold = ctx.incoming_size;
  for (;;) {
    if (threshold <= 1) {
      // Every document qualifies: global LRU.
      const LruKey* best = nullptr;
      for (const auto& [bucket, keys] : buckets_) {
        const LruKey& front = *keys.begin();
        if (best == nullptr || front < *best) best = &front;
      }
      return best->url;
    }
    const int boundary = bucket_of(threshold);
    const LruKey* best = nullptr;
    // Buckets strictly above the boundary: every member qualifies; only the
    // bucket LRU front can win.
    for (auto it = buckets_.upper_bound(boundary); it != buckets_.end(); ++it) {
      const LruKey& front = *it->second.begin();
      if (best == nullptr || front < *best) best = &front;
    }
    // Boundary bucket holds sizes in [2^b, 2^(b+1)): some may be < T.
    if (const auto it = buckets_.find(boundary); it != buckets_.end()) {
      for (const LruKey& key : it->second) {
        if (state_.at(key.url).size >= threshold && (best == nullptr || key < *best)) {
          best = &key;
          break;  // keys are LRU-ordered; the first qualifier is the bucket's best
        }
      }
    }
    if (best != nullptr) return best->url;
    threshold /= 2;
  }
}

}  // namespace wcs
