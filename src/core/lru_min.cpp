#include "src/core/lru_min.h"

#include <bit>
#include <cassert>

namespace wcs {

LruMinPolicy::LruMinPolicy(std::uint64_t /*seed*/) {}

int LruMinPolicy::bucket_of(std::uint64_t size) noexcept {
  return size == 0 ? 0 : std::bit_width(size) - 1;
}

void LruMinPolicy::insert_key(const DocState& doc) {
  buckets_[bucket_of(doc.size)].insert(doc.key);
}

void LruMinPolicy::erase_key(const DocState& doc) {
  const int bucket = bucket_of(doc.size);
  const auto it = buckets_.find(bucket);
  assert(it != buckets_.end());
  it->second.erase(doc.key);
  if (it->second.empty()) buckets_.erase(it);
}

void LruMinPolicy::on_insert(const CacheEntry& entry) {
  DocState doc{entry.size, LruKey{entry.atime, entry.random_tag, entry.url}};
  const auto [it, inserted] = state_.emplace(entry.url, doc);
  assert(inserted && "LRU-MIN on_insert for tracked URL");
  (void)it;
  (void)inserted;
  insert_key(doc);
}

void LruMinPolicy::on_hit(const CacheEntry& entry) {
  const auto it = state_.find(entry.url);
  assert(it != state_.end());
  erase_key(it->second);
  it->second.key.atime = entry.atime;
  it->second.size = entry.size;
  insert_key(it->second);
}

void LruMinPolicy::on_remove(const CacheEntry& entry) {
  const auto it = state_.find(entry.url);
  assert(it != state_.end());
  erase_key(it->second);
  state_.erase(it);
}

std::optional<UrlId> LruMinPolicy::choose_victim(const EvictionContext& ctx) {
  if (state_.empty()) return std::nullopt;

  // Descend thresholds T = S, S/2, S/4, ... until some document has
  // size >= T; among those, pick the least recently used.
  std::uint64_t threshold = ctx.incoming_size;
  for (;;) {
    if (threshold <= 1) {
      // Every document qualifies: global LRU.
      const LruKey* best = nullptr;
      for (const auto& [bucket, keys] : buckets_) {
        const LruKey& front = *keys.begin();
        if (best == nullptr || front < *best) best = &front;
      }
      return best->url;
    }
    const int boundary = bucket_of(threshold);
    const LruKey* best = nullptr;
    // Buckets strictly above the boundary: every member qualifies; only the
    // bucket LRU front can win.
    for (auto it = buckets_.upper_bound(boundary); it != buckets_.end(); ++it) {
      const LruKey& front = *it->second.begin();
      if (best == nullptr || front < *best) best = &front;
    }
    // Boundary bucket holds sizes in [2^b, 2^(b+1)): some may be < T.
    if (const auto it = buckets_.find(boundary); it != buckets_.end()) {
      for (const LruKey& key : it->second) {
        if (state_.at(key.url).size >= threshold && (best == nullptr || key < *best)) {
          best = &key;
          break;  // keys are LRU-ordered; the first qualifier is the bucket's best
        }
      }
    }
    if (best != nullptr) return best->url;
    threshold /= 2;
  }
}

}  // namespace wcs
