#include "src/core/lru_min.h"

#include <bit>

namespace wcs {

LruMinPolicy::LruMinPolicy(std::uint64_t /*seed*/) {
  buckets_.reserve(kBucketCount);
  for (int b = 0; b < kBucketCount; ++b) buckets_.emplace_back(LruLess{this}, &heap_pos_);
}

int LruMinPolicy::bucket_of(std::uint64_t size) noexcept {
  return size == 0 ? 0 : std::bit_width(size) - 1;
}

std::uint32_t LruMinPolicy::slot_of(UrlId url) const noexcept {
  if (victim_slot_ != kInvalidSlot && urls_[victim_slot_] == url &&
      heap_pos_[victim_slot_] != kInvalidSlot) {
    return victim_slot_;
  }
  return table_.find(url);
}

std::uint32_t LruMinPolicy::acquire_slot() {
  const std::uint32_t slot = arena_.acquire();
  if (slot >= urls_.size()) {
    sizes_.push_back(0);
    atimes_.push_back(0);
    tags_.push_back(0);
    urls_.push_back(kInvalidUrl);
    heap_pos_.push_back(kInvalidSlot);
  }
  return slot;
}

void LruMinPolicy::on_insert(const CacheEntry& entry) {
  const std::uint32_t slot = acquire_slot();
  sizes_[slot] = entry.size;
  atimes_[slot] = entry.atime;
  tags_[slot] = entry.random_tag;
  urls_[slot] = entry.url;
  table_.insert(entry.url, slot);
  buckets_[static_cast<std::size_t>(bucket_of(entry.size))].push(slot);
}

void LruMinPolicy::on_hit(const CacheEntry& entry) {
  const std::uint32_t slot = table_.find(entry.url);
  WCS_ASSERT(slot != kInvalidSlot, "LRU-MIN: on_hit for an untracked URL");
  const int old_bucket = bucket_of(sizes_[slot]);
  const int new_bucket = bucket_of(entry.size);
  sizes_[slot] = entry.size;
  atimes_[slot] = entry.atime;
  if (old_bucket == new_bucket) {
    buckets_[static_cast<std::size_t>(new_bucket)].update(slot);
  } else {
    buckets_[static_cast<std::size_t>(old_bucket)].erase(slot);
    buckets_[static_cast<std::size_t>(new_bucket)].push(slot);
  }
}

void LruMinPolicy::on_remove(const CacheEntry& entry) {
  const std::uint32_t slot = slot_of(entry.url);
  victim_slot_ = kInvalidSlot;
  WCS_ASSERT(slot != kInvalidSlot, "LRU-MIN: on_remove for an untracked URL");
  buckets_[static_cast<std::size_t>(bucket_of(sizes_[slot]))].erase(slot);
  const bool erased = table_.erase(entry.url);
  WCS_ASSERT(erased, "LRU-MIN: on_remove url missing from table");
  (void)erased;
  arena_.release(slot);
}

void LruMinPolicy::audit_index(const EntryMap& entries, AuditReport& report) const {
  if (table_.size() != entries.size()) {
    report.add("lru_min.tracked_count",
               "policy tracks " + std::to_string(table_.size()) + " URLs but cache holds " +
                   std::to_string(entries.size()));
  }
  if (arena_.live() != table_.size()) {
    report.add("lru_min.arena_live",
               "arena has " + std::to_string(arena_.live()) + " live slots but table maps " +
                   std::to_string(table_.size()));
  }
  arena_.audit("lru_min", report);
  table_.audit("lru_min", report);

  for (const auto& [url, entry] : entries) {
    const std::uint32_t slot = table_.find(url);
    if (slot == kInvalidSlot) {
      report.add("lru_min.untracked", "cached url " + std::to_string(url) + " not in state");
      continue;
    }
    if (sizes_[slot] != entry.size || atimes_[slot] != entry.atime ||
        tags_[slot] != entry.random_tag || urls_[slot] != url) {
      report.add("lru_min.stale_state",
                 "url " + std::to_string(url) + " has state (size=" +
                     std::to_string(sizes_[slot]) + ", atime=" +
                     std::to_string(atimes_[slot]) +
                     ") that no longer matches the cache entry");
    }
  }

  // Size-class thresholds: bucket b holds exactly the slots with
  // floor(log2(size)) == b, every bucketed slot maps back to a tracked URL,
  // and each bucket heap keeps its order/position invariants.
  std::size_t bucketed = 0;
  for (int bucket = 0; bucket < kBucketCount; ++bucket) {
    const auto& heap = buckets_[static_cast<std::size_t>(bucket)];
    heap.audit("lru_min", report);
    for (const std::uint32_t slot : heap.slots()) {
      ++bucketed;
      if (table_.find(urls_[slot]) != slot) {
        report.add("lru_min.orphan_key",
                   "bucket " + std::to_string(bucket) + " holds untracked url " +
                       std::to_string(urls_[slot]));
        continue;
      }
      if (bucket_of(sizes_[slot]) != bucket) {
        report.add("lru_min.size_class",
                   "url " + std::to_string(urls_[slot]) + " (size " +
                       std::to_string(sizes_[slot]) + ") sits in bucket " +
                       std::to_string(bucket) + " but belongs in bucket " +
                       std::to_string(bucket_of(sizes_[slot])));
      }
    }
  }
  if (bucketed != table_.size()) {
    report.add("lru_min.bucket_count",
               "buckets hold " + std::to_string(bucketed) + " slots but the table maps " +
                   std::to_string(table_.size()) + " documents");
  }
}

std::optional<UrlId> LruMinPolicy::choose_victim(const EvictionContext& ctx) {
  if (table_.size() == 0) return std::nullopt;
  const LruLess less{this};

  // Descend thresholds T = S, S/2, S/4, ... until some document has
  // size >= T; among those, pick the least recently used. Buckets strictly
  // above the boundary class qualify wholesale, so only their roots (each
  // bucket's LRU member) can win; the boundary bucket holds sizes in
  // [2^b, 2^(b+1)) and is scanned in full for its minimum qualifying key —
  // the same document the in-order set walk used to stop at.
  std::uint64_t threshold = ctx.incoming_size;
  for (;;) {
    if (threshold <= 1) {
      // Every document qualifies: global LRU over the bucket roots.
      std::uint32_t best = kInvalidSlot;
      for (const auto& heap : buckets_) {
        if (heap.empty()) continue;
        const std::uint32_t root = heap.top();
        if (best == kInvalidSlot || less(root, best)) best = root;
      }
      victim_slot_ = best;
      return urls_[best];
    }
    const int boundary = bucket_of(threshold);
    std::uint32_t best = kInvalidSlot;
    for (int bucket = boundary + 1; bucket < kBucketCount; ++bucket) {
      const auto& heap = buckets_[static_cast<std::size_t>(bucket)];
      if (heap.empty()) continue;
      const std::uint32_t root = heap.top();
      if (best == kInvalidSlot || less(root, best)) best = root;
    }
    for (const std::uint32_t slot : buckets_[static_cast<std::size_t>(boundary)].slots()) {
      if (sizes_[slot] >= threshold && (best == kInvalidSlot || less(slot, best))) {
        best = slot;
      }
    }
    if (best != kInvalidSlot) {
      victim_slot_ = best;
      return urls_[best];
    }
    threshold /= 2;
  }
}

}  // namespace wcs
