// Flat-memory building blocks for the policy engine (ROADMAP item 4).
//
// The node-based indexes (std::set red-black trees, std::unordered_map
// buckets) pointer-chase a cache line per tree level on every hit, insert
// and eviction. These three primitives replace them with contiguous
// storage:
//
//   SlotArena     a free-list slot allocator: each tracked document owns a
//                 dense uint32 slot id for the lifetime of its residency,
//                 and every per-document attribute lives in a plain vector
//                 indexed by that slot (struct-of-arrays).
//   UrlSlotTable  an open-addressing UrlId -> slot hash table (linear
//                 probing over a power-of-two capacity, backward-shift
//                 deletion, <= 1/2 load factor): the one lookup a policy
//                 event needs, in one or two probes of contiguous memory.
//   DaryHeap      a 4-ary min-heap over slot ids with an external position
//                 column: top() is the eviction victim, re-ranking on a hit
//                 is a sift instead of a tree unlink + relink, and the
//                 shallow fan-out keeps sift depth at log4(n).
//
// Ordering contract: a DaryHeap's Less must be a *strict total order* over
// live slots (every policy comparator ends in the url tiebreak), so the
// heap root is the unique minimum — bit-for-bit the same victim a sorted
// std::set would surface at begin(). tests/test_flat_engine.cpp holds the
// engines to that equality across the full Experiment-2 grid.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/audit.h"
#include "src/trace/request.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

/// Sentinel for "no slot": absent table lookups, free heap positions.
inline constexpr std::uint32_t kInvalidSlot = static_cast<std::uint32_t>(-1);

/// splitmix64 finalizer: a full-avalanche mix so sequential UrlIds spread
/// across the whole probe space. Integer-only (src/core bans float math).
[[nodiscard]] constexpr std::uint64_t mix_url_hash(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Free-list slot allocator. acquire() reuses the most recently released
/// slot (LIFO keeps hot columns cache-resident) or mints capacity()++; the
/// caller grows its per-slot columns when a fresh slot comes back.
class SlotArena {
 public:
  [[nodiscard]] std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return capacity_++;
  }

  void release(std::uint32_t slot) {
    WCS_ASSERT(slot < capacity_, "SlotArena::release of a slot never acquired");
    free_.push_back(slot);
  }

  /// Total slots ever minted (== the length of every per-slot column).
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  /// Currently-acquired slots.
  [[nodiscard]] std::uint32_t live() const noexcept {
    return capacity_ - static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] const std::vector<std::uint32_t>& free_slots() const noexcept {
    return free_;
  }

  /// Free-list sanity under `scope`: every free slot minted, no duplicates.
  void audit(const char* scope, AuditReport& report) const {
    std::vector<bool> seen(capacity_, false);
    for (const std::uint32_t slot : free_) {
      if (slot >= capacity_) {
        report.add(std::string{scope} + ".arena_free",
                   "free list holds slot " + std::to_string(slot) +
                       " beyond capacity " + std::to_string(capacity_));
        continue;
      }
      if (seen[slot]) {
        report.add(std::string{scope} + ".arena_free",
                   "free list holds slot " + std::to_string(slot) + " twice");
      }
      seen[slot] = true;
    }
  }

 private:
  friend struct AuditTamper;
  std::vector<std::uint32_t> free_;
  std::uint32_t capacity_ = 0;
};

/// Open-addressing UrlId -> slot table: linear probing, power-of-two
/// capacity, load factor kept <= 1/2, deletions repaired by backward shift
/// (no tombstones, so probe chains never degrade).
class UrlSlotTable {
 public:
  /// Slot mapped to `url`, or kInvalidSlot.
  [[nodiscard]] std::uint32_t find(UrlId url) const noexcept {
    if (keys_.empty()) return kInvalidSlot;
    std::size_t i = index_of(url);
    while (keys_[i] != kInvalidUrl) {
      if (keys_[i] == url) return slots_[i];
      i = (i + 1) & mask_;
    }
    return kInvalidSlot;
  }

  /// Maps `url` (which must be absent) to `slot`.
  void insert(UrlId url, std::uint32_t slot) {
    if (keys_.empty() || (size_ + 1) * 2 > keys_.size()) grow();
    std::size_t i = index_of(url);
    while (keys_[i] != kInvalidUrl) {
      WCS_ASSERT(keys_[i] != url, "UrlSlotTable::insert of an already-mapped url");
      i = (i + 1) & mask_;
    }
    keys_[i] = url;
    slots_[i] = slot;
    ++size_;
  }

  /// Redirects an existing mapping (swap-remove relocations).
  void set(UrlId url, std::uint32_t slot) noexcept {
    WCS_ASSERT(!keys_.empty(), "UrlSlotTable::set on an empty table");
    std::size_t i = index_of(url);
    while (keys_[i] != url) {
      WCS_ASSERT(keys_[i] != kInvalidUrl, "UrlSlotTable::set of an unmapped url");
      i = (i + 1) & mask_;
    }
    slots_[i] = slot;
  }

  /// Unmaps `url`; false if it was absent.
  bool erase(UrlId url) noexcept {
    if (keys_.empty()) return false;
    std::size_t i = index_of(url);
    while (keys_[i] != url) {
      if (keys_[i] == kInvalidUrl) return false;
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: walk the probe chain after the hole and pull
    // back every entry whose home bucket precedes the hole (cyclically), so
    // lookups never cross an artificial gap.
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (keys_[j] == kInvalidUrl) break;
      const std::size_t home = index_of(keys_[j]);
      // `keys_[j]` may fill the hole iff its home bucket is cyclically
      // outside (hole, j] — i.e. the shifted entry still sits at or after
      // its home in probe order.
      const bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
      if (movable) {
        keys_[hole] = keys_[j];
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    keys_[hole] = kInvalidUrl;
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Every (url, slot) mapping, in bucket order (diagnostics, audits).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kInvalidUrl) fn(keys_[i], slots_[i]);
    }
  }

  /// Table self-consistency under `scope`: occupied-bucket count matches
  /// size(), and every key is reachable from its home bucket (no probe
  /// chain crosses an empty bucket).
  void audit(const char* scope, AuditReport& report) const {
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == kInvalidUrl) continue;
      ++occupied;
      if (find(keys_[i]) == kInvalidSlot) {
        report.add(std::string{scope} + ".table_probe",
                   "url " + std::to_string(keys_[i]) +
                       " occupies a bucket its probe chain cannot reach");
      }
    }
    if (occupied != size_) {
      report.add(std::string{scope} + ".table_size",
                 "table reports " + std::to_string(size_) + " mappings but " +
                     std::to_string(occupied) + " buckets are occupied");
    }
  }

 private:
  friend struct AuditTamper;

  [[nodiscard]] std::size_t index_of(UrlId url) const noexcept {
    return static_cast<std::size_t>(mix_url_hash(url)) & mask_;
  }

  void grow() {
    const std::size_t new_capacity = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<UrlId> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_slots = std::move(slots_);
    keys_.assign(new_capacity, kInvalidUrl);
    slots_.assign(new_capacity, kInvalidSlot);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kInvalidUrl) continue;
      std::size_t j = index_of(old_keys[i]);
      while (keys_[j] != kInvalidUrl) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      slots_[j] = old_slots[i];
    }
  }

  std::vector<UrlId> keys_;             // kInvalidUrl = empty bucket
  std::vector<std::uint32_t> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;                // capacity - 1 (capacity power of two)
};

/// 4-ary min-heap over slot ids. `Less` must be a strict total order over
/// live slots (policy comparators always end in the url tiebreak), making
/// top() the *unique* minimum — identical to the victim std::set::begin()
/// yields under the same comparator.
///
/// Positions live in an external column shared with the owner (and, for
/// LRU-MIN, shared across all 64 bucket heaps — a slot sits in exactly one
/// bucket at a time): (*pos_)[slot] is the heap index of `slot`, or
/// kInvalidSlot while unqueued. The owner grows the column alongside its
/// other per-slot vectors; the heap never resizes it.
template <typename Less>
class DaryHeap {
 public:
  static constexpr std::size_t kArity = 4;

  DaryHeap(Less less, std::vector<std::uint32_t>* pos) : less_(less), pos_(pos) {}

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// The minimum slot; heap must be non-empty.
  [[nodiscard]] std::uint32_t top() const noexcept { return heap_[0]; }
  /// Heap array in layout order (audits, full scans).
  [[nodiscard]] const std::vector<std::uint32_t>& slots() const noexcept { return heap_; }

  void push(std::uint32_t slot) {
    WCS_ASSERT((*pos_)[slot] == kInvalidSlot, "DaryHeap::push of an already-queued slot");
    heap_.push_back(slot);
    (*pos_)[slot] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  void erase(std::uint32_t slot) {
    const std::uint32_t i = (*pos_)[slot];
    WCS_ASSERT(i != kInvalidSlot && i < heap_.size() && heap_[i] == slot,
               "DaryHeap::erase of a slot not in this heap");
    (*pos_)[slot] = kInvalidSlot;
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (last == slot) return;  // removed the tail
    heap_[i] = last;
    (*pos_)[last] = i;
    update(last);
  }

  /// Restores heap order after `slot`'s key changed in place.
  void update(std::uint32_t slot) {
    const std::uint32_t i = (*pos_)[slot];
    WCS_ASSERT(i != kInvalidSlot && i < heap_.size() && heap_[i] == slot,
               "DaryHeap::update of a slot not in this heap");
    if (i > 0 && less_(slot, heap_[(i - 1) / kArity])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }

  /// Heap-order + position-column sanity under `scope`.
  void audit(const char* scope, AuditReport& report) const {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      const std::uint32_t slot = heap_[i];
      if (slot >= pos_->size() || (*pos_)[slot] != i) {
        report.add(std::string{scope} + ".heap_pos",
                   "slot " + std::to_string(slot) + " at heap index " +
                       std::to_string(i) + " has a stale position entry");
      }
      if (i > 0 && less_(slot, heap_[(i - 1) / kArity])) {
        report.add(std::string{scope} + ".heap_order",
                   "heap index " + std::to_string(i) + " (slot " + std::to_string(slot) +
                       ") orders before its parent — sift invariant broken");
      }
    }
  }

 private:
  friend struct AuditTamper;

  void sift_up(std::size_t i) {
    const std::uint32_t slot = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less_(slot, heap_[parent])) break;
      heap_[i] = heap_[parent];
      (*pos_)[heap_[i]] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = slot;
    (*pos_)[slot] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    const std::uint32_t slot = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less_(heap_[c], heap_[best])) best = c;
      }
      if (!less_(heap_[best], slot)) break;
      heap_[i] = heap_[best];
      (*pos_)[heap_[i]] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = slot;
    (*pos_)[slot] = static_cast<std::uint32_t>(i);
  }

  Less less_;
  std::vector<std::uint32_t>* pos_;
  std::vector<std::uint32_t> heap_;
};

}  // namespace wcs
