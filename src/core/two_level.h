// Two-level cache hierarchy (the paper's Experiment 3).
//
// A finite first-level cache backed by a (typically infinite) second level.
// On an L1 miss the request goes to L2; an L2 hit copies the document back
// into L1, an L2 miss stores it in both levels. Because every document
// enters L2 on its first miss and L2 never evicts when infinite, anything
// L1 later removes is still in L2 — the paper's "primary cache sends
// replaced documents to a larger second level cache" arrangement.
#pragma once

#include <memory>

#include "src/core/cache.h"

namespace wcs {

enum class HitLevel : unsigned char { kL1 = 0, kL2, kMiss };

struct TwoLevelResult {
  HitLevel level = HitLevel::kMiss;
};

class TwoLevelCache {
 public:
  TwoLevelCache(CacheConfig l1_config, std::unique_ptr<RemovalPolicy> l1_policy,
                CacheConfig l2_config, std::unique_ptr<RemovalPolicy> l2_policy);

  TwoLevelResult access(SimTime now, UrlId url, std::uint64_t size,
                        FileType type = FileType::kUnknown);
  TwoLevelResult access(const Request& request) {
    return access(request.time, request.url, request.size, request.type);
  }

  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }

  /// L2 statistics over *all* requests (the denominators the paper's
  /// Figs 16-18 use): an L2 hit is a request that missed L1 and hit L2.
  struct HierarchyStats {
    std::uint64_t requests = 0;
    std::uint64_t requested_bytes = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_hit_bytes = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_hit_bytes = 0;

    [[nodiscard]] double l1_hit_rate() const noexcept {
      return requests == 0 ? 0.0
                           : static_cast<double>(l1_hits) / static_cast<double>(requests);
    }
    [[nodiscard]] double l2_hit_rate() const noexcept {
      return requests == 0 ? 0.0
                           : static_cast<double>(l2_hits) / static_cast<double>(requests);
    }
    [[nodiscard]] double l2_weighted_hit_rate() const noexcept {
      return requested_bytes == 0 ? 0.0
                                  : static_cast<double>(l2_hit_bytes) /
                                        static_cast<double>(requested_bytes);
    }
  };
  [[nodiscard]] const HierarchyStats& stats() const noexcept { return stats_; }

  /// Audits both levels (scoped "l1." / "l2."), the request-flow identities
  /// (every request probes L1; L2 sees exactly the L1 misses; level hits
  /// never exceed requests) and, when L2 is infinite, the inclusion
  /// property: every L1 document is also in L2 at the same size.
  [[nodiscard]] AuditReport audit() const;

 private:
  friend struct AuditTamper;
  Cache l1_;
  Cache l2_;
  HierarchyStats stats_;
};

}  // namespace wcs
