// General N-level cache hierarchy — the paper's §5 open problem 3, second
// half: "an interesting future study would be simulation of a multi-level
// cache more complex than the single first and second level configuration
// used here."
//
// Levels are ordered nearest-first (browser/client cache, department proxy,
// campus proxy, ...). A request probes level 0 upward; a hit at level k
// copies the document into every nearer level (inclusive caching, the same
// arrangement Experiment 3 uses); a full miss installs it everywhere.
#pragma once

#include <memory>
#include <vector>

#include "src/core/cache.h"

namespace wcs {

class CacheHierarchy {
 public:
  struct LevelSpec {
    CacheConfig config;
    std::unique_ptr<RemovalPolicy> policy;
  };

  explicit CacheHierarchy(std::vector<LevelSpec> levels);

  struct Result {
    /// Level that served the request, or -1 for a miss at every level.
    int hit_level = -1;
  };
  Result access(SimTime now, UrlId url, std::uint64_t size,
                FileType type = FileType::kUnknown);
  Result access(const Request& request) {
    return access(request.time, request.url, request.size, request.type);
  }

  [[nodiscard]] std::size_t level_count() const noexcept { return levels_.size(); }
  [[nodiscard]] const Cache& level(std::size_t i) const { return levels_.at(i); }

  struct LevelStats {
    std::uint64_t hits = 0;       // requests served at this level
    std::uint64_t hit_bytes = 0;
  };
  /// Per-level hits with *all* requests as the denominator.
  [[nodiscard]] const std::vector<LevelStats>& level_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t requested_bytes() const noexcept { return requested_bytes_; }

  [[nodiscard]] double hit_rate_of(std::size_t level) const;
  [[nodiscard]] double weighted_hit_rate_of(std::size_t level) const;
  /// Fraction of requests served by any level (1 - origin load).
  [[nodiscard]] double combined_hit_rate() const;

  /// Audits every level (scoped "level<k>.") plus request-flow sanity:
  /// level 0 sees every request and total hits never exceed requests.
  [[nodiscard]] AuditReport audit() const;

 private:
  std::vector<Cache> levels_;
  std::vector<LevelStats> stats_;
  std::uint64_t requests_ = 0;
  std::uint64_t requested_bytes_ = 0;
};

}  // namespace wcs
