// The sorting-key taxonomy of the paper (Table 1).
//
// A removal policy is "sort the cache by a key list, evict from the head".
// Each key maps a cache entry to a rank; *smaller rank means removed
// earlier*, so each key's natural removal direction (Table 1's "Sort
// Order" column) is baked into its rank function:
//
//   SIZE         rank = -size          largest file removed first
//   LOG2SIZE     rank = -floor(log2)   one of the largest removed first
//   ETIME        rank = etime          oldest entry removed first (FIFO)
//   ATIME        rank = atime          least recently used removed first
//   DAY(ATIME)   rank = day(atime)     last accessed most days ago first
//   NREF         rank = nref           least referenced removed first (LFU)
//   RANDOM       rank = random_tag     uniformly random order
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/entry.h"

namespace wcs {

enum class Key : unsigned char {
  kSize = 0,
  kLog2Size,
  kEtime,
  kAtime,
  kDayAtime,
  kNref,
  kRandom,
  // ---- extension keys: the paper's §5 open problem 1 ------------------
  /// Document type: media evicted first, text last — "a sorting key that
  /// puts text documents at the front" so text stays cheap to serve.
  kTypePriority,
  /// Estimated refetch latency: cheapest-to-refetch evicted first, so
  /// expensive (distant/large) documents stay cached.
  kLatency,
};

inline constexpr Key kPrimaryKeys[] = {Key::kSize,  Key::kLog2Size, Key::kEtime,
                                       Key::kAtime, Key::kDayAtime, Key::kNref};
inline constexpr Key kAllKeys[] = {Key::kSize,     Key::kLog2Size, Key::kEtime, Key::kAtime,
                                   Key::kDayAtime, Key::kNref,     Key::kRandom};
/// The §5 extension keys (not part of the paper's 36-combination grid).
inline constexpr Key kExtensionKeys[] = {Key::kTypePriority, Key::kLatency};

[[nodiscard]] std::string_view to_string(Key key) noexcept;

/// Rank of `entry` under `key`; smaller rank = closer to the removal head.
[[nodiscard]] std::int64_t key_rank(Key key, const CacheEntry& entry) noexcept;

/// An ordered list of sorting keys, most significant first. A trailing
/// random tiebreak (then UrlId, for full determinism) is always appended by
/// the comparator — the paper likewise "always uses random as a tertiary
/// key".
struct KeySpec {
  std::vector<Key> keys;

  [[nodiscard]] std::string name() const;

  /// The 36 primary x secondary combinations of the paper's Experiment 2:
  /// each of the 6 Table 1 keys as primary, each of the other 5 keys plus
  /// RANDOM as secondary.
  [[nodiscard]] static std::vector<KeySpec> experiment2_grid();
};

/// Materialized ranks of an entry under a KeySpec, stored inside ordered
/// containers. The tuple must be recomputed (and the node reinserted)
/// whenever entry metadata changes — ATIME/NREF/DAY(ATIME) ranks change on
/// every hit.
struct RankTuple {
  std::vector<std::int64_t> ranks;
  std::uint64_t random_tag = 0;
  UrlId url = kInvalidUrl;

  friend bool operator<(const RankTuple& a, const RankTuple& b) noexcept {
    const std::size_t n = a.ranks.size() < b.ranks.size() ? a.ranks.size() : b.ranks.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (a.ranks[i] != b.ranks[i]) return a.ranks[i] < b.ranks[i];
    }
    if (a.random_tag != b.random_tag) return a.random_tag < b.random_tag;
    return a.url < b.url;
  }
  friend bool operator==(const RankTuple& a, const RankTuple& b) noexcept {
    return a.ranks == b.ranks && a.random_tag == b.random_tag && a.url == b.url;
  }
};

[[nodiscard]] RankTuple make_rank_tuple(const KeySpec& spec, const CacheEntry& entry);

}  // namespace wcs
