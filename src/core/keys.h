// The sorting-key taxonomy of the paper (Table 1).
//
// A removal policy is "sort the cache by a key list, evict from the head".
// Each key maps a cache entry to a rank; *smaller rank means removed
// earlier*, so each key's natural removal direction (Table 1's "Sort
// Order" column) is baked into its rank function:
//
//   SIZE         rank = -size          largest file removed first
//   LOG2SIZE     rank = -floor(log2)   one of the largest removed first
//   ETIME        rank = etime          oldest entry removed first (FIFO)
//   ATIME        rank = atime          least recently used removed first
//   DAY(ATIME)   rank = day(atime)     last accessed most days ago first
//   NREF         rank = nref           least referenced removed first (LFU)
//   RANDOM       rank = random_tag     uniformly random order
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/entry.h"

namespace wcs {

enum class Key : unsigned char {
  kSize = 0,
  kLog2Size,
  kEtime,
  kAtime,
  kDayAtime,
  kNref,
  kRandom,
  // ---- extension keys: the paper's §5 open problem 1 ------------------
  /// Document type: media evicted first, text last — "a sorting key that
  /// puts text documents at the front" so text stays cheap to serve.
  kTypePriority,
  /// Estimated refetch latency: cheapest-to-refetch evicted first, so
  /// expensive (distant/large) documents stay cached.
  kLatency,
};

inline constexpr Key kPrimaryKeys[] = {Key::kSize,  Key::kLog2Size, Key::kEtime,
                                       Key::kAtime, Key::kDayAtime, Key::kNref};
inline constexpr Key kAllKeys[] = {Key::kSize,     Key::kLog2Size, Key::kEtime, Key::kAtime,
                                   Key::kDayAtime, Key::kNref,     Key::kRandom};
/// The §5 extension keys (not part of the paper's 36-combination grid).
inline constexpr Key kExtensionKeys[] = {Key::kTypePriority, Key::kLatency};

[[nodiscard]] std::string_view to_string(Key key) noexcept;

/// Rank of `entry` under `key`; smaller rank = closer to the removal head.
[[nodiscard]] std::int64_t key_rank(Key key, const CacheEntry& entry) noexcept;

/// An ordered list of sorting keys, most significant first. A trailing
/// random tiebreak (then UrlId, for full determinism) is always appended by
/// the comparator — the paper likewise "always uses random as a tertiary
/// key".
struct KeySpec {
  std::vector<Key> keys;

  [[nodiscard]] std::string name() const;

  /// The 36 primary x secondary combinations of the paper's Experiment 2:
  /// each of the 6 Table 1 keys as primary, each of the other 5 keys plus
  /// RANDOM as secondary.
  [[nodiscard]] static std::vector<KeySpec> experiment2_grid();
};

/// Upper bound on the number of sorting keys a RankTuple can materialize
/// inline. The paper's grid never exceeds 3 keys (Hyper-G's
/// NREF+ATIME+SIZE); one spare slot covers extension composites without
/// another size bump.
inline constexpr std::size_t kMaxRankKeys = 4;
static_assert(kMaxRankKeys >= 3,
              "RankTuple must hold the paper's deepest key list (Hyper-G, 3 keys) inline");

/// Materialized ranks of an entry under a KeySpec, stored inside ordered
/// containers. The tuple must be recomputed (and the node reinserted)
/// whenever entry metadata changes — ATIME/NREF/DAY(ATIME) ranks change on
/// every hit.
///
/// Ranks live in a fixed-capacity inline array (`count` slots of `ranks`
/// are valid) so that materializing a tuple on the simulator's hot path —
/// once per hit, per policy — never touches the heap. The comparator is
/// unchanged from the original vector-based tuple: lexicographic over the
/// common rank prefix, then random_tag, then url.
struct RankTuple {
  std::array<std::int64_t, kMaxRankKeys> ranks{};  // only [0, count) are meaningful
  std::uint8_t count = 0;
  std::uint64_t random_tag = 0;
  UrlId url = kInvalidUrl;

  friend bool operator<(const RankTuple& a, const RankTuple& b) noexcept {
    const std::size_t n = a.count < b.count ? a.count : b.count;
    for (std::size_t i = 0; i < n; ++i) {
      if (a.ranks[i] != b.ranks[i]) return a.ranks[i] < b.ranks[i];
    }
    if (a.random_tag != b.random_tag) return a.random_tag < b.random_tag;
    return a.url < b.url;
  }
  friend bool operator==(const RankTuple& a, const RankTuple& b) noexcept {
    if (a.count != b.count || a.random_tag != b.random_tag || a.url != b.url) return false;
    for (std::size_t i = 0; i < a.count; ++i) {
      if (a.ranks[i] != b.ranks[i]) return false;
    }
    return true;
  }
};

/// Materializes `entry`'s ranks under `spec`. Allocation-free; asserts
/// spec.keys.size() <= kMaxRankKeys (enforced for all shipped specs by the
/// static_assert above plus tests over experiment2_grid()).
[[nodiscard]] RankTuple make_rank_tuple(const KeySpec& spec, const CacheEntry& entry);

}  // namespace wcs
