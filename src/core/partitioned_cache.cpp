#include "src/core/partitioned_cache.h"

#include <stdexcept>

namespace wcs {

PartitionedCache::PartitionedCache(std::vector<PartitionSpec> partitions,
                                   std::function<std::size_t(FileType)> classify)
    : classify_(std::move(classify)) {
  if (partitions.empty()) throw std::invalid_argument{"PartitionedCache: no partitions"};
  if (!classify_) throw std::invalid_argument{"PartitionedCache: no classifier"};
  caches_.reserve(partitions.size());
  names_.reserve(partitions.size());
  for (auto& spec : partitions) {
    CacheConfig config;
    config.capacity_bytes = spec.capacity_bytes;
    caches_.emplace_back(config, spec.make_policy());
    names_.push_back(std::move(spec.name));
  }
  for (const FileType type : kAllFileTypes) {
    if (classify_(type) >= caches_.size()) {
      throw std::invalid_argument{"PartitionedCache: classifier out of range"};
    }
  }
}

AccessResult PartitionedCache::access(SimTime now, UrlId url, std::uint64_t size,
                                      FileType type) {
  return caches_[classify_(type)].access(now, url, size, type);
}

CacheStats PartitionedCache::combined_stats() const {
  CacheStats total;
  for (const auto& cache : caches_) {
    const CacheStats& s = cache.stats();
    total.requests += s.requests;
    total.hits += s.hits;
    total.requested_bytes += s.requested_bytes;
    total.hit_bytes += s.hit_bytes;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.evicted_bytes += s.evicted_bytes;
    total.size_change_misses += s.size_change_misses;
    total.rejected_too_large += s.rejected_too_large;
    total.admission_rejects += s.admission_rejects;
    total.dead_on_arrival_evictions += s.dead_on_arrival_evictions;
    total.periodic_sweeps += s.periodic_sweeps;
    total.max_used_bytes += s.max_used_bytes;  // sum of per-partition peaks
  }
  return total;
}

AuditReport PartitionedCache::audit() const {
  AuditReport report;
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    report.absorb(names_[i], caches_[i].audit());
    for (const CacheEntry& entry : caches_[i].snapshot()) {
      const std::size_t home = classify_(entry.type);
      if (home != i) {
        report.add("partitioned.routing",
                   "url " + std::to_string(entry.url) + " (type class " +
                       std::to_string(home) + ") is cached in partition " +
                       std::to_string(i) + " ('" + names_[i] + "')");
      }
    }
  }
  return report;
}

PartitionedCache PartitionedCache::audio_split(
    std::uint64_t total_capacity, double audio_fraction,
    const std::function<std::unique_ptr<RemovalPolicy>()>& make_policy) {
  if (!(audio_fraction > 0.0 && audio_fraction < 1.0)) {
    throw std::invalid_argument{"audio_split: fraction must be in (0, 1)"};
  }
  const auto audio_bytes =
      static_cast<std::uint64_t>(static_cast<double>(total_capacity) * audio_fraction);
  std::vector<PartitionSpec> partitions;
  partitions.push_back({"audio", audio_bytes, make_policy});
  partitions.push_back({"non-audio", total_capacity - audio_bytes, make_policy});
  return PartitionedCache{std::move(partitions), [](FileType type) -> std::size_t {
                            return type == FileType::kAudio ? 0 : 1;
                          }};
}

}  // namespace wcs
