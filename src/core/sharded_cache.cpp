#include "src/core/sharded_cache.h"

#include <stdexcept>
#include <string>

namespace wcs {

ShardedCache::ShardedCache(ShardedCacheConfig config,
                           const std::function<std::unique_ptr<RemovalPolicy>()>& make_policy)
    : config_(config) {
  if (config_.shards == 0) throw std::invalid_argument{"ShardedCache: shards must be >= 1"};
  if (!make_policy) throw std::invalid_argument{"ShardedCache: no policy factory"};
  if (config_.capacity_bytes != 0 && config_.capacity_bytes < config_.shards) {
    // A positive budget below one byte per shard would leave some shards
    // with capacity 0 — which means *infinite*, silently inverting the
    // caller's intent.
    throw std::invalid_argument{"ShardedCache: capacity smaller than the shard count"};
  }
  const std::uint64_t base = config_.capacity_bytes / config_.shards;
  const std::uint64_t remainder = config_.capacity_bytes % config_.shards;
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    CacheConfig cache_config;
    cache_config.capacity_bytes = base + (i < remainder ? 1 : 0);
    cache_config.periodic = config_.periodic;
    cache_config.seed = config_.seed + i;
    cache_config.admission = config_.admission;
    cache_config.obs = config_.obs;
    shards_.push_back(std::make_unique<Shard>(cache_config, make_policy()));
  }
}

AccessResult ShardedCache::access(SimTime now, UrlId url, std::uint64_t size, FileType type,
                                  std::uint32_t latency_ms) {
  Shard& shard = *shards_[shard_of(url)];
  MutexLock lock{shard.mutex};
  ++shard.dispatched_requests;
  shard.dispatched_bytes += size;
  return shard.cache.access(now, url, size, type, latency_ms);
}

CacheStats ShardedCache::merged_stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    const CacheStats& s = shard->cache.stats();
    total.requests += s.requests;
    total.hits += s.hits;
    total.requested_bytes += s.requested_bytes;
    total.hit_bytes += s.hit_bytes;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.evicted_bytes += s.evicted_bytes;
    total.size_change_misses += s.size_change_misses;
    total.rejected_too_large += s.rejected_too_large;
    total.admission_rejects += s.admission_rejects;
    total.dead_on_arrival_evictions += s.dead_on_arrival_evictions;
    total.periodic_sweeps += s.periodic_sweeps;
    total.max_used_bytes += s.max_used_bytes;  // sum of per-shard peaks
  }
  return total;
}

std::vector<CacheStats> ShardedCache::shard_stats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    out.push_back(shard->cache.stats());
  }
  return out;
}

std::vector<ShardOccupancy> ShardedCache::occupancy() const {
  std::vector<ShardOccupancy> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    ShardOccupancy slot;
    slot.used_bytes = shard->cache.used_bytes();
    slot.capacity_bytes = shard->cache.capacity_bytes();
    slot.entry_count = shard->cache.entry_count();
    out.push_back(slot);
  }
  return out;
}

std::uint64_t ShardedCache::used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    total += shard->cache.used_bytes();
  }
  return total;
}

AuditReport ShardedCache::audit() const {
  AuditReport report;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    MutexLock lock{shard.mutex};
    report.absorb("shard" + std::to_string(i), shard.cache.audit());
    for (const CacheEntry& entry : shard.cache.snapshot()) {
      const std::uint32_t home = shard_of(entry.url);
      if (home != i) {
        report.add("sharded.routing",
                   "url " + std::to_string(entry.url) + " (home shard " + std::to_string(home) +
                       ") is cached on shard " + std::to_string(i));
      }
    }
    // Merge reconciliation: the shard cache's own counters must agree with
    // the tallies the router kept while dispatching to it. merged_stats()
    // is a sum of the former, so agreement here proves the aggregate
    // accounts for every dispatched request and byte exactly once.
    const CacheStats& stats = shard.cache.stats();
    if (stats.requests != shard.dispatched_requests) {
      report.add("sharded.stats_merge",
                 "shard " + std::to_string(i) + " counted " + std::to_string(stats.requests) +
                     " requests but the router dispatched " +
                     std::to_string(shard.dispatched_requests));
    }
    if (stats.requested_bytes != shard.dispatched_bytes) {
      report.add("sharded.stats_merge",
                 "shard " + std::to_string(i) + " counted " +
                     std::to_string(stats.requested_bytes) +
                     " requested bytes but the router dispatched " +
                     std::to_string(shard.dispatched_bytes));
    }
  }
  return report;
}

}  // namespace wcs
