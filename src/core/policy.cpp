#include "src/core/policy.h"

#include <algorithm>
#include <map>

#include "src/core/lru_min.h"
#include "src/core/pitkow_recker.h"
#include "src/core/sorted_policy.h"
#include "src/util/strings.h"
#include "src/util/thread_annotations.h"

namespace wcs {

namespace {

/// Name -> factory for policies registered by higher layers (src/zoo/).
/// Consulted only after the built-in names miss, under a mutex: resolution
/// happens at simulation *setup* (never per-request), and ParallelRunner
/// cells set up concurrently. std::map keeps registered_policy_names()
/// deterministic without a sort on every query.
struct PolicyRegistry {
  Mutex mutex;
  std::map<std::string, NamedPolicyFactory, std::less<>> factories  // node-based-ok: cold setup-time registry, never on the eviction path
      WCS_GUARDED_BY(mutex);
};

PolicyRegistry& policy_registry() {
  static PolicyRegistry registry;
  return registry;
}

}  // namespace

void RemovalPolicy::audit_index(const EntryMap& /*entries*/, AuditReport& /*report*/) const {}

void register_policy(std::string_view name, NamedPolicyFactory factory) {
  PolicyRegistry& registry = policy_registry();
  MutexLock lock{registry.mutex};
  registry.factories.insert_or_assign(to_lower(name), std::move(factory));
}

std::vector<std::string> registered_policy_names() {
  PolicyRegistry& registry = policy_registry();
  MutexLock lock{registry.mutex};
  std::vector<std::string> names;
  names.reserve(registry.factories.size());
  for (const auto& [name, factory] : registry.factories) names.push_back(name);
  return names;
}

std::unique_ptr<RemovalPolicy> make_sorted_policy(KeySpec spec, std::uint64_t seed) {
  return std::make_unique<SortedPolicy>(std::move(spec), seed);
}

std::unique_ptr<RemovalPolicy> make_lru_min(std::uint64_t seed) {
  return std::make_unique<LruMinPolicy>(seed);
}

std::unique_ptr<RemovalPolicy> make_pitkow_recker(std::uint64_t seed) {
  return std::make_unique<PitkowReckerPolicy>(seed);
}

std::unique_ptr<RemovalPolicy> make_fifo(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kEtime}}, seed);
}

std::unique_ptr<RemovalPolicy> make_lru(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kAtime}}, seed);
}

std::unique_ptr<RemovalPolicy> make_lfu(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kNref}}, seed);
}

std::unique_ptr<RemovalPolicy> make_hyper_g(std::uint64_t seed) {
  // Table 3: NREF primary, ATIME secondary, SIZE tertiary (the Hyper-G
  // document flag is irrelevant: the traces contain no Hyper-G documents).
  return make_sorted_policy(KeySpec{{Key::kNref, Key::kAtime, Key::kSize}}, seed);
}

std::unique_ptr<RemovalPolicy> make_size(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kSize}}, seed);
}

std::unique_ptr<RemovalPolicy> make_random(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kRandom}}, seed);
}

std::unique_ptr<RemovalPolicy> make_policy_by_name(std::string_view name, std::uint64_t seed) {
  const std::string lower = to_lower(name);
  if (lower == "fifo" || lower == "etime") return make_fifo(seed);
  if (lower == "lru" || lower == "atime") return make_lru(seed);
  if (lower == "lfu" || lower == "nref") return make_lfu(seed);
  if (lower == "size") return make_size(seed);
  if (lower == "log2size") return make_sorted_policy(KeySpec{{Key::kLog2Size}}, seed);
  if (lower == "day(atime)" || lower == "day") {
    return make_sorted_policy(KeySpec{{Key::kDayAtime}}, seed);
  }
  if (lower == "random") return make_random(seed);
  if (lower == "hyper-g" || lower == "hyperg") return make_hyper_g(seed);
  if (lower == "lru-min" || lower == "lrumin") return make_lru_min(seed);
  if (lower == "pitkow-recker" || lower == "pitkow/recker" || lower == "pr") {
    return make_pitkow_recker(seed);
  }
  // Built-ins missed: try the extension registry. The factory runs outside
  // the lock — it may construct arbitrarily heavy policies (shadow caches).
  NamedPolicyFactory factory;
  {
    PolicyRegistry& registry = policy_registry();
    MutexLock lock{registry.mutex};
    const auto it = registry.factories.find(lower);
    if (it != registry.factories.end()) factory = it->second;
  }
  if (factory) return factory(seed);
  return nullptr;
}

}  // namespace wcs
