#include "src/core/policy.h"

#include "src/core/lru_min.h"
#include "src/core/pitkow_recker.h"
#include "src/core/sorted_policy.h"
#include "src/util/strings.h"

namespace wcs {

void RemovalPolicy::audit_index(const EntryMap& /*entries*/, AuditReport& /*report*/) const {}

std::unique_ptr<RemovalPolicy> make_sorted_policy(KeySpec spec, std::uint64_t seed) {
  return std::make_unique<SortedPolicy>(std::move(spec), seed);
}

std::unique_ptr<RemovalPolicy> make_lru_min(std::uint64_t seed) {
  return std::make_unique<LruMinPolicy>(seed);
}

std::unique_ptr<RemovalPolicy> make_pitkow_recker(std::uint64_t seed) {
  return std::make_unique<PitkowReckerPolicy>(seed);
}

std::unique_ptr<RemovalPolicy> make_fifo(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kEtime}}, seed);
}

std::unique_ptr<RemovalPolicy> make_lru(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kAtime}}, seed);
}

std::unique_ptr<RemovalPolicy> make_lfu(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kNref}}, seed);
}

std::unique_ptr<RemovalPolicy> make_hyper_g(std::uint64_t seed) {
  // Table 3: NREF primary, ATIME secondary, SIZE tertiary (the Hyper-G
  // document flag is irrelevant: the traces contain no Hyper-G documents).
  return make_sorted_policy(KeySpec{{Key::kNref, Key::kAtime, Key::kSize}}, seed);
}

std::unique_ptr<RemovalPolicy> make_size(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kSize}}, seed);
}

std::unique_ptr<RemovalPolicy> make_random(std::uint64_t seed) {
  return make_sorted_policy(KeySpec{{Key::kRandom}}, seed);
}

std::unique_ptr<RemovalPolicy> make_policy_by_name(std::string_view name, std::uint64_t seed) {
  const std::string lower = to_lower(name);
  if (lower == "fifo" || lower == "etime") return make_fifo(seed);
  if (lower == "lru" || lower == "atime") return make_lru(seed);
  if (lower == "lfu" || lower == "nref") return make_lfu(seed);
  if (lower == "size") return make_size(seed);
  if (lower == "log2size") return make_sorted_policy(KeySpec{{Key::kLog2Size}}, seed);
  if (lower == "day(atime)" || lower == "day") {
    return make_sorted_policy(KeySpec{{Key::kDayAtime}}, seed);
  }
  if (lower == "random") return make_random(seed);
  if (lower == "hyper-g" || lower == "hyperg") return make_hyper_g(seed);
  if (lower == "lru-min" || lower == "lrumin") return make_lru_min(seed);
  if (lower == "pitkow-recker" || lower == "pitkow/recker" || lower == "pr") {
    return make_pitkow_recker(seed);
  }
  return nullptr;
}

}  // namespace wcs
