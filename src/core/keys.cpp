#include "src/core/keys.h"

#include <bit>
#include <stdexcept>
#include <string>

namespace wcs {

std::string_view to_string(Key key) noexcept {
  switch (key) {
    case Key::kSize: return "SIZE";
    case Key::kLog2Size: return "LOG2SIZE";
    case Key::kEtime: return "ETIME";
    case Key::kAtime: return "ATIME";
    case Key::kDayAtime: return "DAY(ATIME)";
    case Key::kNref: return "NREF";
    case Key::kRandom: return "RANDOM";
    case Key::kTypePriority: return "TYPE";
    case Key::kLatency: return "LATENCY";
  }
  return "?";
}

namespace {

/// Removal priority per document type for the TYPE key: byte-heavy media
/// goes first, text/html is kept longest.
constexpr int type_removal_class(FileType type) noexcept {
  switch (type) {
    case FileType::kVideo: return 5;
    case FileType::kAudio: return 4;
    case FileType::kUnknown: return 3;
    case FileType::kCgi: return 2;
    case FileType::kGraphics: return 1;
    case FileType::kText: return 0;
  }
  return 3;
}

}  // namespace

std::int64_t key_rank(Key key, const CacheEntry& entry) noexcept {
  switch (key) {
    case Key::kSize:
      return -static_cast<std::int64_t>(entry.size);
    case Key::kLog2Size:
      // floor(log2(size)); size 0 cannot occur for a cached copy (the §1.1
      // validator resolves zero sizes), but map it below every real bucket
      // anyway so the comparator stays total.
      return entry.size == 0 ? 1
                             : -static_cast<std::int64_t>(std::bit_width(entry.size) - 1);
    case Key::kEtime:
      return entry.etime;
    case Key::kAtime:
      return entry.atime;
    case Key::kDayAtime:
      return day_of(entry.atime);
    case Key::kNref:
      return static_cast<std::int64_t>(entry.nref);
    case Key::kRandom:
      // Shift into int64 order-preservingly (tags are uniform uint64).
      return static_cast<std::int64_t>(entry.random_tag >> 1);
    case Key::kTypePriority:
      return -type_removal_class(entry.type);  // media first, text last
    case Key::kLatency:
      return entry.latency_ms;  // cheapest refetch removed first
  }
  return 0;
}

std::string KeySpec::name() const {
  std::string out;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += '+';
    out += to_string(keys[i]);
  }
  return out.empty() ? "RANDOM" : out;
}

std::vector<KeySpec> KeySpec::experiment2_grid() {
  std::vector<KeySpec> out;
  for (const Key primary : kPrimaryKeys) {
    for (const Key secondary : kAllKeys) {
      if (secondary == primary) continue;  // equal keys are useless (§1.2)
      out.push_back(KeySpec{{primary, secondary}});
    }
  }
  return out;  // 6 * 6 = 36 combinations
}

RankTuple make_rank_tuple(const KeySpec& spec, const CacheEntry& entry) {
  if (spec.keys.size() > kMaxRankKeys) {
    throw std::length_error{"make_rank_tuple: KeySpec deeper than kMaxRankKeys (" +
                            std::to_string(spec.keys.size()) + " keys); raise the "
                            "RankTuple inline bound"};
  }
  RankTuple tuple;
  tuple.count = static_cast<std::uint8_t>(spec.keys.size());
  for (std::size_t i = 0; i < spec.keys.size(); ++i) {
    tuple.ranks[i] = key_rank(spec.keys[i], entry);
  }
  tuple.random_tag = entry.random_tag;
  tuple.url = entry.url;
  return tuple;
}

}  // namespace wcs
