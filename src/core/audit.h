// Runtime invariant auditing for the cache core.
//
// The paper's methodology reduces every removal policy to "keep the cache
// sorted by a key list, evict from the head" (§1.3) — so the simulator is
// only as trustworthy as (a) the byte accounting in Cache and (b) the
// agreement between each policy's internal index and its declared key
// comparator. This header provides:
//
//   AuditReport        an accumulating list of invariant violations
//   Cache::audit()     (and TwoLevelCache / PartitionedCache / CacheHierarchy
//                      counterparts) — always compiled, returns a report
//   WCS_ASSERT(c, msg) fast inline invariant check
//   WCS_AUDIT(obj)     full audit() sweep that aborts on any violation
//
// The macros compile to ((void)0) in release builds (NDEBUG) unless
// WCS_AUDIT_ENABLED is forced (the CMake option WCS_AUDIT, on in the
// asan-ubsan preset). The audit() methods themselves are *always* available:
// tests and the Simulator's audit_interval flag call them directly and
// decide what to do with the report.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wcs {

/// One broken invariant, e.g. {"cache.used_bytes", "used_bytes=10 but ..."}.
struct AuditViolation {
  std::string invariant;  ///< stable dotted id of the rule that fired
  std::string detail;     ///< human-readable evidence
};

/// Accumulates violations across nested audits (cache -> policy -> buckets).
class AuditReport {
 public:
  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t count(std::string_view invariant) const;

  void add(std::string invariant, std::string detail);
  /// Fold `nested` in, prefixing each violation id with "`scope`." —
  /// partitioned/two-level audits scope per-member cache reports this way.
  void absorb(std::string_view scope, const AuditReport& nested);

  /// One line per violation; "audit: ok" when clean.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<AuditViolation> violations_;
};

namespace audit_detail {
/// Prints "file:line: assertion `expr` failed: msg" to stderr and aborts.
[[noreturn]] void assert_fail(const char* expr, const char* message, const char* file,
                              int line) noexcept;
/// Aborts with the report's violations if it is not ok().
void check_report(const AuditReport& report, const char* expr, const char* file, int line);
}  // namespace audit_detail

}  // namespace wcs

// WCS_AUDIT_ENABLED: audits compile in. Defaults to the debug build setting;
// -DWCS_AUDIT=ON (cmake) forces it on in any build type.
#if !defined(WCS_AUDIT_ENABLED) && !defined(NDEBUG)
#define WCS_AUDIT_ENABLED 1
#endif

#if defined(WCS_AUDIT_ENABLED)
#define WCS_ASSERT(condition, message)                                              \
  (static_cast<bool>(condition)                                                     \
       ? static_cast<void>(0)                                                       \
       : ::wcs::audit_detail::assert_fail(#condition, message, __FILE__, __LINE__))
#define WCS_AUDIT(auditable)                                                        \
  ::wcs::audit_detail::check_report((auditable).audit(), #auditable, __FILE__, __LINE__)
#else
#define WCS_ASSERT(condition, message) static_cast<void>(0)
#define WCS_AUDIT(auditable) static_cast<void>(0)
#endif
