// The proxy cache itself.
//
// Storage, byte accounting and the hit rule live here; victim *selection*
// is delegated to a RemovalPolicy. The hit rule is the paper's §1.1
// definition: a request hits iff the cache holds a copy with the same URL
// *and* the same size; a size mismatch means the origin document changed,
// so the stale copy is discarded and the access counts as a miss.
//
// Removal runs on-demand (evict from the policy's head until the incoming
// document fits) and, optionally, periodically at each day boundary down to
// a "comfort level" — the Pitkow/Recker schedule (§1.3), composable with
// any policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/audit.h"
#include "src/core/entry.h"
#include "src/core/flat_index.h"
#include "src/core/policy.h"
#include "src/trace/trace.h"
#include "src/util/rng.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)
class ObsRecorder;   // src/obs/recorder.h — forward-declared so the default
                     // (obs disabled) build path never includes obs headers
class Histogram;     // src/obs/registry.h

struct PeriodicSweepConfig {
  bool enabled = false;
  /// Sweep until used <= comfort_fraction * capacity at each day boundary.
  double comfort_fraction = 0.9;
};

struct CacheConfig {
  /// 0 means infinite (Experiment 1's upper-bound cache).
  std::uint64_t capacity_bytes = 0;
  PeriodicSweepConfig periodic;
  /// Seed for per-entry random tags (the always-random final tiebreak).
  std::uint64_t seed = 0x5ca1ab1e;
  /// Admission control (src/core/policy.h seam; implementations in
  /// src/zoo/admission.h). A factory rather than an instance so every cache
  /// — and every shard of a ShardedCache — owns private admission state;
  /// empty (the default) means always-admit.
  AdmissionFactory admission;
  /// Invoked whenever a document leaves the cache (policy eviction,
  /// size-change replacement, periodic sweep, or explicit erase) — lets an
  /// embedder that stores document bodies elsewhere release them.
  std::function<void(const CacheEntry&)> on_evict;
  /// Observability recorder (src/obs/recorder.h); nullptr = disabled (the
  /// default). A recorder observes and never participates: enabling it must
  /// not change RNG draws, eviction order, or any counter (bit-identity
  /// property, tests/test_obs.cpp; overhead gated by bench_perf's obs leg).
  ObsRecorder* obs = nullptr;
};

struct CacheStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t requested_bytes = 0;
  std::uint64_t hit_bytes = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t size_change_misses = 0;   // URL present, size differed
  std::uint64_t rejected_too_large = 0;   // document bigger than the cache
  std::uint64_t admission_rejects = 0;    // vetoed by the admission policy
  std::uint64_t dead_on_arrival_evictions = 0;  // evicted with nref == 1 (cached, never re-referenced)
  std::uint64_t periodic_sweeps = 0;
  std::uint64_t max_used_bytes = 0;       // high-water mark (MaxNeeded when infinite)

  [[nodiscard]] double hit_rate() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
  [[nodiscard]] double weighted_hit_rate() const noexcept {
    return requested_bytes == 0
               ? 0.0
               : static_cast<double>(hit_bytes) / static_cast<double>(requested_bytes);
  }
};

struct AccessResult {
  bool hit = false;
  bool size_change = false;  // miss caused by a size (consistency) mismatch
  bool inserted = false;
  std::uint32_t evictions = 0;
};

/// The cache's document store: a dense entry vector plus an open-addressing
/// UrlId -> position index (flat_index.h). A lookup is one or two probes of
/// contiguous memory instead of an unordered_map bucket chase; erase is a
/// swap-remove, so iteration stays dense and allocation stays amortized.
class EntryTable {
 public:
  [[nodiscard]] bool contains(UrlId url) const noexcept {
    return index_.find(url) != kInvalidSlot;
  }
  [[nodiscard]] const CacheEntry* find(UrlId url) const noexcept {
    const std::uint32_t i = index_.find(url);
    return i == kInvalidSlot ? nullptr : &dense_[i];
  }
  [[nodiscard]] CacheEntry* find(UrlId url) noexcept {
    const std::uint32_t i = index_.find(url);
    return i == kInvalidSlot ? nullptr : &dense_[i];
  }

  /// Stores `entry`; its url must be absent.
  void insert(const CacheEntry& entry) {
    index_.insert(entry.url, static_cast<std::uint32_t>(dense_.size()));
    dense_.push_back(entry);
  }

  /// Swap-remove: the vector tail fills the vacated position and the index
  /// is redirected; O(1), order of dense() is not preserved.
  bool erase(UrlId url) noexcept {
    const std::uint32_t i = index_.find(url);
    if (i == kInvalidSlot) return false;
    index_.erase(url);
    const std::uint32_t last = static_cast<std::uint32_t>(dense_.size() - 1);
    if (i != last) {
      dense_[i] = dense_[last];
      index_.set(dense_[i].url, i);
    }
    dense_.pop_back();
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return dense_.size(); }
  /// Every cached entry, unordered, contiguous (iteration, audits).
  [[nodiscard]] const std::vector<CacheEntry>& dense() const noexcept { return dense_; }

  /// Index <-> dense agreement under `scope`: sizes match, every mapping
  /// points at the entry that claims its url, plus the probe-chain audit.
  void audit(const char* scope, AuditReport& report) const {
    if (index_.size() != dense_.size()) {
      report.add(std::string{scope} + ".entry_count",
                 "index maps " + std::to_string(index_.size()) + " urls but " +
                     std::to_string(dense_.size()) + " entries are stored");
    }
    index_.for_each([&](UrlId url, std::uint32_t i) {
      if (i >= dense_.size() || dense_[i].url != url) {
        report.add(std::string{scope} + ".entry_slot",
                   "url " + std::to_string(url) + " maps to position " + std::to_string(i) +
                       " which does not hold it");
      }
    });
    index_.audit(scope, report);
  }

 private:
  friend struct AuditTamper;
  UrlSlotTable index_;
  std::vector<CacheEntry> dense_;
};

class Cache {
 public:
  Cache(CacheConfig config, std::unique_ptr<RemovalPolicy> policy);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;
  Cache(Cache&&) = default;
  Cache& operator=(Cache&&) = default;

  /// Serve one request; updates metadata, admits on miss, evicts as needed.
  AccessResult access(SimTime now, UrlId url, std::uint64_t size,
                      FileType type = FileType::kUnknown, std::uint32_t latency_ms = 0);
  AccessResult access(const Request& request) {
    return access(request.time, request.url, request.size, request.type,
                  request.latency_ms);
  }

  [[nodiscard]] bool contains(UrlId url) const { return entries_.contains(url); }
  /// The cached copy, or nullptr. Pointer invalidated by the next mutation.
  [[nodiscard]] const CacheEntry* find(UrlId url) const;

  /// Explicitly remove a document (consistency purge, admin action).
  bool erase(UrlId url);

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept { return config_.capacity_bytes; }
  [[nodiscard]] bool is_infinite() const noexcept { return config_.capacity_bytes == 0; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_bytes_; }
  [[nodiscard]] std::uint64_t free_bytes() const noexcept {
    return is_infinite() ? ~0ULL : config_.capacity_bytes - used_bytes_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] RemovalPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] const RemovalPolicy& policy() const noexcept { return *policy_; }
  /// The cache's private admission instance; nullptr = always-admit.
  [[nodiscard]] const AdmissionPolicy* admission() const noexcept { return admission_.get(); }

  /// Every cached entry, unordered (diagnostics, tests).
  [[nodiscard]] std::vector<CacheEntry> snapshot() const;

  /// Full invariant sweep (always compiled; see src/core/audit.h):
  ///   - used_bytes equals the sum of cached entry sizes and never exceeds
  ///     a finite capacity; the high-water mark is >= the current level
  ///   - per-entry sanity: the entry index maps each url to the entry that
  ///     claims it, nref >= 1, atime >= etime
  ///   - counter sanity: hits <= requests, hit_bytes <= requested_bytes,
  ///     evictions <= insertions <= requests
  ///   - the policy's index mirrors the entry table and its victim order
  ///     still agrees with its declared key comparator
  ///     (RemovalPolicy::audit_index, scoped under "policy.")
  /// O(n log n) — debug/diagnostic use; WCS_AUDIT(cache) aborts on failure.
  [[nodiscard]] AuditReport audit() const;

 private:
  friend struct AuditTamper;
  void advance_day(SimTime now);
  /// Evict until at least `needed` bytes are free; false if impossible.
  bool make_room(SimTime now, std::uint64_t incoming_size);
  void evict(SimTime now, UrlId victim);

  CacheConfig config_;
  std::unique_ptr<RemovalPolicy> policy_;
  std::unique_ptr<AdmissionPolicy> admission_;  // nullptr = always-admit
  EntryTable entries_;
  std::uint64_t used_bytes_ = 0;
  std::int64_t current_day_ = -1;
  CacheStats stats_;
  Rng rng_;
  /// Cached registry handle (stable for the registry's lifetime); non-null
  /// iff config_.obs is set.
  Histogram* evicted_size_hist_ = nullptr;
};

}  // namespace wcs
