// Concurrent sharded cache (ROADMAP item 1, DESIGN.md §13).
//
// Partitions the URL space by hash into N independent shards, each a full
// flat-engine Cache + removal policy behind its own wcs::Mutex. Requests
// for one URL always land on the same shard, so per-shard behaviour is the
// single-threaded Cache's behaviour exactly — eviction order inside a
// shard stays deterministic via the flat engine's (random_tag, url)
// tiebreak — and threads only contend when they touch the same shard.
//
// Determinism contract (tests/test_sharded_cache.cpp):
//   * shards == 1 is bit-identical to a plain Cache fed the same request
//     sequence (shard 0 gets the full capacity and the exact seed);
//   * for a fixed shard count, merged aggregates are bit-identical for any
//     thread count, because each shard sees its own requests in trace
//     order (the load generator's serialization guarantee);
//   * across shard counts, per-URL outcomes are identical whenever no
//     eviction occurs (infinite capacity); with a finite budget, shard-
//     local eviction makes different partitions behave like different
//     (valid) cache configurations — see DESIGN.md §13.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/cache.h"
#include "src/util/thread_annotations.h"

namespace wcs {

/// Stable URL -> shard map: a splitmix64 finalizer over the id, reduced
/// modulo the shard count. Pure function of (url, shards) — independent of
/// insertion order, thread schedule, and capacity, so the routing itself
/// can never be a source of nondeterminism.
[[nodiscard]] constexpr std::uint32_t shard_of_url(UrlId url, std::uint32_t shards) noexcept {
  std::uint64_t x = static_cast<std::uint64_t>(url) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % (shards == 0 ? 1 : shards));
}

struct ShardedCacheConfig {
  /// Total byte budget, split evenly across shards (remainder to the low
  /// shards); 0 = every shard infinite. A positive budget smaller than the
  /// shard count cannot be split meaningfully and is rejected.
  std::uint64_t capacity_bytes = 0;
  std::uint32_t shards = 1;
  PeriodicSweepConfig periodic;
  /// Shard i seeds its Cache with `seed + i`: distinct per-shard tag
  /// streams, and shard 0 of a one-shard cache draws exactly the stream a
  /// plain Cache{seed} would — the shards==1 bit-identity hinges on it.
  std::uint64_t seed = 0x5ca1ab1e;
  /// Admission control factory, invoked once per shard so each shard owns
  /// private admission state under its own lock; empty = always-admit.
  AdmissionFactory admission;
  /// Observability recorder, propagated to every shard. A recorder is
  /// thread-affine (DESIGN.md §10): leave null unless the sharded cache is
  /// driven single-threaded (simulate_sharded); the load generator refuses
  /// to run a concurrent phase against a recording target.
  ObsRecorder* obs = nullptr;
};

/// Per-shard occupancy snapshot (proxy_demo's per-shard table, obs gauges).
struct ShardOccupancy {
  std::uint64_t used_bytes = 0;
  std::uint64_t capacity_bytes = 0;  // 0 = infinite
  std::uint64_t entry_count = 0;
};

class ShardedCache {
 public:
  ShardedCache(ShardedCacheConfig config,
               const std::function<std::unique_ptr<RemovalPolicy>()>& make_policy);

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;
  // Movable (shards live behind stable unique_ptrs); only valid while no
  // thread is concurrently accessing either object, like Cache itself.
  ShardedCache(ShardedCache&&) noexcept = default;
  ShardedCache& operator=(ShardedCache&&) noexcept = default;

  /// Serve one request on its home shard. Thread-safe; calls that race on
  /// distinct shards proceed in parallel, calls on one shard serialize on
  /// its mutex. Determinism additionally requires same-shard calls to
  /// arrive in trace order — the load generator enforces that.
  AccessResult access(SimTime now, UrlId url, std::uint64_t size,
                      FileType type = FileType::kUnknown, std::uint32_t latency_ms = 0);
  AccessResult access(const Request& request) {
    return access(request.time, request.url, request.size, request.type, request.latency_ms);
  }

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t shard_of(UrlId url) const noexcept {
    return shard_of_url(url, shard_count());
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept { return config_.capacity_bytes; }
  /// True when an ObsRecorder is attached. Recorders are thread-affine, so
  /// the load generator refuses a threads > 1 run against a recording cache.
  [[nodiscard]] bool recording() const noexcept { return config_.obs != nullptr; }

  /// Exact aggregate of the per-shard CacheStats: every counter is a plain
  /// sum. max_used_bytes sums per-shard peaks — with a statically split
  /// budget that is the capacity-planning number, but as shards peak at
  /// different moments it is an upper bound on (not exactly) the global
  /// high-water mark, and it varies across shard counts even when every
  /// other counter is invariant.
  /// audit() reconciles this merge against independently kept dispatch
  /// tallies, so a shard silently dropping or double-counting a request is
  /// a detectable invariant violation, not a quiet aggregation error.
  [[nodiscard]] CacheStats merged_stats() const;
  /// Per-shard snapshots, shard index order.
  [[nodiscard]] std::vector<CacheStats> shard_stats() const;
  [[nodiscard]] std::vector<ShardOccupancy> occupancy() const;
  [[nodiscard]] std::uint64_t used_bytes() const;

  /// Full invariant sweep over every shard:
  ///   - each shard's own Cache::audit, scoped "shard<i>."
  ///   - routing: every cached entry lives on shard_of(url)
  ///   - merge reconciliation: each shard's stats counters agree with the
  ///     dispatch tallies the router kept while feeding it
  /// Takes each shard lock in turn (never two at once).
  [[nodiscard]] AuditReport audit() const;

 private:
  friend struct AuditTamper;

  /// One shard: the lock, the cache it guards, and the router-side tallies
  /// audit() reconciles the stats merge against.
  struct Shard {
    Shard(CacheConfig cache_config, std::unique_ptr<RemovalPolicy> policy)
        : cache(std::move(cache_config), std::move(policy)) {}

    mutable Mutex mutex;
    Cache cache WCS_GUARDED_BY(mutex);
    std::uint64_t dispatched_requests WCS_GUARDED_BY(mutex) = 0;
    std::uint64_t dispatched_bytes WCS_GUARDED_BY(mutex) = 0;
  };

  ShardedCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace wcs
