// Removal-policy interface.
//
// The Cache owns document storage and byte accounting; a RemovalPolicy only
// maintains whatever index it needs to answer "which document is removed
// next?". The cache notifies the policy of every insert / hit / removal so
// the index stays consistent, and asks for victims one at a time until the
// incoming document fits (the paper's on-demand criterion, §1.3).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/audit.h"
#include "src/core/entry.h"
#include "src/core/keys.h"
#include "src/util/rng.h"

namespace wcs {

/// The cache's entry table, as handed to RemovalPolicy::audit_index.
using EntryMap = std::unordered_map<UrlId, CacheEntry>;  // node-based-ok: audit-only view, rebuilt O(n) per audit, never on the eviction path

/// Everything a policy may consult when picking a victim.
struct EvictionContext {
  SimTime now = 0;              // time of the request forcing the eviction
  std::uint64_t incoming_size = 0;  // size of the document being admitted
  std::uint64_t needed_bytes = 0;   // bytes still to free (<= incoming_size)
};

class RemovalPolicy {
 public:
  virtual ~RemovalPolicy() = default;

  RemovalPolicy(const RemovalPolicy&) = delete;
  RemovalPolicy& operator=(const RemovalPolicy&) = delete;

  /// Called exactly once by the owning cache before the first access, with
  /// its byte capacity (0 = infinite). Capacity-aware policies (segmented
  /// LRU, W-TinyLFU, the shadow-cache selector — src/zoo/) size their
  /// segments here; the paper's sorting-key policies ignore it.
  virtual void attach(std::uint64_t /*capacity_bytes*/) {}

  /// A copy of `entry` is now cached.
  virtual void on_insert(const CacheEntry& entry) = 0;

  /// `entry` was hit; its atime/nref (and thus key ranks) already reflect
  /// the new access.
  virtual void on_hit(const CacheEntry& entry) = 0;

  /// `entry` left the cache for a reason other than this policy's own
  /// choose_victim answer (size-change replacement, explicit erase).
  virtual void on_remove(const CacheEntry& entry) = 0;

  /// Next document to remove, or nullopt if the policy tracks nothing.
  /// Must not return a URL that is not currently cached.
  [[nodiscard]] virtual std::optional<UrlId> choose_victim(const EvictionContext& ctx) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Current rank tuple of a cached URL, for observability: eviction events
  /// are tagged with the victim's materialized key values (the paper's
  /// "location in sorted list" narrative, per-document). Policies without a
  /// rank index return nullopt. Queried only when recording is enabled —
  /// never on the default hot path.
  [[nodiscard]] virtual std::optional<RankTuple> rank_of(UrlId /*url*/) const {
    return std::nullopt;
  }

  /// Cross-check this policy's internal index against the cache's entry
  /// table, appending one violation per broken invariant. Implementations
  /// must verify (at minimum) that the index tracks exactly the cached URLs
  /// and that the victim order still agrees with the policy's declared key
  /// comparator. Default: nothing to check (stateless policy).
  virtual void audit_index(const EntryMap& entries, AuditReport& report) const;

 protected:
  RemovalPolicy() = default;
};

/// Admission control seam (ROADMAP item 1): decides whether a missed
/// document is worth caching at all, *before* any room is made for it — a
/// veto costs zero evictions. The removal policy never learns of vetoed
/// documents; the cache serves them from origin and counts the veto in
/// CacheStats::admission_rejects. Implementations live in src/zoo/
/// (always-admit, size-threshold, doorkeeper, dead-on-arrival tracker);
/// the cache treats a null admission policy as always-admit.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  AdmissionPolicy(const AdmissionPolicy&) = delete;
  AdmissionPolicy& operator=(const AdmissionPolicy&) = delete;

  /// Called exactly once by the owning cache with its capacity (0 = infinite).
  virtual void attach(std::uint64_t /*capacity_bytes*/) {}

  /// Cache this missed document? Called once per candidate insertion,
  /// before eviction; false means "serve from origin, never cache". May
  /// mutate internal state (reference history, doorkeeper bits).
  [[nodiscard]] virtual bool should_admit(SimTime now, UrlId url, std::uint64_t size) = 0;

  /// Feedback mirroring RemovalPolicy's notifications, so trackers can
  /// observe outcomes (e.g. the dead-on-arrival tracker watches on_remove
  /// for entries that left with nref == 1).
  virtual void on_insert(const CacheEntry& /*entry*/) {}
  virtual void on_hit(const CacheEntry& /*entry*/) {}
  virtual void on_remove(const CacheEntry& /*entry*/) {}

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Invariant sweep, mirroring RemovalPolicy::audit_index (admission
  /// policies keep no per-entry index, so there is no EntryMap to check
  /// against — only internal invariants). Default: stateless, nothing to do.
  virtual void audit_index(AuditReport& /*report*/) const {}

 protected:
  AdmissionPolicy() = default;
};

/// Per-cache admission factory: each cache (and each shard of a
/// ShardedCache) builds its own instance so admission state is never shared
/// across shard locks. An empty factory (or one returning nullptr) means
/// always-admit.
using AdmissionFactory = std::function<std::unique_ptr<AdmissionPolicy>()>;

/// Factory for the paper's policies.
///
///   make_sorted_policy({SIZE})                the paper's winner
///   make_sorted_policy({ATIME})               LRU
///   make_sorted_policy({ETIME})               FIFO
///   make_sorted_policy({NREF})                LFU
///   make_sorted_policy({NREF, ATIME, SIZE})   Hyper-G
///   make_lru_min()                            LRU-MIN (exact, §1.2)
///   make_pitkow_recker()                      day-dependent key (§1.2)
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_sorted_policy(KeySpec spec,
                                                                std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_lru_min(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_pitkow_recker(std::uint64_t seed = 1);

/// Literature aliases (Table 3).
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_fifo(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_lru(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_lfu(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_hyper_g(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_size(std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_random(std::uint64_t seed = 1);

/// Policy by lower-case name ("lru", "size", "lru-min", "pitkow-recker",
/// "fifo", "lfu", "hyper-g", "random", "log2size", plus any name added via
/// register_policy — the zoo registers "gds"/"gdsf"/"slru"/"tinylfu"/
/// "adaptive"); nullptr if unknown.
[[nodiscard]] std::unique_ptr<RemovalPolicy> make_policy_by_name(std::string_view name,
                                                                 std::uint64_t seed = 1);

/// Runtime extension point for make_policy_by_name. Core cannot depend on
/// higher layers (tools/wcs_analyze.py include DAG), so modules above it —
/// src/zoo/ — register their policies here at startup
/// (zoo::register_zoo_policies()) and every by-name consumer (proxy config
/// strings, topology tiers, demos) resolves them transparently. Built-in
/// names always win; re-registering a name replaces the previous factory
/// (idempotent registration). Thread-safe: ParallelRunner cells resolve
/// names concurrently.
using NamedPolicyFactory = std::function<std::unique_ptr<RemovalPolicy>(std::uint64_t seed)>;
void register_policy(std::string_view name, NamedPolicyFactory factory);
/// Registered (extension) names, sorted — diagnostics and name-coverage
/// tests; built-ins are not included.
[[nodiscard]] std::vector<std::string> registered_policy_names();

}  // namespace wcs
