// SortedPolicy — the taxonomy engine.
//
// Keeps every cached document in a flat 4-ary min-heap of arena slots
// ordered by its materialized RankTuple (primary key, secondary key, ...,
// random tag, url). The victim is always the heap root: the head of the
// paper's sorted list. Rank columns are struct-of-arrays (one contiguous
// vector per key depth), so a hit re-ranks by overwriting the slot's ranks
// in place and sifting — no tree nodes, no pointer chasing, no allocation.
// The comparator is bit-for-bit the RankTuple order (keys.h), and it is a
// strict total order (url final tiebreak), so the heap root is the unique
// minimum — exactly the victim the former std::set surfaced at begin()
// (equivalence argument: DESIGN.md §12; enforced by
// tests/test_flat_engine.cpp across the full Experiment-2 grid).
#pragma once

#include "src/core/flat_index.h"
#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class SortedPolicy final : public RemovalPolicy {
 public:
  explicit SortedPolicy(KeySpec spec, std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  /// O(1) rebuild of the slot's tuple (obs: eviction-event rank tagging).
  [[nodiscard]] std::optional<RankTuple> rank_of(UrlId url) const override;

  [[nodiscard]] const KeySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t tracked() const noexcept { return table_.size(); }

  /// Position (0-based from the removal head) of a URL in the sorted list;
  /// the paper's simulator reported "location in sorted list of each URL
  /// hit".
  ///
  /// COST: O(n). A heap has no sorted iteration order, so this counts the
  /// slots that compare below the target. It exists for audits, tests and
  /// offline diagnostics only and must never appear on a simulation hot
  /// path — tools/lint.py's `position-of-hot-path` rule rejects any call
  /// site under src/.
  [[nodiscard]] std::optional<std::size_t> position_of(UrlId url) const;

  /// Verifies heap/table/arena agreement with the declared comparator:
  /// every cached URL tracked exactly once, every stored rank column equal
  /// to the freshly recomputed make_rank_tuple(spec, entry), the heap-order
  /// and position-column invariants, the arena free list, and the heap root
  /// equal to the recomputed minimum (the §1.3 victim).
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;

  /// The RankTuple strict total order, read straight off the SoA columns.
  struct SlotLess {
    const SortedPolicy* p;
    bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
      for (std::size_t k = 0; k < p->key_count_; ++k) {
        const std::int64_t ra = p->rank_cols_[k][a];
        const std::int64_t rb = p->rank_cols_[k][b];
        if (ra != rb) return ra < rb;
      }
      if (p->tags_[a] != p->tags_[b]) return p->tags_[a] < p->tags_[b];
      return p->urls_[a] < p->urls_[b];
    }
  };

  /// Slot of `url` via the victim memo (set by choose_victim, so the
  /// make_room pop loop skips the table probe) or the table.
  [[nodiscard]] std::uint32_t slot_of(UrlId url) const noexcept;
  /// Mints a slot and grows every per-slot column to cover it.
  [[nodiscard]] std::uint32_t acquire_slot();
  void write_ranks(std::uint32_t slot, const CacheEntry& entry);
  [[nodiscard]] RankTuple tuple_of(std::uint32_t slot) const noexcept;

  KeySpec spec_;
  std::string name_;
  std::size_t key_count_ = 0;

  // Struct-of-arrays per-slot state (grown by acquire_slot, never shrunk —
  // slot count is bounded by peak residency, not request count).
  std::array<std::vector<std::int64_t>, kMaxRankKeys> rank_cols_;
  std::vector<std::uint64_t> tags_;
  std::vector<UrlId> urls_;
  std::vector<std::uint32_t> heap_pos_;

  SlotArena arena_;
  UrlSlotTable table_;
  DaryHeap<SlotLess> heap_;

  /// choose_victim -> evict -> on_remove memo: the batched evict-until-fit
  /// loop removes the slot it just surfaced without re-probing the table.
  std::uint32_t victim_slot_ = kInvalidSlot;
};

}  // namespace wcs
