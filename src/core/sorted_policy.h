// SortedPolicy — the taxonomy engine.
//
// Keeps every cached document in a std::set ordered by its materialized
// RankTuple (primary key, secondary key, ..., random tag, url). The victim
// is always *begin()*: the head of the paper's sorted list. All operations
// are O(log n); a hit re-ranks because ATIME/NREF/DAY(ATIME) ranks move —
// implemented as a node extract + relink so the hot path never allocates
// (RankTuple itself is a fixed-capacity inline array, see keys.h).
#pragma once

#include <set>
#include <unordered_map>

#include "src/core/policy.h"

namespace wcs {

struct AuditTamper;  // test-only corruption hooks (tests/test_audit.cpp)

class SortedPolicy final : public RemovalPolicy {
 public:
  explicit SortedPolicy(KeySpec spec, std::uint64_t seed = 1);

  void on_insert(const CacheEntry& entry) override;
  void on_hit(const CacheEntry& entry) override;
  void on_remove(const CacheEntry& entry) override;
  [[nodiscard]] std::optional<UrlId> choose_victim(const EvictionContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  /// O(1) copy of the stored tuple (obs: eviction-event rank tagging).
  [[nodiscard]] std::optional<RankTuple> rank_of(UrlId url) const override {
    const auto it = index_.find(url);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] const KeySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t tracked() const noexcept { return index_.size(); }

  /// Position (0-based from the removal head) of a URL in the sorted list;
  /// the paper's simulator reported "location in sorted list of each URL
  /// hit".
  ///
  /// COST: O(n). std::set iterators are not random-access, so this walks
  /// the order set from begin() via std::distance. It exists for audits,
  /// tests and offline diagnostics only and must never appear on a
  /// simulation hot path — tools/lint.py's `position-of-hot-path` rule
  /// rejects any call site under src/.
  [[nodiscard]] std::optional<std::size_t> position_of(UrlId url) const;

  /// Verifies index/order agreement with the declared comparator: every
  /// cached URL tracked exactly once, every stored tuple equal to the
  /// freshly recomputed make_rank_tuple(spec, entry), and the head of
  /// order_ equal to the recomputed minimum (the §1.3 victim).
  void audit_index(const EntryMap& entries, AuditReport& report) const override;

 private:
  friend struct AuditTamper;
  KeySpec spec_;
  std::string name_;
  std::set<RankTuple> order_;
  std::unordered_map<UrlId, RankTuple> index_;  // current tuple per URL
};

}  // namespace wcs
