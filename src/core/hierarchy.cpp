#include "src/core/hierarchy.h"

#include <stdexcept>

namespace wcs {

CacheHierarchy::CacheHierarchy(std::vector<LevelSpec> levels) {
  if (levels.empty()) throw std::invalid_argument{"CacheHierarchy: no levels"};
  levels_.reserve(levels.size());
  for (auto& spec : levels) {
    levels_.emplace_back(std::move(spec.config), std::move(spec.policy));
  }
  stats_.resize(levels_.size());
}

CacheHierarchy::Result CacheHierarchy::access(SimTime now, UrlId url, std::uint64_t size,
                                              FileType type) {
  ++requests_;
  requested_bytes_ += size;
  // Probe outward. Every probed-and-missed level admits the document (the
  // access() call already did), so nearer levels are refilled on the way.
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    const AccessResult result = levels_[k].access(now, url, size, type);
    if (result.hit) {
      ++stats_[k].hits;
      stats_[k].hit_bytes += size;
      return {static_cast<int>(k)};
    }
  }
  return {-1};
}

double CacheHierarchy::hit_rate_of(std::size_t level) const {
  return requests_ == 0 ? 0.0
                        : static_cast<double>(stats_.at(level).hits) /
                              static_cast<double>(requests_);
}

double CacheHierarchy::weighted_hit_rate_of(std::size_t level) const {
  return requested_bytes_ == 0 ? 0.0
                               : static_cast<double>(stats_.at(level).hit_bytes) /
                                     static_cast<double>(requested_bytes_);
}

AuditReport CacheHierarchy::audit() const {
  AuditReport report;
  std::uint64_t total_hits = 0;
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    report.absorb("level" + std::to_string(k), levels_[k].audit());
    total_hits += stats_[k].hits;
  }
  if (!levels_.empty() && levels_[0].stats().requests != requests_) {
    report.add("hierarchy.level0_requests",
               "level 0 saw " + std::to_string(levels_[0].stats().requests) +
                   " requests but the hierarchy recorded " + std::to_string(requests_));
  }
  if (total_hits > requests_) {
    report.add("hierarchy.hit_flow", "per-level hits exceed total requests");
  }
  return report;
}

double CacheHierarchy::combined_hit_rate() const {
  std::uint64_t total = 0;
  for (const LevelStats& stats : stats_) total += stats.hits;
  return requests_ == 0 ? 0.0
                        : static_cast<double>(total) / static_cast<double>(requests_);
}

}  // namespace wcs
