// Delta encoding for semi-static documents — the paper's §5 open problem 2:
//
//   "in response to a conditional GET a server could send the 'diff' of the
//    current version and the version matching the Last-Modified date sent
//    by the client"
//
// This module provides the diff itself (an rsync-style copy/add delta with
// greedy block matching) and the wire format; src/proxy wires it into the
// conditional-GET exchange via the `A-IM: wcs-delta` / `IM: wcs-delta`
// headers (the shape later standardized by RFC 3229).
//
// Wire format, little-endian u32 lengths:
//   'C' <u32 offset> <u32 length>      copy from the base version
//   'A' <u32 length> <bytes>           literal insertion
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace wcs {

/// Encode `target` as a delta against `base`. Always succeeds; worst case
/// is one big ADD (delta slightly larger than the target).
[[nodiscard]] std::string encode_delta(std::string_view base, std::string_view target);

/// Reconstruct the target from `base` + `delta`; nullopt if the delta is
/// malformed or references out-of-range base bytes.
[[nodiscard]] std::optional<std::string> apply_delta(std::string_view base,
                                                     std::string_view delta);

/// delta bytes / target bytes — < 1 means the delta transfer saves bytes.
/// Returns 1.0 for an empty target.
[[nodiscard]] double delta_ratio(std::string_view base, std::string_view target);

/// True when sending the delta beats re-sending the document outright
/// (with a little headroom for headers).
[[nodiscard]] bool delta_worthwhile(std::string_view base, std::string_view target);

}  // namespace wcs
