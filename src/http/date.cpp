#include "src/http/date.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "src/util/strings.h"

namespace wcs {

namespace {

constexpr std::array<const char*, 12> kMonths = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                                 "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
constexpr std::array<const char*, 7> kWeekdays = {"Mon", "Tue", "Wed", "Thu",
                                                  "Fri", "Sat", "Sun"};

constexpr int kEpochYear = 1995;

constexpr bool leap(int y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) noexcept {
  constexpr std::array<int, 12> base = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 1 && leap(y) ? 29 : base[static_cast<std::size_t>(m)];
}

int month_from_name(std::string_view name) noexcept {
  for (int m = 0; m < 12; ++m) {
    if (iequals(name, kMonths[static_cast<std::size_t>(m)])) return m;
  }
  return -1;
}

std::optional<SimTime> assemble(int year, int month, int day, int hh, int mm, int ss) {
  if (month < 0 || day < 1 || hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss > 60) {
    return std::nullopt;
  }
  if (day > days_in_month(year, month)) return std::nullopt;
  std::int64_t days = 0;
  if (year >= kEpochYear) {
    for (int y = kEpochYear; y < year; ++y) days += leap(y) ? 366 : 365;
  } else {
    for (int y = year; y < kEpochYear; ++y) days -= leap(y) ? 366 : 365;
  }
  for (int m = 0; m < month; ++m) days += days_in_month(year, m);
  days += day - 1;
  return days * kSecondsPerDay + hh * kSecondsPerHour + mm * kSecondsPerMinute + ss;
}

}  // namespace

std::string to_http_date(SimTime t) {
  std::int64_t days = day_of(t);
  const SimTime sec = second_of_day(t);
  int year = kEpochYear;
  while (days >= (leap(year) ? 366 : 365)) {
    days -= leap(year) ? 366 : 365;
    ++year;
  }
  while (days < 0) {
    --year;
    days += leap(year) ? 366 : 365;
  }
  int month = 0;
  while (days >= days_in_month(year, month)) {
    days -= days_in_month(year, month);
    ++month;
  }
  // Day 0 of the simulation epoch (01/Jan/1995) was a Sunday; weekday_of()
  // treats day 0 as Monday for workload shaping, but HTTP dates must carry
  // the true weekday of the rendered calendar date.
  const std::int64_t epoch_days = day_of(t);
  const int weekday = static_cast<int>(((epoch_days % 7) + 7 + 6) % 7);  // day 0 -> Sun
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s, %02d %s %04d %02d:%02d:%02d GMT",
                kWeekdays[static_cast<std::size_t>(weekday)], static_cast<int>(days) + 1,
                kMonths[static_cast<std::size_t>(month)], year,
                static_cast<int>(sec / kSecondsPerHour),
                static_cast<int>(sec % kSecondsPerHour / kSecondsPerMinute),
                static_cast<int>(sec % kSecondsPerMinute));
  return buf;
}

std::optional<SimTime> parse_http_date(std::string_view text) {
  const std::string s{trim(text)};
  int day = 0;
  int year = 0;
  int hh = 0;
  int mm = 0;
  int ss = 0;
  char month_name[4] = {};
  char weekday[10] = {};

  // RFC 1123: "Sun, 06 Nov 1994 08:49:37 GMT"
  if (std::sscanf(s.c_str(), "%3s, %d %3s %d %d:%d:%d", weekday, &day, month_name, &year,
                  &hh, &mm, &ss) == 7) {
    return assemble(year, month_from_name(month_name), day, hh, mm, ss);
  }
  // RFC 850: "Sunday, 06-Nov-94 08:49:37 GMT"
  if (std::sscanf(s.c_str(), "%9[A-Za-z], %d-%3s-%d %d:%d:%d", weekday, &day, month_name,
                  &year, &hh, &mm, &ss) == 7) {
    if (year < 100) year += year < 70 ? 2000 : 1900;
    return assemble(year, month_from_name(month_name), day, hh, mm, ss);
  }
  // asctime: "Sun Nov  6 08:49:37 1994"
  if (std::sscanf(s.c_str(), "%3s %3s %d %d:%d:%d %d", weekday, month_name, &day, &hh, &mm,
                  &ss, &year) == 7) {
    return assemble(year, month_from_name(month_name), day, hh, mm, ss);
  }
  return std::nullopt;
}

}  // namespace wcs
