// Cacheability and freshness rules for an HTTP/1.0 proxy, as the paper's
// setting assumes (§1): GET-only, status 200, no reliable dynamic-document
// marker, consistency estimated via Last-Modified and conditional GET.
#pragma once

#include <optional>

#include "src/http/message.h"
#include "src/util/simtime.h"

namespace wcs {

/// May this exchange be stored by a shared proxy cache?
///   - method GET, status 200
///   - no "Pragma: no-cache" on either side
///   - not dynamically generated (query string / cgi path) — HTTP/1.0 has
///     no reliable marker, so the URL heuristic of §1 applies
///   - no Authorization on the request
[[nodiscard]] bool is_cacheable(const HttpRequest& request, const HttpResponse& response);

/// Evaluate a conditional GET: true if the cached copy (with the given
/// Last-Modified time) is still fresh relative to the request's
/// If-Modified-Since, i.e. a 304 is the right answer.
[[nodiscard]] bool not_modified_since(const HttpRequest& request, SimTime last_modified);

/// Last-Modified of a response, if present and parseable.
[[nodiscard]] std::optional<SimTime> last_modified_of(const HttpResponse& response);

}  // namespace wcs
