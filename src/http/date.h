// HTTP date handling. HTTP/1.0 servers emitted three date formats
// (RFC 1123, RFC 850, asctime); a proxy must parse all three to evaluate
// If-Modified-Since against Last-Modified, and should always emit RFC 1123.
// Times map onto the simulator's SimTime (seconds since the 1995 epoch).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "src/util/simtime.h"

namespace wcs {

/// "Sun, 06 Nov 1994 08:49:37 GMT" (RFC 1123) from a SimTime.
[[nodiscard]] std::string to_http_date(SimTime t);

/// Parse RFC 1123 ("Sun, 06 Nov 1994 08:49:37 GMT"), RFC 850
/// ("Sunday, 06-Nov-94 08:49:37 GMT") or asctime ("Sun Nov  6 08:49:37
/// 1994") dates. Returns nullopt on anything else.
[[nodiscard]] std::optional<SimTime> parse_http_date(std::string_view text);

}  // namespace wcs
