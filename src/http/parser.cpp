#include "src/http/parser.h"

#include "src/util/strings.h"

namespace wcs {

namespace {

/// Find the end of the header section ("\r\n\r\n" or the lenient "\n\n").
/// Returns npos while incomplete.
std::size_t find_header_end(std::string_view text) {
  const auto crlf = text.find("\r\n\r\n");
  const auto lf = text.find("\n\n");
  if (crlf == std::string_view::npos) return lf == std::string_view::npos ? lf : lf + 2;
  if (lf == std::string_view::npos || crlf + 2 <= lf) return crlf + 4;
  return lf + 2;
}

/// One line up to (and excluding) its terminator; advances `rest`.
std::optional<std::string_view> take_line(std::string_view& rest) {
  const auto nl = rest.find('\n');
  if (nl == std::string_view::npos) return std::nullopt;
  std::string_view line = rest.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  rest = rest.substr(nl + 1);
  return line;
}

}  // namespace

std::optional<std::size_t> parse_header_block(std::string_view text, HeaderMap& out) {
  std::string_view rest = text;
  std::string pending_name;
  std::string pending_value;
  const auto flush_pending = [&] {
    if (!pending_name.empty()) out.add(std::move(pending_name), std::move(pending_value));
    pending_name.clear();
    pending_value.clear();
  };
  while (true) {
    const auto line = take_line(rest);
    if (!line) return 0;  // incomplete
    if (line->empty()) {
      flush_pending();
      return text.size() - rest.size();
    }
    if (line->front() == ' ' || line->front() == '\t') {
      // Obsolete header folding: continuation of the previous value.
      if (pending_name.empty()) return std::nullopt;
      pending_value += ' ';
      pending_value += trim(*line);
      continue;
    }
    flush_pending();
    const auto colon = line->find(':');
    if (colon == std::string_view::npos || colon == 0) return std::nullopt;
    const std::string_view name = trim(line->substr(0, colon));
    if (name.empty() || name.find(' ') != std::string_view::npos) return std::nullopt;
    pending_name = std::string{name};
    pending_value = std::string{trim(line->substr(colon + 1))};
  }
}

std::optional<HttpRequest> parse_request(std::string_view text) {
  RequestParser parser;
  auto messages = parser.feed(text);
  if (messages.size() != 1 || parser.failed()) return std::nullopt;
  return std::move(messages.front());
}

std::optional<HttpResponse> parse_response(std::string_view text) {
  ResponseParser parser;
  auto messages = parser.feed(text);
  if (parser.failed()) return std::nullopt;
  if (messages.empty()) {
    auto last = parser.finish();
    if (!last) return std::nullopt;
    return last;
  }
  return std::move(messages.front());
}

std::vector<HttpRequest> RequestParser::feed(std::string_view bytes) {
  std::vector<HttpRequest> out;
  if (failed_) return out;
  buffer_.append(bytes);
  while (true) {
    const std::string_view view{buffer_};
    const auto header_end = find_header_end(view);
    if (header_end == std::string_view::npos) return out;

    std::string_view rest = view;
    const auto start_line = take_line(rest);
    if (!start_line) return out;
    // METHOD SP TARGET [SP VERSION]
    const auto fields = split(trim(*start_line), ' ');
    std::vector<std::string_view> tokens;
    for (const auto f : fields) {
      if (!f.empty()) tokens.push_back(f);
    }
    if (tokens.size() < 2 || tokens.size() > 3) {
      failed_ = true;
      return out;
    }
    HttpRequest request;
    request.method = std::string{tokens[0]};
    request.target = std::string{tokens[1]};
    request.version = tokens.size() == 3 ? std::string{tokens[2]} : "HTTP/0.9";

    HeaderMap headers;
    const auto consumed = parse_header_block(view.substr(view.size() - rest.size()), headers);
    if (!consumed) {
      failed_ = true;
      return out;
    }
    if (*consumed == 0) return out;  // incomplete headers
    request.headers = std::move(headers);

    const std::size_t body_start = (view.size() - rest.size()) + *consumed;
    const std::uint64_t body_len = request.headers.content_length().value_or(0);
    if (view.size() - body_start < body_len) return out;  // incomplete body
    request.body = std::string{view.substr(body_start, body_len)};
    buffer_.erase(0, body_start + body_len);
    out.push_back(std::move(request));
  }
}

void RequestParser::reset() {
  buffer_.clear();
  failed_ = false;
}

std::vector<HttpResponse> ResponseParser::feed(std::string_view bytes) {
  std::vector<HttpResponse> out;
  if (failed_) return out;
  buffer_.append(bytes);
  while (true) {
    const std::string_view view{buffer_};
    const auto header_end = find_header_end(view);
    if (header_end == std::string_view::npos) return out;

    std::string_view rest = view;
    const auto start_line = take_line(rest);
    if (!start_line) return out;
    // VERSION SP STATUS [SP REASON]
    const std::string_view line = trim(*start_line);
    const auto sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || !starts_with(line, "HTTP/")) {
      failed_ = true;
      return out;
    }
    const std::string_view after = trim_left(line.substr(sp1 + 1));
    const auto sp2 = after.find(' ');
    const std::string_view status_text =
        sp2 == std::string_view::npos ? after : after.substr(0, sp2);
    const auto status = parse_u64(status_text);
    if (!status || *status < 100 || *status > 599) {
      failed_ = true;
      return out;
    }
    HttpResponse response;
    response.version = std::string{line.substr(0, sp1)};
    response.status = static_cast<int>(*status);
    response.reason =
        sp2 == std::string_view::npos ? std::string{} : std::string{trim(after.substr(sp2 + 1))};

    HeaderMap headers;
    const auto consumed = parse_header_block(view.substr(view.size() - rest.size()), headers);
    if (!consumed) {
      failed_ = true;
      return out;
    }
    if (*consumed == 0) return out;
    response.headers = std::move(headers);

    const std::size_t body_start = (view.size() - rest.size()) + *consumed;
    const auto declared = response.headers.content_length();
    if (!declared) {
      // Close-delimited body: wait for finish(). Nothing further can be
      // parsed from this connection.
      return out;
    }
    if (view.size() - body_start < *declared) return out;
    response.body = std::string{view.substr(body_start, *declared)};
    buffer_.erase(0, body_start + *declared);
    out.push_back(std::move(response));
  }
}

std::optional<HttpResponse> ResponseParser::finish() {
  if (failed_ || buffer_.empty()) return std::nullopt;
  const std::string_view view{buffer_};
  const auto header_end = find_header_end(view);
  if (header_end == std::string_view::npos) return std::nullopt;

  std::string_view rest = view;
  const auto start_line = take_line(rest);
  if (!start_line) return std::nullopt;
  const std::string_view line = trim(*start_line);
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || !starts_with(line, "HTTP/")) return std::nullopt;
  const std::string_view after = trim_left(line.substr(sp1 + 1));
  const auto sp2 = after.find(' ');
  const auto status = parse_u64(sp2 == std::string_view::npos ? after : after.substr(0, sp2));
  if (!status) return std::nullopt;

  HttpResponse response;
  response.version = std::string{line.substr(0, sp1)};
  response.status = static_cast<int>(*status);
  response.reason =
      sp2 == std::string_view::npos ? std::string{} : std::string{trim(after.substr(sp2 + 1))};
  HeaderMap headers;
  const auto consumed = parse_header_block(view.substr(view.size() - rest.size()), headers);
  if (!consumed || *consumed == 0) return std::nullopt;
  response.headers = std::move(headers);
  const std::size_t body_start = (view.size() - rest.size()) + *consumed;
  response.body = std::string{view.substr(body_start)};
  buffer_.clear();
  return response;
}

void ResponseParser::reset() {
  buffer_.clear();
  failed_ = false;
}

}  // namespace wcs
