#include "src/http/message.h"

#include "src/util/strings.h"

namespace wcs {

void HeaderMap::add(std::string name, std::string value) {
  headers_.push_back({std::move(name), std::move(value)});
}

void HeaderMap::set(std::string_view name, std::string value) {
  bool replaced = false;
  for (auto it = headers_.begin(); it != headers_.end();) {
    if (iequals(it->name, name)) {
      if (!replaced) {
        it->value = std::move(value);
        replaced = true;
        ++it;
      } else {
        it = headers_.erase(it);
      }
    } else {
      ++it;
    }
  }
  if (!replaced) add(std::string{name}, std::move(value));
}

void HeaderMap::remove(std::string_view name) {
  std::erase_if(headers_, [name](const HttpHeader& h) { return iequals(h.name, name); });
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const noexcept {
  for (const auto& header : headers_) {
    if (iequals(header.name, name)) return header.value;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> HeaderMap::content_length() const noexcept {
  const auto value = get("Content-Length");
  if (!value) return std::nullopt;
  return parse_u64(trim(*value));
}

namespace {

void serialize_headers(std::string& out, const HeaderMap& headers) {
  for (const auto& header : headers.all()) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  out += "\r\n";
}

}  // namespace

std::string HttpRequest::serialize() const {
  std::string out;
  out.reserve(64 + target.size() + body.size());
  out += method;
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  serialize_headers(out, headers);
  out += body;
  return out;
}

std::string HttpResponse::serialize() const {
  std::string out;
  out.reserve(64 + body.size());
  out += version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  serialize_headers(out, headers);
  out += body;
  return out;
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Moved Temporarily";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace wcs
