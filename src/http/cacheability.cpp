#include "src/http/cacheability.h"

#include "src/http/date.h"
#include "src/util/strings.h"

namespace wcs {

namespace {

bool has_no_cache(const HeaderMap& headers) {
  const auto pragma = headers.get("Pragma");
  return pragma && to_lower(*pragma).find("no-cache") != std::string::npos;
}

}  // namespace

bool is_cacheable(const HttpRequest& request, const HttpResponse& response) {
  if (!iequals(request.method, "GET")) return false;
  if (response.status != 200) return false;
  if (has_no_cache(request.headers) || has_no_cache(response.headers)) return false;
  if (request.headers.contains("Authorization")) return false;
  if (looks_dynamic(request.target)) return false;
  return true;
}

bool not_modified_since(const HttpRequest& request, SimTime last_modified) {
  const auto header = request.headers.get("If-Modified-Since");
  if (!header) return false;
  const auto since = parse_http_date(*header);
  if (!since) return false;  // unparseable condition: treat as absent
  return last_modified <= *since;
}

std::optional<SimTime> last_modified_of(const HttpResponse& response) {
  const auto header = response.headers.get("Last-Modified");
  if (!header) return std::nullopt;
  return parse_http_date(*header);
}

}  // namespace wcs
