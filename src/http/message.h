// HTTP/1.0 message model (RFC 1945 era — the protocol the paper's proxies
// spoke). Requests and responses carry a header list preserving order and
// duplicates, with case-insensitive lookup, exactly as a proxy must.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wcs {

struct HttpHeader {
  std::string name;
  std::string value;
};

class HeaderMap {
 public:
  void add(std::string name, std::string value);
  /// Replace the first occurrence (adding if absent); removes duplicates.
  void set(std::string_view name, std::string value);
  void remove(std::string_view name);

  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const noexcept;
  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return get(name).has_value();
  }
  [[nodiscard]] const std::vector<HttpHeader>& all() const noexcept { return headers_; }
  [[nodiscard]] std::size_t size() const noexcept { return headers_.size(); }

  /// Content-Length parsed as unsigned decimal, if present and well-formed.
  [[nodiscard]] std::optional<std::uint64_t> content_length() const noexcept;

 private:
  std::vector<HttpHeader> headers_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target;          // absolute URL (proxy form) or origin path
  std::string version = "HTTP/1.0";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.0";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
};

/// Standard reason phrase for a status code ("OK", "Not Modified", ...).
[[nodiscard]] std::string_view reason_phrase(int status) noexcept;

}  // namespace wcs
