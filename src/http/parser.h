// Incremental HTTP/1.0 message parsers.
//
// Both parsers consume bytes as they arrive (possibly one at a time — TCP
// reassembly offers no framing guarantees) and emit complete messages.
// Bodies are delimited by Content-Length; a response without one extends to
// connection close (finish() flushes it), which was the common HTTP/1.0
// server behaviour.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/message.h"

namespace wcs {

/// Parse a single request/response from a complete buffer (convenience).
[[nodiscard]] std::optional<HttpRequest> parse_request(std::string_view text);
[[nodiscard]] std::optional<HttpResponse> parse_response(std::string_view text);

/// Streaming request parser: feed() returns any number of completed
/// requests (pipelined GETs arrive back to back on one connection).
class RequestParser {
 public:
  /// Returns completed messages; keeps unconsumed bytes buffered.
  std::vector<HttpRequest> feed(std::string_view bytes);

  [[nodiscard]] bool has_partial() const noexcept { return !buffer_.empty(); }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  void reset();

 private:
  std::string buffer_;
  bool failed_ = false;
};

/// Streaming response parser. HTTP/1.0 responses without Content-Length are
/// terminated by connection close: call finish() at stream end to flush.
class ResponseParser {
 public:
  std::vector<HttpResponse> feed(std::string_view bytes);
  /// Signal end of stream; returns the final close-delimited response, if a
  /// complete header section was seen.
  std::optional<HttpResponse> finish();

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  void reset();

 private:
  std::string buffer_;
  bool failed_ = false;
};

/// Parse the header block starting after the start line. Returns the number
/// of bytes consumed including the blank line, or 0 if incomplete, or
/// nullopt if malformed. Exposed for tests.
[[nodiscard]] std::optional<std::size_t> parse_header_block(std::string_view text,
                                                            HeaderMap& out);

}  // namespace wcs
