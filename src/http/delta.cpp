#include "src/http/delta.h"

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace wcs {

namespace {

constexpr std::size_t kBlock = 32;  // match granularity

void put_u32(std::string& out, std::uint32_t value) {
  char bytes[4];
  bytes[0] = static_cast<char>(value & 0xff);
  bytes[1] = static_cast<char>((value >> 8) & 0xff);
  bytes[2] = static_cast<char>((value >> 16) & 0xff);
  bytes[3] = static_cast<char>((value >> 24) & 0xff);
  out.append(bytes, 4);
}

bool get_u32(std::string_view& in, std::uint32_t& value) {
  if (in.size() < 4) return false;
  value = static_cast<std::uint8_t>(in[0]) | (static_cast<std::uint8_t>(in[1]) << 8) |
          (static_cast<std::uint8_t>(in[2]) << 16) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[3])) << 24);
  in.remove_prefix(4);
  return true;
}

std::uint64_t block_hash(const char* data) {
  // FNV-1a over one block; cheap and collision-checked by byte comparison.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < kBlock; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void flush_literal(std::string& delta, std::string_view target, std::size_t from,
                   std::size_t to) {
  while (from < to) {
    const std::size_t len = to - from;
    put_u32((delta += 'A', delta), static_cast<std::uint32_t>(len));
    delta.append(target.data() + from, len);
    from += len;
  }
}

}  // namespace

std::string encode_delta(std::string_view base, std::string_view target) {
  std::string delta;
  if (target.empty()) return delta;

  // Index every block-aligned window of the base.
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  if (base.size() >= kBlock) {
    index.reserve(base.size() / kBlock * 2);
    for (std::size_t off = 0; off + kBlock <= base.size(); off += kBlock) {
      index.emplace(block_hash(base.data() + off), static_cast<std::uint32_t>(off));
    }
  }

  std::size_t literal_start = 0;
  std::size_t pos = 0;
  while (pos + kBlock <= target.size()) {
    const auto it = index.find(block_hash(target.data() + pos));
    bool matched = false;
    if (it != index.end()) {
      const std::size_t base_off = it->second;
      if (std::memcmp(base.data() + base_off, target.data() + pos, kBlock) == 0) {
        // Extend the verified match forward as far as it goes.
        std::size_t len = kBlock;
        while (base_off + len < base.size() && pos + len < target.size() &&
               base[base_off + len] == target[pos + len]) {
          ++len;
        }
        flush_literal(delta, target, literal_start, pos);
        delta += 'C';
        put_u32(delta, static_cast<std::uint32_t>(base_off));
        put_u32(delta, static_cast<std::uint32_t>(len));
        pos += len;
        literal_start = pos;
        matched = true;
      }
    }
    if (!matched) ++pos;
  }
  flush_literal(delta, target, literal_start, target.size());
  return delta;
}

std::optional<std::string> apply_delta(std::string_view base, std::string_view delta) {
  std::string out;
  std::string_view rest = delta;
  while (!rest.empty()) {
    const char op = rest.front();
    rest.remove_prefix(1);
    if (op == 'C') {
      std::uint32_t offset = 0;
      std::uint32_t length = 0;
      if (!get_u32(rest, offset) || !get_u32(rest, length)) return std::nullopt;
      if (static_cast<std::size_t>(offset) + length > base.size()) return std::nullopt;
      out.append(base.data() + offset, length);
    } else if (op == 'A') {
      std::uint32_t length = 0;
      if (!get_u32(rest, length)) return std::nullopt;
      if (rest.size() < length) return std::nullopt;
      out.append(rest.data(), length);
      rest.remove_prefix(length);
    } else {
      return std::nullopt;
    }
  }
  return out;
}

double delta_ratio(std::string_view base, std::string_view target) {
  if (target.empty()) return 1.0;
  return static_cast<double>(encode_delta(base, target).size()) /
         static_cast<double>(target.size());
}

bool delta_worthwhile(std::string_view base, std::string_view target) {
  if (target.size() < 2 * kBlock) return false;  // too small to bother
  return encode_delta(base, target).size() + 64 < target.size();
}

}  // namespace wcs
