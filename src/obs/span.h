// Span-based profiling scopes.
//
// Two clocks, two uses (DESIGN.md §10):
//   * sim-time spans — workload-level intervals (a simulated day, a whole
//     replay) stamped in SimTime seconds. Deterministic: same run, same
//     spans, byte for byte. Exported to the Chrome trace's "sim" process
//     track with 1 simulated second rendered as 1 trace microsecond.
//   * wall-clock spans — runner jobs and other host-side work, stamped in
//     microseconds since the recorder's construction. Nondeterministic by
//     nature (they measure the machine, not the model); they never feed
//     results, only the profiling export.
//
// Wall-span recording is thread-safe (ParallelRunner workers push
// concurrently); sim-span recording is single-threaded like the simulators
// that emit it, but routes through the same mutex for simplicity — span
// emission is orders of magnitude rarer than requests.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/simtime.h"
#include "src/util/thread_annotations.h"

namespace wcs {

struct SpanRecord {
  std::string name;
  /// Track: worker index for wall spans, 0 for sim spans.
  std::uint32_t track = 0;
  bool sim_clock = false;     // true: start/duration are SimTime seconds
  std::int64_t start = 0;     // sim seconds, or wall µs since recorder epoch
  std::int64_t duration = 0;  // same unit as start
};

class SpanRecorder {
 public:
  SpanRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// A completed sim-time span (begin/end known at call time).
  void record_sim_span(std::string name, SimTime begin, SimTime end) WCS_EXCLUDES(mutex_);

  /// A completed wall-clock span; `track` groups spans per worker.
  void record_wall_span(std::string name, std::uint32_t track,
                        std::chrono::steady_clock::time_point begin,
                        std::chrono::steady_clock::time_point end) WCS_EXCLUDES(mutex_);

  /// RAII wall-clock scope: records on destruction.
  class WallScope {
   public:
    WallScope(SpanRecorder* recorder, std::string name, std::uint32_t track)
        : recorder_(recorder), name_(std::move(name)), track_(track),
          begin_(std::chrono::steady_clock::now()) {}
    WallScope(const WallScope&) = delete;
    WallScope& operator=(const WallScope&) = delete;
    ~WallScope() {
      if (recorder_ != nullptr) {
        recorder_->record_wall_span(std::move(name_), track_, begin_,
                                    std::chrono::steady_clock::now());
      }
    }

   private:
    SpanRecorder* recorder_;  // null = disabled scope, records nothing
    std::string name_;
    std::uint32_t track_;
    std::chrono::steady_clock::time_point begin_;
  };

  /// Snapshot of every recorded span, emission order.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const WCS_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const WCS_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  const std::chrono::steady_clock::time_point epoch_;  // set once, read lock-free
  std::vector<SpanRecord> spans_ WCS_GUARDED_BY(mutex_);
};

}  // namespace wcs
