// Exporters: JSONL event log, Chrome trace_event JSON, Prometheus text,
// and per-day CSV time series (DESIGN.md §10).
//
// Formats:
//   events.jsonl  One JSON object per event, emission order. Stable field
//                 set: {"kind","t"} always; "url" when the event names a
//                 document; "size","a","b" when non-zero is meaningful;
//                 "ranks" on evictions; "detail" when non-empty.
//   trace.json    Chrome trace_event JSON ({"traceEvents":[...]}) loadable
//                 in chrome://tracing and Perfetto. Two process tracks:
//                 pid 1 = sim time (1 simulated second rendered as 1 trace
//                 microsecond, so a 38-day workload is a ~3.3 s timeline),
//                 pid 2 = wall clock (runner jobs, real microseconds).
//                 Spans are "ph":"X" complete events, bus events are
//                 "ph":"i" instants, and per-day series points are emitted
//                 as "ph":"C" counters so Perfetto plots the hit-rate
//                 curves directly.
//   metrics.prom  Prometheus text exposition: HELP/TYPE headers, counter
//                 and gauge samples, histogram _bucket/_sum/_count with
//                 cumulative le labels.
//   series.csv    Every named TimeSeries flattened to rows of
//                 series,day,requests,hits,hit_rate,bytes,hit_bytes,
//                 byte_hit_rate,annotation_label,annotation.
//
// tools/check_obs.py round-trips all four (runs as the wcs_obs_report
// ctest).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/events.h"

namespace wcs {

class ObsRecorder;
class MetricRegistry;

/// JSON-escape `text` into a double-quoted JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view text);

/// One event as a single JSONL line (used by JsonlSink for live streaming
/// and by write_events_jsonl for post-run export). `detail` is passed
/// separately because Event::detail may already be detached (OwnedEvent).
void write_event_jsonl(std::ostream& out, const Event& event, std::string_view detail);

/// Every collected event of `recorder`, one line each.
void write_events_jsonl(std::ostream& out, const ObsRecorder& recorder);

/// Chrome trace_event JSON: spans + events + per-day counter tracks.
void write_chrome_trace(std::ostream& out, const ObsRecorder& recorder);

/// Prometheus text exposition of every registered metric.
void write_prometheus(std::ostream& out, const MetricRegistry& registry);

/// All named time series as CSV (header + one row per sample).
void write_series_csv(std::ostream& out, const ObsRecorder& recorder);

/// Paths written by write_all_exports.
struct ExportPaths {
  std::string events_jsonl;
  std::string trace_json;
  std::string metrics_prom;
  std::string series_csv;
};

/// Write all four formats into `directory` (created if missing) as
/// events.jsonl / trace.json / metrics.prom / series.csv. Throws
/// std::runtime_error when a file cannot be written.
ExportPaths write_all_exports(const ObsRecorder& recorder, const std::string& directory);

}  // namespace wcs
