#include "src/obs/events.h"

#include <ostream>
#include <stdexcept>

#include "src/obs/export.h"

namespace wcs {

std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kAdmission: return "admission";
    case EventKind::kEviction: return "eviction";
    case EventKind::kSizeChangeMiss: return "size_change_miss";
    case EventKind::kPeriodicSweep: return "periodic_sweep";
    case EventKind::kUpstreamRetry: return "upstream_retry";
    case EventKind::kBreakerTransition: return "breaker_transition";
    case EventKind::kStaleServed: return "stale_served";
    case EventKind::kNegativeHit: return "negative_hit";
    case EventKind::kChaosFault: return "chaos_fault";
    case EventKind::kRunMarker: return "run_marker";
  }
  return "unknown";
}

void EventBus::add_sink(EventSink* sink) {
  if (sink == nullptr) throw std::invalid_argument{"EventBus: null sink"};
  sinks_.push_back(sink);
}

void CollectingSink::on_event(const Event& event) {
  // Hot path for the instrumented cache: one compact Record write; the
  // variable-size parts go to the arenas only when present (admissions —
  // the bulk — carry neither ranks nor detail).
  if (records_.capacity() == records_.size()) {
    records_.reserve(records_.empty() ? 1024 : records_.capacity() * 2);
  }
  Record record;
  record.time = event.time;
  record.a = event.a;
  record.b = event.b;
  record.size = event.size;
  record.url = event.url;
  record.kind = event.kind;
  record.rank_count = event.rank_count;
  if (event.rank_count > 0) {
    record.rank_offset = static_cast<std::uint32_t>(ranks_.size());
    ranks_.insert(ranks_.end(), event.ranks.begin(), event.ranks.begin() + event.rank_count);
  }
  if (!event.detail.empty()) {
    record.detail_offset = static_cast<std::uint32_t>(details_.size());
    record.detail_length = static_cast<std::uint32_t>(event.detail.size());
    details_.append(event.detail);
  }
  records_.push_back(record);
}

Event CollectingSink::view_at(std::size_t i) const {
  const Record& record = records_[i];
  Event event;
  event.kind = record.kind;
  event.rank_count = record.rank_count;
  event.time = record.time;
  event.url = record.url;
  event.size = record.size;
  event.a = record.a;
  event.b = record.b;
  for (std::size_t k = 0; k < record.rank_count; ++k) {
    event.ranks[k] = ranks_[record.rank_offset + k];
  }
  if (record.detail_length > 0) {
    event.detail =
        std::string_view{details_}.substr(record.detail_offset, record.detail_length);
  }
  return event;
}

OwnedEvent CollectingSink::at(std::size_t i) const {
  const Event event = view_at(i);
  OwnedEvent owned{event, std::string{event.detail}};
  owned.event.detail = {};  // the string_view would dangle; read `detail`
  return owned;
}

std::size_t CollectingSink::count_of(EventKind kind) const noexcept {
  std::size_t n = 0;
  for (const Record& record : records_) {
    if (record.kind == kind) ++n;
  }
  return n;
}

void CollectingSink::clear() {
  records_.clear();
  ranks_.clear();
  details_.clear();
}

void JsonlSink::on_event(const Event& event) {
  write_event_jsonl(*out_, event, event.detail);
}

}  // namespace wcs
