#include "src/obs/span.h"

namespace wcs {

void SpanRecorder::record_sim_span(std::string name, SimTime begin, SimTime end) {
  SpanRecord record;
  record.name = std::move(name);
  record.track = 0;
  record.sim_clock = true;
  record.start = begin;
  record.duration = end >= begin ? end - begin : 0;
  const MutexLock lock{mutex_};
  spans_.push_back(std::move(record));
}

void SpanRecorder::record_wall_span(std::string name, std::uint32_t track,
                                    std::chrono::steady_clock::time_point begin,
                                    std::chrono::steady_clock::time_point end) {
  SpanRecord record;
  record.name = std::move(name);
  record.track = track;
  record.sim_clock = false;
  record.start =
      std::chrono::duration_cast<std::chrono::microseconds>(begin - epoch_).count();
  const auto duration =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin).count();
  record.duration = duration < 0 ? 0 : duration;
  const MutexLock lock{mutex_};
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanRecorder::snapshot() const {
  const MutexLock lock{mutex_};
  return spans_;
}

std::size_t SpanRecorder::size() const {
  const MutexLock lock{mutex_};
  return spans_.size();
}

}  // namespace wcs
