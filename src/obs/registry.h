// Metric registry: counters, gauges and fixed-bucket histograms.
//
// The registry is the *reporting* surface of the observability subsystem
// (DESIGN.md §10) — it is not a hot-path accounting mechanism. Hot loops
// keep counting in their plain structs (CacheStats, ProxyCache::Stats);
// sync points (end of run, day boundaries) publish snapshots into the
// registry via wcs::publish_stats / wcs::publish_proxy_stats
// (src/sim/metrics.h), and exporters (src/obs/export.h) render whatever
// the registry holds. The only metrics updated per-operation are the few
// histograms the recorder owns (eviction sizes, retry attempts), each a
// branch plus a small linear bucket scan.
//
// Metric handles returned by counter()/gauge()/histogram() are stable for
// the registry's lifetime (deque storage); callers cache the reference and
// update without further lookups. Registration is idempotent: asking for an
// existing name returns the same metric. The registry is NOT thread-safe —
// each simulation or replay owns its recorder, mirroring the one-runner-
// cell-per-thread architecture everywhere else in this repo.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/thread_annotations.h"

namespace wcs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  /// Snapshot-style publication: counters mirrored from a stats struct are
  /// *set*, not accumulated, so republishing at every sync point is
  /// idempotent.
  void set(std::uint64_t value) noexcept { value_ = value; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t value) noexcept { value_ = value; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram (Prometheus-style cumulative buckets on export).
/// Bucket upper bounds are set at registration and never change; observe()
/// is a linear scan over at most kMaxHistogramBuckets bounds.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 16;

  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& upper_bounds() const noexcept {
    return upper_bounds_;
  }
  /// Per-bucket (non-cumulative) counts; counts_[i] is values <=
  /// upper_bounds_[i] and > the previous bound. The final slot counts
  /// overflow (+Inf bucket).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }

  /// Power-of-two bounds from `lo` doubling up to `hi` — the default shape
  /// for byte-size distributions (the paper's Figs 13-14 are log2-binned).
  [[nodiscard]] static std::vector<std::uint64_t> exponential_bounds(std::uint64_t lo,
                                                                     std::uint64_t hi);

 private:
  std::vector<std::uint64_t> upper_bounds_;
  std::vector<std::uint64_t> counts_;  // upper_bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

enum class MetricKind : unsigned char { kCounter, kGauge, kHistogram };

class WCS_THREAD_AFFINE MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create by name. `help` is recorded on first registration only.
  /// Throws std::invalid_argument if the name exists with a different kind
  /// (or, for histograms, different bounds).
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> upper_bounds,
                       std::string_view help = {});

  /// One registered metric, for exporters. Exactly one of the pointers is
  /// non-null, matching `kind`.
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  /// All metrics in registration order (deterministic given deterministic
  /// registration, which every sync point in this repo provides).
  [[nodiscard]] std::vector<Entry> entries() const;

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  /// Value of a registered counter, or nullopt-like 0/false via the pointer
  /// forms below (tests and terminal summaries).
  [[nodiscard]] const Counter* find_counter(std::string_view name) const noexcept;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const noexcept;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const noexcept;

 private:
  struct Slot {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::size_t index = 0;  // into the kind-specific deque
  };
  [[nodiscard]] const Slot* find_slot(std::string_view name) const noexcept;

  std::unordered_map<std::string, std::size_t> by_name_;  // -> order_ index
  std::vector<Slot> order_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace wcs
