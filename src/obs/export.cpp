#include "src/obs/export.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "src/obs/recorder.h"
#include "src/obs/registry.h"

namespace wcs {
namespace {

/// Render a double the way every JSON consumer accepts (no locale, enough
/// digits to round-trip the ratios we export).
std::string format_double(double value) {
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

void write_csv_field(std::ostream& out, std::string_view text) {
  // Series names are repo-controlled identifiers, but quote defensively so
  // a comma or quote can never silently shift columns.
  if (text.find_first_of(",\"\n") == std::string_view::npos) {
    out << text;
    return;
  }
  out << '"';
  for (const char c : text) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// One Chrome trace_event object. `extra` is raw JSON appended inside the
/// object (already comma-prefixed by the caller when non-empty).
void write_trace_record(std::ostream& out, bool& first, std::string_view name,
                        std::string_view phase, int pid, std::uint32_t tid,
                        std::int64_t ts_us, const std::string& extra) {
  if (!first) out << ",\n";
  first = false;
  out << "    {\"name\": " << json_quote(name) << ", \"ph\": \"" << phase
      << "\", \"pid\": " << pid << ", \"tid\": " << tid << ", \"ts\": " << ts_us << extra
      << "}";
}

}  // namespace

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void write_event_jsonl(std::ostream& out, const Event& event, std::string_view detail) {
  out << "{\"kind\": " << json_quote(to_string(event.kind)) << ", \"t\": " << event.time;
  if (event.url != kObsNoUrl) out << ", \"url\": " << event.url;
  if (event.size != 0) out << ", \"size\": " << event.size;
  if (event.a != 0 || event.b != 0) {
    out << ", \"a\": " << event.a << ", \"b\": " << event.b;
  }
  if (event.rank_count > 0) {
    out << ", \"ranks\": [";
    for (std::uint8_t i = 0; i < event.rank_count; ++i) {
      if (i > 0) out << ", ";
      out << event.ranks[i];
    }
    out << "]";
  }
  if (!detail.empty()) out << ", \"detail\": " << json_quote(detail);
  out << "}\n";
}

void write_events_jsonl(std::ostream& out, const ObsRecorder& recorder) {
  recorder.collected().for_each(
      [&out](const Event& event) { write_event_jsonl(out, event, event.detail); });
}

void write_chrome_trace(std::ostream& out, const ObsRecorder& recorder) {
  constexpr int kSimPid = 1;
  constexpr int kWallPid = 2;

  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;

  // Process-name metadata so the two clocks are labelled in the viewer.
  write_trace_record(out, first, "process_name", "M", kSimPid, 0, 0,
                     ", \"args\": {\"name\": \"sim-time (1 sim second = 1 us)\"}");
  write_trace_record(out, first, "process_name", "M", kWallPid, 0, 0,
                     ", \"args\": {\"name\": \"wall-clock (runner jobs)\"}");

  // Spans: complete ("X") events on their clock's process track.
  for (const SpanRecord& span : recorder.spans().snapshot()) {
    std::ostringstream extra;
    extra << ", \"dur\": " << (span.duration <= 0 ? 1 : span.duration);
    write_trace_record(out, first, span.name, "X", span.sim_clock ? kSimPid : kWallPid,
                       span.track, span.start, extra.str());
  }

  // Bus events: instants ("i", thread scope) on the sim track.
  recorder.collected().for_each([&](const Event& event) {
    std::ostringstream extra;
    extra << ", \"s\": \"t\", \"args\": {";
    extra << "\"url\": " << (event.url == kObsNoUrl ? -1 : static_cast<std::int64_t>(event.url))
          << ", \"size\": " << event.size << ", \"a\": " << event.a
          << ", \"b\": " << event.b;
    if (!event.detail.empty()) extra << ", \"detail\": " << json_quote(event.detail);
    extra << "}";
    write_trace_record(out, first, to_string(event.kind), "i", kSimPid, 0, event.time,
                       extra.str());
  });

  // Time series: counter ("C") samples at each day boundary — Perfetto
  // renders them as the hit-rate curves of the paper's daily plots.
  for (const TimeSeries* series : recorder.all_series()) {
    for (const SeriesPoint& point : series->points()) {
      std::ostringstream extra;
      extra << ", \"args\": {\"hit_rate\": " << format_double(point.hit_rate())
            << ", \"byte_hit_rate\": " << format_double(point.byte_hit_rate()) << "}";
      write_trace_record(out, first, series->name(), "C", kSimPid, 0,
                         day_start(point.day), extra.str());
    }
  }

  out << "\n  ]\n}\n";
}

void write_prometheus(std::ostream& out, const MetricRegistry& registry) {
  // The registry's namespace is flat, but a registered name may carry a
  // Prometheus label suffix — wcs_shard_used_bytes{shard="3"} — the way
  // the sharded paths publish per-shard series. HELP/TYPE headers belong
  // to the *base* name (emitted once per base, on first appearance);
  // sample lines keep the full labelled name.
  std::unordered_set<std::string> declared;
  for (const MetricRegistry::Entry& entry : registry.entries()) {
    const std::string base = entry.name.substr(0, entry.name.find('{'));
    const bool first = declared.insert(base).second;
    if (first && !entry.help.empty()) out << "# HELP " << base << ' ' << entry.help << '\n';
    switch (entry.kind) {
      case MetricKind::kCounter:
        if (first) out << "# TYPE " << base << " counter\n";
        out << entry.name << ' ' << entry.counter->value() << '\n';
        break;
      case MetricKind::kGauge:
        if (first) out << "# TYPE " << base << " gauge\n";
        out << entry.name << ' ' << entry.gauge->value() << '\n';
        break;
      case MetricKind::kHistogram: {
        // Histograms are never registered with a label suffix (their
        // sample names grow _bucket/_sum/_count suffixes of their own).
        if (first) out << "# TYPE " << entry.name << " histogram\n";
        const Histogram& h = *entry.histogram;
        std::uint64_t cumulative = 0;
        const auto& bounds = h.upper_bounds();
        const auto& counts = h.bucket_counts();
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          out << entry.name << "_bucket{le=\"" << bounds[i] << "\"} " << cumulative << '\n';
        }
        out << entry.name << "_bucket{le=\"+Inf\"} " << h.count() << '\n';
        out << entry.name << "_sum " << h.sum() << '\n';
        out << entry.name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

void write_series_csv(std::ostream& out, const ObsRecorder& recorder) {
  out << "series,day,requests,hits,hit_rate,bytes,hit_bytes,byte_hit_rate,"
         "annotation_label,annotation\n";
  for (const TimeSeries* series : recorder.all_series()) {
    for (const SeriesPoint& point : series->points()) {
      write_csv_field(out, series->name());
      out << ',' << point.day << ',' << point.requests << ',' << point.hits << ','
          << format_double(point.hit_rate()) << ',' << point.bytes << ','
          << point.hit_bytes << ',' << format_double(point.byte_hit_rate()) << ',';
      write_csv_field(out, series->annotation_label());
      out << ',' << format_double(point.annotation) << '\n';
    }
  }
}

ExportPaths write_all_exports(const ObsRecorder& recorder, const std::string& directory) {
  std::filesystem::create_directories(directory);
  const auto write_file = [&](const std::string& name, const auto& writer) {
    const std::string path = (std::filesystem::path{directory} / name).string();
    std::ofstream out{path};
    writer(out);
    if (!out) throw std::runtime_error{"write_all_exports: cannot write " + path};
    return path;
  };
  ExportPaths paths;
  paths.events_jsonl = write_file(
      "events.jsonl", [&](std::ostream& out) { write_events_jsonl(out, recorder); });
  paths.trace_json = write_file(
      "trace.json", [&](std::ostream& out) { write_chrome_trace(out, recorder); });
  paths.metrics_prom = write_file(
      "metrics.prom", [&](std::ostream& out) { write_prometheus(out, recorder.registry()); });
  paths.series_csv = write_file(
      "series.csv", [&](std::ostream& out) { write_series_csv(out, recorder); });
  return paths;
}

}  // namespace wcs
