// Structured event bus: typed events, pluggable sinks.
//
// Events are the narrative the final tables cannot tell — *when* the cache
// churned, *which* host tripped its breaker, *what* rank tuple the victim
// carried. Each event is a flat POD-ish record stamped with a deterministic
// sim-time timestamp: replaying the same (preset, seed, config) emits the
// same event sequence byte-for-byte, so a JSONL event log is a reproducible
// artifact exactly like a results table (DESIGN.md §10).
//
// Determinism rules:
//   * event time is always SimTime (never wall clock);
//   * events are emitted synchronously at the point the simulated action
//     happens, so file order == causal order within one run;
//   * parallel sweeps give each cell its own recorder (events from
//     concurrent cells are never interleaved into one bus).
//
// The `detail` field is a std::string_view valid ONLY during dispatch —
// sinks that retain events (CollectingSink) copy it; sinks that stream
// (JsonlSink) write it through. This keeps the emit path allocation-free
// for the hot producers (admission/eviction), which carry no detail text.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/simtime.h"
#include "src/util/thread_annotations.h"

namespace wcs {

/// Mirrors UrlId in src/trace/intern.h without pulling the interner in —
/// the obs layer sits below src/trace in the link order.
using ObsUrlId = std::uint32_t;
inline constexpr ObsUrlId kObsNoUrl = 0xffffffffU;

enum class EventKind : unsigned char {
  kAdmission = 0,       // document admitted to a cache
  kEviction,            // policy eviction (ranks carry the victim's tuple)
  kSizeChangeMiss,      // §1.1 consistency miss replaced a stale copy
  kPeriodicSweep,       // Pitkow/Recker end-of-day sweep ran
  kUpstreamRetry,       // resilience layer re-attempted a fetch
  kBreakerTransition,   // circuit breaker changed state (detail = host)
  kStaleServed,         // stale-if-error masked an upstream failure
  kNegativeHit,         // negative cache short-circuited a fetch
  kChaosFault,          // fault plan injected a fault (detail = kind)
  kRunMarker,           // run-level milestone (detail = what)
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;

/// Upper bound on rank slots an eviction event can carry; must cover
/// kMaxRankKeys (src/core/keys.h — statically asserted where the two meet).
inline constexpr std::size_t kMaxEventRanks = 4;

struct Event {
  EventKind kind = EventKind::kRunMarker;
  std::uint8_t rank_count = 0;  // valid slots of `ranks` (evictions only)
  SimTime time = 0;             // deterministic sim-time stamp
  ObsUrlId url = kObsNoUrl;
  std::uint64_t size = 0;  // bytes involved (document size, swept bytes...)
  /// Generic numeric payload; meaning is per-kind and documented in the
  /// JSONL exporter: retry -> {attempt, delay_ms}, breaker -> {from, to},
  /// chaos -> {fault kind, latency_ms}, sweep -> {evicted count, 0}.
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::array<std::int64_t, kMaxEventRanks> ranks{};
  /// Short text payload (host name, fault kind, marker label). Valid only
  /// during sink dispatch; retaining sinks must copy.
  std::string_view detail;
};

/// Sink interface. on_event is called synchronously on the emitting thread.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Fan-out bus. Sinks are registered at setup time (not thread-safe) and
/// must outlive the bus's last emit. Thread-affine by design: one
/// simulation cell, one bus — parallel sweeps never share one (see the
/// determinism rules above), so a lock here would only buy false comfort.
class WCS_THREAD_AFFINE EventBus {
 public:
  void add_sink(EventSink* sink);
  void emit(const Event& event) {
    for (EventSink* sink : sinks_) sink->on_event(event);
  }
  [[nodiscard]] bool empty() const noexcept { return sinks_.empty(); }
  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }

 private:
  std::vector<EventSink*> sinks_;
};

/// An event with its detail text owned — the materialized record
/// CollectingSink::at hands back (tests, one-off inspection).
struct OwnedEvent {
  Event event;
  std::string detail;
};

/// Retains every event in emission order (exporters, tests, terminal
/// summaries). Memory is O(events); bounded runs only.
///
/// Storage is deliberately compact: the fixed-size Record keeps only the
/// scalar payload, while the two variable-size parts — eviction rank
/// tuples and detail text — pack into shared arenas. Collection is the
/// recorder's only per-event memory traffic, so its footprint is what the
/// bench_perf obs leg's <= 2% contract rides on: half the bytes written is
/// half the cache pollution in the instrumented hot loop.
class WCS_THREAD_AFFINE CollectingSink final : public EventSink {
 public:
  void on_event(const Event& event) override;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  /// Materialize record `i` (emission order) with its detail copied out.
  [[nodiscard]] OwnedEvent at(std::size_t i) const;
  /// Visit every record in emission order. The visited Event's `detail`
  /// view points into the sink's arena: valid until clear() or
  /// destruction, no allocation per visit.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < records_.size(); ++i) fn(view_at(i));
  }
  [[nodiscard]] std::size_t count_of(EventKind kind) const noexcept;
  /// Drop every record; capacity (records and arenas) is retained so
  /// steady-state collect-export-drain cycles stop allocating.
  void clear();

 private:
  struct Record {
    SimTime time = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::uint64_t size = 0;
    std::uint32_t rank_offset = 0;    // into ranks_ (rank_count slots)
    std::uint32_t detail_offset = 0;  // into details_
    std::uint32_t detail_length = 0;
    ObsUrlId url = kObsNoUrl;
    EventKind kind = EventKind::kRunMarker;
    std::uint8_t rank_count = 0;
  };
  [[nodiscard]] Event view_at(std::size_t i) const;

  std::vector<Record> records_;
  std::vector<std::int64_t> ranks_;  // packed eviction rank tuples
  std::string details_;              // packed detail text
};

/// Streams each event as one JSON object per line to an ostream the caller
/// owns (must outlive the sink). The line format is the JSONL exporter's
/// (src/obs/export.h: write_event_jsonl).
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  void on_event(const Event& event) override;

 private:
  std::ostream* out_;
};

}  // namespace wcs
