#include "src/obs/recorder.h"

namespace wcs {

ObsRecorder::ObsRecorder() { bus_.add_sink(&collected_); }

TimeSeries& ObsRecorder::series(std::string_view name, std::string_view annotation_label) {
  const auto it = series_by_name_.find(std::string{name});
  if (it != series_by_name_.end()) return series_[it->second];
  series_by_name_.emplace(std::string{name}, series_.size());
  series_.emplace_back(std::string{name}, std::string{annotation_label});
  return series_.back();
}

std::vector<const TimeSeries*> ObsRecorder::all_series() const {
  std::vector<const TimeSeries*> out;
  out.reserve(series_.size());
  for (const TimeSeries& series : series_) out.push_back(&series);
  return out;
}

}  // namespace wcs
