#include "src/obs/registry.h"

#include <stdexcept>

namespace wcs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  if (upper_bounds_.empty() || upper_bounds_.size() > kMaxBuckets) {
    throw std::invalid_argument{"Histogram: bucket count must be in [1, " +
                                std::to_string(kMaxBuckets) + "]"};
  }
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    if (upper_bounds_[i] <= upper_bounds_[i - 1]) {
      throw std::invalid_argument{"Histogram: bucket bounds must be strictly increasing"};
    }
  }
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::observe(std::uint64_t value) noexcept {
  std::size_t bucket = upper_bounds_.size();  // overflow slot
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

std::vector<std::uint64_t> Histogram::exponential_bounds(std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t bound = lo; bound < hi && bounds.size() < kMaxBuckets - 1;
       bound *= 2) {
    bounds.push_back(bound);
  }
  bounds.push_back(hi);
  return bounds;
}

const MetricRegistry::Slot* MetricRegistry::find_slot(std::string_view name) const noexcept {
  const auto it = by_name_.find(std::string{name});
  return it == by_name_.end() ? nullptr : &order_[it->second];
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view help) {
  if (const Slot* slot = find_slot(name)) {
    if (slot->kind != MetricKind::kCounter) {
      throw std::invalid_argument{"MetricRegistry: '" + std::string{name} +
                                  "' already registered with a different kind"};
    }
    return counters_[slot->index];
  }
  by_name_.emplace(std::string{name}, order_.size());
  order_.push_back({std::string{name}, std::string{help}, MetricKind::kCounter,
                    counters_.size()});
  counters_.emplace_back();
  return counters_.back();
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view help) {
  if (const Slot* slot = find_slot(name)) {
    if (slot->kind != MetricKind::kGauge) {
      throw std::invalid_argument{"MetricRegistry: '" + std::string{name} +
                                  "' already registered with a different kind"};
    }
    return gauges_[slot->index];
  }
  by_name_.emplace(std::string{name}, order_.size());
  order_.push_back({std::string{name}, std::string{help}, MetricKind::kGauge,
                    gauges_.size()});
  gauges_.emplace_back();
  return gauges_.back();
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<std::uint64_t> upper_bounds,
                                     std::string_view help) {
  if (const Slot* slot = find_slot(name)) {
    if (slot->kind != MetricKind::kHistogram) {
      throw std::invalid_argument{"MetricRegistry: '" + std::string{name} +
                                  "' already registered with a different kind"};
    }
    Histogram& existing = histograms_[slot->index];
    if (existing.upper_bounds() != upper_bounds) {
      throw std::invalid_argument{"MetricRegistry: '" + std::string{name} +
                                  "' already registered with different buckets"};
    }
    return existing;
  }
  by_name_.emplace(std::string{name}, order_.size());
  order_.push_back({std::string{name}, std::string{help}, MetricKind::kHistogram,
                    histograms_.size()});
  histograms_.emplace_back(std::move(upper_bounds));
  return histograms_.back();
}

std::vector<MetricRegistry::Entry> MetricRegistry::entries() const {
  std::vector<Entry> out;
  out.reserve(order_.size());
  for (const Slot& slot : order_) {
    Entry entry;
    entry.name = slot.name;
    entry.help = slot.help;
    entry.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter: entry.counter = &counters_[slot.index]; break;
      case MetricKind::kGauge: entry.gauge = &gauges_[slot.index]; break;
      case MetricKind::kHistogram: entry.histogram = &histograms_[slot.index]; break;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

const Counter* MetricRegistry::find_counter(std::string_view name) const noexcept {
  const Slot* slot = find_slot(name);
  return slot != nullptr && slot->kind == MetricKind::kCounter ? &counters_[slot->index]
                                                               : nullptr;
}

const Gauge* MetricRegistry::find_gauge(std::string_view name) const noexcept {
  const Slot* slot = find_slot(name);
  return slot != nullptr && slot->kind == MetricKind::kGauge ? &gauges_[slot->index]
                                                             : nullptr;
}

const Histogram* MetricRegistry::find_histogram(std::string_view name) const noexcept {
  const Slot* slot = find_slot(name);
  return slot != nullptr && slot->kind == MetricKind::kHistogram
             ? &histograms_[slot->index]
             : nullptr;
}

}  // namespace wcs
