// ObsRecorder — the façade every instrumented layer takes a pointer to.
//
// One recorder bundles the four observability primitives (DESIGN.md §10):
// a MetricRegistry, an EventBus, a SpanRecorder, and named per-day
// TimeSeries. Instrumented code receives `ObsRecorder*` and treats nullptr
// as "observability disabled" — the null recorder is the default
// everywhere, and its entire hot-path cost is one pointer test (gated ≤2%
// by bench_perf's obs leg via tools/check_perf.py).
//
// The cardinal rule, enforced by tests/test_obs.cpp's bit-identity
// property: a recorder OBSERVES and never PARTICIPATES. Instrumented code
// must not branch on recorder state in any way that changes RNG draws,
// eviction order, or any counter — with recording on or off, SimResult is
// bit-identical across all five presets.
//
// Ownership: the recorder owns its primitives and an always-attached
// CollectingSink (exporters read it after the run). Additional sinks
// (JsonlSink for live streaming) can be attached before the run starts.
// One recorder per simulation/replay — parallel sweeps either give each
// cell its own recorder or record only at the deterministic gather point.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/obs/events.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/util/simtime.h"

namespace wcs {

/// One per-day sample of a named time series.
struct SeriesPoint {
  std::int64_t day = 0;
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hit_bytes = 0;
  /// Free-form per-series annotation (chaos sweeps store the fault rate);
  /// the series' annotation_label names it in exports.
  double annotation = 0.0;

  [[nodiscard]] double hit_rate() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(requests);
  }
  [[nodiscard]] double byte_hit_rate() const noexcept {
    return bytes == 0 ? 0.0
                      : static_cast<double>(hit_bytes) / static_cast<double>(bytes);
  }
};

/// A named per-simulated-day series (hit-rate dynamics, chaos degradation
/// curves). Sampled at sync points — day boundaries and end of run — never
/// per request.
class TimeSeries {
 public:
  TimeSeries(std::string name, std::string annotation_label)
      : name_(std::move(name)), annotation_label_(std::move(annotation_label)) {}

  void sample(SeriesPoint point) { points_.push_back(point); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& annotation_label() const noexcept {
    return annotation_label_;
  }
  [[nodiscard]] const std::vector<SeriesPoint>& points() const noexcept { return points_; }

 private:
  std::string name_;
  std::string annotation_label_;
  std::vector<SeriesPoint> points_;
};

/// Thread-affine like its primitives (one recorder per simulation/replay,
/// see ownership note above); only the bundled SpanRecorder is internally
/// locked, because ParallelRunner workers push wall spans concurrently.
class WCS_THREAD_AFFINE ObsRecorder {
 public:
  ObsRecorder();
  ObsRecorder(const ObsRecorder&) = delete;
  ObsRecorder& operator=(const ObsRecorder&) = delete;

  [[nodiscard]] MetricRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] EventBus& events() noexcept { return bus_; }
  [[nodiscard]] SpanRecorder& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanRecorder& spans() const noexcept { return spans_; }

  /// Emit on the bus (synchronous fan-out to every sink).
  void emit(const Event& event) { bus_.emit(event); }

  /// The built-in sink: every event recorded so far, emission order.
  [[nodiscard]] const CollectingSink& collected() const noexcept { return collected_; }
  [[nodiscard]] std::size_t event_count() const noexcept { return collected_.size(); }
  [[nodiscard]] std::size_t event_count_of(EventKind kind) const noexcept {
    return collected_.count_of(kind);
  }
  /// Drain the built-in sink (e.g. after exporting a checkpoint of a
  /// long-running process). Capacity is retained, so steady-state
  /// collection after a drain allocates and page-faults nothing.
  void clear_events() { collected_.clear(); }

  /// Find-or-create a named time series; `annotation_label` is recorded on
  /// first use (empty = no annotation column in exports). References are
  /// stable for the recorder's lifetime.
  TimeSeries& series(std::string_view name, std::string_view annotation_label = {});
  /// All series in registration order.
  [[nodiscard]] std::vector<const TimeSeries*> all_series() const;

 private:
  MetricRegistry registry_;
  EventBus bus_;
  CollectingSink collected_;
  SpanRecorder spans_;
  std::deque<TimeSeries> series_;
  std::unordered_map<std::string, std::size_t> series_by_name_;
};

}  // namespace wcs
