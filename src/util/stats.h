// Small statistics toolkit used by the simulator and the benches:
// histograms (linear and log-2 binned), running mean/variance, percentiles,
// and the 7-day moving average the paper applies to all daily hit-rate
// curves (§3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wcs {

/// Fixed-width linear histogram over [lo, hi); values outside are clamped
/// into the first/last bin so totals always balance.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Fraction of total mass in bins [0, bin].
  [[nodiscard]] double cumulative_fraction(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Power-of-two binned histogram: bin k holds values in [2^k, 2^(k+1)).
/// Natural for document sizes spanning bytes to megabytes (paper Fig 13).
class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept {
    return bin < counts_.size() ? counts_[bin] : 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] static std::uint64_t bin_lo(std::size_t bin) noexcept {
    return bin == 0 ? 0 : (1ULL << bin);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Welford online mean/variance.
class RunningStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  // sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (p in [0,100]) by linear interpolation; copies & sorts.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Trailing moving average of `window` points, as the paper uses for daily
/// hit rates: output[i] = mean(input[i-window+1 .. i]); the first window-1
/// outputs are absent (the paper plots nothing for days 0-5).
[[nodiscard]] std::vector<std::optional<double>> moving_average(
    std::span<const double> values, std::size_t window);

/// Gini coefficient of a set of non-negative masses — a scalar summary of
/// the "concentration" the paper observes in Figs 1-2 (0 = uniform,
/// -> 1 = all mass on one item).
[[nodiscard]] double gini_coefficient(std::span<const double> masses);

}  // namespace wcs
