// String helpers shared by the log parser, HTTP parser, and report code.
// All functions operate on string_view and never allocate unless a string
// is the return type.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wcs {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept;
[[nodiscard]] std::string_view trim_left(std::string_view s) noexcept;
[[nodiscard]] std::string_view trim_right(std::string_view s) noexcept;

/// Split on a single delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// ASCII case-insensitive equality (HTTP header names, method names).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// ASCII lower-case copy.
[[nodiscard]] std::string to_lower(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Strict decimal unsigned parse of the whole view; rejects empty input,
/// signs, leading '+', and overflow. Returns nullopt on any violation.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// Strict decimal signed parse (optional leading '-').
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s) noexcept;

/// Lower-cased filename extension of a URL path, without the dot, with any
/// query string / fragment stripped first. "/a/b/pic.GIF?x=1" -> "gif".
/// Empty if the last path segment has no dot.
[[nodiscard]] std::string url_extension(std::string_view url);

/// True if the URL looks dynamically generated (CGI): contains '?' or a
/// "cgi" path segment ("/cgi-bin/", ".cgi"). Mirrors the paper's "CGI"
/// file-type class and the non-cacheable dynamic-document rule.
[[nodiscard]] bool looks_dynamic(std::string_view url) noexcept;

/// "12.3 MB"-style human byte count for reports.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace wcs
