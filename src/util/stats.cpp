#include "src/util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace wcs {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument{"LinearHistogram: need hi > lo and bins >= 1"};
  }
}

void LinearHistogram::add(double value, std::uint64_t weight) noexcept {
  auto bin = static_cast<std::int64_t>((value - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double LinearHistogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double LinearHistogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double LinearHistogram::cumulative_fraction(std::size_t bin) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i) sum += counts_[i];
  return static_cast<double>(sum) / static_cast<double>(total_);
}

void Log2Histogram::add(std::uint64_t value, std::uint64_t weight) noexcept {
  const std::size_t bin = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (bin >= counts_.size()) counts_.resize(bin + 1, 0);
  counts_[bin] += weight;
  total_ += weight;
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument{"percentile: empty input"};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<std::optional<double>> moving_average(std::span<const double> values,
                                                  std::size_t window) {
  if (window == 0) throw std::invalid_argument{"moving_average: window must be >= 1"};
  std::vector<std::optional<double>> out(values.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    if (i >= window) sum -= values[i - window];
    if (i + 1 >= window) out[i] = sum / static_cast<double>(window);
  }
  return out;
}

double gini_coefficient(std::span<const double> masses) {
  if (masses.empty()) return 0.0;
  std::vector<double> sorted(masses.begin(), masses.end());
  std::sort(sorted.begin(), sorted.end());
  double cumulative_weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cumulative_weighted += static_cast<double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * cumulative_weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace wcs
