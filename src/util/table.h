// Minimal ASCII table and gnuplot-series renderers for benches and examples.
// The bench binaries print the same rows/series as the paper's tables and
// figures; this module keeps that formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wcs {

/// Column-aligned ASCII table. Cells are strings; numeric columns are
/// right-aligned automatically (a cell is "numeric" if it parses as a
/// double, optionally with %, or is empty).
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  [[nodiscard]] static std::string pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named series of (x, y) points, printed in a gnuplot-compatible block:
///   # <name>
///   x0 y0
///   ...
/// Missing points (the first 6 days of a 7-day moving average) are skipped.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Print several series, blank-line separated, with a figure caption line.
void print_series(std::ostream& os, const std::string& caption,
                  const std::vector<Series>& series);

/// Compact ASCII line chart (y vs index) used so bench output conveys curve
/// *shape* in a terminal: one row per series, sparkline-style.
[[nodiscard]] std::string sparkline(const std::vector<double>& ys, double lo, double hi);

}  // namespace wcs
