#include "src/util/distributions.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wcs {

namespace {

/// Generalized harmonic number H_{n,s} = sum_{k=1..n} k^-s, computed exactly
/// for small n and with the Euler-Maclaurin tail for large n.
double generalized_harmonic(std::uint64_t n, double s) {
  constexpr std::uint64_t kExactLimit = 1u << 16;
  if (n <= kExactLimit) {
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) sum += std::pow(static_cast<double>(k), -s);
    return sum;
  }
  double sum = generalized_harmonic(kExactLimit, s);
  const double a = static_cast<double>(kExactLimit);
  const double b = static_cast<double>(n);
  // integral of x^-s over (a, b] plus trapezoid-ish correction terms.
  double integral;
  if (std::abs(s - 1.0) < 1e-12) {
    integral = std::log(b / a);
  } else {
    integral = (std::pow(b, 1.0 - s) - std::pow(a, 1.0 - s)) / (1.0 - s);
  }
  sum += integral + 0.5 * (std::pow(b, -s) - std::pow(a, -s));
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be >= 1"};
  if (!(s > 0.0)) throw std::invalid_argument{"ZipfSampler: s must be > 0"};
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  accept_threshold_ = 2.0 - h_inverse(h(2.5) - std::pow(2.0, -s));
  generalized_harmonic_ = generalized_harmonic(n, s);
}

double ZipfSampler::h(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  // Hörmann-Derflinger rejection-inversion over the hat function 1/x^s.
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double k_double = static_cast<double>(k);
    if (k_double - x <= accept_threshold_ ||
        u >= h(k_double + 0.5) - std::pow(k_double, -s_)) {
      return k;
    }
  }
}

double ZipfSampler::pmf(std::uint64_t k) const {
  if (k < 1 || k > n_) return 0.0;
  return std::pow(static_cast<double>(k), -s_) / generalized_harmonic_;
}

double LognormalSampler::operator()(Rng& rng) const noexcept {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

BoundedParetoSampler::BoundedParetoSampler(double alpha, double lo, double hi) noexcept
    : alpha_(alpha), lo_(lo), hi_(hi), lo_pow_(std::pow(lo, alpha)), hi_pow_(std::pow(hi, alpha)) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
}

double BoundedParetoSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Inverse CDF of the bounded Pareto.
  const double numerator = u * hi_pow_ - u * lo_pow_ - hi_pow_;
  return std::pow(-numerator / (hi_pow_ * lo_pow_), -1.0 / alpha_);
}

double sample_standard_normal(Rng& rng) noexcept {
  const double u1 = 1.0 - rng.uniform();  // avoid log(0)
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t sample_poisson(Rng& rng, double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    double product = rng.uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= rng.uniform();
    }
    return count;
  }
  const double sample =
      lambda + std::sqrt(lambda) * sample_standard_normal(rng) + 0.5;
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample);
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"DiscreteSampler: no weights"};
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument{"DiscreteSampler: negative weight"};
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"DiscreteSampler: zero total weight"};

  const std::size_t n = weights.size();
  normalized_.resize(n);
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker's alias method (Vose's stable construction).
  std::vector<double> scaled(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::size_t i : large) probability_[i] = 1.0;
  for (const std::size_t i : small) probability_[i] = 1.0;  // numeric residue
}

std::size_t DiscreteSampler::operator()(Rng& rng) const noexcept {
  const std::size_t cell = static_cast<std::size_t>(rng.below(probability_.size()));
  return rng.uniform() < probability_[cell] ? cell : alias_[cell];
}

double DiscreteSampler::probability_of(std::size_t i) const noexcept {
  return i < normalized_.size() ? normalized_[i] : 0.0;
}

}  // namespace wcs
