// Process memory observability.
#pragma once

#include <cstdint>

namespace wcs {

/// Peak resident set size of the calling process in bytes, or 0 when the
/// platform offers no way to read it. Monotone over the process lifetime —
/// useful as a record ("this run never exceeded X"), not as a differential
/// between two phases of one process.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

}  // namespace wcs
