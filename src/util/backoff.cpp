#include "src/util/backoff.h"

#include "src/util/rng.h"

namespace wcs {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

double hashed_uniform(std::uint64_t x) noexcept {
  return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

std::uint32_t backoff_delay_ms(const BackoffConfig& config, std::uint64_t seed,
                               std::uint64_t key, std::uint32_t attempt) noexcept {
  if (attempt == 0) return 0;
  // Clamp the shift so huge attempt counts cannot overflow the doubling.
  const std::uint32_t shift = attempt - 1 < 16 ? attempt - 1 : 16;
  std::uint64_t nominal = static_cast<std::uint64_t>(config.base_ms) << shift;
  if (nominal > config.max_ms) nominal = config.max_ms;
  const double u = hashed_uniform(seed ^ mix64(key) ^ (0x9e3779b97f4a7c15ULL * attempt));
  const double factor = 1.0 + config.jitter * (u - 0.5);
  const double jittered = static_cast<double>(nominal) * factor;
  return jittered <= 0.0 ? 0U : static_cast<std::uint32_t>(jittered);
}

}  // namespace wcs
