// Deterministic bounded exponential backoff with jitter.
//
// Retry schedules must be reproducible: the same (seed, key, attempt)
// triple always yields the same delay regardless of which thread computed
// it or in what order, so a simulated retry storm replays bit-identically.
// The jitter is therefore *hashed*, not drawn from a stateful generator —
// mix64 over the triple, following the per-entity sub-seed discipline of
// src/util/rng.h.
#pragma once

#include <cstdint>
#include <string_view>

namespace wcs {

struct BackoffConfig {
  std::uint32_t base_ms = 100;  // nominal delay before the first retry
  std::uint32_t max_ms = 2000;  // cap on any single delay
  /// Jitter width as a fraction of the nominal delay: the actual delay is
  /// uniform in nominal * [1 - jitter/2, 1 + jitter/2). 0 disables jitter.
  double jitter = 0.5;
};

/// FNV-1a 64-bit hash — stable across platforms and standard libraries
/// (unlike std::hash), so hashed schedules are part of the determinism
/// contract.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Uniform double in [0, 1) hashed statelessly from `x` — the stateless
/// counterpart of Rng::uniform() for schedule-style randomness.
[[nodiscard]] double hashed_uniform(std::uint64_t x) noexcept;

/// Delay before retry `attempt` (1 = first retry; 0 returns 0). Nominal
/// value is base_ms * 2^(attempt-1) clamped to max_ms, then jittered by a
/// deterministic uniform hashed from (seed, key, attempt).
[[nodiscard]] std::uint32_t backoff_delay_ms(const BackoffConfig& config, std::uint64_t seed,
                                             std::uint64_t key, std::uint32_t attempt) noexcept;

}  // namespace wcs
