#include "src/util/simtime.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace wcs {

namespace {

constexpr std::array<const char*, 12> kMonths = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                                 "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

constexpr bool leap(int y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) noexcept {  // m in [0,11]
  constexpr std::array<int, 12> base = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return m == 1 && leap(y) ? 29 : base[static_cast<std::size_t>(m)];
}

constexpr int kEpochYear = 1995;  // day 0 == 01/Jan/1995

}  // namespace

std::string to_clf_timestamp(SimTime t) {
  std::int64_t days = day_of(t);
  const SimTime sec = second_of_day(t);
  int year = kEpochYear;
  while (days >= (leap(year) ? 366 : 365)) {
    days -= leap(year) ? 366 : 365;
    ++year;
  }
  while (days < 0) {
    --year;
    days += leap(year) ? 366 : 365;
  }
  int month = 0;
  while (days >= days_in_month(year, month)) {
    days -= days_in_month(year, month);
    ++month;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "[%02d/%s/%04d:%02d:%02d:%02d +0000]",
                static_cast<int>(days) + 1, kMonths[static_cast<std::size_t>(month)], year,
                static_cast<int>(sec / kSecondsPerHour),
                static_cast<int>(sec % kSecondsPerHour / kSecondsPerMinute),
                static_cast<int>(sec % kSecondsPerMinute));
  return buf;
}

bool parse_clf_timestamp(const std::string& text, SimTime& out) {
  int day = 0;
  char month_name[4] = {};
  int year = 0;
  int hh = 0;
  int mm = 0;
  int ss = 0;
  // Accept with or without the surrounding brackets and timezone.
  const char* s = text.c_str();
  if (*s == '[') ++s;
  if (std::sscanf(s, "%d/%3s/%d:%d:%d:%d", &day, month_name, &year, &hh, &mm, &ss) != 6) {
    return false;
  }
  int month = -1;
  for (int m = 0; m < 12; ++m) {
    if (std::strcmp(month_name, kMonths[static_cast<std::size_t>(m)]) == 0) {
      month = m;
      break;
    }
  }
  if (month < 0 || day < 1 || day > days_in_month(year, month) || hh < 0 || hh > 23 ||
      mm < 0 || mm > 59 || ss < 0 || ss > 59) {
    return false;
  }
  std::int64_t days = 0;
  if (year >= kEpochYear) {
    for (int y = kEpochYear; y < year; ++y) days += leap(y) ? 366 : 365;
  } else {
    for (int y = year; y < kEpochYear; ++y) days -= leap(y) ? 366 : 365;
  }
  for (int m = 0; m < month; ++m) days += days_in_month(year, m);
  days += day - 1;
  out = days * kSecondsPerDay + hh * kSecondsPerHour + mm * kSecondsPerMinute + ss;
  return true;
}

std::string format_duration(SimTime seconds) {
  const std::int64_t d = seconds / kSecondsPerDay;
  const SimTime rest = seconds % kSecondsPerDay;
  char buf[48];
  if (d > 0) {
    std::snprintf(buf, sizeof buf, "%lldd %02d:%02d:%02d", static_cast<long long>(d),
                  static_cast<int>(rest / kSecondsPerHour),
                  static_cast<int>(rest % kSecondsPerHour / kSecondsPerMinute),
                  static_cast<int>(rest % kSecondsPerMinute));
  } else {
    std::snprintf(buf, sizeof buf, "%02d:%02d:%02d", static_cast<int>(rest / kSecondsPerHour),
                  static_cast<int>(rest % kSecondsPerHour / kSecondsPerMinute),
                  static_cast<int>(rest % kSecondsPerMinute));
  }
  return buf;
}

}  // namespace wcs
