#include "src/util/rng.h"

namespace wcs {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and needs one
  // multiplication in the common case.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace wcs
