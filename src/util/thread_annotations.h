// Clang Thread Safety Analysis surface (DESIGN.md §11).
//
// The determinism contract this repo runs on — (preset, seed) -> result,
// bit for bit — dies silently the moment a shared structure is touched
// off-lock: no test fails, a table is just quietly wrong on some machine.
// Before the sharded-ProxyCache era (ROADMAP item 1) puts mutexes on the
// hot path, every lock in the tree is made *statically checkable*:
//
//   * the WCS_* macros map onto Clang's thread-safety attributes and
//     expand to nothing on other compilers, so GCC builds are unaffected;
//   * wcs::Mutex / wcs::MutexLock / wcs::CondVar wrap their std
//     counterparts with the attributes attached — libstdc++'s std::mutex
//     carries no annotations, so Clang cannot see through
//     std::lock_guard<std::mutex>; the wrappers are what make
//     `-Wthread-safety` (the `tsa` preset, enforced with -Werror in CI)
//     actually prove lock discipline instead of warning on every access;
//   * WCS_THREAD_AFFINE marks deliberately single-owner classes
//     (InternTable, MetricRegistry, EventBus — one simulation cell, one
//     owner, no lock by design). It expands to nothing; tools/
//     wcs_analyze.py reads the marker and rejects the contradiction of a
//     thread-affine class growing a mutex member.
//
// Project rule (enforced by wcs_analyze's mutex-annotation rule): library
// and bench code never declares a raw std::mutex member — it declares
// wcs::Mutex, and every piece of state the lock protects carries
// WCS_GUARDED_BY(that_mutex). Functions that take the lock internally are
// annotated WCS_EXCLUDES(mutex); functions that require it held,
// WCS_REQUIRES(mutex).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define WCS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WCS_THREAD_ANNOTATION(x)  // no-op off Clang (GCC, MSVC)
#endif

// A type that acts as a lock (wcs::Mutex below).
#define WCS_CAPABILITY(x) WCS_THREAD_ANNOTATION(capability(x))
// A RAII type that holds a capability for its lifetime (wcs::MutexLock).
#define WCS_SCOPED_CAPABILITY WCS_THREAD_ANNOTATION(scoped_lockable)

// Data members: which mutex protects them.
#define WCS_GUARDED_BY(x) WCS_THREAD_ANNOTATION(guarded_by(x))
#define WCS_PT_GUARDED_BY(x) WCS_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: capability contracts at the call boundary.
#define WCS_REQUIRES(...) WCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define WCS_ACQUIRE(...) WCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WCS_RELEASE(...) WCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define WCS_TRY_ACQUIRE(...) WCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define WCS_EXCLUDES(...) WCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define WCS_ASSERT_CAPABILITY(x) WCS_THREAD_ANNOTATION(assert_capability(x))
#define WCS_RETURN_CAPABILITY(x) WCS_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model. Every use must carry a
// justification comment; wcs_analyze treats bare uses as findings.
#define WCS_NO_THREAD_SAFETY_ANALYSIS WCS_THREAD_ANNOTATION(no_thread_safety_analysis)

// Semantic marker (expands to nothing): this class is single-owner by
// design — one simulation/replay owns it, no concurrent access, hence no
// lock. tools/wcs_analyze.py flags a WCS_THREAD_AFFINE class that declares
// a mutex member as a contradiction.
#define WCS_THREAD_AFFINE

namespace wcs {

/// std::mutex with the capability attribute attached — the only mutex type
/// library/bench code may declare as a member (wcs_analyze:
/// mutex-annotation).
class WCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WCS_ACQUIRE() { mutex_.lock(); }
  void unlock() WCS_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() WCS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;  // waits on the wrapped handle via std::unique_lock
  std::mutex mutex_;
};

/// RAII lock for wcs::Mutex — std::lock_guard with the scoped-capability
/// attribute, so Clang tracks the critical section's extent.
class WCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) WCS_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() WCS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to wcs::Mutex. wait() follows the Clang TSA
/// idiom: the caller holds the mutex on entry and on return
/// (WCS_REQUIRES); the release/re-acquire while sleeping happens inside,
/// where the analysis does not look (std::adopt_lock borrows the held
/// handle, release() hands it back still locked).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mutex) WCS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> handle{mutex.mutex_, std::adopt_lock};
    cv_.wait(handle);
    handle.release();  // caller still holds the capability
  }

 private:
  std::condition_variable cv_;
};

}  // namespace wcs
