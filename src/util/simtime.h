// Simulation time.
//
// The simulator works in whole seconds since an arbitrary workload-local
// epoch (day 0, 00:00). The paper's policies need only two derived views:
// absolute ordering (ETIME/ATIME keys) and the calendar day of an access
// (DAY(ATIME) key, daily hit-rate series, Pitkow/Recker's end-of-day sweep).
#pragma once

#include <cstdint>
#include <string>

namespace wcs {

/// Seconds since the workload epoch. A strong typedef would be overkill for
/// a value that is pure arithmetic; the alias documents intent.
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86'400;

/// Calendar day index of a timestamp (day 0 starts at t = 0).
[[nodiscard]] constexpr std::int64_t day_of(SimTime t) noexcept {
  // Floor division: negative times (never produced by the generator, but
  // accepted from external logs) still map to the correct day.
  const std::int64_t q = t / kSecondsPerDay;
  return (t % kSecondsPerDay < 0) ? q - 1 : q;
}

/// First second of day d.
[[nodiscard]] constexpr SimTime day_start(std::int64_t d) noexcept {
  return d * kSecondsPerDay;
}

/// Seconds elapsed since the start of t's day, in [0, 86400).
[[nodiscard]] constexpr SimTime second_of_day(SimTime t) noexcept {
  const SimTime r = t % kSecondsPerDay;
  return r < 0 ? r + kSecondsPerDay : r;
}

/// Day of week in [0, 6]; day 0 of a workload is defined to be a Monday=0.
[[nodiscard]] constexpr int weekday_of(SimTime t) noexcept {
  return static_cast<int>(day_of(t) % 7 < 0 ? day_of(t) % 7 + 7 : day_of(t) % 7);
}

[[nodiscard]] constexpr bool is_weekend(SimTime t) noexcept {
  const int wd = weekday_of(t);
  return wd == 5 || wd == 6;
}

/// Render as the common-log-format timestamp "[dd/Mon/yyyy:hh:mm:ss +0000]"
/// anchored at 01/Jan/1995 for day 0 (the traces are from 1995).
[[nodiscard]] std::string to_clf_timestamp(SimTime t);

/// Parse a common-log-format timestamp back to a SimTime (inverse of
/// to_clf_timestamp for the 1995-1996 window; tolerates any year).
/// Returns false on malformed input.
[[nodiscard]] bool parse_clf_timestamp(const std::string& text, SimTime& out);

/// "1d 02:03:04"-style human duration, used in reports.
[[nodiscard]] std::string format_duration(SimTime seconds);

}  // namespace wcs
