#include "src/util/strings.h"

#include <cctype>
#include <cstdio>
#include <limits>

namespace wcs {

namespace {
[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}
[[nodiscard]] char ascii_lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string_view trim_left(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  return s;
}

std::string_view trim_right(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string_view trim(std::string_view s) noexcept { return trim_right(trim_left(s)); }

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  for (char& c : out) c = ascii_lower(c);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view s) noexcept {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  const auto magnitude = parse_u64(s);
  if (!magnitude) return std::nullopt;
  if (negative) {
    constexpr auto kMinMagnitude =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) + 1;
    if (*magnitude > kMinMagnitude) return std::nullopt;
    // INT64_MIN cannot be produced by negating a positive int64.
    if (*magnitude == kMinMagnitude) return std::numeric_limits<std::int64_t>::min();
    return -static_cast<std::int64_t>(*magnitude);
  }
  if (*magnitude > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(*magnitude);
}

std::string url_extension(std::string_view url) {
  // Strip scheme+authority if present so we look at the path only.
  if (const auto scheme = url.find("://"); scheme != std::string_view::npos) {
    const auto path_start = url.find('/', scheme + 3);
    url = path_start == std::string_view::npos ? std::string_view{} : url.substr(path_start);
  }
  if (const auto q = url.find_first_of("?#"); q != std::string_view::npos) url = url.substr(0, q);
  const auto slash = url.rfind('/');
  const std::string_view segment = slash == std::string_view::npos ? url : url.substr(slash + 1);
  const auto dot = segment.rfind('.');
  if (dot == std::string_view::npos || dot + 1 == segment.size()) return {};
  return to_lower(segment.substr(dot + 1));
}

bool looks_dynamic(std::string_view url) noexcept {
  if (url.find('?') != std::string_view::npos) return true;
  const std::string lower = to_lower(url);
  return lower.find("/cgi-bin/") != std::string::npos ||
         lower.find(".cgi") != std::string::npos ||
         lower.find("/cgi/") != std::string::npos;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "kB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace wcs
