#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace wcs {

namespace {

bool cell_is_numeric(const std::string& cell) {
  if (cell.empty()) return true;
  std::string body = cell;
  if (!body.empty() && body.back() == '%') body.pop_back();
  if (body.empty()) return false;
  char* end = nullptr;
  std::strtod(body.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::size_t columns = header_.size();
  for (const auto& r : rows_) columns = std::max(columns, r.size());
  if (columns == 0) return;

  std::vector<std::size_t> widths(columns, 0);
  std::vector<bool> numeric(columns, true);
  auto scan = [&](const std::vector<std::string>& cells, bool is_header) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
      if (!is_header && !cell_is_numeric(cells[c])) numeric[c] = false;
    }
  };
  scan(header_, true);
  for (const auto& r : rows_) scan(r, false);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const auto pad = widths[c] - cell.size();
      os << (c == 0 ? "| " : " ");
      if (numeric[c]) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  std::size_t rule_len = 1;
  for (const std::size_t w : widths) rule_len += w + 3;
  const std::string rule(rule_len, '-');
  if (!header_.empty()) {
    emit(header_);
    os << rule << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void print_series(std::ostream& os, const std::string& caption,
                  const std::vector<Series>& series) {
  os << "# " << caption << '\n';
  for (const auto& s : series) {
    os << "# series: " << s.name << '\n';
    for (const auto& [x, y] : s.points) os << x << ' ' << y << '\n';
    os << '\n';
  }
}

std::string sparkline(const std::vector<double>& ys, double lo, double hi) {
  static constexpr const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                            "▅", "▆", "▇", "█"};
  std::string out;
  const double span = hi > lo ? hi - lo : 1.0;
  for (const double y : ys) {
    const double t = std::clamp((y - lo) / span, 0.0, 1.0);
    out += kLevels[static_cast<std::size_t>(t * 7.0 + 0.5)];
  }
  return out;
}

}  // namespace wcs
