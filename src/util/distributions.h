// Samplers for the distributions that drive synthetic web workloads.
//
// The 1996 traces are lost; the workload generator (src/workload) rebuilds
// their published *distributional* properties, which requires:
//   - Zipf over document/server popularity (Figs 1-2 of the paper),
//   - lognormal body + Pareto tail document sizes (Fig 13),
//   - weighted discrete choice over file-type classes (Table 4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.h"

namespace wcs {

/// Zipf(n, s): P(k) proportional to 1/k^s for rank k in [1, n].
///
/// Sampling uses the rejection-inversion method of Hörmann & Derflinger
/// ("Rejection-inversion to generate variates from monotone discrete
/// distributions", 1996) — O(1) per draw independent of n, exact for any
/// exponent s > 0, s != 1 handled via the generalized harmonic integral.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// Draw a rank in [1, n]; rank 1 is the most popular item.
  [[nodiscard]] std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double s() const noexcept { return s_; }

  /// Exact probability of rank k (for tests and calibration reports).
  [[nodiscard]] double pmf(std::uint64_t k) const;

 private:
  [[nodiscard]] double h(double x) const;         // integral of 1/x^s
  [[nodiscard]] double h_inverse(double x) const; // inverse of h

  std::uint64_t n_;
  double s_;
  double h_x1_;             // H(1.5) - 1
  double h_n_;              // H(n + 0.5)
  double accept_threshold_; // 2 - H^-1(H(2.5) - 2^-s)
  double generalized_harmonic_;
};

/// Lognormal(mu, sigma) in natural-log space, returned as a double > 0.
class LognormalSampler {
 public:
  LognormalSampler(double mu, double sigma) noexcept : mu_(mu), sigma_(sigma) {}
  [[nodiscard]] double operator()(Rng& rng) const noexcept;

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Bounded Pareto on [lo, hi] with shape alpha — the heavy tail of web
/// document sizes (long transfers dominated by a few large audio/video
/// files, exactly the BR-workload phenomenon the paper highlights).
class BoundedParetoSampler {
 public:
  BoundedParetoSampler(double alpha, double lo, double hi) noexcept;
  [[nodiscard]] double operator()(Rng& rng) const noexcept;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double lo_;
  double hi_;
  double lo_pow_;  // lo^alpha
  double hi_pow_;  // hi^alpha
};

/// Standard normal via Box-Muller (polar form avoided for determinism of
/// draw count: exactly two uniforms consumed per sample).
[[nodiscard]] double sample_standard_normal(Rng& rng) noexcept;

/// Poisson(lambda) sample. Uses Knuth's product method for small lambda and
/// a normal approximation with continuity correction above 64 (daily request
/// counts reach several thousand; exactness of the extreme tail is
/// irrelevant there).
[[nodiscard]] std::uint64_t sample_poisson(Rng& rng, double lambda) noexcept;

/// Weighted discrete choice: returns an index with probability proportional
/// to weights[i]. Built once (O(n) Walker alias table), sampled in O(1).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }
  /// Normalized probability of index i (for tests).
  [[nodiscard]] double probability_of(std::size_t i) const noexcept;

 private:
  std::vector<double> probability_;  // alias-table cell probability
  std::vector<std::size_t> alias_;
  std::vector<double> normalized_;   // true pmf, kept for probability_of
};

}  // namespace wcs
