// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in this library flows through Rng so that a
// (preset, seed) pair fully determines a generated workload and therefore a
// simulation result. The generator is xoshiro256** seeded via splitmix64,
// which is fast, has a 2^256-1 period, and passes BigCrush; we deliberately
// avoid std::mt19937 so results are stable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace wcs {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit hash of a value (fmix64 from MurmurHash3). Used to derive
/// per-entity sub-seeds so entity k's randomness is independent of iteration
/// order.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1996'5193'c0de'cafeULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of resolution.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's unbiased method.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Fork an independent stream; child streams do not perturb the parent
  /// beyond one draw, so adding a consumer does not reshuffle later draws.
  [[nodiscard]] Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace wcs
