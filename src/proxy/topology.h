// A configurable network of caches: the generalization of the paper's
// Experiment 3 two-level cache into a CDN-style hierarchy (ROADMAP item 2,
// after Gallo et al., "Performance Evaluation of the Random Replacement
// Policy for Networks of Caches").
//
// The topology is a list of tiers, client-facing first (edge -> regional ->
// parent -> ... -> origin). Each tier holds one or more sibling ProxyCaches
// with their own capacity, policy and resilience config; tier k's upstream
// *is* the router over tiers k+1.. and finally the origin. Every inter-tier
// link — the path into one specific cache, and the last hop to the origin —
// can be wrapped in its own deterministic FaultPlan. Link schedules derive
// from (spec.seed, edge label, host, time, attempt) via the labelled
// FaultPlan hash, so they are stateless, reproducible, and independent per
// link: "regional[0]" can be down for an afternoon while "regional[1]"
// serves normally, which is exactly what sibling failover needs to matter.
//
// Routing is deterministic (URL-hash primary pick, like ShardedProxy) and
// degrades gracefully: a failed response from one link — transport error,
// injected fault, or a 502 from an upstream cache whose own breaker is
// open — fails over to the next sibling in the tier, then skips to the
// next tier, and reaches the origin as the last resort before surfacing an
// error to the caller. Each cache's own resilience layer wraps the whole
// ladder above it, so retries re-run the routing with fresh fault draws
// (the attempt index is forwarded into every link plan via kAttemptHeader).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/audit.h"
#include "src/proxy/faults.h"
#include "src/proxy/proxy.h"
#include "src/util/thread_annotations.h"

namespace wcs {

/// One tier of sibling caches.
struct TierConfig {
  /// Unique non-empty tier name; used for link labels and per-tier metrics.
  std::string label = "tier";
  /// Sibling caches in this tier (>= 1). Requests route among them by URL
  /// hash, so siblings partition the namespace like ShardedProxy shards.
  std::uint32_t caches = 1;
  /// Per-cache configuration (capacity_bytes is per sibling, not per tier).
  ProxyCache::Config proxy;
  /// Faults on the links *into* this tier's caches. The effective FaultPlan
  /// for cache i is labelled "<label>[i]" (unless spec.label is already
  /// set), giving every sibling link an independent schedule.
  FaultSpec downlink;
};

struct TopologyConfig {
  /// Tiers from the client inward: tiers[0] is the edge. Must be non-empty.
  std::vector<TierConfig> tiers;
  /// Faults on the final hop to the origin (label defaults to "origin").
  FaultSpec origin_link;
  /// Try the remaining siblings of a tier after its primary link fails.
  bool sibling_failover = true;
  /// Seed for the URL-hash routing (independent of any fault seed).
  std::uint64_t route_seed = 0x70b07067ULL;
  /// Observability recorder forwarded into every tier cache whose own
  /// config leaves obs unset; nullptr = disabled.
  ObsRecorder* obs = nullptr;
};

/// Thread-affine like ProxyCache: one owner drives handle(). Parallel
/// chaos cells each build their own topology (see run_topology_chaos_sweep).
class WCS_THREAD_AFFINE CacheTopology {
 public:
  /// Router-level accounting: what the failover ladder did, which no single
  /// tier's ProxyCache::Stats can see.
  struct RouterStats {
    std::uint64_t link_failures = 0;      // failed responses from one link
    std::uint64_t sibling_failovers = 0;  // moved on to a sibling in-tier
    std::uint64_t tier_skips = 0;         // tier exhausted, moved deeper
    std::uint64_t origin_fetches = 0;     // ladder reached the origin link
  };

  /// Throws std::invalid_argument on an empty topology, a tier with zero
  /// caches, or duplicate/empty tier labels.
  CacheTopology(TopologyConfig config, UpstreamFn origin);

  /// Serve one client request: enter the edge tier (failing over exactly
  /// like any inter-tier hop) at time `now`.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request, SimTime now);

  [[nodiscard]] std::size_t tier_count() const noexcept { return tiers_.size(); }
  [[nodiscard]] std::size_t tier_size(std::size_t tier) const { return tiers_.at(tier).size(); }
  [[nodiscard]] const std::string& tier_label(std::size_t tier) const {
    return labels_.at(tier);
  }
  [[nodiscard]] const ProxyCache& cache_at(std::size_t tier, std::size_t index) const {
    return *tiers_.at(tier).at(index);
  }
  /// Tier-level stats: the sibling caches' Stats summed field by field
  /// (gauges included — siblings front disjoint URL partitions).
  [[nodiscard]] ProxyCache::Stats tier_stats(std::size_t tier) const;
  [[nodiscard]] std::uint64_t tier_stored_bytes(std::size_t tier) const;
  /// Total capacity across every cache of every tier (the "equal total
  /// capacity" budget a flat single proxy would get in comparisons).
  [[nodiscard]] std::uint64_t total_capacity_bytes() const noexcept;
  [[nodiscard]] const RouterStats& router_stats() const noexcept { return router_; }
  /// The fault plan on the link into cache (tier, index) — exposed so
  /// tests can consult the deterministic schedule directly.
  [[nodiscard]] const FaultPlan& link_plan(std::size_t tier, std::size_t index) const {
    return plans_.at(tier).at(index);
  }
  [[nodiscard]] const FaultPlan& origin_plan() const noexcept { return origin_plan_; }
  /// Primary sibling index for `url` in `tier` (pure function of the URL,
  /// the route seed and the tier index).
  [[nodiscard]] std::size_t route(std::size_t tier, std::string_view url) const;

  /// Cache-core audits plus the per-cache GET accounting identity, scoped
  /// "<label>[i]." per cache.
  [[nodiscard]] AuditReport audit() const;

 private:
  /// The failover ladder: try tiers `tier`.. (primary sibling first, then
  /// the rest when sibling_failover is on), then the origin link.
  [[nodiscard]] HttpResponse route_from(std::size_t tier, const HttpRequest& request,
                                        SimTime now);

  UpstreamFn origin_;
  FaultPlan origin_plan_;
  bool sibling_failover_ = true;
  std::uint64_t route_seed_ = 0;
  std::vector<std::string> labels_;                          // per tier
  std::vector<std::vector<std::unique_ptr<ProxyCache>>> tiers_;
  std::vector<std::vector<FaultPlan>> plans_;  // plans_[t][i]: link into (t, i)
  RouterStats router_;
};

}  // namespace wcs
