#include "src/proxy/topology.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/util/rng.h"

namespace wcs {
namespace {

void accumulate(ProxyCache::Stats& total, const ProxyCache::Stats& s) {
  total.requests += s.requests;
  total.hits += s.hits;
  total.validations += s.validations;
  total.validated_fresh += s.validated_fresh;
  total.misses += s.misses;
  total.uncacheable += s.uncacheable;
  total.hit_bytes += s.hit_bytes;
  total.miss_bytes += s.miss_bytes;
  total.delta_updates += s.delta_updates;
  total.delta_bytes += s.delta_bytes;
  total.delta_bytes_avoided += s.delta_bytes_avoided;
  total.upstream_failures += s.upstream_failures;
  total.retries += s.retries;
  total.breaker_opens += s.breaker_opens;
  total.stale_served += s.stale_served;
  total.negative_hits += s.negative_hits;
  total.failed_requests += s.failed_requests;
  // Gauges: siblings partition the URL space, so the sum is the tier's
  // whole open-breaker and negative-cache population.
  total.breaker_open_hosts += s.breaker_open_hosts;
  total.negative_cache_entries += s.negative_cache_entries;
}

[[nodiscard]] std::string link_label(std::string_view base, std::size_t index) {
  return std::string{base} + "[" + std::to_string(index) + "]";
}

}  // namespace

CacheTopology::CacheTopology(TopologyConfig config, UpstreamFn origin)
    : origin_(std::move(origin)),
      sibling_failover_(config.sibling_failover),
      route_seed_(config.route_seed) {
  if (!origin_) throw std::invalid_argument{"CacheTopology: origin must be callable"};
  if (config.tiers.empty()) throw std::invalid_argument{"CacheTopology: at least one tier"};

  FaultSpec origin_spec = config.origin_link;
  if (origin_spec.label.empty()) origin_spec.label = "origin";
  origin_plan_ = FaultPlan{std::move(origin_spec)};

  labels_.reserve(config.tiers.size());
  tiers_.reserve(config.tiers.size());
  plans_.reserve(config.tiers.size());
  for (std::size_t t = 0; t < config.tiers.size(); ++t) {
    const TierConfig& tier = config.tiers[t];
    if (tier.label.empty()) {
      throw std::invalid_argument{"CacheTopology: tier labels must be non-empty"};
    }
    if (std::find(labels_.begin(), labels_.end(), tier.label) != labels_.end()) {
      throw std::invalid_argument{"CacheTopology: duplicate tier label " + tier.label};
    }
    if (tier.caches == 0) {
      throw std::invalid_argument{"CacheTopology: tier " + tier.label + " has zero caches"};
    }
    labels_.push_back(tier.label);

    std::vector<std::unique_ptr<ProxyCache>> caches;
    std::vector<FaultPlan> plans;
    caches.reserve(tier.caches);
    plans.reserve(tier.caches);
    for (std::uint32_t i = 0; i < tier.caches; ++i) {
      ProxyCache::Config cache_config = tier.proxy;
      if (cache_config.obs == nullptr) cache_config.obs = config.obs;
      // Tier t's upstream *is* the router over tiers t+1.. and the origin.
      // The lambda resolves tiers_ at call time, so construction order is
      // irrelevant; `this` is stable because callers own the topology.
      const std::size_t above = t + 1;
      caches.push_back(std::make_unique<ProxyCache>(
          std::move(cache_config), [this, above](const HttpRequest& request, SimTime now) {
            return route_from(above, request, now);
          }));
      FaultSpec link = tier.downlink;
      link.label = link_label(link.label.empty() ? tier.label : link.label, i);
      plans.emplace_back(std::move(link));
    }
    tiers_.push_back(std::move(caches));
    plans_.push_back(std::move(plans));
  }
}

std::size_t CacheTopology::route(std::size_t tier, std::string_view url) const {
  const std::size_t n = tiers_.at(tier).size();
  if (n == 1) return 0;
  // Golden-ratio tier salt keeps the per-tier pick independent, so an URL's
  // edge sibling says nothing about its regional sibling.
  std::uint64_t h =
      mix64(route_seed_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(tier) + 1)));
  h = mix64(h ^ fnv1a64(url));
  return static_cast<std::size_t>(h % n);
}

HttpResponse CacheTopology::route_from(std::size_t tier, const HttpRequest& request,
                                       SimTime now) {
  for (std::size_t level = tier; level < tiers_.size(); ++level) {
    auto& caches = tiers_[level];
    const std::size_t primary = route(level, request.target);
    const std::size_t tries = sibling_failover_ ? caches.size() : 1;
    for (std::size_t s = 0; s < tries; ++s) {
      const std::size_t index = (primary + s) % caches.size();
      ProxyCache& cache = *caches[index];
      HttpResponse response = plans_[level][index].apply(
          request, now,
          [&cache](const HttpRequest& inner, SimTime at) { return cache.handle(inner, at); });
      if (!is_upstream_failure(response)) return response;
      ++router_.link_failures;
      if (s + 1 < tries) ++router_.sibling_failovers;
    }
    ++router_.tier_skips;
  }
  // Last resort: the origin link. Its answer — success or the final
  // failure — is what the ladder surfaces; the calling cache's resilience
  // layer decides whether to retry the whole ladder or degrade.
  ++router_.origin_fetches;
  return origin_plan_.apply(request, now, origin_);
}

HttpResponse CacheTopology::handle(const HttpRequest& request, SimTime now) {
  return route_from(0, request, now);
}

ProxyCache::Stats CacheTopology::tier_stats(std::size_t tier) const {
  ProxyCache::Stats total;
  for (const auto& cache : tiers_.at(tier)) accumulate(total, cache->stats());
  return total;
}

std::uint64_t CacheTopology::tier_stored_bytes(std::size_t tier) const {
  std::uint64_t total = 0;
  for (const auto& cache : tiers_.at(tier)) total += cache->stored_bytes();
  return total;
}

std::uint64_t CacheTopology::total_capacity_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& caches : tiers_) {
    for (const auto& cache : caches) total += cache->cache().capacity_bytes();
  }
  return total;
}

AuditReport CacheTopology::audit() const {
  AuditReport report;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    for (std::size_t i = 0; i < tiers_[t].size(); ++i) {
      const ProxyCache& cache = *tiers_[t][i];
      const std::string scope = link_label(labels_[t], i);
      report.absorb(scope, cache.cache().audit());
      const ProxyCache::Stats& s = cache.stats();
      if (s.hits + s.misses + s.failed_requests != s.requests) {
        report.add(scope + ".proxy_accounting",
                   "hits + misses + failed != requests (" + std::to_string(s.hits) + " + " +
                       std::to_string(s.misses) + " + " + std::to_string(s.failed_requests) +
                       " != " + std::to_string(s.requests) + ")");
      }
    }
  }
  return report;
}

}  // namespace wcs
