#include "src/proxy/resilience.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "src/trace/intern.h"

namespace wcs {
namespace {

[[nodiscard]] HttpResponse local_failure(std::string_view why) {
  HttpResponse response;
  response.status = kTransportError;
  response.reason = "Transport Error";
  response.headers.set("X-Fault", std::string{why});
  return response;
}

}  // namespace

ResilientUpstream::ResilientUpstream(ResilienceConfig config, UpstreamFn upstream)
    : config_(config), upstream_(std::move(upstream)) {
  if (!upstream_) throw std::invalid_argument{"ResilientUpstream: no upstream"};
  if (config_.retry.max_attempts == 0) config_.retry.max_attempts = 1;
}

ResilientUpstream::BreakerState ResilientUpstream::breaker_state(std::string_view host,
                                                                 SimTime now) const noexcept {
  const auto it = breakers_.find(std::string{host});
  if (it == breakers_.end()) return BreakerState::kClosed;
  const Breaker& breaker = it->second;
  if (breaker.state == BreakerState::kOpen &&
      now - breaker.opened_at >= config_.breaker.open_duration) {
    return BreakerState::kHalfOpen;  // what the next fetch would see
  }
  return breaker.state;
}

void ResilientUpstream::record_result(Breaker& breaker, bool ok, SimTime now,
                                      UpstreamOutcome& outcome) {
  if (ok) {
    if (breaker.state == BreakerState::kHalfOpen) {
      if (++breaker.half_open_successes >= config_.breaker.half_open_successes) {
        breaker.state = BreakerState::kClosed;
        breaker.consecutive_failures = 0;
      }
    } else {
      breaker.consecutive_failures = 0;
    }
    return;
  }
  if (breaker.state == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately — the host is still sick.
    breaker.state = BreakerState::kOpen;
    breaker.opened_at = now;
    breaker.half_open_successes = 0;
    outcome.breaker_opened = true;
    return;
  }
  if (breaker.state == BreakerState::kClosed &&
      ++breaker.consecutive_failures >= config_.breaker.failure_threshold) {
    breaker.state = BreakerState::kOpen;
    breaker.opened_at = now;
    outcome.breaker_opened = true;
  }
}

UpstreamOutcome ResilientUpstream::fetch(const HttpRequest& request, SimTime now) {
  UpstreamOutcome outcome;
  if (!config_.enabled) {
    // The pre-resilience contract: one call, passed through unclassified.
    outcome.response = upstream_(request, now);
    outcome.attempts = 1;
    return outcome;
  }

  // 1. Negative cache: a URL that just failed keeps failing locally.
  if (config_.negative.ttl > 0) {
    const auto it = negative_until_.find(request.target);
    if (it != negative_until_.end()) {
      if (now < it->second) {
        outcome.failed = true;
        outcome.negative_hit = true;
        outcome.response = local_failure("negative-cache");
        return outcome;
      }
      negative_until_.erase(it);
    }
  }

  // 2. Circuit breaker for the URL's host.
  Breaker& breaker = breakers_[std::string{url_server(request.target)}];
  if (breaker.state == BreakerState::kOpen) {
    if (now - breaker.opened_at >= config_.breaker.open_duration) {
      breaker.state = BreakerState::kHalfOpen;
      breaker.half_open_successes = 0;
    } else {
      outcome.failed = true;
      outcome.breaker_short_circuit = true;
      outcome.response = local_failure("breaker-open");
      return outcome;
    }
  }

  // 3. Bounded retries under the timeout budget.
  const std::uint32_t budget = config_.timeout_budget_ms;
  bool ok = false;
  for (std::uint32_t attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt == 0) {
      outcome.response = upstream_(request, now);
    } else {
      const std::uint32_t delay = backoff_delay_ms(config_.retry.backoff, config_.seed,
                                                   fnv1a64(request.target), attempt);
      if (outcome.latency_ms + delay >= budget) {
        outcome.timed_out = true;  // no budget left to even wait out the backoff
        break;
      }
      outcome.latency_ms += delay;
      HttpRequest retry = request;
      retry.headers.set(std::string{kAttemptHeader}, std::to_string(attempt));
      outcome.response = upstream_(retry, now);
    }
    ++outcome.attempts;
    outcome.latency_ms += fault_latency_ms(outcome.response);
    ok = !is_upstream_failure(outcome.response);
    if (ok) break;
    if (outcome.latency_ms >= budget) {
      outcome.timed_out = true;
      break;
    }
  }
  outcome.failed = !ok;
  if (!ok) {
    const FaultKind kind = fault_kind_of(outcome.response);
    if (kind == FaultKind::kTimeout || kind == FaultKind::kOutage) outcome.timed_out = true;
  }

  record_result(breaker, ok, now, outcome);
  if (!ok && config_.negative.ttl > 0) {
    negative_until_[request.target] = now + config_.negative.ttl;
  }
  return outcome;
}

}  // namespace wcs
