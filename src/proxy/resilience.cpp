#include "src/proxy/resilience.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "src/obs/recorder.h"
#include "src/trace/intern.h"

namespace wcs {
namespace {

[[nodiscard]] HttpResponse local_failure(std::string_view why) {
  HttpResponse response;
  response.status = kTransportError;
  response.reason = "Transport Error";
  response.headers.set("X-Fault", std::string{why});
  return response;
}

void emit_breaker_transition(ObsRecorder* obs, SimTime now, std::string_view host,
                             ResilientUpstream::BreakerState from,
                             ResilientUpstream::BreakerState to) {
  if (obs == nullptr) return;
  Event event;
  event.kind = EventKind::kBreakerTransition;
  event.time = now;
  event.a = static_cast<std::int64_t>(from);
  event.b = static_cast<std::int64_t>(to);
  event.detail = host;
  obs->emit(event);
}

/// A fault the plan injected on this attempt (any kind, including the
/// non-failure kSlow) becomes a kChaosFault event — the trace's record of
/// what the network did to this request.
void emit_chaos_fault(ObsRecorder* obs, SimTime now, const HttpResponse& response,
                      std::uint32_t attempt) {
  if (obs == nullptr) return;
  const FaultKind kind = fault_kind_of(response);
  if (kind == FaultKind::kNone) return;
  Event event;
  event.kind = EventKind::kChaosFault;
  event.time = now;
  event.a = static_cast<std::int64_t>(kind);
  event.b = attempt;
  event.size = fault_latency_ms(response);
  event.detail = to_string(kind);
  obs->emit(event);
}

}  // namespace

ResilientUpstream::ResilientUpstream(ResilienceConfig config, UpstreamFn upstream)
    : config_(config), upstream_(std::move(upstream)) {
  if (!upstream_) throw std::invalid_argument{"ResilientUpstream: no upstream"};
  if (config_.retry.max_attempts == 0) config_.retry.max_attempts = 1;
}

ResilientUpstream::BreakerState ResilientUpstream::breaker_state(std::string_view host,
                                                                 SimTime now) const noexcept {
  const auto it = breakers_.find(std::string{host});
  if (it == breakers_.end()) return BreakerState::kClosed;
  const Breaker& breaker = it->second;
  if (breaker.state == BreakerState::kOpen &&
      now - breaker.opened_at >= config_.breaker.open_duration) {
    return BreakerState::kHalfOpen;  // what the next fetch would see
  }
  return breaker.state;
}

void ResilientUpstream::record_result(Breaker& breaker, std::string_view host, bool ok,
                                      SimTime now, UpstreamOutcome& outcome) {
  if (ok) {
    if (breaker.state == BreakerState::kHalfOpen) {
      if (++breaker.half_open_successes >= config_.breaker.half_open_successes) {
        breaker.state = BreakerState::kClosed;
        breaker.consecutive_failures = 0;
        --open_hosts_;
        emit_breaker_transition(config_.obs, now, host, BreakerState::kHalfOpen,
                                BreakerState::kClosed);
      }
    } else {
      breaker.consecutive_failures = 0;
    }
    return;
  }
  if (breaker.state == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately — the host is still sick.
    breaker.state = BreakerState::kOpen;
    breaker.opened_at = now;
    breaker.half_open_successes = 0;
    outcome.breaker_opened = true;
    emit_breaker_transition(config_.obs, now, host, BreakerState::kHalfOpen,
                            BreakerState::kOpen);
    return;
  }
  if (breaker.state == BreakerState::kClosed &&
      ++breaker.consecutive_failures >= config_.breaker.failure_threshold) {
    breaker.state = BreakerState::kOpen;
    breaker.opened_at = now;
    ++open_hosts_;
    outcome.breaker_opened = true;
    emit_breaker_transition(config_.obs, now, host, BreakerState::kClosed,
                            BreakerState::kOpen);
  }
}

UpstreamOutcome ResilientUpstream::fetch(const HttpRequest& request, SimTime now) {
  UpstreamOutcome outcome;
  if (!config_.enabled) {
    // The pre-resilience contract: one call, passed through unclassified.
    outcome.response = upstream_(request, now);
    outcome.attempts = 1;
    return outcome;
  }

  // 1. Negative cache: a URL that just failed keeps failing locally.
  if (config_.negative.ttl > 0) {
    const auto it = negative_until_.find(request.target);
    if (it != negative_until_.end()) {
      if (now < it->second) {
        outcome.failed = true;
        outcome.negative_hit = true;
        outcome.response = local_failure("negative-cache");
        if (config_.obs != nullptr) {
          Event event;
          event.kind = EventKind::kNegativeHit;
          event.time = now;
          event.b = it->second - now;  // seconds of TTL remaining
          event.detail = request.target;
          config_.obs->emit(event);
        }
        return outcome;
      }
      negative_until_.erase(it);
    }
  }

  // 2. Circuit breaker for the URL's host.
  const std::string host{url_server(request.target)};
  Breaker& breaker = breakers_[host];
  if (breaker.state == BreakerState::kOpen) {
    if (now - breaker.opened_at >= config_.breaker.open_duration) {
      breaker.state = BreakerState::kHalfOpen;
      breaker.half_open_successes = 0;
      emit_breaker_transition(config_.obs, now, host, BreakerState::kOpen,
                              BreakerState::kHalfOpen);
    } else {
      outcome.failed = true;
      outcome.breaker_short_circuit = true;
      outcome.response = local_failure("breaker-open");
      return outcome;
    }
  }

  // 3. Bounded retries under the timeout budget.
  const std::uint32_t budget = config_.timeout_budget_ms;
  bool ok = false;
  for (std::uint32_t attempt = 0; attempt < config_.retry.max_attempts; ++attempt) {
    if (attempt == 0) {
      outcome.response = upstream_(request, now);
    } else {
      const std::uint32_t delay = backoff_delay_ms(config_.retry.backoff, config_.seed,
                                                   fnv1a64(request.target), attempt);
      if (outcome.latency_ms + delay >= budget) {
        outcome.timed_out = true;  // no budget left to even wait out the backoff
        break;
      }
      outcome.latency_ms += delay;
      if (config_.obs != nullptr) {
        Event event;
        event.kind = EventKind::kUpstreamRetry;
        event.time = now;
        event.a = attempt;
        event.b = delay;
        event.detail = request.target;
        config_.obs->emit(event);
      }
      HttpRequest retry = request;
      retry.headers.set(std::string{kAttemptHeader}, std::to_string(attempt));
      outcome.response = upstream_(retry, now);
    }
    ++outcome.attempts;
    emit_chaos_fault(config_.obs, now, outcome.response, attempt);
    outcome.latency_ms += fault_latency_ms(outcome.response);
    ok = !is_upstream_failure(outcome.response);
    if (ok) break;
    if (outcome.latency_ms >= budget) {
      outcome.timed_out = true;
      break;
    }
  }
  outcome.failed = !ok;
  if (!ok) {
    const FaultKind kind = fault_kind_of(outcome.response);
    if (kind == FaultKind::kTimeout || kind == FaultKind::kOutage) outcome.timed_out = true;
  }

  record_result(breaker, host, ok, now, outcome);
  if (!ok && config_.negative.ttl > 0) {
    negative_until_[request.target] = now + config_.negative.ttl;
  }
  return outcome;
}

}  // namespace wcs
