#include "src/proxy/faults.h"

#include <string>
#include <utility>

#include "src/trace/intern.h"
#include "src/util/backoff.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace wcs {
namespace {

// Distinct salts keep the outage and transient draws independent even when
// every other hash input coincides.
constexpr std::uint64_t kOutageSalt = 0x007a6e5a17c0ffeeULL;
constexpr std::uint64_t kTransientSalt = 0x7a151e47deadbeefULL;

[[nodiscard]] HttpResponse transport_failure(FaultKind kind, std::uint32_t latency_ms) {
  HttpResponse response;
  response.status = kTransportError;
  response.reason = "Transport Error";
  response.headers.set("X-Fault", std::string{to_string(kind)});
  if (latency_ms > 0) {
    response.headers.set("X-Fault-Latency-Ms", std::to_string(latency_ms));
  }
  return response;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kServerError: return "server-error";
    case FaultKind::kReset: return "reset";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kTruncated: return "truncated";
    case FaultKind::kOutage: return "outage";
  }
  return "none";
}

FaultSpec FaultSpec::transient_mix(double rate, std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  const double share = rate / 5.0;
  spec.timeout = share;
  spec.server_error = share;
  spec.reset = share;
  spec.slow = share;
  spec.truncated = share;
  spec.outage = rate / 10.0;
  return spec;
}

FaultPlan::FaultPlan(FaultSpec spec)
    : spec_(std::move(spec)),
      label_hash_(spec_.label.empty() ? 0 : fnv1a64(spec_.label)) {}

FaultKind FaultPlan::decide(std::string_view url, SimTime now,
                            std::uint32_t attempt) const noexcept {
  if (!spec_.enabled()) return FaultKind::kNone;
  const std::uint64_t host = fnv1a64(url_server(url));

  // Persistent outage windows first: the whole (host, window) pair is down,
  // and no retry within the window can clear it (attempt is not hashed in).
  // The edge label (when present) enters each chain right after the seed
  // salt; the empty label skips the mix so unlabelled plans reproduce the
  // pre-label schedules bit-for-bit.
  if (spec_.outage > 0.0 && spec_.outage_window > 0) {
    SimTime window = now / spec_.outage_window;
    if (now % spec_.outage_window < 0) --window;  // floor for negative times
    std::uint64_t h = mix64(spec_.seed ^ kOutageSalt);
    if (!spec_.label.empty()) h = mix64(h ^ label_hash_);
    h = mix64(h ^ host);
    h = mix64(h ^ static_cast<std::uint64_t>(window));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < spec_.outage) return FaultKind::kOutage;
  }

  // One uniform draw per (host, second, attempt) selects among the
  // transient kinds by cumulative probability.
  const double total = spec_.transient_sum();
  if (total <= 0.0) return FaultKind::kNone;
  std::uint64_t h = mix64(spec_.seed ^ kTransientSalt);
  if (!spec_.label.empty()) h = mix64(h ^ label_hash_);
  h = mix64(h ^ host);
  h = mix64(h ^ static_cast<std::uint64_t>(now));
  h = mix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double edge = spec_.timeout;
  if (u < edge) return FaultKind::kTimeout;
  edge += spec_.server_error;
  if (u < edge) return FaultKind::kServerError;
  edge += spec_.reset;
  if (u < edge) return FaultKind::kReset;
  edge += spec_.slow;
  if (u < edge) return FaultKind::kSlow;
  edge += spec_.truncated;
  if (u < edge) return FaultKind::kTruncated;
  return FaultKind::kNone;
}

HttpResponse FaultPlan::apply(const HttpRequest& request, SimTime now,
                              const UpstreamFn& inner) const {
  std::uint32_t attempt = 0;
  if (const auto header = request.headers.get(kAttemptHeader)) {
    attempt = static_cast<std::uint32_t>(parse_u64(*header).value_or(0));
  }
  switch (decide(request.target, now, attempt)) {
    case FaultKind::kNone:
      return inner(request, now);
    case FaultKind::kOutage:
      return transport_failure(FaultKind::kOutage, spec_.timeout_latency_ms);
    case FaultKind::kTimeout:
      return transport_failure(FaultKind::kTimeout, spec_.timeout_latency_ms);
    case FaultKind::kReset:
      return transport_failure(FaultKind::kReset, spec_.reset_latency_ms);
    case FaultKind::kServerError: {
      // Overloaded origin: it answers (fast), but with 503 — inner is never
      // consulted, exactly like a front-end shedding load.
      HttpResponse response;
      response.status = 503;
      response.reason = std::string{reason_phrase(503)};
      response.headers.set("Content-Length", "0");
      response.headers.set("X-Fault", std::string{to_string(FaultKind::kServerError)});
      response.headers.set("X-Fault-Latency-Ms", std::to_string(spec_.reset_latency_ms));
      return response;
    }
    case FaultKind::kSlow: {
      HttpResponse response = inner(request, now);
      response.headers.set("X-Fault", std::string{to_string(FaultKind::kSlow)});
      response.headers.set("X-Fault-Latency-Ms", std::to_string(spec_.slow_latency_ms));
      return response;
    }
    case FaultKind::kTruncated: {
      HttpResponse response = inner(request, now);
      if (response.status == 200 && response.body.size() >= 2) {
        // Keep Content-Length: the mismatch *is* the fault signature.
        response.body.resize(response.body.size() / 2);
        response.headers.set("X-Fault", std::string{to_string(FaultKind::kTruncated)});
        if (spec_.reset_latency_ms > 0) {
          response.headers.set("X-Fault-Latency-Ms", std::to_string(spec_.reset_latency_ms));
        }
        return response;
      }
      // Nothing to truncate (304, error body): degrade to a reset.
      return transport_failure(FaultKind::kReset, spec_.reset_latency_ms);
    }
  }
  return inner(request, now);
}

UpstreamFn FaultPlan::wrap(UpstreamFn inner) const {
  if (!enabled()) return inner;
  return [plan = *this, inner = std::move(inner)](const HttpRequest& request, SimTime now) {
    return plan.apply(request, now, inner);
  };
}

bool is_upstream_failure(const HttpResponse& response) noexcept {
  if (response.status == kTransportError) return true;
  if (response.status == 500 || response.status == 502 || response.status == 503 ||
      response.status == 504) {
    return true;
  }
  if (response.status == 200) {
    const auto declared = response.headers.content_length();
    if (declared && *declared > response.body.size()) return true;  // truncated
  }
  return false;
}

FaultKind fault_kind_of(const HttpResponse& response) noexcept {
  const auto header = response.headers.get("X-Fault");
  if (!header) return FaultKind::kNone;
  for (const FaultKind kind :
       {FaultKind::kTimeout, FaultKind::kServerError, FaultKind::kReset, FaultKind::kSlow,
        FaultKind::kTruncated, FaultKind::kOutage}) {
    if (*header == to_string(kind)) return kind;
  }
  return FaultKind::kNone;
}

std::uint32_t fault_latency_ms(const HttpResponse& response) noexcept {
  const auto header = response.headers.get("X-Fault-Latency-Ms");
  if (!header) return 0;
  return static_cast<std::uint32_t>(parse_u64(*header).value_or(0));
}

}  // namespace wcs
