#include "src/proxy/sharded_proxy.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace wcs {
namespace {

[[nodiscard]] ProxyCache::Config shard_config(const ShardedProxy::Config& config,
                                              std::uint32_t shard) {
  ProxyCache::Config out = config.proxy;
  if (config.proxy.capacity_bytes != 0) {
    const std::uint64_t base = config.proxy.capacity_bytes / config.shards;
    const std::uint64_t remainder = config.proxy.capacity_bytes % config.shards;
    out.capacity_bytes = base + (shard < remainder ? 1 : 0);
  }
  return out;
}

}  // namespace

ShardedProxy::ShardedProxy(Config config, const UpstreamFactory& make_upstream) {
  if (config.shards == 0) {
    throw std::invalid_argument{"ShardedProxy: shard count must be >= 1"};
  }
  if (!make_upstream) {
    throw std::invalid_argument{"ShardedProxy: upstream factory must be callable"};
  }
  // A positive total smaller than the shard count would leave some shards
  // with capacity 0 — which means *infinite* in CacheConfig, silently
  // inverting the caller's intent. Refuse instead.
  if (config.proxy.capacity_bytes != 0 && config.proxy.capacity_bytes < config.shards) {
    throw std::invalid_argument{"ShardedProxy: capacity smaller than the shard count"};
  }
  shards_.reserve(config.shards);
  for (std::uint32_t i = 0; i < config.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_config(config, i), make_upstream(i)));
  }
}

HttpResponse ShardedProxy::handle(std::uint32_t shard, const HttpRequest& request, SimTime now) {
  Shard& s = *shards_.at(shard);
  MutexLock lock{s.mutex};
  return s.proxy.handle(request, now);
}

ProxyCache::Stats ShardedProxy::merged_stats() const {
  ProxyCache::Stats total;
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    const ProxyCache::Stats& s = shard->proxy.stats();
    total.requests += s.requests;
    total.hits += s.hits;
    total.validations += s.validations;
    total.validated_fresh += s.validated_fresh;
    total.misses += s.misses;
    total.uncacheable += s.uncacheable;
    total.hit_bytes += s.hit_bytes;
    total.miss_bytes += s.miss_bytes;
    total.delta_updates += s.delta_updates;
    total.delta_bytes += s.delta_bytes;
    total.delta_bytes_avoided += s.delta_bytes_avoided;
    total.upstream_failures += s.upstream_failures;
    total.retries += s.retries;
    total.breaker_opens += s.breaker_opens;
    total.stale_served += s.stale_served;
    total.negative_hits += s.negative_hits;
    total.failed_requests += s.failed_requests;
    // Gauges: each shard fronts a disjoint host/URL partition, so the sum
    // is the whole proxy's open-breaker and negative-cache population.
    total.breaker_open_hosts += s.breaker_open_hosts;
    total.negative_cache_entries += s.negative_cache_entries;
  }
  return total;
}

std::vector<ProxyCache::Stats> ShardedProxy::shard_stats() const {
  std::vector<ProxyCache::Stats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    out.push_back(shard->proxy.stats());
  }
  return out;
}

std::vector<ShardedProxy::ShardOccupancy> ShardedProxy::occupancy() const {
  std::vector<ShardOccupancy> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock{shard->mutex};
    ShardOccupancy slot;
    slot.stored_bytes = shard->proxy.stored_bytes();
    slot.capacity_bytes = shard->proxy.cache().capacity_bytes();
    slot.entries = shard->proxy.cache().entry_count();
    slot.requests = shard->proxy.stats().requests;
    out.push_back(slot);
  }
  return out;
}

AuditReport ShardedProxy::audit() const {
  AuditReport report;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    MutexLock lock{shard.mutex};
    const std::string scope = "shard" + std::to_string(i);
    report.absorb(scope, shard.proxy.cache().audit());
    const ProxyCache::Stats& s = shard.proxy.stats();
    if (s.hits + s.misses + s.failed_requests != s.requests) {
      report.add(scope + ".proxy_accounting",
                 "hits + misses + failed != requests (" + std::to_string(s.hits) + " + " +
                     std::to_string(s.misses) + " + " + std::to_string(s.failed_requests) +
                     " != " + std::to_string(s.requests) + ")");
    }
  }
  return report;
}

}  // namespace wcs
