// The caching proxy itself — the system the simulator models, assembled
// from the real pieces: HTTP message handling (src/http), the removal-
// policy cache core (src/core), and an upstream fetch function (an
// OriginServer, another proxy, or anything callable).
//
// Behaviour follows the paper's §1 case analysis:
//   (1) fresh cached copy            -> serve locally (hit)
//   (2) possibly-stale cached copy   -> conditional GET upstream;
//                                       304 keeps the copy (hit),
//                                       200 replaces it (miss)
//   (3) no copy                      -> fetch upstream (miss), cache if
//                                       cacheable, evicting via the policy
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/http/message.h"
#include "src/proxy/resilience.h"
#include "src/trace/trace.h"
#include "src/util/thread_annotations.h"

namespace wcs {

/// Thread-affine by design: one owner drives handle() — a single replay
/// loop, or one shard of a ShardedProxy whose per-shard mutex provides the
/// exclusion. Everything inside (document store, URL interning, resilience
/// state — breaker window, negative cache) mutates without internal locks;
/// concurrent callers must route through ShardedProxy (or equivalent
/// external serialization), never share a ProxyCache across threads.
class WCS_THREAD_AFFINE ProxyCache {
 public:
  /// Upstream fetch signature (shared with FaultPlan / ResilientUpstream).
  using UpstreamFn = wcs::UpstreamFn;
  /// Receives one common-format record per handled request. The proxy never
  /// stores records itself — a long-running proxy must not grow without
  /// bound — so the sink decides the retention policy: write to disk, keep
  /// a bounded ring (BoundedLogRing), or collect into a vector for tests
  /// (log_to_vector).
  using LogSink = std::function<void(const RawRequest&)>;

  struct Config {
    std::uint64_t capacity_bytes = 64ULL << 20;
    /// Removal policy name (see make_policy_by_name); the paper's winner.
    std::string policy = "size";
    /// Serve without revalidating while a copy is younger than this; 0
    /// forces a conditional GET on every request (maximum consistency).
    SimTime revalidate_after = 5 * kSecondsPerMinute;
    /// Advertise `A-IM: wcs-delta` on conditional GETs and apply `226 IM
    /// Used` delta responses (paper §5 open problem 2).
    bool accept_deltas = true;
    /// Access-log sink; null disables logging entirely (no allocation).
    /// Whatever the sink captures must outlive the proxy.
    LogSink log_sink;
    /// Failure handling for every upstream call (DESIGN.md §9): retries,
    /// breaker, negative cache, stale-if-error. `resilience.enabled =
    /// false` restores the pre-resilience single-call passthrough exactly.
    ResilienceConfig resilience;
    /// Observability recorder (src/obs/recorder.h); nullptr = disabled.
    /// Propagated into the cache core and the resilience layer, so one
    /// recorder sees the whole per-request event stream. Observes only —
    /// responses, stats and eviction order are identical on or off.
    ObsRecorder* obs = nullptr;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;            // served from cache (incl. after 304)
    std::uint64_t validations = 0;     // conditional GETs sent upstream
    std::uint64_t validated_fresh = 0; // upstream said 304
    std::uint64_t misses = 0;
    std::uint64_t uncacheable = 0;
    std::uint64_t hit_bytes = 0;
    std::uint64_t miss_bytes = 0;
    std::uint64_t delta_updates = 0;       // 226 responses applied
    std::uint64_t delta_bytes = 0;         // delta payload received
    std::uint64_t delta_bytes_avoided = 0; // full-size resend avoided
    // Resilience counters (all zero while resilience is disabled or the
    // upstream stays healthy).
    std::uint64_t upstream_failures = 0; // fetches with no usable response
    std::uint64_t retries = 0;           // upstream attempts beyond the first
    std::uint64_t breaker_opens = 0;     // circuit-breaker open transitions
    std::uint64_t stale_served = 0;      // failures masked by the cached copy
    std::uint64_t negative_hits = 0;     // negative-cache short-circuits
    std::uint64_t failed_requests = 0;   // answered 502/504 (nothing to serve)
    // Resilience gauges, snapshotted after each upstream fetch. Unlike the
    // counters above these can move in both directions, so they stay out of
    // every monotonicity check (e.g. the chaos-sweep counter list).
    std::uint64_t breaker_open_hosts = 0;      // hosts with a non-closed breaker
    std::uint64_t negative_cache_entries = 0;  // URLs held by the negative cache

    /// Fraction of requests answered with a usable response.
    [[nodiscard]] double availability() const noexcept {
      return requests == 0
                 ? 1.0
                 : 1.0 - static_cast<double>(failed_requests) / static_cast<double>(requests);
    }
  };

  ProxyCache(Config config, UpstreamFn upstream);

  /// Serve one client request at time `now`.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request, SimTime now);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Cache& cache() const noexcept { return *cache_; }
  /// The resilience wrapper fronting the upstream (breaker state, config).
  [[nodiscard]] const ResilientUpstream& resilience() const noexcept { return resilient_; }
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept { return cache_->used_bytes(); }

  /// Convenience sink that appends every record to `out` (tests, short
  /// demos). `out` must outlive the proxy; unbounded by construction, so
  /// not for long-running use — prefer BoundedLogRing there.
  [[nodiscard]] static LogSink log_to_vector(std::vector<RawRequest>& out);

 private:
  struct StoredDocument {
    std::string body;
    HeaderMap headers;
    SimTime last_modified = 0;
    SimTime fetched_at = 0;
  };

  [[nodiscard]] UrlId intern(const std::string& url);
  [[nodiscard]] HttpResponse serve_from_store(const StoredDocument& document,
                                              const HttpRequest& request, bool hit) const;
  void log_access(const HttpRequest& request, const HttpResponse& response, SimTime now);
  /// One resilient fetch with stats accounting folded in.
  [[nodiscard]] UpstreamOutcome fetch_upstream(const HttpRequest& request, SimTime now);
  /// 502 (upstream unusable) or 504 (budget/timeout) for a failed fetch.
  [[nodiscard]] HttpResponse failure_response(const UpstreamOutcome& outcome) const;
  /// Degraded path when revalidation fails but a copy exists: stale-if-
  /// error serve with Warning 111, or the failure status if disabled.
  [[nodiscard]] HttpResponse serve_stale_or_fail(UrlId url, StoredDocument& document,
                                                 const HttpRequest& request,
                                                 const UpstreamOutcome& outcome, SimTime now);

  Config config_;
  ResilientUpstream resilient_;  // the only path to the raw upstream
  std::unique_ptr<Cache> cache_;
  std::unordered_map<std::string, UrlId> url_ids_;
  std::vector<std::string> url_names_;
  std::unordered_map<UrlId, StoredDocument> store_;
  Stats stats_;
};

/// Fixed-capacity access-log retention: keeps the newest `capacity`
/// records, overwriting the oldest — O(capacity) memory for any run
/// length. Plug into ProxyCache via `config.log_sink = ring.sink();`
/// (the ring must outlive the proxy).
class BoundedLogRing {
 public:
  explicit BoundedLogRing(std::size_t capacity);

  void push(const RawRequest& record);
  /// A sink bound to this ring (holds a pointer to it).
  [[nodiscard]] ProxyCache::LogSink sink() noexcept;

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<RawRequest> snapshot() const;
  /// Total records ever pushed (>= snapshot().size()).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

 private:
  std::vector<RawRequest> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;  // overwrite position once full
  std::uint64_t total_ = 0;
};

}  // namespace wcs
