// The caching proxy itself — the system the simulator models, assembled
// from the real pieces: HTTP message handling (src/http), the removal-
// policy cache core (src/core), and an upstream fetch function (an
// OriginServer, another proxy, or anything callable).
//
// Behaviour follows the paper's §1 case analysis:
//   (1) fresh cached copy            -> serve locally (hit)
//   (2) possibly-stale cached copy   -> conditional GET upstream;
//                                       304 keeps the copy (hit),
//                                       200 replaces it (miss)
//   (3) no copy                      -> fetch upstream (miss), cache if
//                                       cacheable, evicting via the policy
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cache.h"
#include "src/http/message.h"
#include "src/trace/trace.h"

namespace wcs {

class ProxyCache {
 public:
  using UpstreamFn = std::function<HttpResponse(const HttpRequest&, SimTime)>;

  struct Config {
    std::uint64_t capacity_bytes = 64ULL << 20;
    /// Removal policy name (see make_policy_by_name); the paper's winner.
    std::string policy = "size";
    /// Serve without revalidating while a copy is younger than this; 0
    /// forces a conditional GET on every request (maximum consistency).
    SimTime revalidate_after = 5 * kSecondsPerMinute;
    /// Advertise `A-IM: wcs-delta` on conditional GETs and apply `226 IM
    /// Used` delta responses (paper §5 open problem 2).
    bool accept_deltas = true;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;            // served from cache (incl. after 304)
    std::uint64_t validations = 0;     // conditional GETs sent upstream
    std::uint64_t validated_fresh = 0; // upstream said 304
    std::uint64_t misses = 0;
    std::uint64_t uncacheable = 0;
    std::uint64_t hit_bytes = 0;
    std::uint64_t miss_bytes = 0;
    std::uint64_t delta_updates = 0;       // 226 responses applied
    std::uint64_t delta_bytes = 0;         // delta payload received
    std::uint64_t delta_bytes_avoided = 0; // full-size resend avoided
  };

  ProxyCache(Config config, UpstreamFn upstream);

  /// Serve one client request at time `now`.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request, SimTime now);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Cache& cache() const noexcept { return *cache_; }
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept { return cache_->used_bytes(); }

  /// Common-format access log (one record per handled request).
  [[nodiscard]] const std::vector<RawRequest>& access_log() const noexcept { return log_; }

 private:
  struct StoredDocument {
    std::string body;
    HeaderMap headers;
    SimTime last_modified = 0;
    SimTime fetched_at = 0;
  };

  [[nodiscard]] UrlId intern(const std::string& url);
  [[nodiscard]] HttpResponse serve_from_store(const StoredDocument& document,
                                              const HttpRequest& request, bool hit) const;
  void log_access(const HttpRequest& request, const HttpResponse& response, SimTime now);

  Config config_;
  UpstreamFn upstream_;
  std::unique_ptr<Cache> cache_;
  std::unordered_map<std::string, UrlId> url_ids_;
  std::vector<std::string> url_names_;
  std::unordered_map<UrlId, StoredDocument> store_;
  Stats stats_;
  std::vector<RawRequest> log_;
};

}  // namespace wcs
