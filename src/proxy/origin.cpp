#include "src/proxy/origin.h"

#include "src/http/cacheability.h"
#include "src/http/date.h"
#include "src/http/delta.h"
#include "src/util/strings.h"

namespace wcs {

void OriginServer::put(const std::string& path, std::string content, SimTime modified) {
  documents_[path] = Document{std::move(content), modified, {}, -1};
}

bool OriginServer::edit(const std::string& path, std::string content, SimTime modified) {
  const auto it = documents_.find(path);
  if (it == documents_.end()) return false;
  it->second.previous_content = std::move(it->second.content);
  it->second.previous_modified = it->second.modified;
  it->second.content = std::move(content);
  it->second.modified = modified;
  return true;
}

std::optional<std::string> OriginServer::path_of(const std::string& target) const {
  if (starts_with(target, "http://")) {
    const std::string_view rest = std::string_view{target}.substr(7);
    const auto slash = rest.find('/');
    const std::string_view authority =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    std::string_view host = authority;
    if (const auto colon = host.find(':'); colon != std::string_view::npos) {
      host = host.substr(0, colon);
    }
    if (!iequals(host, host_)) return std::nullopt;
    return slash == std::string_view::npos ? std::string{"/"}
                                           : std::string{rest.substr(slash)};
  }
  if (!target.empty() && target.front() == '/') return target;
  return std::nullopt;
}

HttpResponse OriginServer::handle(const HttpRequest& request, SimTime now) const {
  ++served_;
  HttpResponse response;
  response.headers.set("Date", to_http_date(now));
  response.headers.set("Server", "wcs-origin/1.0");

  const bool is_get = iequals(request.method, "GET");
  const bool is_head = iequals(request.method, "HEAD");
  if (!is_get && !is_head) {
    response.status = 501;
    response.reason = std::string{reason_phrase(501)};
    response.headers.set("Content-Length", "0");
    return response;
  }

  const auto path = path_of(request.target);
  const auto it = path ? documents_.find(*path) : documents_.end();
  if (!path || it == documents_.end()) {
    response.status = 404;
    response.reason = std::string{reason_phrase(404)};
    response.body = is_get ? "not found\n" : "";
    response.headers.set("Content-Length", std::to_string(response.body.size()));
    return response;
  }

  const Document& document = it->second;
  if (not_modified_since(request, document.modified)) {
    response.status = 304;
    response.reason = std::string{reason_phrase(304)};
    response.headers.set("Last-Modified", to_http_date(document.modified));
    return response;
  }

  // Delta transfer: the client's copy is stale, but if it is *exactly* our
  // previous version (If-Modified-Since equal to its Last-Modified — any
  // other base would corrupt the patch) and the client accepts deltas,
  // send the diff instead.
  const auto accept_im = request.headers.get("A-IM");
  const auto ims_header = request.headers.get("If-Modified-Since");
  const std::optional<SimTime> client_base =
      ims_header ? parse_http_date(*ims_header) : std::nullopt;
  if (accept_im && to_lower(*accept_im).find("wcs-delta") != std::string::npos &&
      document.previous_modified >= 0 && client_base &&
      *client_base == document.previous_modified &&
      delta_worthwhile(document.previous_content, document.content)) {
    response.status = 226;
    response.reason = "IM Used";
    response.headers.set("IM", "wcs-delta");
    response.headers.set("Last-Modified", to_http_date(document.modified));
    response.headers.set("Delta-Base", to_http_date(document.previous_modified));
    response.body = is_get ? encode_delta(document.previous_content, document.content)
                           : std::string{};
    response.headers.set("Content-Length", std::to_string(response.body.size()));
    return response;
  }

  response.status = 200;
  response.reason = std::string{reason_phrase(200)};
  response.headers.set("Last-Modified", to_http_date(document.modified));
  response.headers.set("Content-Type", "application/octet-stream");
  response.headers.set("Content-Length", std::to_string(document.content.size()));
  if (is_get) response.body = document.content;
  return response;
}

}  // namespace wcs
