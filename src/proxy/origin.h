// Origin web-server simulator: a document store that answers GET and
// conditional GET (If-Modified-Since) the way a 1995 CERN/NCSA httpd did.
// Documents can be "edited" to advance their Last-Modified time, letting
// tests and examples exercise the proxy's consistency path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/http/message.h"
#include "src/util/simtime.h"

namespace wcs {

class OriginServer {
 public:
  explicit OriginServer(std::string host) : host_(std::move(host)) {}

  /// Publish (or replace) a document at `path` ("/index.html").
  void put(const std::string& path, std::string content, SimTime modified);

  /// Edit a document: new content, Last-Modified advanced to `modified`.
  /// Returns false if the path does not exist.
  bool edit(const std::string& path, std::string content, SimTime modified);

  bool remove(const std::string& path) { return documents_.erase(path) > 0; }

  /// Serve a request at time `now`. Understands origin-form ("/a.html") and
  /// absolute-form ("http://host/a.html") targets; a Host mismatch on an
  /// absolute target yields 404 (this server only knows its own documents).
  ///
  /// Delta transfer (paper §5 open problem 2): a conditional GET carrying
  /// `A-IM: wcs-delta` whose If-Modified-Since matches the *previous*
  /// version of an edited document is answered with `226 IM Used` and a
  /// delta body (see src/http/delta.h) when that is smaller than resending.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request, SimTime now) const;

  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::size_t document_count() const noexcept { return documents_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const noexcept { return served_; }

 private:
  struct Document {
    std::string content;
    SimTime modified = 0;
    // The immediately preceding version, kept so a delta against the copy
    // most caches hold can be served.
    std::string previous_content;
    SimTime previous_modified = -1;
  };

  [[nodiscard]] std::optional<std::string> path_of(const std::string& target) const;

  std::string host_;
  std::unordered_map<std::string, Document> documents_;
  mutable std::uint64_t served_ = 0;
};

}  // namespace wcs
