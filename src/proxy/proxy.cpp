#include "src/proxy/proxy.h"

#include <stdexcept>

#include "src/core/policy.h"
#include "src/http/cacheability.h"
#include "src/http/date.h"
#include "src/http/delta.h"
#include "src/obs/recorder.h"
#include "src/util/strings.h"

namespace wcs {

ProxyCache::ProxyCache(Config config, UpstreamFn upstream)
    : config_([&config] {
        // One recorder for the whole proxy: flow it into the resilience
        // layer before the member initializer below copies the config.
        config.resilience.obs = config.obs;
        return std::move(config);
      }()),
      resilient_(config_.resilience, std::move(upstream)) {
  auto policy = make_policy_by_name(config_.policy);
  if (policy == nullptr) {
    throw std::invalid_argument{"ProxyCache: unknown policy " + config_.policy};
  }
  CacheConfig cache_config;
  cache_config.capacity_bytes = config_.capacity_bytes;
  cache_config.on_evict = [this](const CacheEntry& entry) { store_.erase(entry.url); };
  cache_config.obs = config_.obs;
  cache_ = std::make_unique<Cache>(cache_config, std::move(policy));
}

UrlId ProxyCache::intern(const std::string& url) {
  const auto it = url_ids_.find(url);
  if (it != url_ids_.end()) return it->second;
  const auto id = static_cast<UrlId>(url_names_.size());
  url_names_.push_back(url);
  url_ids_.emplace(url, id);
  return id;
}

HttpResponse ProxyCache::serve_from_store(const StoredDocument& document,
                                          const HttpRequest& request, bool hit) const {
  // A client conditional GET against a fresh copy yields 304 directly.
  if (not_modified_since(request, document.last_modified)) {
    HttpResponse response;
    response.status = 304;
    response.reason = std::string{reason_phrase(304)};
    response.headers.set("Last-Modified", to_http_date(document.last_modified));
    response.headers.set("X-Cache", hit ? "HIT" : "MISS");
    return response;
  }
  HttpResponse response;
  response.status = 200;
  response.reason = std::string{reason_phrase(200)};
  for (const auto& header : document.headers.all()) {
    response.headers.add(header.name, header.value);
  }
  response.headers.set("Last-Modified", to_http_date(document.last_modified));
  response.headers.set("Content-Length", std::to_string(document.body.size()));
  response.headers.set("X-Cache", hit ? "HIT" : "MISS");
  response.body = document.body;
  return response;
}

void ProxyCache::log_access(const HttpRequest& request, const HttpResponse& response,
                            SimTime now) {
  if (!config_.log_sink) return;
  RawRequest record;
  record.time = now;
  record.client = "proxy-client";
  record.method = request.method;
  record.url = request.target;
  record.status = response.status;
  record.size = response.body.size();
  config_.log_sink(record);
}

ProxyCache::LogSink ProxyCache::log_to_vector(std::vector<RawRequest>& out) {
  return [&out](const RawRequest& record) { out.push_back(record); };
}

UpstreamOutcome ProxyCache::fetch_upstream(const HttpRequest& request, SimTime now) {
  UpstreamOutcome outcome = resilient_.fetch(request, now);
  if (outcome.attempts > 1) stats_.retries += outcome.attempts - 1;
  if (outcome.failed) ++stats_.upstream_failures;
  if (outcome.breaker_opened) ++stats_.breaker_opens;
  if (outcome.negative_hit) ++stats_.negative_hits;
  stats_.breaker_open_hosts = resilient_.open_breaker_hosts();
  stats_.negative_cache_entries = resilient_.negative_cache_entries();
  return outcome;
}

HttpResponse ProxyCache::failure_response(const UpstreamOutcome& outcome) const {
  HttpResponse response;
  response.status = outcome.timed_out ? 504 : 502;
  response.reason = std::string{reason_phrase(response.status)};
  response.headers.set("Content-Length", "0");
  response.headers.set("X-Cache", "MISS");
  return response;
}

HttpResponse ProxyCache::serve_stale_or_fail(UrlId url, StoredDocument& document,
                                             const HttpRequest& request,
                                             const UpstreamOutcome& outcome, SimTime now) {
  if (config_.resilience.stale_if_error) {
    // Stale-if-error: the upstream is down but we hold a copy. Serving it
    // beats a 5xx — exactly the availability role related work assigns to
    // caches. fetched_at stays put, so the next request retries upstream.
    cache_->access(now, url, document.body.size(), classify_url(request.target));
    ++stats_.hits;
    stats_.hit_bytes += document.body.size();
    ++stats_.stale_served;
    if (config_.obs != nullptr) {
      Event event;
      event.kind = EventKind::kStaleServed;
      event.time = now;
      event.url = static_cast<ObsUrlId>(url);
      event.size = document.body.size();
      event.detail = request.target;
      config_.obs->emit(event);
    }
    HttpResponse response = serve_from_store(document, request, true);
    response.headers.set("Warning", "111 - \"Revalidation Failed\"");
    log_access(request, response, now);
    return response;
  }
  ++stats_.failed_requests;
  HttpResponse response = failure_response(outcome);
  log_access(request, response, now);
  return response;
}

BoundedLogRing::BoundedLogRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument{"BoundedLogRing: capacity 0"};
  ring_.reserve(capacity);
}

void BoundedLogRing::push(const RawRequest& record) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
    return;
  }
  ring_[next_] = record;
  next_ = (next_ + 1) % capacity_;
}

ProxyCache::LogSink BoundedLogRing::sink() noexcept {
  return [this](const RawRequest& record) { push(record); };
}

std::vector<RawRequest> BoundedLogRing::snapshot() const {
  std::vector<RawRequest> out;
  out.reserve(ring_.size());
  // Once full, next_ is the oldest retained record.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

HttpResponse ProxyCache::handle(const HttpRequest& request, SimTime now) {
  ++stats_.requests;

  // Non-GET traffic is forwarded untouched (a 1.0 proxy caches only GETs).
  if (!iequals(request.method, "GET")) {
    ++stats_.uncacheable;
    UpstreamOutcome outcome = fetch_upstream(request, now);
    if (outcome.failed) {
      // Nothing cacheable to fall back on for non-GETs: fail the client.
      ++stats_.failed_requests;
      HttpResponse response = failure_response(outcome);
      log_access(request, response, now);
      return response;
    }
    log_access(request, outcome.response, now);
    return outcome.response;
  }

  const UrlId url = intern(request.target);
  const auto stored = store_.find(url);
  if (stored != store_.end()) {
    StoredDocument& document = stored->second;
    const bool fresh = now - document.fetched_at <= config_.revalidate_after;
    if (fresh) {
      // Case (1): serve the local copy.
      cache_->access(now, url, document.body.size(), classify_url(request.target));
      ++stats_.hits;
      stats_.hit_bytes += document.body.size();
      HttpResponse response = serve_from_store(document, request, true);
      log_access(request, response, now);
      return response;
    }

    // Case (2): revalidate with a conditional GET.
    ++stats_.validations;
    HttpRequest conditional = request;
    conditional.headers.set("If-Modified-Since", to_http_date(document.last_modified));
    if (config_.accept_deltas) conditional.headers.set("A-IM", "wcs-delta");
    UpstreamOutcome outcome = fetch_upstream(conditional, now);
    if (outcome.failed) return serve_stale_or_fail(url, document, request, outcome, now);
    HttpResponse upstream_response = std::move(outcome.response);
    if (upstream_response.status == 226 && config_.accept_deltas) {
      // Delta update: patch the cached body instead of refetching whole.
      const auto im = upstream_response.headers.get("IM");
      const auto patched =
          im && to_lower(*im).find("wcs-delta") != std::string::npos
              ? apply_delta(document.body, upstream_response.body)
              : std::nullopt;
      if (patched) {
        ++stats_.delta_updates;
        stats_.delta_bytes += upstream_response.body.size();
        stats_.delta_bytes_avoided += patched->size() - upstream_response.body.size();
        StoredDocument updated;
        updated.body = std::move(*patched);
        updated.last_modified = last_modified_of(upstream_response).value_or(now);
        updated.fetched_at = now;
        // Re-admit under the new size. If the edit changed the length this
        // is a §1.1 size-change miss whose eviction path invalidates
        // `document`/`stored` (on_evict drops the old store entry); if the
        // length is unchanged it is a plain hit. Either way the patched
        // body must replace the stored one.
        const AccessResult admitted =
            cache_->access(now, url, updated.body.size(), classify_url(request.target));
        ++stats_.misses;  // the document did change; clients see a fresh copy
        stats_.miss_bytes += upstream_response.body.size();
        HttpResponse response = serve_from_store(updated, request, false);
        if (admitted.hit || admitted.inserted) {
          store_[url] = std::move(updated);
        } else {
          store_.erase(url);  // too large to re-admit
        }
        log_access(request, response, now);
        return response;
      }
      // Unusable delta: fall through to a full fetch.
      UpstreamOutcome refetch = fetch_upstream(request, now);
      if (refetch.failed) return serve_stale_or_fail(url, document, request, refetch, now);
      upstream_response = std::move(refetch.response);
    }
    if (upstream_response.status == 304) {
      ++stats_.validated_fresh;
      document.fetched_at = now;
      cache_->access(now, url, document.body.size(), classify_url(request.target));
      ++stats_.hits;
      stats_.hit_bytes += document.body.size();
      HttpResponse response = serve_from_store(document, request, true);
      log_access(request, response, now);
      return response;
    }
    // Changed (or error): drop the stale copy; fall through as a miss.
    cache_->erase(url);  // on_evict removes the stored body
    if (upstream_response.status == 200 && is_cacheable(request, upstream_response)) {
      StoredDocument replacement;
      replacement.body = upstream_response.body;
      replacement.last_modified =
          last_modified_of(upstream_response).value_or(now);
      replacement.fetched_at = now;
      // access() admits the new copy and evicts per policy (evictions drop
      // bodies through on_evict); only then store the body.
      const AccessResult admitted = cache_->access(
          now, url, upstream_response.body.size(), classify_url(request.target));
      if (admitted.inserted) store_[url] = std::move(replacement);
    }
    ++stats_.misses;
    stats_.miss_bytes += upstream_response.body.size();
    upstream_response.headers.set("X-Cache", "MISS");
    log_access(request, upstream_response, now);
    return upstream_response;
  }

  // Case (3): no copy — fetch from upstream. Stale-if-error has nothing to
  // offer here: without a stored body the only honest answer is 502/504.
  UpstreamOutcome outcome = fetch_upstream(request, now);
  if (outcome.failed) {
    ++stats_.failed_requests;
    HttpResponse response = failure_response(outcome);
    log_access(request, response, now);
    return response;
  }
  HttpResponse upstream_response = std::move(outcome.response);
  ++stats_.misses;
  stats_.miss_bytes += upstream_response.body.size();
  if (is_cacheable(request, upstream_response)) {
    const AccessResult admitted = cache_->access(
        now, url, upstream_response.body.size(), classify_url(request.target));
    if (admitted.inserted) {
      StoredDocument document;
      document.body = upstream_response.body;
      document.last_modified = last_modified_of(upstream_response).value_or(now);
      document.fetched_at = now;
      store_[url] = std::move(document);
    }
  } else {
    ++stats_.uncacheable;
  }
  upstream_response.headers.set("X-Cache", "MISS");
  log_access(request, upstream_response, now);
  return upstream_response;
}

}  // namespace wcs
