// Sharded proxy front (DESIGN.md §13): the thread-safe seam that lets the
// concurrent load generator drive real ProxyCache instances.
//
// ProxyCache is thread-affine (see proxy.h) — its document store, URL
// interning and resilience state all mutate lock-free under a single
// owner. ShardedProxy supplies that owner per shard: M independent
// ProxyCache instances, each behind its own wcs::Mutex, with the caller
// routing every request to a fixed shard (by UrlId hash — shard_of_url —
// in the load generator). shards == 1 degenerates to the coarse-locked
// wrapper: one ProxyCache serialized by one mutex, byte-identical in
// behaviour to driving it single-threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/audit.h"
#include "src/proxy/proxy.h"
#include "src/util/thread_annotations.h"

namespace wcs {

class ShardedProxy {
 public:
  /// Builds one upstream per shard. A shard's upstream is only ever called
  /// under that shard's mutex, so a per-shard origin may be thread-affine.
  using UpstreamFactory = std::function<UpstreamFn(std::uint32_t shard)>;

  struct Config {
    std::uint32_t shards = 1;
    /// Per-shard template. `capacity_bytes` is the TOTAL budget, split
    /// evenly across shards (remainder to the low shards; a positive total
    /// below one byte per shard is rejected). `obs` must stay null unless
    /// the proxy is driven single-threaded — the recorder is thread-affine.
    ProxyCache::Config proxy;
  };

  ShardedProxy(Config config, const UpstreamFactory& make_upstream);

  ShardedProxy(const ShardedProxy&) = delete;
  ShardedProxy& operator=(const ShardedProxy&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Serve one request on `shard`. Thread-safe: distinct shards proceed in
  /// parallel, same-shard calls serialize on the shard mutex. The caller
  /// owns the routing and must keep it stable (same URL -> same shard),
  /// or hit accounting degrades to whatever the split implies.
  [[nodiscard]] HttpResponse handle(std::uint32_t shard, const HttpRequest& request, SimTime now);

  /// Exact sum of the per-shard ProxyCache::Stats counters.
  [[nodiscard]] ProxyCache::Stats merged_stats() const;
  /// Per-shard snapshots, shard index order.
  [[nodiscard]] std::vector<ProxyCache::Stats> shard_stats() const;

  struct ShardOccupancy {
    std::uint64_t stored_bytes = 0;
    std::uint64_t capacity_bytes = 0;
    std::uint64_t entries = 0;
    std::uint64_t requests = 0;
  };
  [[nodiscard]] std::vector<ShardOccupancy> occupancy() const;

  /// Per-shard invariant sweep: each shard's cache core audit (scoped
  /// "shard<i>.") plus the proxy-level accounting identity
  /// hits + misses + failed == requests on every shard.
  [[nodiscard]] AuditReport audit() const;

 private:
  struct Shard {
    Shard(ProxyCache::Config config, UpstreamFn upstream)
        : proxy(std::move(config), std::move(upstream)) {}

    mutable Mutex mutex;
    ProxyCache proxy WCS_GUARDED_BY(mutex);
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace wcs
