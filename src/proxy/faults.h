// Deterministic upstream fault injection.
//
// A FaultPlan wraps any UpstreamFn and injects the failure modes a proxy
// on the 1995 Internet actually met: connection timeouts, overloaded-
// server 5xx answers, mid-transfer connection resets, slow responses, and
// truncated bodies, plus persistent per-host outage windows (a server
// unreachable for an afternoon, which retries cannot clear).
//
// Every decision is *stateless*: hashed (mix64 / fnv1a64) from
// (seed, host, time, attempt), never drawn from mutable RNG state. That
// makes a schedule reproducible, independent of call order and thread
// interleaving, and unobservable to the request source feeding the
// simulation — the same discipline as the per-entity sub-seeds of
// src/util/rng.h.
//
// Transport-level failures cannot be expressed as ordinary HTTP statuses;
// they are modelled as a response with status 0 (kTransportError) carrying
// an "X-Fault" header naming the kind. Server overload is an ordinary 503.
// Slow responses succeed but carry "X-Fault-Latency-Ms", which the
// resilience layer charges against the request's timeout budget. Truncated
// bodies keep the original Content-Length, so the mismatch is detectable
// exactly the way a real client detects it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/http/message.h"
#include "src/util/simtime.h"

namespace wcs {

/// The upstream fetch signature shared by ProxyCache, FaultPlan and
/// ResilientUpstream (ProxyCache::UpstreamFn aliases this).
using UpstreamFn = std::function<HttpResponse(const HttpRequest&, SimTime)>;

/// Status used for synthesized transport-level failures (no HTTP response
/// ever came back).
inline constexpr int kTransportError = 0;

/// Retry-attempt request header: the resilience layer stamps retries with
/// the attempt index so the stateless schedule can clear a transient fault
/// on a later attempt. Absent means attempt 0 (set only on retries, so the
/// no-retry hot path never copies the request).
inline constexpr std::string_view kAttemptHeader = "X-Attempt";

enum class FaultKind : unsigned char {
  kNone = 0,
  kTimeout,      // connection/read timeout: status 0, costs timeout_latency_ms
  kServerError,  // overloaded origin: synthesized 503, inner never called
  kReset,        // connection reset mid-handshake: status 0, fails fast
  kSlow,         // response arrives, but slow_latency_ms late
  kTruncated,    // body cut short; Content-Length exposes the damage
  kOutage,       // persistent per-host window: unreachable, like kTimeout
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

struct FaultSpec {
  std::uint64_t seed = 0x5eed0f57ULL;
  /// Edge/tier label mixed into every decision hash. Two plans with the
  /// same seed but different labels (e.g. the links into "regional[0]" and
  /// "regional[1]") draw independent fault schedules for the same host at
  /// the same time. The empty label is special-cased to preserve the
  /// pre-label schedules bit-for-bit.
  std::string label;
  // Per-attempt transient probabilities. One uniform draw per attempt is
  // compared against their cumulative sum, so keep the sum <= 1.
  double timeout = 0.0;
  double server_error = 0.0;
  double reset = 0.0;
  double slow = 0.0;
  double truncated = 0.0;
  /// Probability that a given (host, window) pair is down for the *whole*
  /// window — persistent, attempt-independent failure.
  double outage = 0.0;
  SimTime outage_window = kSecondsPerHour;
  // Virtual latency charged by each kind (milliseconds).
  std::uint32_t timeout_latency_ms = 1000;
  std::uint32_t slow_latency_ms = 400;
  std::uint32_t reset_latency_ms = 50;

  [[nodiscard]] double transient_sum() const noexcept {
    return timeout + server_error + reset + slow + truncated;
  }
  [[nodiscard]] bool enabled() const noexcept { return transient_sum() > 0.0 || outage > 0.0; }

  /// An even mix of all five transient kinds totalling `rate`, plus a small
  /// persistent-outage share (rate / 10 per host-window).
  [[nodiscard]] static FaultSpec transient_mix(double rate, std::uint64_t seed = 0x5eed0f57ULL);

  /// A copy of this spec bound to a specific edge label.
  [[nodiscard]] FaultSpec with_label(std::string edge_label) const {
    FaultSpec out = *this;
    out.label = std::move(edge_label);
    return out;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;  // disabled: decide() is kNone, wrap() the identity
  explicit FaultPlan(FaultSpec spec);

  [[nodiscard]] bool enabled() const noexcept { return spec_.enabled(); }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// The fault (if any) for attempt `attempt` of a request for `url` at
  /// `now`. Pure function of (spec, label, url's host, now, attempt):
  /// faults are host-level network events on one labelled edge, shared by
  /// every URL on the host crossing that edge.
  [[nodiscard]] FaultKind decide(std::string_view url, SimTime now,
                                 std::uint32_t attempt) const noexcept;

  /// Inject this plan's faults in front of `inner`. Reads kAttemptHeader
  /// to key retries. A disabled plan returns `inner` unchanged, so the
  /// no-faults configuration costs nothing.
  [[nodiscard]] UpstreamFn wrap(UpstreamFn inner) const;

  /// One wrapped call (exposed for tests; wrap() routes through this).
  [[nodiscard]] HttpResponse apply(const HttpRequest& request, SimTime now,
                                   const UpstreamFn& inner) const;

 private:
  FaultSpec spec_;
  // fnv1a64(spec_.label), memoized at construction; 0 stands for "no
  // label" (the empty label keeps the legacy hash chain untouched).
  std::uint64_t label_hash_ = 0;
};

/// Classify a response the way the resilience layer does. A failure is a
/// transport error (status 0), a 5xx gateway/overload status (500, 502,
/// 503, 504 — not 501, which OriginServer uses for unimplemented methods),
/// or a truncated body (Content-Length larger than the body received).
[[nodiscard]] bool is_upstream_failure(const HttpResponse& response) noexcept;

/// The injected FaultKind recorded on a response (kNone when unfaulted).
[[nodiscard]] FaultKind fault_kind_of(const HttpResponse& response) noexcept;

/// Virtual latency the fault charged ("X-Fault-Latency-Ms"), 0 if none.
[[nodiscard]] std::uint32_t fault_latency_ms(const HttpResponse& response) noexcept;

}  // namespace wcs
