// Resilient upstream wrapper: the only component allowed to call the raw
// upstream function inside the proxy (lint rule no-unchecked-upstream).
//
// Pipeline per fetch, in order:
//   1. negative cache — a URL that just failed keeps failing for `ttl`
//      seconds without another upstream call;
//   2. per-host circuit breaker — after `failure_threshold` consecutive
//      failures the host is open (fetches short-circuit) for
//      `open_duration`, then half-open (probe traffic allowed) until
//      `half_open_successes` probes close it again;
//   3. bounded retries under a per-request timeout budget, with
//      exponential backoff + deterministic jitter (src/util/backoff.h).
//      Injected fault latencies and backoff delays are *virtual*
//      milliseconds charged against the budget; simulated time never
//      advances mid-request.
//
// With `enabled == false` a fetch is exactly one raw upstream call passed
// through unclassified — bit-identical to the pre-resilience proxy, which
// is both the compatibility contract and the bench_perf overhead baseline.
//
// What counts as a failure is is_upstream_failure() (src/proxy/faults.h):
// transport errors, 500/502/503/504, truncation. 4xx and 501 answers are
// *successes* — the origin spoke; its answer is the answer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/proxy/faults.h"
#include "src/util/backoff.h"

namespace wcs {

class ObsRecorder;  // src/obs/recorder.h

struct RetryConfig {
  std::uint32_t max_attempts = 3;  // total upstream tries per fetch (>= 1)
  BackoffConfig backoff;           // virtual delay between tries
};

struct BreakerConfig {
  std::uint32_t failure_threshold = 5;    // consecutive failures to open
  SimTime open_duration = 30;             // seconds open before half-open
  std::uint32_t half_open_successes = 2;  // probe successes to close
};

struct NegativeCacheConfig {
  SimTime ttl = 5;  // seconds a known-bad URL fails locally; 0 disables
};

struct ResilienceConfig {
  /// false = pre-PR-4 behaviour: one upstream call, response passed
  /// through raw, no classification, no stats.
  bool enabled = true;
  /// Virtual milliseconds one fetch may spend across attempts, backoff
  /// delays and injected fault latencies before giving up with 504.
  std::uint32_t timeout_budget_ms = 3000;
  RetryConfig retry;
  BreakerConfig breaker;
  NegativeCacheConfig negative;
  /// Proxy-level: on upstream failure serve the cached (possibly stale)
  /// copy with `Warning: 111` instead of failing the client.
  bool stale_if_error = true;
  /// Seed for the backoff-jitter hash (independent of any FaultPlan seed).
  std::uint64_t seed = 0xbacc0ff5ULL;
  /// Observability recorder; nullptr = disabled. Emits retry, breaker-
  /// transition, negative-hit and chaos-fault events. Observes only: the
  /// fetch pipeline, backoff schedule and every counter are identical with
  /// recording on or off (tests/test_obs.cpp bit-identity property).
  ObsRecorder* obs = nullptr;
};

/// One resilient fetch, accounted.
struct UpstreamOutcome {
  HttpResponse response;  // usable response, or the last failure seen
  bool failed = false;    // no usable response; the proxy must degrade
  bool timed_out = false;            // budget exhausted / timeout-kind failure
  std::uint32_t attempts = 0;        // raw upstream calls actually made
  std::uint32_t latency_ms = 0;      // virtual: fault latencies + backoff
  bool breaker_short_circuit = false;  // open breaker: no upstream call
  bool breaker_opened = false;         // this fetch tripped a breaker open
  bool negative_hit = false;           // negative cache answered
};

class ResilientUpstream {
 public:
  enum class BreakerState : unsigned char { kClosed, kOpen, kHalfOpen };

  /// Throws std::invalid_argument if `upstream` is null.
  ResilientUpstream(ResilienceConfig config, UpstreamFn upstream);

  [[nodiscard]] UpstreamOutcome fetch(const HttpRequest& request, SimTime now);

  [[nodiscard]] const ResilienceConfig& config() const noexcept { return config_; }
  /// Breaker state for `host` as of `now` (an expired open window reads as
  /// half-open, matching what the next fetch would see).
  [[nodiscard]] BreakerState breaker_state(std::string_view host, SimTime now) const noexcept;
  /// Hosts whose breaker is not closed (open or half-open) as of the last
  /// fetch. O(1): maintained incrementally on every breaker transition.
  [[nodiscard]] std::uint64_t open_breaker_hosts() const noexcept { return open_hosts_; }
  /// URLs currently held by the negative cache. Expired entries are
  /// reclaimed lazily by their next fetch, so between fetches this is an
  /// upper bound on the live population.
  [[nodiscard]] std::uint64_t negative_cache_entries() const noexcept {
    return negative_until_.size();
  }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    std::uint32_t consecutive_failures = 0;
    std::uint32_t half_open_successes = 0;
    SimTime opened_at = 0;
  };

  void record_result(Breaker& breaker, std::string_view host, bool ok, SimTime now,
                     UpstreamOutcome& outcome);

  ResilienceConfig config_;
  UpstreamFn upstream_;
  std::unordered_map<std::string, Breaker> breakers_;       // by host
  std::unordered_map<std::string, SimTime> negative_until_;  // by URL
  std::uint64_t open_hosts_ = 0;  // breakers currently open or half-open
};

}  // namespace wcs
