#include "src/capture/extractor.h"

#include <cstdio>

#include "src/util/strings.h"

namespace wcs {

std::string format_ipv4(std::uint32_t address) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (address >> 24) & 0xff,
                (address >> 16) & 0xff, (address >> 8) & 0xff, address & 0xff);
  return buf;
}

HttpExtractor::HttpExtractor(TransactionCallback on_transaction, std::uint16_t server_port)
    : on_transaction_(std::move(on_transaction)),
      server_port_(server_port),
      reassembler_(
          [this](const FlowKey& flow, std::string_view bytes, std::int64_t timestamp) {
            on_stream_data(flow, bytes, timestamp);
          },
          [this](const FlowKey& flow, std::int64_t timestamp) {
            on_stream_fin(flow, timestamp);
          }) {}

void HttpExtractor::accept(const TcpSegment& segment) { reassembler_.accept(segment); }

HttpExtractor::Connection& HttpExtractor::connection_of(const FlowKey& client_to_server) {
  auto [it, inserted] = connections_.try_emplace(client_to_server);
  if (inserted) it->second.client = format_ipv4(client_to_server.src_ip);
  return it->second;
}

void HttpExtractor::on_stream_data(const FlowKey& flow, std::string_view bytes,
                                   std::int64_t timestamp) {
  if (flow.dst_port == server_port_) {
    // Client -> server: requests.
    Connection& connection = connection_of(flow);
    connection.last_timestamp = timestamp;
    auto requests = connection.request_parser.feed(bytes);
    if (connection.request_parser.failed()) ++parse_failures_;
    for (auto& request : requests) connection.outstanding.push_back(std::move(request));
  } else if (flow.src_port == server_port_) {
    // Server -> client: responses for the reversed flow's connection.
    Connection& connection = connection_of(flow.reversed());
    connection.last_timestamp = timestamp;
    auto responses = connection.response_parser.feed(bytes);
    if (connection.response_parser.failed()) ++parse_failures_;
    pair_responses(connection, std::move(responses), timestamp);
  }
  // Segments on other ports are not HTTP: ignore, as the tcpdump filter did.
}

void HttpExtractor::on_stream_fin(const FlowKey& flow, std::int64_t timestamp) {
  if (flow.src_port != server_port_) return;  // only the response side matters
  Connection& connection = connection_of(flow.reversed());
  if (auto last = connection.response_parser.finish()) {
    std::vector<HttpResponse> responses;
    responses.push_back(std::move(*last));
    pair_responses(connection, std::move(responses), timestamp);
  }
  connection.response_fin = true;
}

void HttpExtractor::pair_responses(Connection& connection,
                                   std::vector<HttpResponse> responses,
                                   std::int64_t timestamp) {
  for (auto& response : responses) {
    if (connection.outstanding.empty()) {
      // Response with no recorded request (capture started mid-connection):
      // the original filter dropped these as non-decodable.
      ++parse_failures_;
      continue;
    }
    HttpRequest request = std::move(connection.outstanding.front());
    connection.outstanding.pop_front();

    HttpTransaction transaction;
    transaction.client = connection.client;
    transaction.method = request.method;
    // Proxy-form targets are already absolute; origin-form targets get the
    // authority reconstructed from the Host header when present.
    if (starts_with(request.target, "http://") || starts_with(request.target, "https://")) {
      transaction.url = request.target;
    } else if (const auto host = request.headers.get("Host")) {
      transaction.url = "http://" + std::string{*host} + request.target;
    } else {
      transaction.url = request.target;
    }
    transaction.status = response.status;
    transaction.bytes = response.body.size();
    transaction.time = timestamp;
    ++emitted_;
    if (on_transaction_) on_transaction_(transaction);
  }
}

void HttpExtractor::finish() {
  for (auto& [flow, connection] : connections_) {
    if (auto last = connection.response_parser.finish()) {
      std::vector<HttpResponse> responses;
      responses.push_back(std::move(*last));
      pair_responses(connection, std::move(responses), connection.last_timestamp);
    }
  }
}

RawRequest HttpExtractor::to_raw_request(const HttpTransaction& transaction) {
  RawRequest raw;
  raw.time = transaction.time;
  raw.client = transaction.client;
  raw.method = transaction.method;
  raw.url = transaction.url;
  raw.status = transaction.status;
  raw.size = transaction.bytes;
  return raw;
}

}  // namespace wcs
