// Synthetic packet-capture generation: turn a list of HTTP exchanges into a
// TCP segment stream (optionally chunked, reordered, duplicated) so the
// reassembly + extraction pipeline can be exercised end to end without real
// capture hardware — the substitution DESIGN.md documents for the paper's
// tcpdump collection step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/tcp.h"
#include "src/util/rng.h"

namespace wcs {

struct SynthExchange {
  std::uint32_t client_ip = 0x0a000001;  // 10.0.0.1
  std::uint32_t server_ip = 0xc0a80050;  // 192.168.0.80
  std::uint16_t client_port = 30000;
  std::string request;    // serialized HTTP request bytes
  std::string response;   // serialized HTTP response bytes
  std::int64_t start_time = 0;
};

struct SynthOptions {
  std::size_t max_segment_bytes = 1460;  // classic Ethernet MSS
  double reorder_probability = 0.0;      // swap adjacent segments
  double duplicate_probability = 0.0;    // re-emit a segment
  std::uint64_t seed = 42;
};

/// Build the full segment stream (SYN, request, response, FINs) for each
/// exchange on its own connection. Segments are returned in emission order
/// after any reordering/duplication.
[[nodiscard]] std::vector<TcpSegment> synthesize_capture(
    const std::vector<SynthExchange>& exchanges, const SynthOptions& options = {});

}  // namespace wcs
