#include "src/capture/reassembler.h"

#include <utility>

namespace wcs {

namespace {

/// Wrap-aware signed distance a - b on 32-bit sequence numbers.
[[nodiscard]] constexpr std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b);
}

}  // namespace

StreamReassembler::StreamReassembler(DataCallback on_data, FinCallback on_fin)
    : on_data_(std::move(on_data)), on_fin_(std::move(on_fin)) {}

void StreamReassembler::accept(const TcpSegment& segment) {
  FlowState* state = nullptr;
  if (segment.syn) {
    FlowState fresh;
    fresh.syn_seen = true;
    fresh.next_seq = segment.seq + 1;  // SYN consumes one sequence number
    flows_[segment.flow] = std::move(fresh);
    state = &flows_[segment.flow];
  } else {
    const auto it = flows_.find(segment.flow);
    if (it == flows_.end()) {
      orphan_bytes_ += segment.payload.size();
      return;
    }
    state = &it->second;
  }

  if (!segment.payload.empty()) {
    std::uint32_t seq = segment.syn ? segment.seq + 1 : segment.seq;
    std::string_view payload = segment.payload;
    // Trim the part we already delivered.
    const std::int32_t behind = seq_diff(state->next_seq, seq);
    if (behind > 0) {
      if (static_cast<std::size_t>(behind) >= payload.size()) {
        payload = {};
      } else {
        payload.remove_prefix(static_cast<std::size_t>(behind));
        seq += static_cast<std::uint32_t>(behind);
      }
    }
    if (!payload.empty()) {
      // Buffer; identical/overlapping retransmissions collapse by keeping
      // the longest chunk at each start.
      auto& slot = state->pending[seq];
      if (payload.size() > slot.size()) slot = std::string{payload};
    }
  }

  if (segment.fin) {
    state->fin_seen = true;
    state->fin_seq =
        (segment.syn ? segment.seq + 1 : segment.seq) +
        static_cast<std::uint32_t>(segment.payload.size());
  }

  deliver_ready(segment.flow, *state, segment.timestamp);
}

void StreamReassembler::deliver_ready(const FlowKey& key, FlowState& state,
                                      std::int64_t timestamp) {
  while (!state.pending.empty()) {
    auto it = state.pending.begin();
    const std::int32_t gap = seq_diff(it->first, state.next_seq);
    if (gap > 0) break;  // hole: wait for the missing segment
    std::string chunk = std::move(it->second);
    std::uint32_t start = it->first;
    state.pending.erase(it);
    // Trim any overlap with already-delivered data.
    const std::int32_t behind = seq_diff(state.next_seq, start);
    if (behind > 0) {
      if (static_cast<std::size_t>(behind) >= chunk.size()) continue;
      chunk.erase(0, static_cast<std::size_t>(behind));
      start += static_cast<std::uint32_t>(behind);
    }
    state.next_seq = start + static_cast<std::uint32_t>(chunk.size());
    if (on_data_) on_data_(key, chunk, timestamp);
  }
  if (state.fin_seen && !state.fin_delivered &&
      seq_diff(state.next_seq, state.fin_seq) >= 0) {
    state.fin_delivered = true;
    if (on_fin_) on_fin_(key, timestamp);
  }
}

std::size_t StreamReassembler::flows_with_gaps() const noexcept {
  std::size_t count = 0;
  for (const auto& [key, state] : flows_) {
    if (!state.pending.empty()) ++count;
  }
  return count;
}

}  // namespace wcs
