// HTTP transaction extraction — the repository's equivalent of the paper's
// "Chitra" tcpdump filter (§2.1): watch port-80 TCP segments, reassemble
// both directions of each connection, parse requests and responses, pair
// them in order, and emit one common-log-format record per non-aborted
// document transfer.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/capture/reassembler.h"
#include "src/http/parser.h"
#include "src/trace/trace.h"

namespace wcs {

/// One completed request/response exchange.
struct HttpTransaction {
  std::string client;       // rendered client address
  std::string method;
  std::string url;          // absolute URL (reconstructed from Host if needed)
  int status = 0;
  std::uint64_t bytes = 0;  // response body bytes
  SimTime time = 0;         // time of the response completion
};

class HttpExtractor {
 public:
  using TransactionCallback = std::function<void(const HttpTransaction&)>;

  /// `server_port` identifies the server side of each flow (80 for HTTP).
  explicit HttpExtractor(TransactionCallback on_transaction,
                         std::uint16_t server_port = 80);

  /// Feed one captured segment (either direction).
  void accept(const TcpSegment& segment);

  /// Flush close-delimited responses of flows that never FIN'd cleanly.
  void finish();

  [[nodiscard]] std::uint64_t transactions_emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t parse_failures() const noexcept { return parse_failures_; }

  /// Format a transaction as a CLF RawRequest (the exported log record).
  [[nodiscard]] static RawRequest to_raw_request(const HttpTransaction& transaction);

 private:
  // Connection state keyed by the *client->server* flow.
  struct Connection {
    RequestParser request_parser;
    ResponseParser response_parser;
    std::deque<HttpRequest> outstanding;  // requests awaiting responses
    std::string client;
    std::int64_t last_timestamp = 0;
    bool response_fin = false;
  };

  void on_stream_data(const FlowKey& flow, std::string_view bytes, std::int64_t timestamp);
  void on_stream_fin(const FlowKey& flow, std::int64_t timestamp);
  void pair_responses(Connection& connection, std::vector<HttpResponse> responses,
                      std::int64_t timestamp);
  [[nodiscard]] Connection& connection_of(const FlowKey& client_to_server);

  TransactionCallback on_transaction_;
  std::uint16_t server_port_;
  StreamReassembler reassembler_;
  std::unordered_map<FlowKey, Connection, FlowKeyHash> connections_;
  std::uint64_t emitted_ = 0;
  std::uint64_t parse_failures_ = 0;
};

/// Render an IPv4 address as dotted quad.
[[nodiscard]] std::string format_ipv4(std::uint32_t address);

}  // namespace wcs
