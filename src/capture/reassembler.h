// Per-flow TCP stream reassembly: accepts segments in any order, with
// duplicates and overlaps, and delivers each flow's payload bytes in
// sequence order exactly once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "src/capture/tcp.h"

namespace wcs {

class StreamReassembler {
 public:
  /// Called with (flow, contiguous bytes, timestamp of the completing
  /// segment) each time new in-order data becomes available, and with
  /// (flow, "", timestamp) when the flow FINs cleanly.
  using DataCallback =
      std::function<void(const FlowKey&, std::string_view, std::int64_t)>;
  using FinCallback = std::function<void(const FlowKey&, std::int64_t)>;

  explicit StreamReassembler(DataCallback on_data, FinCallback on_fin = {});

  void accept(const TcpSegment& segment);

  /// Number of flows with buffered out-of-order data.
  [[nodiscard]] std::size_t flows_with_gaps() const noexcept;
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Bytes dropped because they arrived before a SYN established the flow's
  /// initial sequence number.
  [[nodiscard]] std::uint64_t orphan_bytes() const noexcept { return orphan_bytes_; }

 private:
  struct FlowState {
    bool syn_seen = false;
    std::uint32_t next_seq = 0;  // next expected sequence number
    bool fin_delivered = false;
    std::uint32_t fin_seq = 0;   // sequence number of the FIN, when seen
    bool fin_seen = false;
    // Out-of-order chunks keyed by starting seq.
    std::map<std::uint32_t, std::string> pending;
  };

  void deliver_ready(const FlowKey& key, FlowState& state, std::int64_t timestamp);

  DataCallback on_data_;
  FinCallback on_fin_;
  std::unordered_map<FlowKey, FlowState, FlowKeyHash> flows_;
  std::uint64_t orphan_bytes_ = 0;
};

}  // namespace wcs
