#include "src/capture/synth.h"

#include <algorithm>

namespace wcs {

namespace {

void emit_stream(std::vector<TcpSegment>& out, const FlowKey& flow, std::uint32_t isn,
                 const std::string& bytes, std::int64_t time,
                 const SynthOptions& options) {
  TcpSegment syn;
  syn.flow = flow;
  syn.seq = isn;
  syn.syn = true;
  syn.timestamp = time;
  out.push_back(std::move(syn));

  std::uint32_t seq = isn + 1;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t len = std::min(options.max_segment_bytes, bytes.size() - offset);
    TcpSegment segment;
    segment.flow = flow;
    segment.seq = seq;
    segment.timestamp = time;
    segment.payload = bytes.substr(offset, len);
    out.push_back(std::move(segment));
    seq += static_cast<std::uint32_t>(len);
    offset += len;
  }

  TcpSegment fin;
  fin.flow = flow;
  fin.seq = seq;
  fin.fin = true;
  fin.timestamp = time;
  out.push_back(std::move(fin));
}

}  // namespace

std::vector<TcpSegment> synthesize_capture(const std::vector<SynthExchange>& exchanges,
                                           const SynthOptions& options) {
  std::vector<TcpSegment> out;
  Rng rng{options.seed};
  std::uint16_t port_offset = 0;

  for (const auto& exchange : exchanges) {
    const FlowKey c2s{exchange.client_ip, exchange.server_ip,
                      static_cast<std::uint16_t>(exchange.client_port + port_offset), 80};
    ++port_offset;
    const FlowKey s2c = c2s.reversed();
    const auto isn_client = static_cast<std::uint32_t>(rng());
    const auto isn_server = static_cast<std::uint32_t>(rng());

    std::vector<TcpSegment> connection;
    emit_stream(connection, c2s, isn_client, exchange.request, exchange.start_time, options);
    emit_stream(connection, s2c, isn_server, exchange.response, exchange.start_time + 1,
                options);

    // Optional adjacent reordering and duplication, per connection so the
    // request always begins before the response stream in emission order.
    if (options.reorder_probability > 0.0) {
      for (std::size_t i = 1; i + 1 < connection.size(); ++i) {
        // Never displace a SYN behind its own stream's data — a capture
        // that sees data before the SYN cannot anchor the sequence space.
        if (connection[i].syn || connection[i + 1].syn) continue;
        if (rng.chance(options.reorder_probability)) {
          std::swap(connection[i], connection[i + 1]);
          ++i;  // do not cascade a segment forward repeatedly
        }
      }
    }
    if (options.duplicate_probability > 0.0) {
      std::vector<TcpSegment> with_dups;
      with_dups.reserve(connection.size() + 4);
      for (const auto& segment : connection) {
        with_dups.push_back(segment);
        if (rng.chance(options.duplicate_probability)) with_dups.push_back(segment);
      }
      connection = std::move(with_dups);
    }
    out.insert(out.end(), std::make_move_iterator(connection.begin()),
               std::make_move_iterator(connection.end()));
  }
  return out;
}

}  // namespace wcs
