// Minimal TCP segment model for the capture pipeline.
//
// The paper's BR/BL workloads were collected by running tcpdump on the
// department backbone and decoding the HTTP headers of port-80 packets into
// a common-format log. This module models exactly what that pipeline needs:
// segments carrying (flow id, sequence number, payload, SYN/FIN), possibly
// reordered or duplicated — not checksums, windows or retransmission
// timers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace wcs {

/// One direction of a TCP connection.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

  /// The opposite direction of the same connection.
  [[nodiscard]] FlowKey reversed() const noexcept {
    return {dst_ip, src_ip, dst_port, src_port};
  }
};

struct FlowKeyHash {
  [[nodiscard]] std::size_t operator()(const FlowKey& key) const noexcept {
    std::uint64_t mixed = (static_cast<std::uint64_t>(key.src_ip) << 32) | key.dst_ip;
    mixed ^= (static_cast<std::uint64_t>(key.src_port) << 16) ^ key.dst_port;
    mixed *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(mixed ^ (mixed >> 32));
  }
};

struct TcpSegment {
  FlowKey flow;
  std::uint32_t seq = 0;   // sequence number of payload[0]
  bool syn = false;        // consumes one sequence number
  bool fin = false;
  std::int64_t timestamp = 0;  // capture time (SimTime seconds)
  std::string payload;
};

}  // namespace wcs
