#include "src/workload/report.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "src/trace/trace_stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"

namespace wcs {

double WorkloadReport::worst_relative_error() const noexcept {
  const auto rel = [](double actual, double target) {
    return target == 0.0 ? 0.0 : std::abs(actual - target) / target;
  };
  double worst = rel(static_cast<double>(requests_actual), static_cast<double>(requests_target));
  worst = std::max(worst, rel(static_cast<double>(bytes_actual),
                              static_cast<double>(bytes_target)));
  worst = std::max(worst, rel(static_cast<double>(unique_bytes_actual),
                              static_cast<double>(unique_bytes_target)));
  return worst;
}

WorkloadReport make_report(const WorkloadSpec& spec, const Trace& trace) {
  WorkloadReport report;
  report.workload = spec.name;
  report.days_target = spec.days;
  report.days_actual = trace.day_count();
  report.requests_target = spec.valid_requests;
  report.requests_actual = trace.size();
  report.bytes_target = spec.total_bytes;
  report.bytes_actual = trace.total_bytes();
  report.unique_bytes_target = spec.unique_bytes;
  report.unique_bytes_actual = trace.unique_bytes();
  report.unique_urls = trace.url_count();
  report.servers = trace.server_count();
  report.ref_mix_target = spec.ref_mix;
  report.byte_mix_target = spec.byte_mix;

  const FileTypeDistribution dist = file_type_distribution(trace);
  for (const FileType type : kAllFileTypes) {
    const auto i = static_cast<std::size_t>(type);
    report.ref_mix_actual[i] = dist.ref_fraction(type);
    report.byte_mix_actual[i] = dist.byte_fraction(type);
  }
  return report;
}

void print_report(std::ostream& os, const WorkloadReport& report) {
  Table table{"Workload " + report.workload + ": generated vs paper"};
  table.header({"metric", "paper", "generated"});
  table.row({"days", std::to_string(report.days_target), std::to_string(report.days_actual)});
  table.row({"valid requests", std::to_string(report.requests_target),
             std::to_string(report.requests_actual)});
  table.row({"bytes transferred", format_bytes(report.bytes_target),
             format_bytes(report.bytes_actual)});
  table.row({"unique bytes (MaxNeeded)", format_bytes(report.unique_bytes_target),
             format_bytes(report.unique_bytes_actual)});
  table.row({"unique URLs", "", std::to_string(report.unique_urls)});
  table.row({"servers", "", std::to_string(report.servers)});
  for (const FileType type : kAllFileTypes) {
    const auto i = static_cast<std::size_t>(type);
    table.row({std::string{to_string(type)} + " %refs",
               Table::pct(report.ref_mix_target[i]), Table::pct(report.ref_mix_actual[i])});
    table.row({std::string{to_string(type)} + " %bytes",
               Table::pct(report.byte_mix_target[i]), Table::pct(report.byte_mix_actual[i])});
  }
  table.print(os);
}

}  // namespace wcs
