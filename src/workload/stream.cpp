#include "src/workload/stream.h"

namespace wcs {

WorkloadStream::WorkloadStream(WorkloadSpec spec)
    : generator_(std::make_unique<WorkloadGenerator>(std::move(spec))),
      names_(std::make_unique<InternTable>()),
      validator_(std::make_unique<StreamingValidator>(*names_)) {}

bool WorkloadStream::next(Request& out) {
  for (;;) {
    while (buffer_index_ < buffer_.size()) {
      const RawRequest& raw = buffer_[buffer_index_++];
      if (auto request = validator_->feed(raw)) {
        request->latency_ms = WorkloadGenerator::latency_of(*request, *names_);
        out = *request;
        return true;
      }
    }
    if (day_ >= generator_->days()) return false;
    buffer_.clear();
    buffer_index_ = 0;
    generator_->emit_day(day_++, buffer_);
  }
}

std::uint64_t WorkloadStream::resident_bytes() const noexcept {
  std::uint64_t buffer_bytes = buffer_.capacity() * sizeof(RawRequest);
  for (const auto& raw : buffer_) {
    buffer_bytes += raw.client.capacity() + raw.method.capacity() + raw.url.capacity();
  }
  // Flat estimate for the validator's per-URL last-size map.
  constexpr std::uint64_t kMapEntry = sizeof(UrlId) + sizeof(std::uint64_t) + 4 * sizeof(void*);
  return names_->memory_footprint_bytes() + generator_->corpus_resident_bytes() + buffer_bytes +
         static_cast<std::uint64_t>(names_->url_count()) * kMapEntry;
}

WorkloadStream WorkloadGenerator::stream() const { return WorkloadStream{spec_}; }

}  // namespace wcs
