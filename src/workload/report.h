// Calibration report: generated-trace statistics side by side with the
// paper's published targets. Every bench prints this before its results so
// a reader can judge how faithful the synthetic workload is.
#pragma once

#include <iosfwd>
#include <string>

#include "src/trace/trace.h"
#include "src/workload/spec.h"

namespace wcs {

struct WorkloadReport {
  std::string workload;
  std::int64_t days_target = 0;
  std::int64_t days_actual = 0;
  std::uint64_t requests_target = 0;
  std::uint64_t requests_actual = 0;
  std::uint64_t bytes_target = 0;
  std::uint64_t bytes_actual = 0;
  std::uint64_t unique_bytes_target = 0;
  std::uint64_t unique_bytes_actual = 0;
  std::uint32_t unique_urls = 0;
  std::uint32_t servers = 0;
  std::array<double, kFileTypeCount> ref_mix_target{};
  std::array<double, kFileTypeCount> ref_mix_actual{};
  std::array<double, kFileTypeCount> byte_mix_target{};
  std::array<double, kFileTypeCount> byte_mix_actual{};

  /// Largest relative error across requests / bytes / unique bytes —
  /// a single scalar fidelity check used by integration tests.
  [[nodiscard]] double worst_relative_error() const noexcept;
};

[[nodiscard]] WorkloadReport make_report(const WorkloadSpec& spec, const Trace& trace);

/// Render as an aligned comparison table.
void print_report(std::ostream& os, const WorkloadReport& report);

}  // namespace wcs
