#include "src/workload/spec.h"

#include <cmath>
#include <stdexcept>

namespace wcs {

WorkloadSpec WorkloadSpec::scaled(double factor) const {
  if (!(factor > 0.0)) throw std::invalid_argument{"WorkloadSpec::scaled: factor <= 0"};
  WorkloadSpec out = *this;
  const auto scale = [factor](std::uint64_t v) {
    const double scaled_value = static_cast<double>(v) * factor;
    return scaled_value < 1.0 ? std::uint64_t{1} : static_cast<std::uint64_t>(scaled_value);
  };
  out.valid_requests = scale(valid_requests);
  out.total_bytes = scale(total_bytes);
  out.unique_bytes = scale(unique_bytes);
  return out;
}

WorkloadSpec WorkloadSpec::extended(int factor) const {
  if (factor < 1) throw std::invalid_argument{"WorkloadSpec::extended: factor < 1"};
  WorkloadSpec out = *this;
  out.days = days * factor;
  out.valid_requests = valid_requests * static_cast<std::uint64_t>(factor);
  out.total_bytes = total_bytes * static_cast<std::uint64_t>(factor);
  // unique_bytes intentionally unchanged: same corpus, longer observation.
  out.phases.clear();
  out.phases.reserve(phases.size() * static_cast<std::size_t>(factor));
  for (int rep = 0; rep < factor; ++rep) {
    for (const auto& phase : phases) {
      WorkloadPhase shifted = phase;
      shifted.first_day += rep * days;
      shifted.last_day += rep * days;
      out.phases.push_back(shifted);
    }
  }
  return out;
}

double WorkloadSpec::mean_size(FileType t) const noexcept {
  const auto i = static_cast<std::size_t>(t);
  const double refs = ref_mix[i] * static_cast<double>(valid_requests);
  if (refs < 1.0) return 1024.0;
  return byte_mix[i] * static_cast<double>(total_bytes) / refs;
}

double WorkloadSpec::unique_bytes_of(FileType t) const noexcept {
  return byte_mix[static_cast<std::size_t>(t)] * static_cast<double>(unique_bytes);
}

// Table 4 percentages, order: graphics, text, audio, video, cgi, unknown.

namespace {
// The paper's Table 4 columns do not all sum to 100% (U's byte column sums
// to 128.23% in the revised version); interpret the entries as relative
// weights and normalize.
void normalize_mixes(WorkloadSpec& s) {
  for (auto* mix : {&s.ref_mix, &s.byte_mix}) {
    double sum = 0.0;
    for (const double v : *mix) sum += v;
    if (sum > 0.0) {
      for (double& v : *mix) v /= sum;
    }
  }
}
}  // namespace

WorkloadSpec WorkloadSpec::undergrad() {
  WorkloadSpec s;
  s.name = "U";
  s.description = "Undergraduate lab, ~30 workstations, Apr-Oct 1995 (190 days)";
  s.days = 190;
  s.valid_requests = 173'384;
  s.total_bytes = 2'190'000'000ULL;   // 2.19 GB (paper uses decimal GB)
  s.unique_bytes = 1'400'000'000ULL;  // MaxNeeded 1400 MB
  s.ref_mix = {0.5300, 0.4146, 0.0009, 0.0019, 0.0013, 0.0512};
  s.byte_mix = {0.4743, 0.3105, 0.0315, 0.1829, 0.0008, 0.2823};
  s.servers = 1800;
  s.server_zipf = 1.0;
  s.url_zipf = 0.78;
  s.clients = 30;
  // Spring (0-59), semester break dip (~day 65), summer, then the fall
  // surge (day ~155 on): rate to ~5000/day and a permanently lower hit
  // rate from new users — modeled as a fresh corpus mixed in.
  s.phases = {
      {0, 59, 1.0, 0.0, 0},
      {60, 72, 0.25, 0.0, 0},
      {73, 152, 0.75, 0.0, 0},
      {153, 189, 2.9, 0.45, 1},
  };
  s.seed = 0xA110'0001;
  normalize_mixes(s);
  return s;
}

WorkloadSpec WorkloadSpec::graduate() {
  WorkloadSpec s;
  s.name = "G";
  s.description = "Graduate time-shared client, >=25 users, spring 1995 (76 days)";
  s.days = 76;
  s.valid_requests = 46'834;
  s.total_bytes = 610'920'000ULL;   // 610.92 MB
  s.unique_bytes = 413'000'000ULL;  // MaxNeeded 413 MB
  s.ref_mix = {0.5145, 0.4523, 0.0007, 0.0035, 0.0015, 0.0276};
  s.byte_mix = {0.3539, 0.2656, 0.0147, 0.2577, 0.0012, 0.1058};
  s.servers = 900;
  s.server_zipf = 1.0;
  s.url_zipf = 0.76;
  s.clients = 4;
  // Steady semester, then the end-of-semester review period: volume holds
  // but almost everything requested was seen before (hit rate jumps to
  // 80-90%, Fig 4) — modeled as a final phase with no fresh corpus and a
  // re-reference-heavy mixture (generator lowers discovery in last phase
  // via the review flag encoded as negative fresh fraction).
  s.phases = {
      {0, 62, 1.0, 0.0, 0},
      {63, 75, 1.15, -0.75, 0},  // review: discovery suppressed by 75%
  };
  s.seed = 0xA110'0002;
  normalize_mixes(s);
  return s;
}

WorkloadSpec WorkloadSpec::classroom() {
  WorkloadSpec s;
  s.name = "C";
  s.description = "Classroom, 26 workstations, 4 class sessions/week, spring 1995 (96 days)";
  s.days = 96;
  s.valid_requests = 30'316;
  s.total_bytes = 405'700'000ULL;   // 405.7 MB
  s.unique_bytes = 221'000'000ULL;  // MaxNeeded 221 MB
  s.ref_mix = {0.4078, 0.5606, 0.0021, 0.0034, 0.0012, 0.0249};
  s.byte_mix = {0.3542, 0.1963, 0.0293, 0.3915, 0.0003, 0.2840};
  s.servers = 400;
  s.server_zipf = 1.1;
  s.url_zipf = 0.85;  // instructor-driven: everyone opens the same URLs
  s.clients = 26;
  s.weekday_weight = {1, 1, 1, 1, 0, 0, 0};  // class meets Mon-Thu only
  // High initial correlation, stable middle, review before the final.
  s.phases = {
      {0, 79, 1.0, 0.0, 0},
      {80, 95, 1.1, -0.7, 0},  // exam review: mostly re-references
  };
  s.seed = 0xA110'0003;
  normalize_mixes(s);
  return s;
}

WorkloadSpec WorkloadSpec::backbone_remote() {
  WorkloadSpec s;
  s.name = "BR";
  s.description =
      "Remote clients -> .cs.vt.edu servers on the department backbone, 38 days";
  s.days = 38;
  s.valid_requests = 180'132;
  s.total_bytes = 9'610'000'000ULL;  // 9.61 GB
  s.unique_bytes = 198'000'000ULL;   // MaxNeeded 198 MB -> ~98% max WHR
  s.ref_mix = {0.6166, 0.3411, 0.0257, 0.0000, 0.0022, 0.0144};
  s.byte_mix = {0.0809, 0.0401, 0.8778, 0.0004, 0.0000, 0.0007};
  s.servers = 12;  // "typically 12 HTTP daemons running within the department"
  s.server_zipf = 1.3;
  s.url_zipf = 1.05;  // one hugely popular audio site dominates
  s.clients = 4000;   // world-wide client population
  s.phases = {{0, 37, 1.0, 0.0, 0}};
  s.seed = 0xA110'0004;
  normalize_mixes(s);
  return s;
}

WorkloadSpec WorkloadSpec::backbone_local() {
  WorkloadSpec s;
  s.name = "BL";
  s.description = "Department clients -> servers anywhere, backbone trace, 37 days";
  s.days = 37;
  s.valid_requests = 53'881;
  s.total_bytes = 644'550'000ULL;   // 644.55 MB
  s.unique_bytes = 408'000'000ULL;  // MaxNeeded 408 MB
  s.ref_mix = {0.5113, 0.4338, 0.0025, 0.0004, 0.0095, 0.0425};
  s.byte_mix = {0.4626, 0.2930, 0.1791, 0.0358, 0.0005, 0.0289};
  s.servers = 2543;  // Fig 1: 2543 unique servers
  s.server_zipf = 1.05;
  s.url_zipf = 0.74;  // ~36,771 unique URLs out of 53,881 requests
  s.clients = 185;
  s.phases = {{0, 36, 1.0, 0.0, 0}};
  s.seed = 0xA110'0005;
  normalize_mixes(s);
  return s;
}

std::vector<WorkloadSpec> WorkloadSpec::all_presets() {
  return {undergrad(), graduate(), classroom(), backbone_remote(), backbone_local()};
}

WorkloadSpec WorkloadSpec::preset(const std::string& name) {
  if (name == "U") return undergrad();
  if (name == "G") return graduate();
  if (name == "C") return classroom();
  if (name == "BR") return backbone_remote();
  if (name == "BL") return backbone_local();
  throw std::invalid_argument{"WorkloadSpec::preset: unknown workload " + name};
}

}  // namespace wcs
