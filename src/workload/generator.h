// Synthetic trace generator.
//
// Model: each (corpus, file type) pair owns a finite URL population of size
// N sampled by rank from Zipf(N, s). N is solved numerically so that the
// *expected Zipf coverage* — E[unique URLs touched after R draws] — times
// the type's mean document size equals the type's unique-byte target. The
// finite corpus gives the two behaviours the paper's experiments rest on:
//   - concentration: few URLs/servers receive most requests (Figs 1-2), and
//   - declining discovery: early days fill the cache, later days re-visit,
//     so infinite-cache daily hit rates climb toward a plateau (Figs 3-7).
// Document sizes are lognormal per type with the mean derived from Table 4
// (see spec.h); re-references occasionally change a document's size, which
// the §1.1 rules turn into consistency misses.
//
// Everything is deterministic given the spec (including its seed).
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"
#include "src/trace/validate.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"
#include "src/workload/spec.h"

namespace wcs {

class WorkloadStream;

struct GeneratedWorkload {
  WorkloadSpec spec;
  Trace trace;              // validated, compiled
  ValidationStats validation;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadSpec spec);

  /// Full raw log (valid requests plus the spec's noise records), in time
  /// order, as a CERN/NCSA common-format log would contain.
  [[nodiscard]] std::vector<RawRequest> generate_raw();

  /// Generate and validate in one pass (no raw-log materialization).
  [[nodiscard]] GeneratedWorkload generate();

  /// Streaming equivalent of generate(): a RequestSource lazily emitting
  /// the bit-identical request sequence with O(corpus) memory instead of
  /// O(requests). Builds its own generator from the spec; `this` is not
  /// consumed.
  [[nodiscard]] WorkloadStream stream() const;

  /// Incremental generation: append day `day`'s raw log records (valid
  /// requests plus noise), in time order, to `out`. Visiting days
  /// 0..days()-1 in order on a fresh generator reproduces generate_raw()
  /// exactly; days must not be skipped or revisited (the RNG schedule and
  /// corpus state advance with each day).
  void emit_day(int day, std::vector<RawRequest>& out);

  [[nodiscard]] int days() const noexcept { return spec_.days; }
  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }

  /// The latency stamp generate() applies to every validated request:
  /// deterministic in the server name (FNV-1a, stable across platforms)
  /// and the transfer size.
  [[nodiscard]] static std::uint32_t latency_of(const Request& request,
                                                const InternTable& names);

  /// Approximate resident bytes of generator state (document pools, seen
  /// sets, recency ring) — the O(corpus) floor a streaming run keeps.
  [[nodiscard]] std::uint64_t corpus_resident_bytes() const noexcept;

  /// Expected unique URLs after `draws` samples from Zipf(n, s) — the
  /// coverage function the corpus sizing inverts. Exposed for tests.
  [[nodiscard]] static double zipf_coverage(std::uint64_t n, double s, double draws);

  /// Smallest population n with zipf_coverage(n, s, draws) >= target
  /// (clamped to target when even n -> infinity cannot reach it, i.e.
  /// target > draws). Exposed for tests.
  [[nodiscard]] static std::uint64_t solve_population(double target, double s, double draws);

  /// Refetch-latency model (paper §5 open problem 1): deterministic
  /// per-server RTT and bandwidth (a ~30% minority of servers are
  /// "distant" — the transatlantic case the paper describes — with high
  /// RTT and low bandwidth), plus a size/bandwidth transfer term.
  [[nodiscard]] static std::uint32_t estimate_refetch_latency_ms(std::uint64_t server_key,
                                                                 std::uint64_t size_bytes);

 private:
  struct Doc {
    std::uint64_t current_size = 0;  // 0 = not yet materialized
    bool seen = false;
  };
  struct TypePool {
    std::uint64_t population = 0;
    std::vector<Doc> docs;           // index = rank-1
    std::vector<std::uint32_t> seen_ranks;  // ranks touched so far (review mode)
  };
  struct Corpus {
    std::vector<TypePool> pools;     // one per FileType
  };

  // One emitted request (pre-noise), before string materialization.
  struct Emission {
    SimTime time;
    int corpus;
    FileType type;
    std::uint32_t rank;      // 1-based Zipf rank within (corpus, type)
    std::uint64_t size;
    std::uint32_t client;
  };

  void build_corpora();
  [[nodiscard]] double phase_weight_sum() const;
  [[nodiscard]] const WorkloadPhase& phase_of_day(int day) const;
  /// Draw one document reference for the given corpus/type, honoring
  /// review mode; materializes the doc and applies size modifications.
  [[nodiscard]] Emission draw_request(SimTime now, int corpus_id, bool review);
  [[nodiscard]] std::string url_of(int corpus, FileType type, std::uint32_t rank) const;
  [[nodiscard]] std::string client_name(std::uint32_t client) const;
  [[nodiscard]] std::uint64_t draw_size(FileType type, std::uint64_t doc_key) const;
  [[nodiscard]] std::uint32_t server_of_doc(std::uint64_t doc_key) const;

  template <typename Sink>
  void run(Sink&& sink);  // drives generation, calling sink(RawRequest)

  WorkloadSpec spec_;
  Rng rng_;
  std::vector<Corpus> corpora_;
  std::vector<ZipfSampler> type_zipf_;      // per corpus*type sampler storage
  std::vector<DiscreteSampler> type_mix_;   // per corpus: type chooser
  ZipfSampler server_zipf_;
  DiscreteSampler hour_sampler_;

  // Day-rate normalization (fixed at construction) and the cross-day
  // emission state emit_day() advances.
  std::vector<double> day_weight_;
  double base_rate_ = 0.0;
  std::uint64_t missing_counter_ = 0;
  std::uint64_t zero_counter_ = 0;
  std::vector<Emission> recent_;  // ring of recently seen docs (304 noise)
};

}  // namespace wcs
