// Workload specifications.
//
// The five 1995 Virginia Tech traces (U, G, C, BR, BL) are lost; each
// WorkloadSpec encodes every statistic the paper publishes about one of
// them — duration, valid request count, bytes transferred, unique-byte
// footprint (MaxNeeded, §4.1), the Table 4 file-type mix, concentration
// (Figs 1-2), and the temporal phases §2.2/§4.1 describe (semester break,
// fall-surge, 4-class-days-per-week, exam review) — and the generator
// synthesizes a trace matching them.
//
// Derived quantities used by the generator:
//   mean transfer size of type t   m_t = byte%_t * bytes / (ref%_t * reqs)
//   unique-byte target of type t   U_t = byte%_t * unique_bytes
// so matching Table 4 automatically reproduces the byte-volume skew
// ("audio is 3% of refs but 88% of bytes in BR") the paper highlights.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/file_type.h"

namespace wcs {

/// A contiguous run of days with its own activity level and corpus mixing.
struct WorkloadPhase {
  int first_day = 0;             // inclusive
  int last_day = 0;              // inclusive
  double volume = 1.0;           // relative request-rate multiplier
  /// Positive f: fraction of the phase's requests drawn from the phase's
  /// *fresh* corpus instead of the base corpus — models population change
  /// (the fall influx of new users in workload U permanently depresses hit
  /// rates, Fig 3). Negative f: *review mode* — with probability |f| a
  /// request is forced to re-reference an already-seen document (end-of-
  /// semester exam review in workloads G and C, Figs 4-5).
  double fresh_corpus_fraction = 0.0;
  int corpus = 0;                // corpus id; 0 is the base corpus
};

struct WorkloadSpec {
  std::string name;
  std::string description;

  int days = 30;
  std::uint64_t valid_requests = 10'000;     // target size after §1.1 validation
  std::uint64_t total_bytes = 100'000'000;   // target bytes transferred
  std::uint64_t unique_bytes = 50'000'000;   // target footprint (MaxNeeded)

  /// Table 4 row for this workload, as fractions summing to ~1. Order
  /// follows FileType: graphics, text, audio, video, cgi, unknown.
  std::array<double, kFileTypeCount> ref_mix{};
  std::array<double, kFileTypeCount> byte_mix{};

  std::uint32_t servers = 100;      // server population (Fig 1)
  double server_zipf = 1.0;         // Zipf exponent over servers
  double url_zipf = 0.75;           // Zipf exponent over URL popularity
  std::uint32_t clients = 30;

  /// Per-day relative weight for each weekday, Monday=0. Workload C meets
  /// four days a week; weekends are quiet everywhere.
  std::array<double, 7> weekday_weight{1, 1, 1, 1, 1, 0.55, 0.6};

  std::vector<WorkloadPhase> phases;  // must cover [0, days); see presets

  /// Within-type correlation between popularity and (small) size, in
  /// [0, 1]: 0 pairs sizes with popularity ranks at random; 1 gives the
  /// most popular document the smallest size outright. Real traces show a
  /// clear negative size-popularity relation — the paper's Fig 14 puts the
  /// re-referenced mass at "just over 1kB" while the overall mean transfer
  /// is ~12kB, and its §4.3 notes professional pages keep graphics small.
  double size_popularity_bias = 0.2;

  /// Probability that a re-referenced document was modified (size change ->
  /// consistency miss). The paper measures 0.5%-4.1% of re-references
  /// arriving with a different size.
  double modification_rate = 0.006;

  /// Raw-log noise rates (relative to valid requests); exercised by the
  /// §1.1 validator and dropped by it.
  double noise_not_modified = 0.06;  // 304 responses
  double noise_client_error = 0.02;  // 404/403
  double noise_server_error = 0.004; // 5xx
  double noise_non_get = 0.005;      // POST/HEAD
  double noise_zero_unknown = 0.004; // size 0, URL never seen

  std::uint64_t seed = 1996;

  /// Scale request volume and footprint by `factor`, preserving all rates
  /// and ratios (used for smoke-test runs).
  [[nodiscard]] WorkloadSpec scaled(double factor) const;

  /// Extend duration by an integer `factor`: days, request count and
  /// transferred bytes scale with factor while the unique-byte footprint
  /// stays fixed — the same population browsing the same document universe
  /// for factor times as long. Phases are tiled with day offsets so the
  /// temporal structure (breaks, surges, review weeks) repeats each term.
  /// This is the streaming scale test: requests grow, the corpus doesn't.
  [[nodiscard]] WorkloadSpec extended(int factor) const;

  /// Mean transfer size of type t (derived; see file header).
  [[nodiscard]] double mean_size(FileType t) const noexcept;
  /// Unique-byte target of type t.
  [[nodiscard]] double unique_bytes_of(FileType t) const noexcept;

  // ---- The five paper presets -------------------------------------------
  [[nodiscard]] static WorkloadSpec undergrad();       // U: 190 days, 173,384 reqs
  [[nodiscard]] static WorkloadSpec graduate();        // G: 76 days, 46,834 reqs
  [[nodiscard]] static WorkloadSpec classroom();       // C: 96 days, 30,316 reqs
  [[nodiscard]] static WorkloadSpec backbone_remote(); // BR: 38 days, 180,132 reqs
  [[nodiscard]] static WorkloadSpec backbone_local();  // BL: 37 days, 53,881 reqs
  [[nodiscard]] static std::vector<WorkloadSpec> all_presets();
  /// Preset by name ("U", "G", "C", "BR", "BL"); throws on unknown name.
  [[nodiscard]] static WorkloadSpec preset(const std::string& name);
};

}  // namespace wcs
