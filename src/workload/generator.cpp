#include "src/workload/generator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/util/distributions.h"
#include "src/util/strings.h"

namespace wcs {

namespace {

// Lognormal spread per file type: text/graphics vary over ~2 decades,
// "unknown" (tarballs, binaries, data files) is the widest, media types are
// comparatively tight around their large means.
constexpr std::array<double, kFileTypeCount> kSigma = {1.5, 1.6, 0.6, 0.7, 0.8, 1.7};
// Hard caps keep single draws from dwarfing a whole workload's byte budget.
constexpr std::array<double, kFileTypeCount> kMaxSize = {
    2.0e6, 4.0e6, 3.0e7, 8.0e7, 2.0e5, 3.0e7};
constexpr double kMinSize = 64.0;

constexpr std::array<const char*, kFileTypeCount> kExtension = {"gif", "html", "au",
                                                                "mpg", "cgi",  "dat"};

// Per-type multiplier on the spec's size_popularity_bias. Small-file types
// show the strong "popular documents are small" relation (icons, front
// pages); within media types a popular song or clip is as large as an
// unpopular one, which is what lets NREF/ATIME beat SIZE on *weighted* hit
// rate (paper §4.4: NREF clearly best on BR's audio-heavy bytes).
constexpr std::array<double, kFileTypeCount> kBiasFactor = {1.0, 1.0, 0.05, 0.05, 0.5, 0.25};

// Campus diurnal profile (requests per hour, relative).
constexpr std::array<double, 24> kHourWeight = {
    0.20, 0.10, 0.08, 0.06, 0.06, 0.10, 0.20, 0.45, 1.00, 1.60, 2.10, 2.20,
    1.80, 2.00, 2.20, 2.30, 2.00, 1.60, 1.20, 1.20, 1.40, 1.30, 0.90, 0.50};

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec)
    : spec_(std::move(spec)),
      rng_(spec_.seed),
      server_zipf_(std::max<std::uint32_t>(1, spec_.servers), spec_.server_zipf),
      hour_sampler_(kHourWeight) {
  if (spec_.days <= 0) throw std::invalid_argument{"WorkloadGenerator: days <= 0"};
  if (spec_.phases.empty()) throw std::invalid_argument{"WorkloadGenerator: no phases"};
  for (const auto& phase : spec_.phases) {
    if (phase.first_day > phase.last_day || phase.corpus < 0) {
      throw std::invalid_argument{"WorkloadGenerator: malformed phase"};
    }
  }
  build_corpora();

  day_weight_.assign(static_cast<std::size_t>(spec_.days), 0.0);
  double weight_sum = 0.0;
  for (int d = 0; d < spec_.days; ++d) {
    const auto& phase = phase_of_day(d);
    day_weight_[static_cast<std::size_t>(d)] =
        phase.volume * spec_.weekday_weight[static_cast<std::size_t>(d % 7)];
    weight_sum += day_weight_[static_cast<std::size_t>(d)];
  }
  base_rate_ = static_cast<double>(spec_.valid_requests) / weight_sum;
}

const WorkloadPhase& WorkloadGenerator::phase_of_day(int day) const {
  for (const auto& phase : spec_.phases) {
    if (day >= phase.first_day && day <= phase.last_day) return phase;
  }
  return spec_.phases.back();
}

namespace {

/// Visit ranks 1..n as (rank, multiplicity) pairs: exact for the head,
/// geometric segments for the tail. Keeps coverage evaluation ~O(10^4)
/// regardless of n (the Zipf pmf and the coverage integrand are smooth in
/// the tail, so a segment midpoint stands in for its members).
template <typename Fn>
void for_ranks_segmented(std::uint64_t n, Fn&& fn) {
  constexpr std::uint64_t kExactHead = 4096;
  const std::uint64_t head = n < kExactHead ? n : kExactHead;
  for (std::uint64_t k = 1; k <= head; ++k) fn(static_cast<double>(k), 1.0);
  std::uint64_t a = head + 1;
  while (a <= n) {
    std::uint64_t b = static_cast<std::uint64_t>(static_cast<double>(a) * 1.03) + 1;
    if (b > n + 1) b = n + 1;
    const double width = static_cast<double>(b - a);
    fn((static_cast<double>(a) + static_cast<double>(b - 1)) / 2.0, width);
    a = b;
  }
}

}  // namespace

double WorkloadGenerator::zipf_coverage(std::uint64_t n, double s, double draws) {
  double harmonic = 0.0;
  for_ranks_segmented(n, [&](double k, double w) { harmonic += w * std::pow(k, -s); });
  double covered = 0.0;
  for_ranks_segmented(n, [&](double k, double w) {
    const double p = std::pow(k, -s) / harmonic;
    covered += w * (1.0 - std::exp(draws * std::log1p(-p)));
  });
  return covered;
}

std::uint64_t WorkloadGenerator::solve_population(double target, double s, double draws) {
  if (target <= 1.0 || draws <= 1.0) return 1;
  // Coverage can never exceed the number of draws; leave rejection headroom.
  target = std::min(target, draws * 0.98);
  constexpr std::uint64_t kCap = 4'000'000;
  std::uint64_t lo = static_cast<std::uint64_t>(target);
  std::uint64_t hi = lo;
  while (hi < kCap && zipf_coverage(hi, s, draws) < target) {
    lo = hi;
    hi = std::min<std::uint64_t>(kCap, hi * 2);
  }
  if (zipf_coverage(hi, s, draws) < target) return hi;  // capped
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (zipf_coverage(mid, s, draws) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

void WorkloadGenerator::build_corpora() {
  // Expected requests per day and how they route to corpora.
  const int days = spec_.days;
  std::vector<double> day_weight(static_cast<std::size_t>(days), 0.0);
  double weight_sum = 0.0;
  for (int d = 0; d < days; ++d) {
    const auto& phase = phase_of_day(d);
    day_weight[static_cast<std::size_t>(d)] =
        phase.volume * spec_.weekday_weight[static_cast<std::size_t>(d % 7)];
    weight_sum += day_weight[static_cast<std::size_t>(d)];
  }
  if (weight_sum <= 0.0) throw std::invalid_argument{"WorkloadGenerator: zero total volume"};
  const double base_rate = static_cast<double>(spec_.valid_requests) / weight_sum;

  // Discovery draws per corpus (review-mode requests never discover).
  int max_corpus = 0;
  for (const auto& phase : spec_.phases) max_corpus = std::max(max_corpus, phase.corpus);
  std::vector<double> discovery(static_cast<std::size_t>(max_corpus) + 1, 0.0);
  for (int d = 0; d < days; ++d) {
    const auto& phase = phase_of_day(d);
    const double requests = base_rate * day_weight[static_cast<std::size_t>(d)];
    const double f = phase.fresh_corpus_fraction;
    if (f > 0.0) {
      discovery[static_cast<std::size_t>(phase.corpus)] += requests * f;
      discovery[0] += requests * (1.0 - f);
    } else {
      discovery[0] += requests * (1.0 + f);  // f <= 0: |f| are review re-refs
    }
  }
  double discovery_total = 0.0;
  for (const double d : discovery) discovery_total += d;

  corpora_.resize(discovery.size());
  type_zipf_.clear();
  type_mix_.clear();
  type_zipf_.reserve(discovery.size() * kFileTypeCount);
  for (std::size_t c = 0; c < corpora_.size(); ++c) {
    corpora_[c].pools.resize(kFileTypeCount);
    const double share = discovery_total > 0.0 ? discovery[c] / discovery_total : 0.0;
    for (const FileType type : kAllFileTypes) {
      const auto t = static_cast<std::size_t>(type);
      const double draws = discovery[c] * spec_.ref_mix[t];
      const double mean = std::max(200.0, spec_.mean_size(type));
      const double target_docs = spec_.unique_bytes_of(type) * share / mean;
      const double unique_bytes_target = spec_.unique_bytes_of(type) * share;
      TypePool& pool = corpora_[c].pools[t];

      // Materialize the pool, iterating its population so that the
      // *expected touched bytes* — sum over ranks of P(touched within
      // `draws` samples) x size — hits the unique-byte target. One pass
      // would miss because the size-popularity pairing below makes touched
      // (popular) documents systematically smaller than the plain mean.
      double lambda = 1.0;
      for (int iteration = 0; iteration < 3; ++iteration) {
        const std::uint64_t population = std::max<std::uint64_t>(
            1, solve_population(target_docs * lambda, spec_.url_zipf, draws));
        pool.population = population;
        pool.docs.assign(population, Doc{});
        ZipfSampler zipf{population, spec_.url_zipf};

        // 1. Draw lognormal sizes, normalize their plain mean to the
        //    Table 4 mean.
        std::vector<double> draws_raw(population);
        double plain_mean = 0.0;
        for (std::uint64_t rank = 1; rank <= population; ++rank) {
          const std::uint64_t doc_key =
              mix64(spec_.seed ^ (static_cast<std::uint64_t>(c) << 48) ^
                    (static_cast<std::uint64_t>(t) << 40) ^ rank);
          draws_raw[rank - 1] = static_cast<double>(draw_size(type, doc_key));
          plain_mean += draws_raw[rank - 1];
        }
        plain_mean /= static_cast<double>(population);
        if (plain_mean > 0.0) {
          const double norm = mean / plain_mean;
          for (double& v : draws_raw) v *= norm;
        }

        // 2. Pair sizes with popularity ranks through a *noisy sort*: rank
        //    k's pairing key blends its normalized log-rank with uniform
        //    noise, so popular documents tend to get the small sizes
        //    (strength = size_popularity_bias x per-type factor) without a
        //    hard deterministic mapping.
        std::sort(draws_raw.begin(), draws_raw.end());
        const double bias =
            std::clamp(spec_.size_popularity_bias * kBiasFactor[t], 0.0, 1.0);
        Rng pair_rng{mix64(spec_.seed ^ (static_cast<std::uint64_t>(c) << 44) ^
                           (static_cast<std::uint64_t>(t) << 36) ^ 0xbeadULL)};
        const double log_n = std::log(static_cast<double>(population) + 1.0);
        std::vector<std::uint32_t> rank_order(population);
        std::vector<double> pair_key(population);
        for (std::uint64_t i = 0; i < population; ++i) {
          rank_order[i] = static_cast<std::uint32_t>(i);
          pair_key[i] = bias * (std::log(static_cast<double>(i) + 1.0) / log_n) +
                        (1.0 - bias) * pair_rng.uniform();
        }
        std::sort(rank_order.begin(), rank_order.end(),
                  [&](std::uint32_t a, std::uint32_t b) { return pair_key[a] < pair_key[b]; });
        std::vector<double> assigned(population);
        for (std::uint64_t i = 0; i < population; ++i) {
          assigned[rank_order[i]] = draws_raw[i];  // i-th smallest size
        }

        // 3. Rescale so the popularity-weighted mean transfer size is
        //    exactly the Table 4 mean — otherwise total bytes would be a
        //    lottery on the sizes of the top-ranked documents (BR has ~100
        //    audio documents carrying 88% of all bytes).
        double weighted_mean = 0.0;
        for (std::uint64_t rank = 1; rank <= population; ++rank) {
          weighted_mean += zipf.pmf(rank) * assigned[rank - 1];
        }
        const double scale = weighted_mean > 0.0 ? mean / weighted_mean : 1.0;
        const double cap = std::min(kMaxSize[t], mean * 50.0) * 2.0;
        double expected_touched_bytes = 0.0;
        for (std::uint64_t rank = 1; rank <= population; ++rank) {
          const double size = std::clamp(assigned[rank - 1] * scale, kMinSize, cap);
          pool.docs[rank - 1].current_size = static_cast<std::uint64_t>(size);
          const double p_touch = 1.0 - std::exp(draws * std::log1p(-zipf.pmf(rank)));
          expected_touched_bytes += p_touch * size;
        }

        if (unique_bytes_target <= 0.0 || expected_touched_bytes <= 0.0) break;
        const double error = expected_touched_bytes / unique_bytes_target;
        if (error > 0.95 && error < 1.05) break;
        lambda = std::clamp(lambda / error, 0.1, 10.0);
      }
      type_zipf_.emplace_back(pool.population, spec_.url_zipf);
    }
    type_mix_.emplace_back(std::span<const double>{spec_.ref_mix.data(), kFileTypeCount});
  }
}

std::uint64_t WorkloadGenerator::draw_size(FileType type, std::uint64_t doc_key) const {
  const auto t = static_cast<std::size_t>(type);
  const double sigma = kSigma[t];
  const double mean = std::max(200.0, spec_.mean_size(type));
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  Rng doc_rng{mix64(doc_key ^ 0x517e'd0c5ULL)};
  const double raw = LognormalSampler{mu, sigma}(doc_rng);
  // The 50x-mean cap bounds the damage any single tail draw can do to a
  // small pool's realized byte volume (one 100 MB "unknown" file would
  // otherwise dwarf a workload whose whole unknown budget is ~10 MB).
  return static_cast<std::uint64_t>(
      std::clamp(raw, kMinSize, std::min(kMaxSize[t], mean * 50.0)));
}

std::uint32_t WorkloadGenerator::server_of_doc(std::uint64_t doc_key) const {
  Rng doc_rng{mix64(doc_key ^ 0x5e47e3ULL)};
  return static_cast<std::uint32_t>(server_zipf_(doc_rng));
}

std::string WorkloadGenerator::url_of(int corpus, FileType type, std::uint32_t rank) const {
  const std::uint64_t doc_key =
      mix64(spec_.seed ^ (static_cast<std::uint64_t>(corpus) << 48) ^
            (static_cast<std::uint64_t>(type) << 40) ^ rank);
  std::string url = "http://srv";
  url += std::to_string(server_of_doc(doc_key));
  url += '.';
  url += to_lower(spec_.name);
  url += ".example/c";
  url += std::to_string(corpus);
  url += "/t";
  url += std::to_string(static_cast<int>(type));
  url += "/d";
  url += std::to_string(rank);
  url += '.';
  url += kExtension[static_cast<std::size_t>(type)];
  return url;
}

std::string WorkloadGenerator::client_name(std::uint32_t client) const {
  std::string name = "client";
  name += std::to_string(client);
  name += '.';
  name += to_lower(spec_.name);
  name += ".example";
  return name;
}

WorkloadGenerator::Emission WorkloadGenerator::draw_request(SimTime now, int corpus_id,
                                                            bool review) {
  auto& corpus = corpora_[static_cast<std::size_t>(corpus_id)];
  const std::size_t type_index = type_mix_[static_cast<std::size_t>(corpus_id)](rng_);
  const auto type = static_cast<FileType>(type_index);
  auto& pool = corpus.pools[type_index];
  ZipfSampler& zipf =
      type_zipf_[static_cast<std::size_t>(corpus_id) * kFileTypeCount + type_index];

  std::uint32_t rank = 0;
  if (review && !pool.seen_ranks.empty()) {
    // Re-reference only: re-draw until hitting a seen document (popular
    // ranks are seen early, so this converges fast); fall back to a uniform
    // pick from the seen set.
    bool found = false;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto candidate = static_cast<std::uint32_t>(zipf(rng_));
      if (pool.docs[candidate - 1].seen) {
        rank = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      rank = pool.seen_ranks[rng_.below(pool.seen_ranks.size())];
    }
  } else {
    rank = static_cast<std::uint32_t>(zipf(rng_));
  }

  Doc& doc = pool.docs[rank - 1];
  if (!doc.seen) {
    doc.seen = true;
    pool.seen_ranks.push_back(rank);
  } else if (rng_.chance(spec_.modification_rate)) {
    // The origin document was modified; almost any real edit changes the
    // length (§1.1), so force a strictly different size. The factor is
    // symmetric in log space — repeated edits must not drift a popular
    // document's size upward.
    const double factor = std::exp(rng_.uniform(-0.18, 0.18));
    auto resized = static_cast<std::uint64_t>(
        std::clamp(static_cast<double>(doc.current_size) * factor, kMinSize,
                   kMaxSize[type_index]));
    if (resized == doc.current_size) ++resized;
    doc.current_size = resized;
  }

  Emission emission;
  emission.time = now;
  emission.corpus = corpus_id;
  emission.type = type;
  emission.rank = rank;
  emission.size = doc.current_size;
  emission.client = static_cast<std::uint32_t>(rng_.below(std::max(1u, spec_.clients)));
  return emission;
}

void WorkloadGenerator::emit_day(int day, std::vector<RawRequest>& out) {
  constexpr std::size_t kRecentCap = 512;  // ring of recently seen docs
  const auto& phase = phase_of_day(day);
  const double expected = base_rate_ * day_weight_[static_cast<std::size_t>(day)];
  const auto count = sample_poisson(rng_, expected);
  if (count == 0) return;

  // Times for the day, sorted.
  std::vector<SimTime> times;
  times.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto hour = static_cast<SimTime>(hour_sampler_(rng_));
    times.push_back(day_start(day) + hour * kSecondsPerHour +
                    static_cast<SimTime>(rng_.below(kSecondsPerHour)));
  }
  std::sort(times.begin(), times.end());

  for (const SimTime now : times) {
    // Route to corpus / review mode per the day's phase.
    const double f = phase.fresh_corpus_fraction;
    int corpus_id = 0;
    bool review = false;
    if (f > 0.0 && rng_.chance(f)) {
      corpus_id = phase.corpus;
    } else if (f < 0.0 && rng_.chance(-f)) {
      review = true;
    }
    const Emission emission = draw_request(now, corpus_id, review);

    RawRequest raw;
    raw.time = emission.time;
    raw.client = client_name(emission.client);
    raw.method = "GET";
    raw.url = url_of(emission.corpus, emission.type, emission.rank);
    raw.status = 200;
    raw.size = emission.size;
    out.push_back(raw);

    if (recent_.size() < kRecentCap) {
      recent_.push_back(emission);
    } else {
      recent_[rng_.below(kRecentCap)] = emission;
    }

    // Interleave log noise (dropped by the §1.1 validator).
    if (!recent_.empty() && rng_.chance(spec_.noise_not_modified)) {
      const Emission& seen = recent_[rng_.below(recent_.size())];
      RawRequest noise = raw;
      noise.url = url_of(seen.corpus, seen.type, seen.rank);
      noise.status = 304;
      noise.size = 0;
      out.push_back(noise);
    }
    if (rng_.chance(spec_.noise_client_error)) {
      RawRequest noise = raw;
      noise.url = "http://srv1." + to_lower(spec_.name) + ".example/missing/m" +
                  std::to_string(missing_counter_++) + ".html";
      noise.status = 404;
      noise.size = 0;
      out.push_back(noise);
    }
    if (rng_.chance(spec_.noise_server_error)) {
      RawRequest noise = raw;
      noise.status = 500;
      noise.size = 0;
      out.push_back(noise);
    }
    if (rng_.chance(spec_.noise_non_get)) {
      RawRequest noise = raw;
      noise.method = "POST";
      noise.url = "http://srv1." + to_lower(spec_.name) + ".example/cgi-bin/form.cgi";
      noise.status = 200;
      noise.size = 512;
      out.push_back(noise);
    }
    if (rng_.chance(spec_.noise_zero_unknown)) {
      RawRequest noise = raw;
      noise.url = "http://srv2." + to_lower(spec_.name) + ".example/zero/z" +
                  std::to_string(zero_counter_++) + ".html";
      noise.status = 200;
      noise.size = 0;
      out.push_back(noise);
    }
  }
}

template <typename Sink>
void WorkloadGenerator::run(Sink&& sink) {
  missing_counter_ = 0;
  zero_counter_ = 0;
  recent_.clear();
  std::vector<RawRequest> day_buffer;
  for (int d = 0; d < spec_.days; ++d) {
    day_buffer.clear();
    emit_day(d, day_buffer);
    for (const auto& raw : day_buffer) sink(raw);
  }
}

std::vector<RawRequest> WorkloadGenerator::generate_raw() {
  std::vector<RawRequest> out;
  out.reserve(static_cast<std::size_t>(static_cast<double>(spec_.valid_requests) * 1.1));
  run([&out](const RawRequest& raw) { out.push_back(raw); });
  return out;
}

std::uint32_t WorkloadGenerator::estimate_refetch_latency_ms(std::uint64_t server_key,
                                                             std::uint64_t size_bytes) {
  const std::uint64_t h = mix64(server_key ^ 0x1a7e'c0ffULL);
  const bool distant = (h % 100) < 30;  // ~30% of servers are far away
  // RTT in ms; bandwidth in bytes/ms (i.e. kB/s / 1000 * 1024 ~ kB/ms).
  const std::uint32_t rtt_ms =
      distant ? 120 + static_cast<std::uint32_t>(h >> 8) % 280   // 120-399 ms
              : 5 + static_cast<std::uint32_t>(h >> 8) % 55;     // 5-59 ms
  const std::uint64_t bytes_per_ms =
      distant ? 5 + (h >> 40) % 35     // ~5-40 kB/s
              : 50 + (h >> 40) % 450;  // ~50-500 kB/s
  const std::uint64_t transfer_ms = size_bytes / bytes_per_ms;
  constexpr std::uint64_t kCap = 10'000'000;  // 10,000 s: keep uint32-safe
  const std::uint64_t total = rtt_ms + std::min<std::uint64_t>(transfer_ms, kCap);
  return static_cast<std::uint32_t>(total);
}

std::uint32_t WorkloadGenerator::latency_of(const Request& request, const InternTable& names) {
  const std::string_view server = names.server_name(request.server);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : server) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return estimate_refetch_latency_ms(h, request.size);
}

std::uint64_t WorkloadGenerator::corpus_resident_bytes() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& corpus : corpora_) {
    for (const auto& pool : corpus.pools) {
      sum += pool.docs.capacity() * sizeof(Doc) +
             pool.seen_ranks.capacity() * sizeof(std::uint32_t);
    }
  }
  return sum + recent_.capacity() * sizeof(Emission);
}

GeneratedWorkload WorkloadGenerator::generate() {
  TraceValidator validator;
  run([&validator](const RawRequest& raw) { validator.feed(raw); });
  GeneratedWorkload out{spec_, validator.take_trace(), validator.stats()};
  // Stamp refetch-latency estimates (per-server model, deterministic in
  // the server name — FNV-1a, stable across platforms — so real-log
  // replays could do the same).
  const InternTable& names = out.trace.names();
  out.trace.stamp_latencies([&names](const Request& r) { return latency_of(r, names); });
  return out;
}

}  // namespace wcs
