// Streaming synthetic workload: the lazy counterpart of
// WorkloadGenerator::generate().
//
// WorkloadStream owns a fresh generator and emits the validated, latency-
// stamped request sequence one record at a time, buffering at most one
// day's raw log. Because a fresh generator replays the same RNG schedule
// and the streaming validator interns in the same first-seen order, the
// emitted sequence is bit-identical to generate().trace — but memory stays
// O(corpus), so a preset extended 10-100x in duration streams in the same
// footprint the original needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/trace/request_source.h"
#include "src/trace/validate.h"
#include "src/workload/generator.h"

namespace wcs {

class WorkloadStream final : public RequestSource {
 public:
  explicit WorkloadStream(WorkloadSpec spec);

  bool next(Request& out) override;

  [[nodiscard]] const InternTable& names() const noexcept override { return *names_; }
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept override;

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return generator_->spec(); }
  /// §1.1 validation counters for everything emitted so far (the noise
  /// records the generator interleaves are dropped here, exactly as
  /// generate() drops them).
  [[nodiscard]] const ValidationStats& validation() const noexcept { return validator_->stats(); }

 private:
  std::unique_ptr<WorkloadGenerator> generator_;
  // unique_ptr so the validator's pointer into the table survives moves.
  std::unique_ptr<InternTable> names_;
  std::unique_ptr<StreamingValidator> validator_;
  int day_ = 0;
  std::vector<RawRequest> buffer_;  // one day's raw records
  std::size_t buffer_index_ = 0;
};

}  // namespace wcs
