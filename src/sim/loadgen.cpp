#include "src/sim/loadgen.h"

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <utility>

namespace wcs {

bool ShardedCacheTarget::serve(std::uint32_t shard, const Request& request) {
  (void)shard;  // ShardedCache routes internally via the same shard_of_url map
  return cache_->access(request).hit;
}

ShardedProxyTarget::ShardedProxyTarget(ShardedProxy::Config config, const InternTable& names)
    : names_(&names) {
  const std::uint32_t shards = config.shards == 0 ? 1 : config.shards;
  config.shards = shards;
  recording_ = config.proxy.obs != nullptr;
  lanes_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) lanes_.push_back(std::make_unique<Lane>());
  // lanes_ is complete and stable before the factory runs, so the upstream
  // closures can capture raw lane pointers.
  proxy_ = std::make_unique<ShardedProxy>(
      std::move(config), [this](std::uint32_t shard) -> UpstreamFn {
        SynthOrigin* origin = &lanes_[shard]->origin;
        return [origin](const HttpRequest& request, SimTime now) {
          return origin->handle(request, now);
        };
      });
}

bool ShardedProxyTarget::serve(std::uint32_t shard, const Request& request) {
  Lane& lane = *lanes_[shard];
  lane.origin.set_next_size(request.size);
  lane.http.target.assign(names_->url_name(request.url));
  const HttpResponse response = proxy_->handle(shard, lane.http, request.time);
  const auto header = response.headers.get("X-Cache");
  return header && *header == "HIT";
}

namespace {

/// One run of the worker pool over a materialized arrival list. Worker
/// bodies are member functions (not lambdas) so Clang's thread-safety
/// analysis sees every lock acquisition in a named scope.
class LoadGenerator {
 public:
  LoadGenerator(ShardedTarget& target, std::vector<Request> arrivals, std::uint32_t threads)
      : target_(target), arrivals_(std::move(arrivals)), threads_(threads) {
    const std::uint32_t shards = target.shard_count();
    tracks_.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) tracks_.push_back(std::make_unique<Track>());
    shard_ids_.resize(arrivals_.size());
    seqs_.resize(arrivals_.size());
    order_.resize(shards);
    // Single-threaded dispatch pass: fix every request's shard, its
    // per-shard sequence number (the open-loop ticket) and the per-shard
    // trace-order index lists (the closed-loop work queues) before any
    // worker exists. The schedule is pure data from here on.
    std::vector<std::uint64_t> next(shards, 0);
    for (std::size_t i = 0; i < arrivals_.size(); ++i) {
      const std::uint32_t s = target.shard_of(arrivals_[i]);
      shard_ids_[i] = s;
      seqs_[i] = next[s]++;
      order_[s].push_back(i);
    }
  }

  [[nodiscard]] LoadGenResult run(ArrivalMode mode) {
    if (threads_ <= 1 || arrivals_.empty()) {
      // Inline on the caller's thread: no spawn, locks uncontended. Open
      // loop degenerates to global trace order, closed loop to shard-major
      // order; per-shard order is trace order either way, so the merged
      // result is identical.
      if (mode == ArrivalMode::kOpenLoop) {
        worker_open();
      } else {
        worker_closed(0);
      }
    } else {
      std::vector<std::thread> workers;
      workers.reserve(threads_);
      for (std::uint32_t w = 0; w < threads_; ++w) {
        if (mode == ArrivalMode::kOpenLoop) {
          workers.emplace_back(&LoadGenerator::worker_open, this);
        } else {
          workers.emplace_back(&LoadGenerator::worker_closed, this, w);
        }
      }
      for (std::thread& worker : workers) worker.join();
    }
    rethrow_failure();
    return merge();
  }

 private:
  /// Per-shard lane state: the ticket (open-loop ordering) and the shard's
  /// own result counters, merged in shard index order at the end.
  struct Track {
    Mutex mutex;
    CondVar turn;
    std::uint64_t next_seq WCS_GUARDED_BY(mutex) = 0;
    std::uint64_t requests WCS_GUARDED_BY(mutex) = 0;
    std::uint64_t hits WCS_GUARDED_BY(mutex) = 0;
    std::uint64_t requested_bytes WCS_GUARDED_BY(mutex) = 0;
    std::uint64_t hit_bytes WCS_GUARDED_BY(mutex) = 0;
    DailySeries daily WCS_GUARDED_BY(mutex);
  };

  static void record(Track& track, const Request& request, bool hit)
      WCS_REQUIRES(track.mutex) {
    ++track.requests;
    track.requested_bytes += request.size;
    if (hit) {
      ++track.hits;
      track.hit_bytes += request.size;
    }
    track.daily.record(request.time, hit, request.size);
  }

  /// Closed loop: worker w exclusively owns shards s ≡ w (mod threads) and
  /// drains each in trace order — per-shard serialization by ownership, no
  /// cross-thread waiting at all.
  void worker_closed(std::uint32_t worker) {
    const std::uint32_t shards = static_cast<std::uint32_t>(tracks_.size());
    const std::uint32_t stride = threads_ == 0 ? 1 : threads_;
    for (std::uint32_t s = worker; s < shards; s += stride) {
      Track& track = *tracks_[s];
      for (const std::uint64_t index : order_[s]) {
        if (failed_.load(std::memory_order_acquire)) return;
        const Request& request = arrivals_[index];
        bool hit = false;
        try {
          hit = target_.serve(s, request);
        } catch (const std::exception& error) {
          fail(error.what());
          return;
        } catch (...) {
          fail("unknown worker exception");
          return;
        }
        MutexLock lock{track.mutex};
        record(track, request, hit);
      }
    }
  }

  /// Open loop: the trace is the arrival schedule. Workers claim global
  /// indices from the cursor; the per-shard ticket serves same-shard
  /// requests in trace order. Deadlock-free: the smallest unfinished
  /// global index was claimed first (the cursor hands indices out in
  /// order) and all its per-shard predecessors — smaller global indices —
  /// have finished, so its ticket matches and its worker proceeds.
  void worker_open() {
    const std::uint64_t total = arrivals_.size();
    while (true) {
      const std::uint64_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (index >= total) return;
      const Request& request = arrivals_[index];
      Track& track = *tracks_[shard_ids_[index]];
      bool aborted = false;
      bool ok = true;
      std::string error;
      {
        MutexLock lock{track.mutex};
        while (track.next_seq != seqs_[index]) {
          if (failed_.load(std::memory_order_acquire)) {
            aborted = true;
            break;
          }
          track.turn.wait(track.mutex);
        }
        if (!aborted) {
          bool hit = false;
          try {
            hit = target_.serve(shard_ids_[index], request);
          } catch (const std::exception& serve_error) {
            ok = false;
            error = serve_error.what();
          } catch (...) {
            ok = false;
            error = "unknown worker exception";
          }
          if (ok) {
            record(track, request, hit);
            ++track.next_seq;
            track.turn.notify_all();
          }
        }
      }
      if (aborted) return;
      if (!ok) {
        // fail() locks every track, so it must run with no track lock held.
        fail(error);
        return;
      }
    }
  }

  /// First-error-wins failure latch. Wakes every ticket waiter (notify
  /// under each track's lock, so no wakeup is lost against a concurrent
  /// wait) — a dead predecessor's ticket never advances, and blocked
  /// workers must observe the latch instead.
  void fail(const std::string& message) {
    {
      MutexLock lock{error_mutex_};
      if (error_.empty()) error_ = message.empty() ? "worker failed" : message;
    }
    failed_.store(true, std::memory_order_release);
    for (const std::unique_ptr<Track>& track : tracks_) {
      MutexLock lock{track->mutex};
      track->turn.notify_all();
    }
  }

  void rethrow_failure() {
    MutexLock lock{error_mutex_};
    if (!error_.empty()) throw std::runtime_error{"run_load: worker failed: " + error_};
  }

  /// End-of-run sync point: absorb every track in shard index order. All
  /// workers have joined, so the locks are uncontended formality.
  [[nodiscard]] LoadGenResult merge() {
    LoadGenResult result;
    for (const std::unique_ptr<Track>& track : tracks_) {
      MutexLock lock{track->mutex};
      result.requests += track->requests;
      result.hits += track->hits;
      result.requested_bytes += track->requested_bytes;
      result.hit_bytes += track->hit_bytes;
      result.daily.absorb(track->daily);
    }
    return result;
  }

  ShardedTarget& target_;
  const std::vector<Request> arrivals_;
  const std::uint32_t threads_;
  std::vector<std::unique_ptr<Track>> tracks_;
  std::vector<std::uint32_t> shard_ids_;  // request index -> shard
  std::vector<std::uint64_t> seqs_;       // request index -> per-shard ticket
  std::vector<std::vector<std::uint64_t>> order_;  // shard -> trace-order indices
  std::atomic<std::uint64_t> cursor_{0};  // open-loop arrival claim
  std::atomic<bool> failed_{false};
  Mutex error_mutex_;
  std::string error_ WCS_GUARDED_BY(error_mutex_);
};

}  // namespace

LoadGenResult run_load(ShardedTarget& target, RequestSource& source, const LoadGenConfig& config) {
  if (config.threads == 0) {
    throw std::invalid_argument{"run_load: thread count must be >= 1"};
  }
  if (config.threads > 1 && target.recording()) {
    throw std::invalid_argument{
        "run_load: recording targets are thread-affine; run with threads == 1"};
  }
  std::vector<Request> arrivals;
  Request request;
  while (source.next(request)) arrivals.push_back(request);
  if (const auto error = source.stream_error()) {
    throw std::runtime_error{"run_load: request source failed mid-stream: " + *error};
  }

  LoadGenerator generator{target, std::move(arrivals), config.threads};
  LoadGenResult result = generator.run(config.mode);
  result.concurrency.threads = config.threads;
  result.concurrency.shards = target.shard_count();
  if (config.audit.interval != 0) {
    const AuditReport report = target.audit();
    if (!report.ok()) {
      throw std::runtime_error{"run_load: end-of-run audit failed\n" + report.to_string()};
    }
  }
  return result;
}

}  // namespace wcs
