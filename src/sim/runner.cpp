#include "src/sim/runner.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace wcs {
namespace {

/// Worker index + 1 for pool threads, 0 on any other thread — the span
/// track of work executed here.
thread_local unsigned t_worker_track = 0;

}  // namespace

unsigned ParallelRunner::current_track() noexcept { return t_worker_track; }

unsigned ParallelRunner::jobs_from_env() noexcept {
  if (const char* text = std::getenv("WCS_JOBS")) {
    const long value = std::strtol(text, nullptr, 10);
    if (value >= 1) return static_cast<unsigned>(std::min(value, 256L));
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ParallelRunner& ParallelRunner::shared() {
  static ParallelRunner runner{jobs_from_env()};
  return runner;
}

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs == 0 ? jobs_from_env() : jobs) {
  if (jobs_ <= 1) return;  // inline mode: no threads at all
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    const MutexLock lock{mutex_};
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRunner::enqueue(std::function<void()> task) {
  {
    const MutexLock lock{mutex_};
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ParallelRunner::worker_loop(unsigned index) {
  t_worker_track = index + 1;
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock{mutex_};
      // Open-coded wait loop (not the predicate overload): the predicate
      // reads guarded state, and thread-safety analysis cannot carry the
      // capability into a lambda body.
      while (!stopping_ && queue_.empty()) ready_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // a packaged_task: exceptions land in the cell's future
  }
}

bool ParallelRunner::on_worker_thread() const noexcept {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) return true;
  }
  return false;
}

}  // namespace wcs
