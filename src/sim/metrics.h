// Daily hit-rate bookkeeping.
//
// The paper reports HR and WHR per day and plots a 7-day moving average
// (§3.2). Workload C records nothing on non-class days; the paper averages
// over "the previous seven *recorded* days", so the moving average here
// runs over days that saw at least one request.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/proxy/proxy.h"
#include "src/util/simtime.h"

namespace wcs {

struct CacheStats;  // src/core/cache.h
class MetricRegistry;  // src/obs/registry.h

/// One named CacheStats counter, for reports and dashboards.
struct CounterRow {
  std::string_view name;
  std::uint64_t value = 0;
};

/// Every counter of CacheStats as (name, value) rows, in declaration order.
/// This is the single place reporting code reads the struct field-by-field;
/// tools/lint.py's stats-coverage rule keeps it exhaustive, and
/// tests/test_metrics.cpp pins the row count to the struct.
[[nodiscard]] std::vector<CounterRow> stats_rows(const CacheStats& stats);

/// Every counter of ProxyCache::Stats as (name, value) rows, in declaration
/// order — the proxy-side twin of stats_rows, under the same stats-coverage
/// lint rule. Includes all PR-4 resilience failure counters.
[[nodiscard]] std::vector<CounterRow> proxy_stats_rows(const ProxyCache::Stats& stats);

/// Publish a CacheStats snapshot into `registry` as wcs_cache_* counters.
/// Counters are *set* (not accumulated), so republishing at every sync
/// point — day boundary, end of run — is idempotent. This is the bridge
/// between hot-path plain-struct accounting and the observability registry
/// (src/obs/registry.h): the hot loop never touches the registry.
void publish_stats(MetricRegistry& registry, const CacheStats& stats);

/// Publish a ProxyCache::Stats snapshot as wcs_proxy_* counters (same
/// snapshot semantics as publish_stats). The resilience gauges —
/// breaker_open_hosts, negative_cache_entries — publish as registry
/// *gauges*, since they move in both directions.
void publish_proxy_stats(MetricRegistry& registry, const ProxyCache::Stats& stats);

/// Publish one topology tier's merged Stats snapshot as
/// wcs_tier_<label>_* counters/gauges, plus a wcs_tier_<label>_availability_ppm
/// gauge (availability in parts per million — the registry stores integers).
/// Per-tier twin of publish_proxy_stats for networks of caches.
void publish_tier_stats(MetricRegistry& registry, std::string_view tier_label,
                        const ProxyCache::Stats& stats);

class DailySeries {
 public:
  /// Record one request outcome at time `now`.
  void record(SimTime now, bool hit, std::uint64_t bytes);
  /// Record a second counter variant (e.g. L2 hits) — same day bucketing.
  void record_hit_only(SimTime now, std::uint64_t bytes);
  /// Merge another series in, day by day: every per-day counter and every
  /// total is an exact integer sum. The sharded merge path (loadgen,
  /// simulate_sharded) records per shard and absorbs at the end-of-run
  /// sync point, so the merged series is bit-identical to one recorded by
  /// a single thread in trace order.
  void absorb(const DailySeries& other);

  [[nodiscard]] std::int64_t day_count() const noexcept {
    return static_cast<std::int64_t>(days_.size());
  }

  /// Raw totals of one calendar day — the sync-point feed for observability
  /// time series (all zeros for unrecorded or out-of-range days).
  struct DayTotals {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hit_bytes = 0;
  };
  [[nodiscard]] DayTotals totals_of_day(std::int64_t day) const noexcept;

  /// Daily hit rate / weighted hit rate; nullopt for unrecorded days.
  [[nodiscard]] std::vector<std::optional<double>> daily_hr() const;
  [[nodiscard]] std::vector<std::optional<double>> daily_whr() const;

  /// 7-recorded-day trailing moving average, aligned to calendar days;
  /// nullopt where fewer than `window` recorded days precede (the paper
  /// plots nothing for days 0-5) or on unrecorded days.
  [[nodiscard]] std::vector<std::optional<double>> smoothed_hr(std::size_t window = 7) const;
  [[nodiscard]] std::vector<std::optional<double>> smoothed_whr(std::size_t window = 7) const;

  [[nodiscard]] double overall_hr() const noexcept;
  [[nodiscard]] double overall_whr() const noexcept;
  /// Mean of per-day hit rates over recorded days — the "averaged over all
  /// days in the trace" figure the paper quotes in its conclusions.
  [[nodiscard]] double mean_daily_hr() const noexcept;
  [[nodiscard]] double mean_daily_whr() const noexcept;

 private:
  struct Day {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t bytes = 0;
    std::uint64_t hit_bytes = 0;
  };
  Day& day_at(SimTime now);
  [[nodiscard]] std::vector<std::optional<double>> smooth(bool weighted,
                                                          std::size_t window) const;

  std::vector<Day> days_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_hits_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_hit_bytes_ = 0;
};

/// Elementwise ratio a/b (as percentages when scale=100), defined only
/// where both inputs are and b > 0 — the "percent of infinite-cache HR"
/// transformation of Figs 8-12.
[[nodiscard]] std::vector<std::optional<double>> series_ratio(
    const std::vector<std::optional<double>>& numerator,
    const std::vector<std::optional<double>>& denominator, double scale = 100.0);

/// Mean of the defined points of a series.
[[nodiscard]] double series_mean(const std::vector<std::optional<double>>& series);

}  // namespace wcs
