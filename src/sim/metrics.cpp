#include "src/sim/metrics.h"

#include "src/core/cache.h"
#include "src/obs/registry.h"

namespace wcs {

std::vector<CounterRow> stats_rows(const CacheStats& stats) {
  return {
      {"requests", stats.requests},
      {"hits", stats.hits},
      {"requested_bytes", stats.requested_bytes},
      {"hit_bytes", stats.hit_bytes},
      {"insertions", stats.insertions},
      {"evictions", stats.evictions},
      {"evicted_bytes", stats.evicted_bytes},
      {"size_change_misses", stats.size_change_misses},
      {"rejected_too_large", stats.rejected_too_large},
      {"admission_rejects", stats.admission_rejects},
      {"dead_on_arrival_evictions", stats.dead_on_arrival_evictions},
      {"periodic_sweeps", stats.periodic_sweeps},
      {"max_used_bytes", stats.max_used_bytes},
  };
}

std::vector<CounterRow> proxy_stats_rows(const ProxyCache::Stats& stats) {
  return {
      {"requests", stats.requests},
      {"hits", stats.hits},
      {"validations", stats.validations},
      {"validated_fresh", stats.validated_fresh},
      {"misses", stats.misses},
      {"uncacheable", stats.uncacheable},
      {"hit_bytes", stats.hit_bytes},
      {"miss_bytes", stats.miss_bytes},
      {"delta_updates", stats.delta_updates},
      {"delta_bytes", stats.delta_bytes},
      {"delta_bytes_avoided", stats.delta_bytes_avoided},
      {"upstream_failures", stats.upstream_failures},
      {"retries", stats.retries},
      {"breaker_opens", stats.breaker_opens},
      {"stale_served", stats.stale_served},
      {"negative_hits", stats.negative_hits},
      {"failed_requests", stats.failed_requests},
      {"breaker_open_hosts", stats.breaker_open_hosts},
      {"negative_cache_entries", stats.negative_cache_entries},
  };
}

namespace {

/// Rows of proxy_stats_rows that are gauges, not counters: they can move in
/// both directions, so they publish as registry gauges and stay out of
/// every monotonicity check.
[[nodiscard]] bool is_proxy_gauge_row(std::string_view name) noexcept {
  return name == "breaker_open_hosts" || name == "negative_cache_entries";
}

}  // namespace

void publish_stats(MetricRegistry& registry, const CacheStats& stats) {
  for (const CounterRow& row : stats_rows(stats)) {
    registry.counter("wcs_cache_" + std::string{row.name}, "CacheStats snapshot counter")
        .set(row.value);
  }
}

void publish_proxy_stats(MetricRegistry& registry, const ProxyCache::Stats& stats) {
  for (const CounterRow& row : proxy_stats_rows(stats)) {
    if (is_proxy_gauge_row(row.name)) {
      registry
          .gauge("wcs_proxy_" + std::string{row.name}, "ProxyCache::Stats snapshot gauge")
          .set(static_cast<std::int64_t>(row.value));
    } else {
      registry
          .counter("wcs_proxy_" + std::string{row.name}, "ProxyCache::Stats snapshot counter")
          .set(row.value);
    }
  }
}

void publish_tier_stats(MetricRegistry& registry, std::string_view tier_label,
                        const ProxyCache::Stats& stats) {
  const std::string prefix = "wcs_tier_" + std::string{tier_label} + "_";
  for (const CounterRow& row : proxy_stats_rows(stats)) {
    if (is_proxy_gauge_row(row.name)) {
      registry.gauge(prefix + std::string{row.name}, "Topology tier snapshot gauge")
          .set(static_cast<std::int64_t>(row.value));
    } else {
      registry.counter(prefix + std::string{row.name}, "Topology tier snapshot counter")
          .set(row.value);
    }
  }
  registry.gauge(prefix + "availability_ppm", "Tier availability, parts per million")
      .set(static_cast<std::int64_t>(stats.availability() * 1e6 + 0.5));
}

DailySeries::DayTotals DailySeries::totals_of_day(std::int64_t day) const noexcept {
  if (day < 0 || day >= static_cast<std::int64_t>(days_.size())) return {};
  const Day& d = days_[static_cast<std::size_t>(day)];
  return {d.requests, d.hits, d.bytes, d.hit_bytes};
}

DailySeries::Day& DailySeries::day_at(SimTime now) {
  const auto day = static_cast<std::size_t>(day_of(now) < 0 ? 0 : day_of(now));
  if (day >= days_.size()) days_.resize(day + 1);
  return days_[day];
}

void DailySeries::record(SimTime now, bool hit, std::uint64_t bytes) {
  Day& day = day_at(now);
  ++day.requests;
  day.bytes += bytes;
  ++total_requests_;
  total_bytes_ += bytes;
  if (hit) {
    ++day.hits;
    day.hit_bytes += bytes;
    ++total_hits_;
    total_hit_bytes_ += bytes;
  }
}

void DailySeries::absorb(const DailySeries& other) {
  if (other.days_.size() > days_.size()) days_.resize(other.days_.size());
  for (std::size_t d = 0; d < other.days_.size(); ++d) {
    days_[d].requests += other.days_[d].requests;
    days_[d].hits += other.days_[d].hits;
    days_[d].bytes += other.days_[d].bytes;
    days_[d].hit_bytes += other.days_[d].hit_bytes;
  }
  total_requests_ += other.total_requests_;
  total_hits_ += other.total_hits_;
  total_bytes_ += other.total_bytes_;
  total_hit_bytes_ += other.total_hit_bytes_;
}

void DailySeries::record_hit_only(SimTime now, std::uint64_t bytes) {
  Day& day = day_at(now);
  ++day.hits;
  day.hit_bytes += bytes;
  ++total_hits_;
  total_hit_bytes_ += bytes;
}

std::vector<std::optional<double>> DailySeries::daily_hr() const {
  std::vector<std::optional<double>> out(days_.size());
  for (std::size_t d = 0; d < days_.size(); ++d) {
    if (days_[d].requests > 0) {
      out[d] = static_cast<double>(days_[d].hits) / static_cast<double>(days_[d].requests);
    }
  }
  return out;
}

std::vector<std::optional<double>> DailySeries::daily_whr() const {
  std::vector<std::optional<double>> out(days_.size());
  for (std::size_t d = 0; d < days_.size(); ++d) {
    if (days_[d].bytes > 0) {
      out[d] = static_cast<double>(days_[d].hit_bytes) / static_cast<double>(days_[d].bytes);
    }
  }
  return out;
}

std::vector<std::optional<double>> DailySeries::smooth(bool weighted,
                                                       std::size_t window) const {
  std::vector<std::optional<double>> out(days_.size());
  // Trailing window over *recorded* days, averaging their daily rates with
  // equal weight (the paper averages rates, not pooled counts).
  std::vector<double> recorded;
  recorded.reserve(days_.size());
  for (std::size_t d = 0; d < days_.size(); ++d) {
    const Day& day = days_[d];
    if (day.requests == 0) continue;
    const double rate =
        weighted ? (day.bytes > 0
                        ? static_cast<double>(day.hit_bytes) / static_cast<double>(day.bytes)
                        : 0.0)
                 : static_cast<double>(day.hits) / static_cast<double>(day.requests);
    recorded.push_back(rate);
    if (recorded.size() >= window) {
      double sum = 0.0;
      for (std::size_t i = recorded.size() - window; i < recorded.size(); ++i) {
        sum += recorded[i];
      }
      out[d] = sum / static_cast<double>(window);
    }
  }
  return out;
}

std::vector<std::optional<double>> DailySeries::smoothed_hr(std::size_t window) const {
  return smooth(false, window);
}

std::vector<std::optional<double>> DailySeries::smoothed_whr(std::size_t window) const {
  return smooth(true, window);
}

double DailySeries::overall_hr() const noexcept {
  return total_requests_ == 0
             ? 0.0
             : static_cast<double>(total_hits_) / static_cast<double>(total_requests_);
}

double DailySeries::overall_whr() const noexcept {
  return total_bytes_ == 0
             ? 0.0
             : static_cast<double>(total_hit_bytes_) / static_cast<double>(total_bytes_);
}

double DailySeries::mean_daily_hr() const noexcept {
  double sum = 0.0;
  std::size_t count = 0;
  for (const Day& day : days_) {
    if (day.requests > 0) {
      sum += static_cast<double>(day.hits) / static_cast<double>(day.requests);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double DailySeries::mean_daily_whr() const noexcept {
  double sum = 0.0;
  std::size_t count = 0;
  for (const Day& day : days_) {
    if (day.bytes > 0) {
      sum += static_cast<double>(day.hit_bytes) / static_cast<double>(day.bytes);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::vector<std::optional<double>> series_ratio(
    const std::vector<std::optional<double>>& numerator,
    const std::vector<std::optional<double>>& denominator, double scale) {
  const std::size_t n = std::min(numerator.size(), denominator.size());
  std::vector<std::optional<double>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (numerator[i] && denominator[i] && *denominator[i] > 0.0) {
      out[i] = scale * *numerator[i] / *denominator[i];
    }
  }
  return out;
}

double series_mean(const std::vector<std::optional<double>>& series) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& v : series) {
    if (v) {
      sum += *v;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace wcs
