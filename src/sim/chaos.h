// Chaos harness (DESIGN.md §9): replay a workload through a *real*
// ProxyCache whose upstream is wrapped in a deterministic FaultPlan,
// measure availability and hit-rate degradation, and assert the proxy's
// invariants while doing it.
//
// Two layers:
//   * replay_through_proxy — one replay of a RequestSource against a
//     ProxyCache backed by a synthetic trace-driven origin, with periodic
//     invariant checks (cache audit clean, counters monotonic, the GET
//     accounting identity). Throws std::runtime_error on any violation.
//   * run_chaos_sweep — a grid of fault rates fanned over the
//     ParallelRunner, each cell replayed twice: once with the configured
//     cache and once with a 1-byte cache — the "no cache" availability
//     baseline under the *same* resilience machinery, which the cached
//     run must beat or match (the cache can only add ways to answer:
//     fresh hits skip the flaky upstream, stale-if-error masks failures).
//
// Everything is deterministic: the fault schedule is stateless, cells are
// gathered in submission order, and a sweep with the same (trace, config)
// is bit-identical whatever WCS_JOBS says.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/proxy/faults.h"
#include "src/proxy/proxy.h"
#include "src/sim/runner.h"
#include "src/sim/simulator.h"
#include "src/trace/request_source.h"
#include "src/util/thread_annotations.h"

namespace wcs {

/// Trace-driven origin: serves each URL at the size the replay loop last
/// told it ("the trace is the ground truth about the document corpus").
/// When the trace's size for a URL changes, the document is edited —
/// Last-Modified moves forward — so the proxy's conditional GETs get real
/// 200-replaces alongside 304s. Thread-affine: one replay lane owns it
/// (replay_through_proxy's single loop, or one shard lane of the load
/// generator's ShardedProxyTarget).
class WCS_THREAD_AFFINE SynthOrigin {
 public:
  void set_next_size(std::uint64_t size) noexcept { next_size_ = size; }

  [[nodiscard]] HttpResponse handle(const HttpRequest& request, SimTime now);

 private:
  struct Doc {
    bool known = false;
    std::uint64_t size = 0;
    SimTime modified = 0;
  };
  std::unordered_map<std::string, Doc> docs_;
  std::uint64_t next_size_ = 0;
};

/// One proxy replay, accounted at the proxy level.
struct ProxyReplayResult {
  ProxyCache::Stats stats;
  CacheStats cache_stats;
  DailySeries daily;  // proxy-level hits (X-Cache: HIT) per day
  AvailabilityStats availability;

  [[nodiscard]] double hit_rate() const noexcept {
    return stats.requests == 0
               ? 0.0
               : static_cast<double>(stats.hits) / static_cast<double>(stats.requests);
  }
};

struct ProxyReplayConfig {
  ProxyCache::Config proxy;
  FaultSpec faults;  // default: disabled (FaultPlan::wrap is the identity)
  /// Run the invariant checks every N requests (and always at the end);
  /// 0 checks at the end only.
  std::uint64_t check_interval = 0;
  /// Observability recorder for this replay; nullptr = disabled. Flows into
  /// the proxy (and through it the cache core and resilience layer), so the
  /// recorder sees the full per-request event stream; the replay also
  /// publishes final stats into the registry and fills the "proxy" daily
  /// series. Single-replay only — parallel sweep cells must not share one.
  ObsRecorder* obs = nullptr;
};

/// Replay `source` through a ProxyCache backed by a synthetic origin that
/// serves each URL at the size the trace last assigned it (a size change
/// in the trace edits the origin document, so the paper's §1.1 size-change
/// misses become real revalidation traffic). Single pass; throws
/// std::runtime_error on invariant violations or a source stream error.
[[nodiscard]] ProxyReplayResult replay_through_proxy(RequestSource& source,
                                                     const ProxyReplayConfig& config);

/// One sweep cell: the same trace and fault rate, with and without cache.
struct ChaosCell {
  double fault_rate = 0.0;
  ProxyReplayResult with_cache;
  ProxyReplayResult no_cache;
};

struct ChaosSweepResult {
  std::string workload;
  std::vector<ChaosCell> cells;  // one per fault rate, input order
};

struct ChaosSweepConfig {
  std::vector<double> fault_rates = {0.0, 0.01, 0.05, 0.10, 0.25};
  std::uint64_t capacity_bytes = 16ULL << 20;
  SimTime revalidate_after = 5 * kSecondsPerMinute;
  ResilienceConfig resilience;
  std::uint64_t fault_seed = 0x5eed0f57ULL;
  std::uint64_t check_interval = 4096;
  /// Hit-rate degradation bound, asserted per cell against the cell's own
  /// zero-fault twin: hit_rate >= zero_fault_hit_rate *
  /// (1 - degradation_slack - fault_rate * degradation_per_fault).
  double degradation_per_fault = 2.0;
  double degradation_slack = 0.05;
  /// Sweep-level recorder; nullptr = disabled. Cells replay WITHOUT
  /// per-request recording (they run concurrently; a shared bus would
  /// interleave nondeterministically) — instead, after the deterministic
  /// submission-order gather, each cell's daily curve is written as a
  /// fault-rate-annotated time series ("chaos/<rate>/{cache,no-cache}",
  /// annotation = the cell's fault rate), so the export is bit-identical
  /// for a given (trace, config) whatever WCS_JOBS says.
  ObsRecorder* obs = nullptr;
};

/// Replay `trace` (named `workload` for the report) under every fault rate
/// in the grid, fanning the cells over `runner`. Asserts (throws
/// std::runtime_error) that every cell's invariants held and that hit-rate
/// degradation stays within the configured bound.
[[nodiscard]] ChaosSweepResult run_chaos_sweep(const std::string& workload, const Trace& trace,
                                               const ChaosSweepConfig& config = {},
                                               ParallelRunner& runner = ParallelRunner::shared());

}  // namespace wcs
