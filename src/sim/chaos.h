// Chaos harness (DESIGN.md §9): replay a workload through a *real*
// ProxyCache whose upstream is wrapped in a deterministic FaultPlan,
// measure availability and hit-rate degradation, and assert the proxy's
// invariants while doing it.
//
// Two layers:
//   * replay_through_proxy — one replay of a RequestSource against a
//     ProxyCache backed by a synthetic trace-driven origin, with periodic
//     invariant checks (cache audit clean, counters monotonic, the GET
//     accounting identity). Throws std::runtime_error on any violation.
//   * run_chaos_sweep — a grid of fault rates fanned over the
//     ParallelRunner, each cell replayed twice: once with the configured
//     cache and once with a 1-byte cache — the "no cache" availability
//     baseline under the *same* resilience machinery, which the cached
//     run must beat or match (the cache can only add ways to answer:
//     fresh hits skip the flaky upstream, stale-if-error masks failures).
//
// Everything is deterministic: the fault schedule is stateless, cells are
// gathered in submission order, and a sweep with the same (trace, config)
// is bit-identical whatever WCS_JOBS says.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/proxy/faults.h"
#include "src/proxy/proxy.h"
#include "src/proxy/topology.h"
#include "src/sim/runner.h"
#include "src/sim/simulator.h"
#include "src/trace/request_source.h"
#include "src/util/thread_annotations.h"

namespace wcs {

/// Trace-driven origin: serves each URL at the size the replay loop last
/// told it ("the trace is the ground truth about the document corpus").
/// When the trace's size for a URL changes, the document is edited —
/// Last-Modified moves forward — so the proxy's conditional GETs get real
/// 200-replaces alongside 304s. Thread-affine: one replay lane owns it
/// (replay_through_proxy's single loop, or one shard lane of the load
/// generator's ShardedProxyTarget).
class WCS_THREAD_AFFINE SynthOrigin {
 public:
  void set_next_size(std::uint64_t size) noexcept { next_size_ = size; }

  [[nodiscard]] HttpResponse handle(const HttpRequest& request, SimTime now);

 private:
  struct Doc {
    bool known = false;
    std::uint64_t size = 0;
    SimTime modified = 0;
  };
  std::unordered_map<std::string, Doc> docs_;
  std::uint64_t next_size_ = 0;
};

/// One proxy replay, accounted at the proxy level.
struct ProxyReplayResult {
  ProxyCache::Stats stats;
  CacheStats cache_stats;
  DailySeries daily;  // proxy-level hits (X-Cache: HIT) per day
  AvailabilityStats availability;

  [[nodiscard]] double hit_rate() const noexcept {
    return stats.requests == 0
               ? 0.0
               : static_cast<double>(stats.hits) / static_cast<double>(stats.requests);
  }
};

struct ProxyReplayConfig {
  ProxyCache::Config proxy;
  FaultSpec faults;  // default: disabled (FaultPlan::wrap is the identity)
  /// Run the invariant checks every N requests (and always at the end);
  /// 0 checks at the end only.
  std::uint64_t check_interval = 0;
  /// Observability recorder for this replay; nullptr = disabled. Flows into
  /// the proxy (and through it the cache core and resilience layer), so the
  /// recorder sees the full per-request event stream; the replay also
  /// publishes final stats into the registry and fills the "proxy" daily
  /// series. Single-replay only — parallel sweep cells must not share one.
  ObsRecorder* obs = nullptr;
};

/// Replay `source` through a ProxyCache backed by a synthetic origin that
/// serves each URL at the size the trace last assigned it (a size change
/// in the trace edits the origin document, so the paper's §1.1 size-change
/// misses become real revalidation traffic). Single pass; throws
/// std::runtime_error on invariant violations or a source stream error.
[[nodiscard]] ProxyReplayResult replay_through_proxy(RequestSource& source,
                                                     const ProxyReplayConfig& config);

/// One sweep cell: the same trace and fault rate, with and without cache.
struct ChaosCell {
  double fault_rate = 0.0;
  ProxyReplayResult with_cache;
  ProxyReplayResult no_cache;
};

struct ChaosSweepResult {
  std::string workload;
  std::vector<ChaosCell> cells;  // one per fault rate, input order
};

struct ChaosSweepConfig {
  std::vector<double> fault_rates = {0.0, 0.01, 0.05, 0.10, 0.25};
  std::uint64_t capacity_bytes = 16ULL << 20;
  SimTime revalidate_after = 5 * kSecondsPerMinute;
  ResilienceConfig resilience;
  std::uint64_t fault_seed = 0x5eed0f57ULL;
  std::uint64_t check_interval = 4096;
  /// Hit-rate degradation bound, asserted per cell against the cell's own
  /// zero-fault twin: hit_rate >= zero_fault_hit_rate *
  /// (1 - degradation_slack - fault_rate * degradation_per_fault).
  double degradation_per_fault = 2.0;
  double degradation_slack = 0.05;
  /// Sweep-level recorder; nullptr = disabled. Cells replay WITHOUT
  /// per-request recording (they run concurrently; a shared bus would
  /// interleave nondeterministically) — instead, after the deterministic
  /// submission-order gather, each cell's daily curve is written as a
  /// fault-rate-annotated time series ("chaos/<rate>/{cache,no-cache}",
  /// annotation = the cell's fault rate), so the export is bit-identical
  /// for a given (trace, config) whatever WCS_JOBS says.
  ObsRecorder* obs = nullptr;
};

/// Replay `trace` (named `workload` for the report) under every fault rate
/// in the grid, fanning the cells over `runner`. Asserts (throws
/// std::runtime_error) that every cell's invariants held and that hit-rate
/// degradation stays within the configured bound.
[[nodiscard]] ChaosSweepResult run_chaos_sweep(const std::string& workload, const Trace& trace,
                                               const ChaosSweepConfig& config = {},
                                               ParallelRunner& runner = ParallelRunner::shared());

// ---------------------------------------------------------------------------
// Networks of caches (src/proxy/topology.h) under chaos.

/// One tier's end-of-replay accounting: sibling Stats summed plus bytes.
struct TierReplayStats {
  std::string label;
  ProxyCache::Stats stats;
  std::uint64_t stored_bytes = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return stats.requests == 0
               ? 0.0
               : static_cast<double>(stats.hits) / static_cast<double>(stats.requests);
  }
};

/// One topology replay, accounted per tier and at the client boundary.
struct TopologyReplayResult {
  std::vector<TierReplayStats> tiers;  // edge first, matching the config
  CacheTopology::RouterStats router;
  DailySeries daily;                 // client-level hits (X-Cache: HIT) per day
  AvailabilityStats availability;    // client-level served vs failed
  std::uint64_t client_hits = 0;     // responses that carried X-Cache: HIT

  [[nodiscard]] double client_hit_rate() const noexcept {
    const std::uint64_t total = availability.served + availability.failed;
    return total == 0 ? 0.0 : static_cast<double>(client_hits) / static_cast<double>(total);
  }
};

struct TopologyReplayConfig {
  TopologyConfig topology;
  /// Run the invariant checks every N requests (and always at the end);
  /// 0 checks at the end only.
  std::uint64_t check_interval = 0;
  /// Observability recorder; nullptr = disabled. Flows into every tier
  /// cache; at the end-of-replay sync point each tier's merged stats
  /// publish as wcs_tier_<label>_* (publish_tier_stats) and the client
  /// daily curve fills the "topology" series. Single-replay only.
  ObsRecorder* obs = nullptr;
};

/// Replay `source` through a CacheTopology backed by a SynthOrigin.
/// Invariants checked per interval and at the end: every tier cache
/// audit-clean, per-tier counters monotonic, the per-cache GET accounting
/// identity (via CacheTopology::audit), and the client-level identity
/// served + failed == requests. Throws std::runtime_error on violations.
[[nodiscard]] TopologyReplayResult replay_through_topology(RequestSource& source,
                                                           const TopologyReplayConfig& config);

/// One sweep cell: `trace` replayed through the faulted topology and
/// through its cacheless twin (same shape and resilience, 1-byte caches).
struct TopologyChaosCell {
  double fault_rate = 0.0;
  /// Faulted tier label, "origin" for the last hop, "" for the zero-fault
  /// baseline cell.
  std::string location;
  TopologyReplayResult with_caches;
  TopologyReplayResult cacheless;
};

struct TopologyChaosSweepResult {
  std::string workload;
  /// Baseline (rate 0) first, then rate-major × location-minor grid order.
  std::vector<TopologyChaosCell> cells;
};

struct TopologyChaosSweepConfig {
  /// The fault-free base shape; per-cell fault locations override one
  /// tier's downlink (or the origin link). Its obs pointer is ignored —
  /// cells run concurrently and must not share a recorder.
  TopologyConfig topology;
  std::vector<double> fault_rates = {0.05, 0.25};
  /// Fault locations: tier labels and/or "origin". Empty = every tier but
  /// the edge (tier 0), plus "origin".
  std::vector<std::string> locations;
  std::uint64_t fault_seed = 0x5eed0f57ULL;
  std::uint64_t check_interval = 4096;
  /// Containment bound, asserted for every tier strictly nearer the client
  /// than the faulted one: tier hit_rate >= baseline tier hit_rate *
  /// (1 - containment_slack - fault_rate * per_fault), where baseline is
  /// the zero-fault cell. For a fault at a *tier*, per_fault is
  /// containment_per_fault and failover is what makes the tight bound
  /// hold: a nearer tier's miss-fill reroutes around the faulted tier
  /// (sibling, deeper tier, origin) instead of failing, so its own hit
  /// stream barely moves. A fault at the *origin* has no route around —
  /// fills genuinely fail everywhere and only stale-if-error softens it —
  /// so those cells use origin_degradation_per_fault, the flat chaos
  /// sweep's degradation contract.
  double containment_per_fault = 0.5;
  double origin_degradation_per_fault = 2.0;
  double containment_slack = 0.05;
  /// Sweep-level recorder; nullptr = disabled. Cells replay without
  /// per-request recording; after the submission-order gather each cell's
  /// client daily curve is written as "topo/<location>@<rate>/{cache,
  /// cacheless}" series annotated with the fault rate.
  ObsRecorder* obs = nullptr;
};

/// Replay `trace` through the topology under every fault-rate ×
/// fault-location cell, fanning (cell × {caches, cacheless}) replays over
/// `runner` with a deterministic submission-order gather — bit-identical
/// for any WCS_JOBS. Asserts (throws std::runtime_error) per cell: all
/// replay invariants, end-to-end availability with caches >= the cacheless
/// twin (exact integer comparison of failed counts), and the containment
/// bound for every tier nearer the client than the faulted location.
[[nodiscard]] TopologyChaosSweepResult run_topology_chaos_sweep(
    const std::string& workload, const Trace& trace, const TopologyChaosSweepConfig& config,
    ParallelRunner& runner = ParallelRunner::shared());

}  // namespace wcs
