#include "src/sim/simulator.h"

#include <stdexcept>
#include <string>

#include "src/obs/recorder.h"
#include "src/util/memory.h"

namespace wcs {
namespace {

/// End-of-run sync point: publish final stats, convert the daily series
/// into the recorder's "sim" time series, and lay down sim-time spans for
/// the whole run and each recorded day. Runs once, after the hot loop.
void record_run(ObsRecorder& obs, const SimResult& result) {
  publish_stats(obs.registry(), result.stats);
  TimeSeries& series = obs.series("sim");
  const std::int64_t days = result.daily.day_count();
  for (std::int64_t day = 0; day < days; ++day) {
    const DailySeries::DayTotals totals = result.daily.totals_of_day(day);
    if (totals.requests == 0) continue;  // unrecorded day (workload C gaps)
    SeriesPoint point;
    point.day = day;
    point.requests = totals.requests;
    point.hits = totals.hits;
    point.bytes = totals.bytes;
    point.hit_bytes = totals.hit_bytes;
    series.sample(point);
    obs.spans().record_sim_span("day " + std::to_string(day), day_start(day),
                                day_start(day + 1));
  }
  if (days > 0) obs.spans().record_sim_span("simulate", day_start(0), day_start(days));
  Event marker;
  marker.kind = EventKind::kRunMarker;
  marker.time = days > 0 ? day_start(days) : 0;
  marker.size = result.footprint.requests;
  marker.detail = "simulate:end";
  obs.emit(marker);
}

/// Per-shard metric labels at the end-of-run sync point. The registry has
/// no label concept (names are the namespace), so the shard index is
/// encoded into the metric name — wcs_shard_used_bytes{shard="3"} — which
/// the Prometheus text export renders verbatim as a labelled sample.
void publish_shard_occupancy(ObsRecorder& obs, const ShardedCache& cache) {
  const std::vector<ShardOccupancy> shards = cache.occupancy();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
    obs.registry()
        .gauge("wcs_shard_used_bytes" + label, "Per-shard cache occupancy in bytes")
        .set(static_cast<std::int64_t>(shards[i].used_bytes));
    obs.registry()
        .gauge("wcs_shard_entries" + label, "Per-shard cached document count")
        .set(static_cast<std::int64_t>(shards[i].entry_count));
  }
  obs.registry()
      .gauge("wcs_shard_count", "Shards in the sharded cache")
      .set(static_cast<std::int64_t>(shards.size()));
}

/// Throws with the audit report if `auditable` (anything with an audit()
/// method) is in a corrupt state — the SimAudit debug contract.
template <typename Auditable>
void check_audit(const Auditable& auditable, std::uint64_t request_index) {
  const AuditReport report = auditable.audit();
  if (!report.ok()) {
    throw std::runtime_error{"simulate: invariant audit failed after request " +
                             std::to_string(request_index) + "\n" + report.to_string()};
  }
}

/// True on every `interval`-th request (1-based); never when interval is 0.
[[nodiscard]] bool audit_due(const SimAudit& audit, std::uint64_t request_index) {
  return audit.interval != 0 && request_index % audit.interval == 0;
}

/// Fail loudly when a source ended because of an I/O error rather than a
/// clean end of stream: results over a silently truncated trace would look
/// plausible and be wrong.
void check_stream(const RequestSource& source) {
  if (const auto error = source.stream_error()) {
    throw std::runtime_error{"simulate: request source failed mid-stream: " + *error};
  }
}

}  // namespace

SimResult simulate(RequestSource& source, std::uint64_t capacity_bytes,
                   const PolicyFactory& make_policy, PeriodicSweepConfig periodic,
                   SimAudit audit, ObsRecorder* obs, AdmissionFactory admission) {
  CacheConfig config;
  config.capacity_bytes = capacity_bytes;
  config.periodic = periodic;
  config.obs = obs;
  config.admission = std::move(admission);
  Cache cache{config, make_policy()};

  SimResult result;
  std::uint64_t index = 0;
  Request request;
  while (source.next(request)) {
    const AccessResult access = cache.access(request);
    result.daily.record(request.time, access.hit, request.size);
    if (audit_due(audit, ++index)) check_audit(cache, index);
  }
  check_stream(source);
  if (audit.interval != 0) check_audit(cache, index);
  result.stats = cache.stats();
  result.max_used_bytes = cache.stats().max_used_bytes;
  result.footprint.requests = index;
  result.footprint.source_resident_bytes = source.resident_bytes();
  result.footprint.peak_rss_bytes = peak_rss_bytes();
  result.availability.served = index;  // the implicit upstream never fails
  if (obs != nullptr) record_run(*obs, result);
  return result;
}

SimResult simulate(const Trace& trace, std::uint64_t capacity_bytes,
                   const PolicyFactory& make_policy, PeriodicSweepConfig periodic,
                   SimAudit audit, ObsRecorder* obs, AdmissionFactory admission) {
  TraceSource source{trace};
  return simulate(source, capacity_bytes, make_policy, periodic, audit, obs,
                  std::move(admission));
}

SimResult simulate_sharded(RequestSource& source, std::uint64_t capacity_bytes,
                           const PolicyFactory& make_policy, std::uint32_t shards,
                           PeriodicSweepConfig periodic, SimAudit audit, ObsRecorder* obs,
                           AdmissionFactory admission) {
  ShardedCacheConfig config;
  config.capacity_bytes = capacity_bytes;
  config.shards = shards;
  config.periodic = periodic;
  config.obs = obs;
  config.admission = std::move(admission);
  ShardedCache cache{config, make_policy};

  SimResult result;
  std::uint64_t index = 0;
  Request request;
  while (source.next(request)) {
    const AccessResult access = cache.access(request);
    result.daily.record(request.time, access.hit, request.size);
    if (audit_due(audit, ++index)) check_audit(cache, index);
  }
  check_stream(source);
  if (audit.interval != 0) check_audit(cache, index);
  result.stats = cache.merged_stats();
  result.max_used_bytes = result.stats.max_used_bytes;
  result.footprint.requests = index;
  result.footprint.source_resident_bytes = source.resident_bytes();
  result.footprint.peak_rss_bytes = peak_rss_bytes();
  result.availability.served = index;  // the implicit upstream never fails
  result.concurrency.threads = 1;
  result.concurrency.shards = cache.shard_count();
  if (obs != nullptr) {
    record_run(*obs, result);
    publish_shard_occupancy(*obs, cache);
  }
  return result;
}

SimResult simulate_sharded(const Trace& trace, std::uint64_t capacity_bytes,
                           const PolicyFactory& make_policy, std::uint32_t shards,
                           PeriodicSweepConfig periodic, SimAudit audit, ObsRecorder* obs,
                           AdmissionFactory admission) {
  TraceSource source{trace};
  return simulate_sharded(source, capacity_bytes, make_policy, shards, periodic, audit, obs,
                          std::move(admission));
}

SimResult simulate_infinite(RequestSource& source) {
  // Policy choice is irrelevant — an infinite cache never evicts.
  return simulate(source, 0, [] { return make_lru(); });
}

SimResult simulate_infinite(const Trace& trace) {
  TraceSource source{trace};
  return simulate_infinite(source);
}

TwoLevelSimResult simulate_two_level(RequestSource& source, std::uint64_t l1_capacity,
                                     const PolicyFactory& l1_policy,
                                     const PolicyFactory& l2_policy, SimAudit audit) {
  CacheConfig l1_config;
  l1_config.capacity_bytes = l1_capacity;
  CacheConfig l2_config;  // infinite
  TwoLevelCache hierarchy{l1_config, l1_policy(), l2_config, l2_policy()};

  TwoLevelSimResult result;
  std::uint64_t index = 0;
  Request request;
  while (source.next(request)) {
    const TwoLevelResult outcome = hierarchy.access(request);
    result.l1_daily.record(request.time, outcome.level == HitLevel::kL1, request.size);
    result.l2_daily.record(request.time, outcome.level == HitLevel::kL2, request.size);
    if (audit_due(audit, ++index)) check_audit(hierarchy, index);
  }
  check_stream(source);
  if (audit.interval != 0) check_audit(hierarchy, index);
  result.stats = hierarchy.stats();
  return result;
}

TwoLevelSimResult simulate_two_level(const Trace& trace, std::uint64_t l1_capacity,
                                     const PolicyFactory& l1_policy,
                                     const PolicyFactory& l2_policy, SimAudit audit) {
  TraceSource source{trace};
  return simulate_two_level(source, l1_capacity, l1_policy, l2_policy, audit);
}

PartitionedSimResult simulate_partitioned_audio(RequestSource& source,
                                                std::uint64_t total_capacity,
                                                double audio_fraction,
                                                const PolicyFactory& make_policy,
                                                SimAudit audit) {
  PartitionedCache cache =
      PartitionedCache::audio_split(total_capacity, audio_fraction, make_policy);

  PartitionedSimResult result;
  std::uint64_t index = 0;
  Request request;
  while (source.next(request)) {
    const AccessResult access = cache.access(request);
    const bool is_audio = request.type == FileType::kAudio;
    // Per-class rates over *all* requests: every request contributes to
    // both denominators; a hit counts only for its own class.
    result.audio_daily.record(request.time, access.hit && is_audio, request.size);
    result.non_audio_daily.record(request.time, access.hit && !is_audio, request.size);
    if (audit_due(audit, ++index)) check_audit(cache, index);
  }
  check_stream(source);
  if (audit.interval != 0) check_audit(cache, index);
  result.audio_stats = cache.partition(0).stats();
  result.non_audio_stats = cache.partition(1).stats();
  return result;
}

PartitionedSimResult simulate_partitioned_audio(const Trace& trace,
                                                std::uint64_t total_capacity,
                                                double audio_fraction,
                                                const PolicyFactory& make_policy,
                                                SimAudit audit) {
  TraceSource source{trace};
  return simulate_partitioned_audio(source, total_capacity, audio_fraction, make_policy, audit);
}

ClassWhrReference simulate_infinite_by_class(RequestSource& source) {
  CacheConfig config;  // infinite
  Cache cache{config, make_lru()};

  ClassWhrReference result;
  Request request;
  while (source.next(request)) {
    const AccessResult access = cache.access(request);
    const bool is_audio = request.type == FileType::kAudio;
    result.audio_daily.record(request.time, access.hit && is_audio, request.size);
    result.non_audio_daily.record(request.time, access.hit && !is_audio, request.size);
  }
  check_stream(source);
  return result;
}

ClassWhrReference simulate_infinite_by_class(const Trace& trace) {
  TraceSource source{trace};
  return simulate_infinite_by_class(source);
}

}  // namespace wcs
