#include "src/sim/chaos.h"

#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/http/cacheability.h"
#include "src/http/date.h"
#include "src/obs/recorder.h"

namespace wcs {

HttpResponse SynthOrigin::handle(const HttpRequest& request, SimTime now) {
  Doc& doc = docs_[request.target];
  if (!doc.known || doc.size != next_size_) {
    doc.known = true;
    doc.size = next_size_;
    doc.modified = now;
  }
  if (not_modified_since(request, doc.modified)) {
    HttpResponse response;
    response.status = 304;
    response.reason = std::string{reason_phrase(304)};
    response.headers.set("Last-Modified", to_http_date(doc.modified));
    return response;
  }
  HttpResponse response;
  response.status = 200;
  response.reason = std::string{reason_phrase(200)};
  response.headers.set("Last-Modified", to_http_date(doc.modified));
  response.headers.set("Content-Length", std::to_string(doc.size));
  response.body.assign(doc.size, 'x');
  return response;
}

namespace {

/// Every counter of ProxyCache::Stats, flattened for the monotonicity
/// check (order is arbitrary but fixed).
[[nodiscard]] std::vector<std::uint64_t> counter_values(const ProxyCache::Stats& s) {
  return {s.requests,      s.hits,          s.validations,   s.validated_fresh,
          s.misses,        s.uncacheable,   s.hit_bytes,     s.miss_bytes,
          s.delta_updates, s.delta_bytes,   s.delta_bytes_avoided,
          s.upstream_failures, s.retries,   s.breaker_opens, s.stale_served,
          s.negative_hits, s.failed_requests};
}

/// Copy a replay's daily curve into an obs time series, stamping every
/// point with `annotation` (the cell's fault rate for sweep series, 0 for a
/// single replay). Sync-point work: runs after the replay loop.
void fill_series_from_daily(TimeSeries& series, const DailySeries& daily,
                            double annotation) {
  for (std::int64_t day = 0; day < daily.day_count(); ++day) {
    const DailySeries::DayTotals totals = daily.totals_of_day(day);
    if (totals.requests == 0) continue;
    SeriesPoint point;
    point.day = day;
    point.requests = totals.requests;
    point.hits = totals.hits;
    point.bytes = totals.bytes;
    point.hit_bytes = totals.hit_bytes;
    point.annotation = annotation;
    series.sample(point);
  }
}

[[noreturn]] void violation(std::uint64_t index, const std::string& what) {
  throw std::runtime_error{"replay_through_proxy: invariant violation after request " +
                           std::to_string(index) + ": " + what};
}

/// The replay's invariants: audit-clean cache, monotonic counters, and the
/// GET accounting identity (every request resolves to exactly one of
/// hit / miss / failed for GET-only traffic).
void check_invariants(const ProxyCache& proxy, std::vector<std::uint64_t>& previous,
                      std::uint64_t index, std::uint64_t capacity_bytes) {
  const ProxyCache::Stats& s = proxy.stats();
  std::vector<std::uint64_t> current = counter_values(s);
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (!previous.empty() && current[i] < previous[i]) {
      violation(index, "counter #" + std::to_string(i) + " went backwards");
    }
  }
  previous = std::move(current);
  if (s.hits + s.misses + s.failed_requests != s.requests) {
    violation(index, "accounting identity broken: hits + misses + failed != requests");
  }
  if (s.stale_served > s.hits) violation(index, "stale_served exceeds hits");
  if (s.failed_requests > s.upstream_failures + s.negative_hits) {
    violation(index, "more failed requests than upstream failures");
  }
  if (s.validated_fresh > s.validations) violation(index, "validated_fresh exceeds validations");
  if (capacity_bytes > 0 && proxy.stored_bytes() > capacity_bytes) {
    violation(index, "stored bytes exceed capacity");
  }
  const AuditReport report = proxy.cache().audit();
  if (!report.ok()) violation(index, "cache audit failed\n" + report.to_string());
}

}  // namespace

ProxyReplayResult replay_through_proxy(RequestSource& source, const ProxyReplayConfig& config) {
  SynthOrigin origin;
  const FaultPlan plan{config.faults};
  ProxyCache::Config proxy_config = config.proxy;
  if (config.obs != nullptr) proxy_config.obs = config.obs;
  ProxyCache proxy{proxy_config,
                   plan.wrap([&origin](const HttpRequest& request, SimTime now) {
                     return origin.handle(request, now);
                   })};

  ProxyReplayResult result;
  std::vector<std::uint64_t> previous;
  std::uint64_t index = 0;
  Request request;
  HttpRequest http;  // reused; the proxy never keeps a reference
  while (source.next(request)) {
    origin.set_next_size(request.size);
    http.target.assign(source.names().url_name(request.url));
    const HttpResponse response = proxy.handle(http, request.time);
    const bool failed = response.status == 502 || response.status == 504;
    const auto cache_header = response.headers.get("X-Cache");
    const bool hit = cache_header && *cache_header == "HIT";
    result.daily.record(request.time, hit, request.size);
    if (failed) {
      ++result.availability.failed;
    } else {
      ++result.availability.served;
    }
    ++index;
    if (config.check_interval != 0 && index % config.check_interval == 0) {
      check_invariants(proxy, previous, index, config.proxy.capacity_bytes);
    }
  }
  if (const auto error = source.stream_error()) {
    throw std::runtime_error{"replay_through_proxy: source failed mid-stream: " + *error};
  }
  check_invariants(proxy, previous, index, config.proxy.capacity_bytes);
  result.stats = proxy.stats();
  result.cache_stats = proxy.cache().stats();
  if (config.obs != nullptr) {
    // End-of-replay sync point: publish both stat snapshots, fill the
    // per-day proxy hit-rate series, span the replayed interval.
    publish_proxy_stats(config.obs->registry(), result.stats);
    publish_stats(config.obs->registry(), result.cache_stats);
    fill_series_from_daily(config.obs->series("proxy"), result.daily, 0.0);
    const std::int64_t days = result.daily.day_count();
    if (days > 0) {
      config.obs->spans().record_sim_span("replay_through_proxy", day_start(0),
                                          day_start(days));
    }
  }
  return result;
}

ChaosSweepResult run_chaos_sweep(const std::string& workload, const Trace& trace,
                                 const ChaosSweepConfig& config, ParallelRunner& runner) {
  ChaosSweepResult result;
  result.workload = workload;

  const auto replay = [&](double rate, bool with_cache) {
    ProxyReplayConfig cell;
    cell.proxy.capacity_bytes = with_cache ? config.capacity_bytes : 1;
    cell.proxy.revalidate_after = config.revalidate_after;
    cell.proxy.resilience = config.resilience;
    cell.faults = rate > 0.0 ? FaultSpec::transient_mix(rate, config.fault_seed) : FaultSpec{};
    cell.check_interval = config.check_interval;
    TraceSource source{trace};
    return replay_through_proxy(source, cell);
  };

  // Fan every (rate, cache/no-cache) replay over the runner; gather in
  // submission order so the sweep is deterministic under any job count.
  const std::size_t rates = config.fault_rates.size();
  std::vector<ProxyReplayResult> replays =
      runner.map(rates * 2, [&](std::size_t i) {
        const double rate = config.fault_rates[i / 2];
        const bool with_cache = i % 2 == 0;
        return [&replay, rate, with_cache] { return replay(rate, with_cache); };
      });

  result.cells.reserve(rates);
  for (std::size_t i = 0; i < rates; ++i) {
    ChaosCell cell;
    cell.fault_rate = config.fault_rates[i];
    cell.with_cache = std::move(replays[i * 2]);
    cell.no_cache = std::move(replays[i * 2 + 1]);
    result.cells.push_back(std::move(cell));
  }

  // Degradation bound: each cell against its zero-fault twin. When the
  // grid has no explicit zero-rate cell, run one.
  double baseline_hit_rate = -1.0;
  for (const ChaosCell& cell : result.cells) {
    if (cell.fault_rate == 0.0) {
      baseline_hit_rate = cell.with_cache.hit_rate();
      break;
    }
  }
  if (baseline_hit_rate < 0.0) baseline_hit_rate = replay(0.0, true).hit_rate();

  for (const ChaosCell& cell : result.cells) {
    const double bound =
        baseline_hit_rate *
        (1.0 - config.degradation_slack - cell.fault_rate * config.degradation_per_fault);
    if (cell.with_cache.hit_rate() < bound) {
      std::ostringstream message;
      message << "run_chaos_sweep(" << workload << "): hit rate degraded beyond bound at rate "
              << cell.fault_rate << ": " << cell.with_cache.hit_rate() << " < " << bound
              << " (zero-fault " << baseline_hit_rate << ")";
      throw std::runtime_error{message.str()};
    }
  }

  if (config.obs != nullptr) {
    // Deterministic post-gather recording: cells completed in submission
    // order, so the series layout is independent of WCS_JOBS.
    for (const ChaosCell& cell : result.cells) {
      std::ostringstream prefix;
      prefix << "chaos/" << cell.fault_rate;
      fill_series_from_daily(
          config.obs->series(prefix.str() + "/cache", "fault_rate"),
          cell.with_cache.daily, cell.fault_rate);
      fill_series_from_daily(
          config.obs->series(prefix.str() + "/no-cache", "fault_rate"),
          cell.no_cache.daily, cell.fault_rate);
    }
    config.obs->registry()
        .counter("wcs_chaos_cells", "Chaos sweep cells replayed (cache + no-cache pairs)")
        .set(result.cells.size());
    Event marker;
    marker.kind = EventKind::kRunMarker;
    marker.size = result.cells.size();
    marker.detail = "run_chaos_sweep:end";
    config.obs->emit(marker);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Networks of caches under chaos.

namespace {

[[noreturn]] void topology_violation(std::uint64_t index, const std::string& what) {
  throw std::runtime_error{"replay_through_topology: invariant violation after request " +
                           std::to_string(index) + ": " + what};
}

/// Per-tier monotonic counters and Stats-level identities, every tier cache
/// audit-clean, and the client-level accounting identity.
void check_topology_invariants(const CacheTopology& topology,
                               std::vector<std::vector<std::uint64_t>>& previous,
                               std::uint64_t index, const AvailabilityStats& client,
                               const TopologyConfig& config) {
  for (std::size_t t = 0; t < topology.tier_count(); ++t) {
    const ProxyCache::Stats s = topology.tier_stats(t);
    std::vector<std::uint64_t> current = counter_values(s);
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (!previous[t].empty() && current[i] < previous[t][i]) {
        topology_violation(index, "tier " + topology.tier_label(t) + " counter #" +
                                      std::to_string(i) + " went backwards");
      }
    }
    previous[t] = std::move(current);
    if (s.stale_served > s.hits) {
      topology_violation(index, "tier " + topology.tier_label(t) + ": stale_served exceeds hits");
    }
    if (s.failed_requests > s.upstream_failures + s.negative_hits) {
      topology_violation(index, "tier " + topology.tier_label(t) +
                                    ": more failed requests than upstream failures");
    }
    const std::uint64_t tier_capacity =
        config.tiers[t].proxy.capacity_bytes * config.tiers[t].caches;
    if (config.tiers[t].proxy.capacity_bytes > 0 &&
        topology.tier_stored_bytes(t) > tier_capacity) {
      topology_violation(index,
                         "tier " + topology.tier_label(t) + " stored bytes exceed capacity");
    }
  }
  // CacheTopology::audit covers every cache's core audit plus the per-cache
  // GET accounting identity (hits + misses + failed == requests).
  const AuditReport report = topology.audit();
  if (!report.ok()) topology_violation(index, "topology audit failed\n" + report.to_string());
  if (client.served + client.failed != index) {
    topology_violation(index, "client accounting identity broken: served + failed != requests");
  }
}

}  // namespace

TopologyReplayResult replay_through_topology(RequestSource& source,
                                             const TopologyReplayConfig& config) {
  SynthOrigin origin;
  TopologyConfig topology_config = config.topology;
  if (config.obs != nullptr) topology_config.obs = config.obs;
  CacheTopology topology{topology_config,
                         [&origin](const HttpRequest& request, SimTime now) {
                           return origin.handle(request, now);
                         }};

  TopologyReplayResult result;
  std::vector<std::vector<std::uint64_t>> previous(topology.tier_count());
  std::uint64_t index = 0;
  Request request;
  HttpRequest http;  // reused; no cache keeps a reference
  while (source.next(request)) {
    origin.set_next_size(request.size);
    http.target.assign(source.names().url_name(request.url));
    const HttpResponse response = topology.handle(http, request.time);
    // The client boundary can see raw transport errors too (an edge link
    // fault with every fallback exhausted), so classify like the resilience
    // layer rather than matching only the proxy's 502/504.
    const bool failed = is_upstream_failure(response);
    const auto cache_header = response.headers.get("X-Cache");
    const bool hit = !failed && cache_header && *cache_header == "HIT";
    result.daily.record(request.time, hit, request.size);
    if (hit) ++result.client_hits;
    if (failed) {
      ++result.availability.failed;
    } else {
      ++result.availability.served;
    }
    ++index;
    if (config.check_interval != 0 && index % config.check_interval == 0) {
      check_topology_invariants(topology, previous, index, result.availability,
                                config.topology);
    }
  }
  if (const auto error = source.stream_error()) {
    throw std::runtime_error{"replay_through_topology: source failed mid-stream: " + *error};
  }
  check_topology_invariants(topology, previous, index, result.availability, config.topology);

  result.tiers.reserve(topology.tier_count());
  for (std::size_t t = 0; t < topology.tier_count(); ++t) {
    TierReplayStats tier;
    tier.label = topology.tier_label(t);
    tier.stats = topology.tier_stats(t);
    tier.stored_bytes = topology.tier_stored_bytes(t);
    result.tiers.push_back(std::move(tier));
  }
  result.router = topology.router_stats();

  if (config.obs != nullptr) {
    // End-of-replay sync point: per-tier snapshots into the registry, the
    // client daily curve into the "topology" series.
    for (const TierReplayStats& tier : result.tiers) {
      publish_tier_stats(config.obs->registry(), tier.label, tier.stats);
    }
    fill_series_from_daily(config.obs->series("topology"), result.daily, 0.0);
    const std::int64_t days = result.daily.day_count();
    if (days > 0) {
      config.obs->spans().record_sim_span("replay_through_topology", day_start(0),
                                          day_start(days));
    }
  }
  return result;
}

TopologyChaosSweepResult run_topology_chaos_sweep(const std::string& workload,
                                                  const Trace& trace,
                                                  const TopologyChaosSweepConfig& config,
                                                  ParallelRunner& runner) {
  TopologyChaosSweepResult result;
  result.workload = workload;
  if (config.topology.tiers.empty()) {
    throw std::invalid_argument{"run_topology_chaos_sweep: topology has no tiers"};
  }

  // Fault locations: tier labels plus the sentinel "origin" (index ==
  // tier count). Defaults to every non-edge tier and the origin link —
  // faulting the client's own access link is not a cache-containment
  // question.
  std::vector<std::string> locations = config.locations;
  if (locations.empty()) {
    for (std::size_t t = 1; t < config.topology.tiers.size(); ++t) {
      locations.push_back(config.topology.tiers[t].label);
    }
    locations.push_back("origin");
  }
  const auto location_index = [&config](const std::string& location) -> std::size_t {
    if (location == "origin") return config.topology.tiers.size();
    for (std::size_t t = 0; t < config.topology.tiers.size(); ++t) {
      if (config.topology.tiers[t].label == location) return t;
    }
    throw std::invalid_argument{"run_topology_chaos_sweep: unknown fault location " + location};
  };
  for (const std::string& location : locations) {
    (void)location_index(location);  // validate before fanning out
  }

  // Cell grid: the shared zero-fault baseline first, then rate-major.
  struct CellKey {
    double rate = 0.0;
    std::string location;
  };
  std::vector<CellKey> keys;
  keys.push_back({0.0, std::string{}});
  for (const double rate : config.fault_rates) {
    if (rate <= 0.0) continue;  // the baseline cell already covers rate 0
    for (const std::string& location : locations) {
      keys.push_back({rate, location});
    }
  }

  const auto replay = [&](const CellKey& key, bool with_caches) {
    TopologyReplayConfig cell;
    cell.topology = config.topology;
    cell.topology.obs = nullptr;  // cells run concurrently: no shared recorder
    if (!with_caches) {
      // The cacheless twin: identical shape, labels, routing, faults and
      // resilience — only the storage is gone.
      for (TierConfig& tier : cell.topology.tiers) tier.proxy.capacity_bytes = 1;
    }
    if (key.rate > 0.0) {
      const FaultSpec faults = FaultSpec::transient_mix(key.rate, config.fault_seed);
      const std::size_t where = location_index(key.location);
      if (where == cell.topology.tiers.size()) {
        cell.topology.origin_link = faults;
      } else {
        cell.topology.tiers[where].downlink = faults;
      }
    }
    cell.check_interval = config.check_interval;
    TraceSource source{trace};
    return replay_through_topology(source, cell);
  };

  // Fan every (cell, caches/cacheless) replay over the runner; gather in
  // submission order so the sweep is bit-identical under any job count.
  std::vector<TopologyReplayResult> replays =
      runner.map(keys.size() * 2, [&](std::size_t i) {
        const CellKey& key = keys[i / 2];
        const bool with_caches = i % 2 == 0;
        return [&replay, &key, with_caches] { return replay(key, with_caches); };
      });

  result.cells.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    TopologyChaosCell cell;
    cell.fault_rate = keys[i].rate;
    cell.location = keys[i].location;
    cell.with_caches = std::move(replays[i * 2]);
    cell.cacheless = std::move(replays[i * 2 + 1]);
    result.cells.push_back(std::move(cell));
  }

  // Containment gates. Both twins replay the same trace, so the
  // availability comparison reduces to exact integer failed counts.
  const TopologyChaosCell& baseline = result.cells.front();
  for (const TopologyChaosCell& cell : result.cells) {
    if (cell.with_caches.availability.failed > cell.cacheless.availability.failed) {
      std::ostringstream message;
      message << "run_topology_chaos_sweep(" << workload << "): caches degraded availability at "
              << (cell.location.empty() ? "baseline" : cell.location) << "@" << cell.fault_rate
              << ": " << cell.with_caches.availability.failed << " failed vs "
              << cell.cacheless.availability.failed << " cacheless";
      throw std::runtime_error{message.str()};
    }
    if (cell.fault_rate <= 0.0) continue;
    const std::size_t where = location_index(cell.location);
    // A tier fault is routed *around* (sibling, deeper tier, origin), so
    // nearer tiers keep filling and the tight containment coefficient
    // applies. An origin fault has no route around — only stale-if-error
    // softens it, and every tier's fills genuinely fail — so it gets the
    // looser degradation coefficient (the flat sweep's contract).
    const double per_fault = where >= config.topology.tiers.size()
                                 ? config.origin_degradation_per_fault
                                 : config.containment_per_fault;
    for (std::size_t t = 0; t < where && t < baseline.with_caches.tiers.size(); ++t) {
      const double base_rate = baseline.with_caches.tiers[t].hit_rate();
      const double bound =
          base_rate * (1.0 - config.containment_slack - cell.fault_rate * per_fault);
      if (cell.with_caches.tiers[t].hit_rate() < bound) {
        std::ostringstream message;
        message << "run_topology_chaos_sweep(" << workload << "): fault at " << cell.location
                << "@" << cell.fault_rate << " leaked past tier "
                << cell.with_caches.tiers[t].label << ": hit rate "
                << cell.with_caches.tiers[t].hit_rate() << " < " << bound << " (zero-fault "
                << base_rate << ")";
        throw std::runtime_error{message.str()};
      }
    }
  }

  if (config.obs != nullptr) {
    // Deterministic post-gather recording, mirroring run_chaos_sweep.
    for (const TopologyChaosCell& cell : result.cells) {
      std::ostringstream prefix;
      prefix << "topo/" << (cell.location.empty() ? "baseline" : cell.location) << "@"
             << cell.fault_rate;
      fill_series_from_daily(config.obs->series(prefix.str() + "/cache", "fault_rate"),
                             cell.with_caches.daily, cell.fault_rate);
      fill_series_from_daily(config.obs->series(prefix.str() + "/cacheless", "fault_rate"),
                             cell.cacheless.daily, cell.fault_rate);
    }
    config.obs->registry()
        .counter("wcs_topology_cells",
                 "Topology chaos cells replayed (caches + cacheless pairs)")
        .set(result.cells.size());
    Event marker;
    marker.kind = EventKind::kRunMarker;
    marker.size = result.cells.size();
    marker.detail = "run_topology_chaos_sweep:end";
    config.obs->emit(marker);
  }
  return result;
}

}  // namespace wcs
