#include "src/sim/zoo_study.h"

#include "src/core/policy.h"
#include "src/zoo/admission.h"
#include "src/zoo/gds.h"
#include "src/zoo/selector.h"
#include "src/zoo/slru.h"
#include "src/zoo/tinylfu.h"

namespace wcs {

namespace {

ZooPolicyOutcome zoo_outcome_for(const std::string& name, const SimResult& sim,
                                 const Experiment1Result& infinite) {
  ZooPolicyOutcome outcome;
  outcome.policy = name;
  outcome.hr = sim.daily.overall_hr();
  outcome.whr = sim.daily.overall_whr();
  outcome.hr_pct_of_infinite =
      series_mean(series_ratio(sim.daily.smoothed_hr(), infinite.smoothed_hr));
  outcome.whr_pct_of_infinite =
      series_mean(series_ratio(sim.daily.smoothed_whr(), infinite.smoothed_whr));
  outcome.evictions = sim.stats.evictions;
  outcome.dead_on_arrival_evictions = sim.stats.dead_on_arrival_evictions;
  return outcome;
}

}  // namespace

ZooStudyResult run_policy_zoo_study(const std::string& workload, const Trace& trace,
                                    const Experiment1Result& infinite, double cache_fraction,
                                    ParallelRunner& runner) {
  ZooStudyResult result;
  result.workload = workload;
  result.cache_fraction = cache_fraction;
  result.capacity_bytes = fraction_of(infinite.max_needed, cache_fraction);
  const std::uint64_t capacity = result.capacity_bytes;

  // ---- Policy leg: the paper's winner and baseline vs the zoo ------------
  struct PolicyEntry {
    const char* name;
    PolicyFactory factory;
  };
  const std::vector<PolicyEntry> policies = {
      {"SIZE", [] { return make_size(); }},
      {"LRU", [] { return make_lru(); }},
      {"GDS", [] { return make_gds(); }},
      {"GDSF", [] { return make_gdsf(); }},
      {"SLRU", [] { return make_slru(); }},
      {"W-TinyLFU", [] { return make_tinylfu(); }},
      {"adaptive", [] { return make_adaptive_selector(); }},
  };
  result.outcomes = runner.map(policies.size(), [&](std::size_t i) {
    return [&trace, &infinite, &policies, capacity, i] {
      const SimResult sim = simulate(trace, capacity, policies[i].factory);
      return zoo_outcome_for(policies[i].name, sim, infinite);
    };
  });

  // ---- Admission leg: SIZE under each admission filter -------------------
  struct AdmissionEntry {
    const char* name;
    AdmissionFactory factory;
  };
  const std::vector<AdmissionEntry> admissions = {
      {"always", [] { return make_always_admit(); }},
      {"size-threshold", [] { return make_size_threshold_admission(); }},
      {"doorkeeper", [] { return make_doorkeeper_admission(); }},
      {"doa", [] { return make_doa_admission(); }},
  };
  result.admissions = runner.map(admissions.size(), [&](std::size_t i) {
    return [&trace, &admissions, capacity, i] {
      const SimResult sim = simulate(trace, capacity, [] { return make_size(); }, {}, {},
                                     nullptr, admissions[i].factory);
      ZooAdmissionOutcome outcome;
      outcome.admission = admissions[i].name;
      outcome.hr = sim.daily.overall_hr();
      outcome.whr = sim.daily.overall_whr();
      outcome.insertions = sim.stats.insertions;
      outcome.admission_rejects = sim.stats.admission_rejects;
      outcome.dead_on_arrival_evictions = sim.stats.dead_on_arrival_evictions;
      return outcome;
    };
  });
  return result;
}

}  // namespace wcs
